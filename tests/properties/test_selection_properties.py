"""Property-based tests for changed-parameter selection."""

import numpy as np
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.selection import select_parameters

vectors = arrays(
    np.float64,
    st.integers(min_value=1, max_value=60),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


@st.composite
def vector_pairs(draw):
    current = draw(vectors)
    reference = draw(
        arrays(
            np.float64,
            current.shape,
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    threshold = draw(st.floats(0.0, 1e6, allow_nan=False))
    return current, reference, threshold


@given(vector_pairs())
def test_reconstruction_error_bounded_by_threshold(pair):
    """The receiver's view error never exceeds the suppression threshold."""
    current, reference, threshold = pair
    selection = select_parameters(current, reference, threshold)
    updated = reference.copy()
    updated[selection.indices] = selection.values
    assert np.all(np.abs(updated - current) <= threshold)


@given(vector_pairs())
def test_sent_and_suppressed_partition_the_coordinates(pair):
    current, reference, threshold = pair
    selection = select_parameters(current, reference, threshold)
    sent = set(selection.indices.tolist())
    for i in range(current.size):
        delta = abs(current[i] - reference[i])
        if delta > threshold:
            assert i in sent
        else:
            assert i not in sent


@given(vector_pairs())
def test_suppressed_max_is_a_tight_bound(pair):
    current, reference, threshold = pair
    selection = select_parameters(current, reference, threshold)
    deltas = np.abs(current - reference)
    suppressed_deltas = np.delete(deltas, selection.indices)
    if suppressed_deltas.size:
        assert selection.suppressed_max == suppressed_deltas.max()
    else:
        assert selection.suppressed_max == 0.0


@given(vector_pairs())
def test_zero_threshold_gives_exact_reconstruction(pair):
    current, reference, _ = pair
    selection = select_parameters(current, reference, 0.0)
    updated = reference.copy()
    updated[selection.indices] = selection.values
    np.testing.assert_array_equal(updated, current)


@given(vectors)
def test_identical_vectors_send_nothing(vector):
    selection = select_parameters(vector, vector.copy(), 0.0)
    assert selection.indices.size == 0
