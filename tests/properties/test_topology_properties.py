"""Property-based tests for topology generation and routing."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.topology.generators import random_topology
from repro.topology.routing import all_pairs_hop_counts


@st.composite
def random_topology_cases(draw):
    n = draw(st.integers(min_value=2, max_value=25))
    min_degree = 2.0 * (n - 1) / n
    degree = draw(
        st.floats(min_value=min_degree, max_value=float(n - 1))
    )
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_topology(n, degree, seed=seed), degree


@given(random_topology_cases())
@settings(max_examples=40, deadline=None)
def test_generated_topology_connected_with_target_degree(case):
    topo, degree = case
    assert topo.is_connected()
    # average degree matches the target up to rounding granularity 2/n
    assert abs(topo.average_degree() - degree) <= 2.0 / topo.n_nodes + 1e-9


@given(random_topology_cases())
@settings(max_examples=30, deadline=None)
def test_hop_counts_form_a_metric(case):
    topo, _ = case
    hops = all_pairs_hop_counts(topo)
    n = topo.n_nodes
    assert np.all(np.diag(hops) == 0)
    assert np.array_equal(hops, hops.T)
    assert np.all(hops[~np.eye(n, dtype=bool)] >= 1)
    # triangle inequality on a few sampled triples
    rng = np.random.default_rng(0)
    for _ in range(min(30, n**2)):
        i, j, k = rng.integers(0, n, size=3)
        assert hops[i, k] <= hops[i, j] + hops[j, k]


@given(random_topology_cases())
@settings(max_examples=30, deadline=None)
def test_neighbors_are_exactly_one_hop(case):
    topo, _ = case
    hops = all_pairs_hop_counts(topo)
    for node in topo:
        for neighbor in topo.neighbors(node):
            assert hops[node, neighbor] == 1
