"""Properties of the adaptive topology runtime.

Three contracts pin the runtime down:

* **Zero-weight pruning is trajectory-free.** A link whose mixing weight is
  exactly zero contributes nothing to the EXTRA recursion, so removing it
  changes no iterate — only the byte ledger (the pruned link stops paying
  for frames). This is the semantic license behind the online pruning rule.
* **An idle controller is a bitwise no-op.** With nothing to prune and no
  budget pressure the adaptive run's full :class:`RunDigest` equals the
  non-adaptive run's: arming the controller costs nothing until it acts.
* **A swap leaves every layer consistent.** Server link state, the
  staleness ledger, per-edge compressor state, the channel, and the step
  size all agree with the pruned topology afterwards, and the invariant
  monitor re-validated the swapped matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.spec import CompressorSpec
from repro.core.config import SelectionPolicy, SNAPConfig
from repro.core.trainer import SNAPTrainer
from repro.data.dataset import Dataset
from repro.models.logistic import LogisticRegression
from repro.network.timing import LinkTimingModel
from repro.testing.digest import capture_run
from repro.topology.graph import Topology
from repro.weights.adaptive import (
    TopologyController,
    edge_cost_vector,
    prune_links,
)
from repro.weights.construction import metropolis_weights
from repro.weights.optimizer import optimize_weight_matrix


def ring_with_chords(n: int, chords) -> Topology:
    edges = [(i, (i + 1) % n) for i in range(n)] + list(chords)
    return Topology(n, edges)


#: Five parallel hub chords: the optimizer drives some of their weights to
#: (near) zero, which is exactly the regime the pruning rule targets.
HUB_CHORDS = [(0, 2), (0, 4), (0, 6), (0, 8), (0, 10)]


def make_shards(n_nodes: int, n_features: int = 5, n_samples: int = 30):
    rng = np.random.default_rng([7, n_nodes])
    shards = []
    for _ in range(n_nodes):
        X = rng.normal(size=(n_samples, n_features))
        w = rng.normal(size=n_features)
        y = (X @ w + 0.3 * rng.normal(size=n_samples) > 0).astype(float)
        shards.append(Dataset(X, y))
    return shards


def build_trainer(topology, config, weight_matrix=None):
    return SNAPTrainer(
        LogisticRegression(5),
        make_shards(topology.n_nodes),
        topology,
        config,
        weight_matrix=weight_matrix,
    )


class TestPruneLinks:
    def test_only_below_threshold_links_are_candidates(self):
        topo = ring_with_chords(12, HUB_CHORDS)
        result = optimize_weight_matrix(topo, iterations=300)
        pruned, removed = prune_links(topo, result.matrix, 0.05)
        assert removed  # the hub chords include near-zero links
        for u, v in removed:
            assert result.matrix[u, v] < 0.05
        assert pruned.is_connected()
        assert set(pruned.edges) == set(topo.edges) - set(removed)

    def test_disconnecting_removals_are_skipped(self):
        # On a tree every edge is a bridge: even with every link below the
        # threshold, the connectivity guard must keep all of them.
        topo = Topology(4, [(0, 1), (1, 2), (2, 3)])
        matrix = metropolis_weights(topo)
        pruned, removed = prune_links(topo, matrix, 1.0)
        assert removed == ()
        assert pruned.edges == topo.edges

    def test_zero_threshold_prunes_nothing(self):
        topo = ring_with_chords(12, HUB_CHORDS)
        result = optimize_weight_matrix(topo, iterations=120)
        # Off-diagonal weights are theta >= 0, so strictly-below-zero is empty.
        _, removed = prune_links(topo, result.matrix, 0.0)
        assert removed == ()

    def test_edge_cost_vector_normalized_and_ordered(self):
        topo = ring_with_chords(6, [(0, 3)])
        # Default links run at a gigabit; the chord is throttled far below.
        timing = LinkTimingModel(link_bandwidth={(0, 3): 1.0e6})
        costs = edge_cost_vector(topo, timing)
        assert costs.shape == (len(topo.edges),)
        assert costs.max() == 1.0
        chord = topo.edges.index((0, 3))
        assert costs[chord] == 1.0  # slowest link carries the peak cost
        assert np.all(costs[np.arange(len(costs)) != chord] < 1.0)


class TestZeroWeightPruningTrajectory:
    def test_pruning_a_zero_weight_link_preserves_the_trajectory(self):
        # W is the Metropolis matrix of the ring alone, used as an explicit
        # matrix on both the ring+chord topology (the chord carries weight
        # exactly 0) and the bare ring. The chord still transmits frames in
        # the first run — it just mixes with weight zero — so the byte
        # ledgers differ while every iterate is bitwise identical.
        full = ring_with_chords(10, [(0, 5)])
        bare = Topology(10, [(i, (i + 1) % 10) for i in range(10)])
        matrix = metropolis_weights(bare)

        def run(topology):
            config = SNAPConfig(
                selection=SelectionPolicy.CHANGED_ONLY,
                optimize_weights=False,
                max_rounds=8,
                seed=11,
            )
            trainer = build_trainer(topology, config, weight_matrix=matrix)
            return trainer.run(stop_on_convergence=False)

        with_link = run(full)
        without_link = run(bare)
        for a, b in zip(with_link.rounds, without_link.rounds):
            assert a.mean_loss == b.mean_loss
            assert a.consensus_error == b.consensus_error
        assert np.array_equal(
            with_link.final_params, without_link.final_params
        )
        # The pruned run pays strictly fewer bytes: that is the point.
        assert without_link.total_bytes < with_link.total_bytes


class TestIdleControllerIsNoop:
    @pytest.mark.parametrize("engine", ["reference", "vectorized", "semisync"])
    def test_armed_but_idle_controller_leaves_the_digest_unchanged(self, engine):
        topo = ring_with_chords(8, [(0, 3), (2, 6)])

        def digest(adaptive: bool):
            config = SNAPConfig(
                engine=engine,
                optimize_weights=True,
                weight_iterations=60,
                adaptive_topology=adaptive,
                topology_reoptimize_every=2,
                # Strictly-below-zero never matches a theta >= 0 weight, so
                # the controller runs every cycle and decides "no change".
                topology_prune_threshold=0.0,
                max_rounds=8,
                seed=11,
            )
            return capture_run(build_trainer(topo, config))

        assert digest(True) == digest(False)


class TestSwapStateConsistency:
    @pytest.fixture(scope="class")
    def swapped_trainer(self):
        config = SNAPConfig(
            engine="reference",
            invariants="strict",
            optimize_weights=True,
            weight_iterations=300,
            adaptive_topology=True,
            topology_reoptimize_every=4,
            topology_prune_threshold=0.05,
            max_rounds=10,
            seed=11,
        )
        trainer = build_trainer(ring_with_chords(12, HUB_CHORDS), config)
        trainer._swap_result = trainer.run(stop_on_convergence=False)
        return trainer

    def test_a_swap_happened_and_was_revalidated(self, swapped_trainer):
        controller = swapped_trainer._topology_controller
        assert controller.summary()["pruned_edges"] >= 1
        assert swapped_trainer.monitor.checks["topology-swap"] == len(
            controller.swaps
        )

    def test_server_link_state_matches_the_pruned_topology(self, swapped_trainer):
        topology = swapped_trainer.topology
        for server in swapped_trainer.servers:
            expected = set(topology.neighbors(server.node_id))
            assert set(server.neighbors) == expected
            assert set(server.views) == expected
            assert set(server.last_sent) == expected
            assert set(server.fresh) == expected

    def test_staleness_ledger_matches_the_pruned_topology(self, swapped_trainer):
        pairs = set(swapped_trainer._staleness_pairs)
        expected = set()
        for u, v in swapped_trainer.topology.edges:
            expected.add((u, v))
            expected.add((v, u))
        assert pairs == expected

    def test_edge_states_hold_no_pruned_links(self, swapped_trainer):
        live = set(swapped_trainer._staleness_pairs)
        assert set(swapped_trainer._edge_states) <= live

    def test_channel_rejects_pruned_links(self, swapped_trainer):
        pruned = [
            edge
            for swap in swapped_trainer._topology_controller.swaps
            for edge in swap.pruned_edges
        ]
        assert pruned
        for u, v in pruned:
            assert not swapped_trainer.channel.topology.has_edge(u, v)

    def test_warm_resolves_are_cheap(self, swapped_trainer):
        controller = swapped_trainer._topology_controller
        # The online re-solves warm-start + patience-stop: far below the
        # (two-problem) cold budget of 2 * weight_iterations per swap.
        resolves = [s for s in controller.swaps if s.solver_steps > 0]
        assert resolves
        for swap in resolves:
            assert swap.solver_steps < 2 * 300


class TestBudgetKnob:
    def make_controller(self, spec, budget=1000):
        topo = ring_with_chords(8, [(0, 4)])
        result = optimize_weight_matrix(topo, iterations=40)
        return TopologyController(
            topo,
            result,
            prune_threshold=0.0,  # isolate the knob from pruning
            bytes_budget=budget,
            spec=spec,
        )

    def test_overshoot_steps_bits_down(self):
        controller = self.make_controller(CompressorSpec.parse("uniform:bits=8"))
        swap = controller.propose(
            5, bytes_spent=900, rounds_done=5, total_rounds=20
        )
        assert swap.compressor_spec.params_dict()["bits"] == 6

    def test_undershoot_steps_bits_up_but_never_past_the_config(self):
        controller = self.make_controller(CompressorSpec.parse("uniform:bits=4"))
        controller.spec = CompressorSpec.parse("uniform:bits=2")
        swap = controller.propose(
            5, bytes_spent=10, rounds_done=5, total_rounds=20
        )
        assert swap.compressor_spec.params_dict()["bits"] == 4
        # Already back at the configured fidelity: no further relax step.
        assert (
            controller.propose(
                10, bytes_spent=20, rounds_done=10, total_rounds=20
            )
            is None
        )

    def test_topk_halves_and_bottoms_out_at_one(self):
        controller = self.make_controller(CompressorSpec.parse("topk:k=2"))
        swap = controller.propose(
            5, bytes_spent=900, rounds_done=5, total_rounds=20
        )
        assert swap.compressor_spec.params_dict()["k"] == 1
        assert (
            controller.propose(
                10, bytes_spent=1800, rounds_done=10, total_rounds=20
            )
            is None
        )

    def test_presets_have_no_knob(self):
        controller = self.make_controller(CompressorSpec.parse("ape"))
        assert (
            controller.propose(
                5, bytes_spent=900, rounds_done=5, total_rounds=20
            )
            is None
        )

    def test_no_budget_means_no_knob_steps(self):
        controller = self.make_controller(
            CompressorSpec.parse("uniform:bits=8"), budget=None
        )
        assert (
            controller.propose(
                5, bytes_spent=10**9, rounds_done=5, total_rounds=20
            )
            is None
        )
