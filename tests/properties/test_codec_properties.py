"""Property-based tests: the binary codecs round-trip every valid update and
their payload lengths equal the Fig. 3 size formulas."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.network.codec import decode_update, encode_update
from repro.network.messages import ParameterUpdate


@st.composite
def updates(draw):
    total = draw(st.integers(min_value=1, max_value=300))
    n_sent = draw(st.integers(min_value=0, max_value=total))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    indices = np.sort(rng.choice(total, size=n_sent, replace=False)).astype(np.int64)
    values = rng.normal(scale=draw(st.floats(1e-6, 1e6)), size=n_sent)
    return ParameterUpdate(
        sender=draw(st.integers(0, 100)),
        round_index=draw(st.integers(0, 10_000)),
        total_params=total,
        indices=indices,
        values=values,
    )


@given(updates())
@settings(max_examples=120, deadline=None)
def test_round_trip_is_lossless(update):
    payload = encode_update(update)
    decoded = decode_update(
        payload, update.frame_format, update.total_params, update.sender,
        update.round_index,
    )
    np.testing.assert_array_equal(decoded.indices, update.indices)
    np.testing.assert_array_equal(decoded.values, update.values)
    assert decoded.frame_format is update.frame_format


@given(updates())
@settings(max_examples=120, deadline=None)
def test_payload_length_matches_accounting(update):
    assert len(encode_update(update)) == update.size_bytes


@given(updates())
@settings(max_examples=60, deadline=None)
def test_applying_decoded_update_equals_applying_original(update):
    rng = np.random.default_rng(0)
    target = rng.normal(size=update.total_params)
    decoded = decode_update(
        encode_update(update), update.frame_format, update.total_params,
        update.sender, update.round_index,
    )
    np.testing.assert_array_equal(
        decoded.apply_to(target), update.apply_to(target)
    )
