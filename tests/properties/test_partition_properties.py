"""Property-based tests for the data partitioners."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.dataset import Dataset
from repro.data.partition import dirichlet_partition, iid_partition, shard_partition


@st.composite
def datasets_and_parts(draw):
    n = draw(st.integers(min_value=10, max_value=200))
    n_parts = draw(st.integers(min_value=1, max_value=min(10, n)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = rng.integers(0, 4, size=n).astype(np.int64)
    return Dataset(X, y), n_parts, seed


def assert_partition(dataset, parts):
    assert sum(p.n_samples for p in parts) == dataset.n_samples
    # index multiset equality via sorted stacking of rows
    original = np.sort(dataset.X, axis=0)
    combined = np.sort(np.vstack([p.X for p in parts if p.n_samples]), axis=0)
    np.testing.assert_array_equal(original, combined)


@given(datasets_and_parts())
@settings(max_examples=40, deadline=None)
def test_iid_partition_is_exact_partition(case):
    dataset, n_parts, seed = case
    parts = iid_partition(dataset, n_parts, seed=seed)
    assert_partition(dataset, parts)
    sizes = [p.n_samples for p in parts]
    assert max(sizes) - min(sizes) <= 1


@given(datasets_and_parts())
@settings(max_examples=25, deadline=None)
def test_dirichlet_partition_is_exact_partition(case):
    dataset, n_parts, seed = case
    parts = dirichlet_partition(
        dataset, n_parts, concentration=1.0, seed=seed, min_samples=1
    )
    assert_partition(dataset, parts)


@given(datasets_and_parts())
@settings(max_examples=25, deadline=None)
def test_shard_partition_is_exact_partition(case):
    dataset, n_parts, seed = case
    parts = shard_partition(dataset, n_parts, shards_per_part=1, seed=seed)
    assert_partition(dataset, parts)
