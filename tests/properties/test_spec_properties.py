"""Property-based tests for the compressor-spec grammar.

The grammar ``[ef:]kind[:key=value,...]`` is the public identity of a
compression scheme — CLI flag, ``SNAPConfig.compressor``, checkpoint
compatibility tag. These properties pin its round trips: formatting a
parsed spec re-parses to the same spec, parsing is insensitive to argument
grouping, and every malformed input is rejected with a
:class:`ConfigurationError` that names the problem.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.spec import _SCHEMAS, PRESET_KINDS, CompressorSpec
from repro.exceptions import ConfigurationError

#: kinds whose schema carries parameters (round trips include values).
PARAM_KINDS = sorted(kind for kind, schema in _SCHEMAS.items() if schema)
NO_PARAM_KINDS = sorted(kind for kind, schema in _SCHEMAS.items() if not schema)

param_values = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(
        min_value=-1e6,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ).filter(lambda x: x != int(x)),  # ints already covered; avoid 2.0 == "2"
    st.booleans(),
)


@st.composite
def specs(draw):
    """A valid CompressorSpec across kinds, parameters, and ef-wrapping."""
    kind = draw(st.sampled_from(sorted(_SCHEMAS)))
    schema = _SCHEMAS[kind]
    params = {}
    for name in schema:
        if draw(st.booleans()):
            params[name] = draw(param_values)
    error_feedback = kind not in PRESET_KINDS and draw(st.booleans())
    return CompressorSpec(
        kind=kind, params=tuple(params.items()), error_feedback=error_feedback
    )


class TestRoundTrip:
    @given(specs())
    @settings(max_examples=200, deadline=None)
    def test_parse_spec_string_is_identity(self, spec):
        assert CompressorSpec.parse(spec.spec_string) == spec

    @given(specs())
    @settings(max_examples=200, deadline=None)
    def test_double_round_trip_is_stable(self, spec):
        once = CompressorSpec.parse(spec.spec_string)
        assert once.spec_string == spec.spec_string
        assert CompressorSpec.parse(once.spec_string) == once

    @given(specs())
    @settings(max_examples=100, deadline=None)
    def test_normalize_accepts_both_forms(self, spec):
        assert CompressorSpec.normalize(spec) is spec
        assert CompressorSpec.normalize(spec.spec_string) == spec

    @given(specs())
    @settings(max_examples=100, deadline=None)
    def test_label_and_spec_string_agree_on_identity(self, spec):
        other = CompressorSpec.parse(spec.spec_string)
        assert other.label == spec.label

    @given(st.sampled_from(PARAM_KINDS), st.data())
    @settings(max_examples=100, deadline=None)
    def test_argument_grouping_is_irrelevant(self, kind, data):
        """``kind:a=1,b=2`` and ``kind:a=1:b=2`` parse identically."""
        schema = _SCHEMAS[kind]
        values = {
            name: data.draw(st.integers(1, 100), label=name) for name in schema
        }
        comma = kind + ":" + ",".join(f"{k}={v}" for k, v in values.items())
        colon = kind + "".join(f":{k}={v}" for k, v in values.items())
        assert CompressorSpec.parse(comma) == CompressorSpec.parse(colon)


class TestRejections:
    @given(st.text(min_size=1, max_size=30).filter(lambda s: s.strip()))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_never_crashes_unexpectedly(self, text):
        """parse() either returns a valid spec or raises ConfigurationError."""
        try:
            spec = CompressorSpec.parse(text)
        except ConfigurationError:
            return
        assert spec.kind in _SCHEMAS

    @given(st.sampled_from(sorted(_SCHEMAS)))
    @settings(max_examples=20, deadline=None)
    def test_unknown_parameter_names_are_rejected_with_context(self, kind):
        with pytest.raises(ConfigurationError) as excinfo:
            CompressorSpec.parse(f"{kind}:no_such_knob=1")
        message = str(excinfo.value)
        assert kind in message
        assert "no_such_knob" in message

    @given(st.sampled_from(PRESET_KINDS))
    @settings(max_examples=10, deadline=None)
    def test_ef_on_presets_is_rejected_with_reason(self, preset):
        with pytest.raises(ConfigurationError) as excinfo:
            CompressorSpec.parse(f"ef:{preset}")
        assert "error feedback" in str(excinfo.value)

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", ":", "ef:", "ef", "topk:k", "topk:=3", "nosuchkind"],
    )
    def test_malformed_specs_name_the_problem(self, bad):
        with pytest.raises(ConfigurationError) as excinfo:
            CompressorSpec.parse(bad)
        # Every rejection carries a message mentioning either the offending
        # text or the grammar, never a bare assertion.
        assert str(excinfo.value)

    def test_non_string_is_rejected(self):
        with pytest.raises(ConfigurationError):
            CompressorSpec.parse(42)  # type: ignore[arg-type]


class TestSpecStringShape:
    @given(st.sampled_from(NO_PARAM_KINDS))
    @settings(max_examples=10, deadline=None)
    def test_parameterless_kinds_render_bare(self, kind):
        assert CompressorSpec(kind=kind).spec_string == kind

    def test_defaults_are_made_explicit(self):
        """Canonicalization fills schema defaults into the spec string."""
        assert CompressorSpec.parse("topk").spec_string == "topk:k=16"
        assert CompressorSpec.parse("uniform").spec_string == "uniform:bits=4"

    def test_ef_prefix_round_trips(self):
        spec = CompressorSpec.parse("ef:uniform:bits=6")
        assert spec.spec_string == "ef:uniform:bits=6"
        assert spec.error_feedback
