"""Property-based tests for weight-matrix construction and optimization."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.topology.generators import random_topology
from repro.utils.linalg import is_doubly_stochastic, is_symmetric
from repro.weights.construction import metropolis_weights
from repro.weights.optimizer import lazify, optimize_weight_matrix
from repro.weights.parametrization import EdgeParametrization
from repro.weights.spectrum import analyze_weight_matrix
from repro.weights.validation import check_weight_matrix


@st.composite
def topologies(draw):
    n = draw(st.integers(min_value=3, max_value=14))
    min_degree = 2.0 * (n - 1) / n
    degree = draw(st.floats(min_value=min_degree, max_value=max(min_degree, n / 2)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_topology(n, degree, seed=seed)


@given(topologies())
@settings(max_examples=30, deadline=None)
def test_metropolis_always_feasible(topo):
    check_weight_matrix(metropolis_weights(topo), topo)


@given(topologies(), st.floats(0.0, 0.5))
@settings(max_examples=30, deadline=None)
def test_metropolis_epsilon_keeps_structure(topo, epsilon):
    w = metropolis_weights(topo, epsilon=epsilon)
    assert is_symmetric(w)
    assert is_doubly_stochastic(w)


@given(topologies())
@settings(max_examples=30, deadline=None)
def test_spectrum_bounds_hold(topo):
    report = analyze_weight_matrix(metropolis_weights(topo))
    np.testing.assert_allclose(report.largest, 1.0, atol=1e-9)
    assert -1.0 - 1e-9 <= report.smallest <= 1.0
    assert report.second_largest <= 1.0


@given(topologies())
@settings(max_examples=30, deadline=None)
def test_lazify_preserves_feasibility(topo):
    lazy = lazify(metropolis_weights(topo))
    check_weight_matrix(lazy, topo)
    assert analyze_weight_matrix(lazy).smallest >= -1e-9


@given(topologies())
@settings(max_examples=10, deadline=None)
def test_optimizer_output_always_feasible_and_no_worse(topo):
    result = optimize_weight_matrix(topo, iterations=30)
    check_weight_matrix(result.matrix, topo)
    baseline = analyze_weight_matrix(metropolis_weights(topo)).rate_score
    assert result.report.rate_score >= baseline - 1e-9


@given(topologies(), st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_projection_idempotent(topo, seed):
    parametrization = EdgeParametrization(topo, min_self_weight=0.01)
    rng = np.random.default_rng(seed)
    theta = rng.normal(0.2, 0.4, size=parametrization.n_edges)
    once = parametrization.project(theta)
    twice = parametrization.project(once)
    np.testing.assert_allclose(once, twice, atol=1e-8)
