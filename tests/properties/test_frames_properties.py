"""Property-based tests for the frame-format byte accounting."""

from hypothesis import given, strategies as st

from repro.network.frames import (
    FrameFormat,
    encoded_update_bytes,
    frame_size_bytes,
    select_frame_format,
)

counts = st.integers(min_value=0, max_value=10_000)
bit_widths = st.integers(min_value=2, max_value=16)

FIG3_FORMATS = (FrameFormat.UNCHANGED_INDEX, FrameFormat.INDEX_VALUE)


@given(total=counts, unsent=counts)
def test_selected_frame_is_minimal(total, unsent):
    """The auto-selected format never loses to the other one."""
    unsent = min(unsent, total)
    best = encoded_update_bytes(total, unsent)
    for fmt in FIG3_FORMATS:
        assert best <= frame_size_bytes(total, unsent, fmt)


@given(total=counts, unsent=counts, bits=bit_widths)
def test_selected_frame_is_minimal_with_quantization(total, unsent, bits):
    """With a bit width on offer, the selection beats all three formats."""
    unsent = min(unsent, total)
    best = encoded_update_bytes(total, unsent, bits)
    assert best <= encoded_update_bytes(total, unsent)
    for fmt in FrameFormat:
        assert best <= frame_size_bytes(total, unsent, fmt, bits=bits)


@given(total=counts, unsent=counts)
def test_sizes_are_nonnegative_and_monotone_in_sent(total, unsent):
    unsent = min(unsent, total)
    size = encoded_update_bytes(total, unsent)
    assert size >= 0
    if unsent < total:
        # suppressing one more parameter never increases the optimal size
        assert encoded_update_bytes(total, unsent + 1) <= size


@given(total=st.integers(min_value=1, max_value=10_000))
def test_full_suppression_is_cheapest(total):
    all_suppressed = encoded_update_bytes(total, total)
    nothing_suppressed = encoded_update_bytes(total, 0)
    assert all_suppressed <= nothing_suppressed
    assert all_suppressed == 0  # INDEX_VALUE frame of nothing


@given(total=counts, unsent=counts)
def test_crossover_rule_matches_formula_comparison(total, unsent):
    """select_frame_format implements exactly the paper's N > 2M+1 rule."""
    unsent = min(unsent, total)
    chosen = select_frame_format(total, unsent)
    a = frame_size_bytes(total, unsent, FrameFormat.UNCHANGED_INDEX)
    b = frame_size_bytes(total, unsent, FrameFormat.INDEX_VALUE)
    if a < b:
        assert chosen is FrameFormat.UNCHANGED_INDEX
    elif b < a:
        assert chosen is FrameFormat.INDEX_VALUE
    else:
        assert chosen is FrameFormat.INDEX_VALUE  # the paper's tie branch
