"""Property-based tests for the robust aggregation mixers.

Three contracts back the byzantine scenario axis (see docs/SCENARIOS.md):

* **Permutation invariance** — the aggregate must not depend on the order
  the neighbor operands arrive in (trimmed-mean and median canonicalize by
  sorting; Krum screens by distance with id tie-breaks).
* **Breakdown point** — with at most ``f`` attacker-controlled operands and
  a tolerance of ``f``, the neighbor aggregate stays inside the honest
  operands' convex hull (scaled by the total neighbor weight), no matter
  what the attackers send. For the weighted median this guarantee needs the
  attacker *weight* below half the total, so it is exercised with equal
  weights; Krum's guarantee is screening of *outliers*, so its attackers
  are placed strictly farther from the receiver than every honest operand.
* **Exact reduction** — with ``f`` (effectively) zero the robust path must
  be the plain sequential EXTRA mixing loop bit for bit, so configuring a
  defense with no attackers provably costs nothing.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.robust import (
    ROBUST_KINDS,
    RobustAggregationSpec,
    _sequential_mix,
    robust_mix,
)


@st.composite
def mixing_operands(draw, min_neighbors=2, max_neighbors=8):
    """One node's mixing inputs: own row plus m neighbor (id, value, weight)."""
    d = draw(st.integers(min_value=1, max_value=6))
    m = draw(st.integers(min_value=min_neighbors, max_value=max_neighbors))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    own_value = rng.normal(size=d)
    own_weight = float(rng.uniform(0.1, 0.6))
    values = [rng.normal(size=d) for _ in range(m)]
    weights = [float(w) for w in rng.uniform(0.05, 0.5, size=m)]
    ids = list(range(m))
    return own_value, own_weight, ids, values, weights


@given(
    mixing_operands(),
    st.sampled_from(ROBUST_KINDS),
    st.integers(min_value=1, max_value=3),
    st.randoms(use_true_random=False),
)
@settings(max_examples=60, deadline=None)
def test_permutation_invariance(operands, kind, f, shuffler):
    own_value, own_weight, ids, values, weights = operands
    spec = RobustAggregationSpec(kind=kind, f=f)
    baseline = robust_mix(spec, own_value, own_weight, ids, values, weights)

    order = list(range(len(ids)))
    shuffler.shuffle(order)
    permuted = robust_mix(
        spec,
        own_value,
        own_weight,
        [ids[i] for i in order],
        [values[i] for i in order],
        [weights[i] for i in order],
    )
    np.testing.assert_allclose(permuted, baseline, rtol=1e-9, atol=1e-12)


@st.composite
def attacked_operands(draw, equal_weights=False):
    """Operands with ``f`` attacker slots and enough honest mass (h >= f+1)."""
    d = draw(st.integers(min_value=1, max_value=5))
    f = draw(st.integers(min_value=1, max_value=3))
    honest = draw(st.integers(min_value=f + 1, max_value=f + 5))
    m = honest + f
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    own_value = rng.normal(size=d)
    own_weight = float(rng.uniform(0.1, 0.6))
    honest_values = [rng.normal(size=d) for _ in range(honest)]
    if equal_weights:
        weights = [0.25] * m
    else:
        weights = [float(w) for w in rng.uniform(0.05, 0.5, size=m)]
    attacker_slots = sorted(
        int(i) for i in rng.choice(m, size=f, replace=False)
    )
    # Attacks: huge magnitudes, sign flips, adversarial constants.
    attacker_values = [
        rng.choice([-1.0, 1.0]) * rng.uniform(10.0, 1e6) * np.ones(d)
        for _ in range(f)
    ]
    return (
        own_value,
        own_weight,
        honest_values,
        attacker_slots,
        attacker_values,
        weights,
        f,
    )


def _interleave(honest_values, attacker_slots, attacker_values):
    m = len(honest_values) + len(attacker_slots)
    values, honest_iter = [], iter(honest_values)
    attacker_iter = iter(attacker_values)
    for i in range(m):
        if i in attacker_slots:
            values.append(next(attacker_iter))
        else:
            values.append(next(honest_iter))
    return values


def _assert_in_scaled_hull(result, own_value, own_weight, hull_values, weights):
    """``result`` must equal own term + total-neighbor-weight × hull point."""
    hull = np.stack(hull_values)
    total = float(np.sum(weights))
    low = own_weight * own_value + total * hull.min(axis=0)
    high = own_weight * own_value + total * hull.max(axis=0)
    slack = 1e-9 * (1.0 + np.abs(high) + np.abs(low))
    assert np.all(result >= low - slack), (result, low)
    assert np.all(result <= high + slack), (result, high)


@given(attacked_operands())
@settings(max_examples=60, deadline=None)
def test_trimmed_mean_breakdown(operands):
    own_value, own_weight, honest_values, slots, attacks, weights, f = operands
    values = _interleave(honest_values, slots, attacks)
    spec = RobustAggregationSpec(kind="trimmed_mean", f=f)
    result = robust_mix(
        spec, own_value, own_weight, list(range(len(values))), values, weights
    )
    _assert_in_scaled_hull(result, own_value, own_weight, honest_values, weights)


@given(attacked_operands(equal_weights=True))
@settings(max_examples=60, deadline=None)
def test_median_breakdown_under_equal_weights(operands):
    own_value, own_weight, honest_values, slots, attacks, weights, f = operands
    values = _interleave(honest_values, slots, attacks)
    spec = RobustAggregationSpec(kind="median", f=f)
    result = robust_mix(
        spec, own_value, own_weight, list(range(len(values))), values, weights
    )
    _assert_in_scaled_hull(result, own_value, own_weight, honest_values, weights)


@given(attacked_operands())
@settings(max_examples=60, deadline=None)
def test_krum_screens_outlier_attackers(operands):
    own_value, own_weight, honest_values, slots, attacks, weights, f = operands
    # Krum screens by distance to the receiver: place every attacker
    # strictly farther from `own_value` than any honest operand.
    worst = max(
        float(np.sum((v - own_value) ** 2)) for v in honest_values
    )
    radius = np.sqrt(worst) + 1.0
    attacks = [
        own_value + radius * (2.0 + i) * np.sign(a[0] if a[0] != 0 else 1.0)
        for i, a in enumerate(attacks)
    ]
    values = _interleave(honest_values, slots, attacks)
    spec = RobustAggregationSpec(kind="krum", f=f)
    result = robust_mix(
        spec, own_value, own_weight, list(range(len(values))), values, weights
    )
    # Screened slots mix the receiver's own row, so the hull widens to the
    # honest operands plus `own_value` itself.
    _assert_in_scaled_hull(
        result, own_value, own_weight, honest_values + [own_value], weights
    )


@given(mixing_operands(min_neighbors=1), st.sampled_from(ROBUST_KINDS))
@settings(max_examples=60, deadline=None)
def test_f_zero_reduces_to_plain_mixing_bitwise(operands, kind):
    own_value, own_weight, ids, values, weights = operands
    spec = RobustAggregationSpec(kind=kind, f=0)
    robust = robust_mix(spec, own_value, own_weight, ids, values, weights)
    plain = _sequential_mix(own_value, own_weight, values, weights)
    # Bitwise, not approximate: the zero-tolerance path must be the exact
    # sequential accumulation the EdgeServer runs without a defense.
    assert np.array_equal(robust, plain)


@given(mixing_operands(min_neighbors=1, max_neighbors=3))
@settings(max_examples=60, deadline=None)
def test_degenerate_neighborhoods_fall_back_bitwise(operands):
    """f > 0 but too few operands to trim: the clamp must hit the plain path."""
    own_value, own_weight, ids, values, weights = operands
    m = len(values)
    plain = _sequential_mix(own_value, own_weight, values, weights)
    for kind in ("trimmed_mean", "median"):
        f_eff_zero = (m - 1) // 2 == 0
        spec = RobustAggregationSpec(kind=kind, f=5)
        result = robust_mix(spec, own_value, own_weight, ids, values, weights)
        if f_eff_zero:
            assert np.array_equal(result, plain)
        assert np.all(np.isfinite(result))
