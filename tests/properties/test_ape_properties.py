"""Property-based tests for the APE threshold schedule's invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.ape import APESchedule


@st.composite
def schedules(draw):
    return APESchedule(
        initial_threshold=draw(st.floats(1e-6, 10.0)),
        growth=draw(st.floats(1.0, 1.5)),
        stage_iterations=draw(st.integers(1, 30)),
        decay=draw(st.floats(0.1, 0.99)),
        epsilon=draw(st.floats(0.0, 1e-3)),
    )


suppressed_sequences = st.lists(st.floats(0.0, 5.0), min_size=1, max_size=120)


@given(schedules(), suppressed_sequences)
@settings(max_examples=80, deadline=None)
def test_threshold_never_increases(schedule, suppressed):
    previous = schedule.threshold
    for value in suppressed:
        schedule.record_round(value)
        assert schedule.threshold <= previous + 1e-15
        previous = schedule.threshold


@given(schedules(), suppressed_sequences)
@settings(max_examples=80, deadline=None)
def test_send_threshold_bounded_by_stage_budget(schedule, suppressed):
    for value in suppressed:
        # line-4 guarantee: per-round allowance times the stage length never
        # exceeds the stage budget (growth >= 1).
        assert (
            schedule.send_threshold * schedule.stage_iterations
            <= schedule.threshold + 1e-12
        )
        schedule.record_round(value)


@given(schedules(), suppressed_sequences)
@settings(max_examples=80, deadline=None)
def test_stage_index_monotone_and_accumulator_resets(schedule, suppressed):
    previous_stage = schedule.stage
    for value in suppressed:
        schedule.record_round(value)
        assert schedule.stage >= previous_stage
        if schedule.stage > previous_stage:
            assert schedule.accumulated_error == 0.0
        previous_stage = schedule.stage


@given(schedules())
@settings(max_examples=50, deadline=None)
def test_quiet_schedule_eventually_exhausts(schedule):
    """With zero suppression, time-boxed stages must drive T below epsilon
    (when epsilon > 0) within the analytically required number of rounds:
    one stage per ``max_stage_iterations`` rounds, and
    ``log(eps / T0) / log(decay)`` stages to decay past epsilon."""
    import math

    if schedule.epsilon == 0.0 or not schedule.active:
        return
    # log(eps) - log(T0) avoids the ratio underflowing to 0 for denormal eps.
    stages_needed = (
        math.ceil(
            (math.log(schedule.epsilon) - math.log(schedule.initial_threshold))
            / math.log(schedule.decay)
        )
        + 1
    )
    budget = stages_needed * schedule.max_stage_iterations + 1
    for _ in range(budget):
        if not schedule.active:
            break
        schedule.record_round(0.0)
    assert not schedule.active
