"""Property-based tests for the consensus engines' structural invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.consensus.dgd import DGDIteration
from repro.consensus.extra import ExtraIteration
from repro.consensus.gradient_tracking import GradientTrackingIteration
from repro.topology.generators import random_topology
from repro.weights.construction import metropolis_weights
from repro.weights.optimizer import lazify


@st.composite
def consensus_cases(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    dim = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    min_degree = 2.0 * (n - 1) / n
    topo = random_topology(n, min(float(n - 1), min_degree + 1.0), seed=seed)
    weights = lazify(metropolis_weights(topo))
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n, dim))
    gradients = [lambda x, c=c: x - c for c in centers]
    alpha = draw(st.floats(0.01, 0.4))
    initial = rng.normal(size=(n, dim))
    return weights, gradients, centers, alpha, initial


@given(consensus_cases())
@settings(max_examples=30, deadline=None)
def test_extra_fixed_point_is_the_consensual_optimum(case):
    """If x starts AT the optimum (consensual, zero aggregate gradient), a few
    EXTRA steps keep it there."""
    weights, gradients, centers, alpha, _ = case
    n, dim = centers.shape
    optimum = np.tile(centers.mean(axis=0), (n, 1))
    # Build an engine over the *centered* gradients so the aggregate gradient
    # is exactly zero at the optimum (each local gradient is not).
    engine = ExtraIteration(weights, gradients, alpha)
    state = engine.initialize(optimum)
    engine.step(state)
    # One step may move (local gradients nonzero), but the column mean of the
    # movement is governed by the mean gradient, which is zero:
    np.testing.assert_allclose(
        state.current.mean(axis=0), optimum[0], atol=1e-10
    )


@given(consensus_cases())
@settings(max_examples=30, deadline=None)
def test_extra_first_step_mean_follows_mean_gradient(case):
    """Mass conservation: mean(x^1) = mean(x^0) - alpha * mean(grad)."""
    weights, gradients, centers, alpha, initial = case
    engine = ExtraIteration(weights, gradients, alpha)
    state = engine.initialize(initial)
    mean_gradient = engine.gradients(initial).mean(axis=0)
    engine.step(state)
    np.testing.assert_allclose(
        state.current.mean(axis=0),
        initial.mean(axis=0) - alpha * mean_gradient,
        atol=1e-10,
    )


@given(consensus_cases())
@settings(max_examples=30, deadline=None)
def test_gradient_tracking_invariant_holds_for_any_case(case):
    weights, gradients, _, alpha, initial = case
    engine = GradientTrackingIteration(weights, gradients, alpha)
    state = engine.initialize(initial)
    for _ in range(5):
        engine.step(state)
        np.testing.assert_allclose(
            state.tracker.mean(axis=0),
            engine.gradients(state.current).mean(axis=0),
            atol=1e-9,
        )


@given(consensus_cases())
@settings(max_examples=30, deadline=None)
def test_dgd_with_zero_gradients_is_pure_averaging(case):
    """With f_i ≡ const, DGD reduces to x <- W x: consensus error contracts
    and the column mean is preserved."""
    weights, _, centers, alpha, initial = case
    n = centers.shape[0]
    zero_gradients = [lambda x: np.zeros_like(x) for _ in range(n)]
    engine = DGDIteration(weights, zero_gradients, alpha)
    state = engine.run(initial.copy(), 10)
    np.testing.assert_allclose(
        state.current.mean(axis=0), initial.mean(axis=0), atol=1e-9
    )
    from repro.consensus.convergence import consensus_error

    assert consensus_error(state.current) <= consensus_error(initial) + 1e-12
