"""Property-based tests for model invariants (convexity, regularization)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.models.logistic import LogisticRegression
from repro.models.ridge import RidgeRegression
from repro.models.svm import LinearSVM


@st.composite
def convex_model_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    kind = draw(st.sampled_from(["svm", "logistic", "ridge"]))
    rng = np.random.default_rng(seed)
    n, p = 25, 4
    X = rng.normal(size=(n, p))
    if kind == "svm":
        model = LinearSVM(p, regularization=0.01)
        y = rng.choice([-1.0, 1.0], size=n)
    elif kind == "logistic":
        model = LogisticRegression(p, regularization=0.01)
        y = rng.choice([0.0, 1.0], size=n)
    else:
        model = RidgeRegression(p, regularization=0.01)
        y = rng.normal(size=n)
    a = rng.normal(size=model.n_params)
    b = rng.normal(size=model.n_params)
    t = draw(st.floats(0.0, 1.0))
    return model, X, y, a, b, t


@given(convex_model_cases())
@settings(max_examples=60, deadline=None)
def test_losses_are_convex(case):
    """f(t a + (1-t) b) <= t f(a) + (1-t) f(b) for the three convex models."""
    model, X, y, a, b, t = case
    left = model.loss(t * a + (1 - t) * b, X, y)
    right = t * model.loss(a, X, y) + (1 - t) * model.loss(b, X, y)
    assert left <= right + 1e-8 * max(1.0, abs(right))


@given(convex_model_cases())
@settings(max_examples=60, deadline=None)
def test_gradient_defines_a_supporting_hyperplane(case):
    """First-order convexity: f(b) >= f(a) + <grad f(a), b - a>."""
    model, X, y, a, b, _ = case
    fa = model.loss(a, X, y)
    fb = model.loss(b, X, y)
    grad = model.gradient(a, X, y)
    assert fb >= fa + grad @ (b - a) - 1e-8 * max(1.0, abs(fb))


@given(convex_model_cases())
@settings(max_examples=30, deadline=None)
def test_losses_are_finite(case):
    model, X, y, a, _b, _t = case
    assert np.isfinite(model.loss(a, X, y))
    assert np.all(np.isfinite(model.gradient(a, X, y)))
