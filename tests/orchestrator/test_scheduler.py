"""Slot scheduling: lowest-free-slot assignment, shards, neighbor sets."""

from __future__ import annotations

import pytest

from repro.exceptions import OrchestratorError
from repro.orchestrator import SlotScheduler
from repro.topology.graph import Topology


def ring(n: int) -> Topology:
    return Topology(n, [(i, (i + 1) % n) for i in range(n)])


class TestAssignment:
    def test_lowest_free_slot_first(self):
        scheduler = SlotScheduler(4)
        assert scheduler.assign("a") == 0
        assert scheduler.assign("b") == 1
        assert scheduler.assign("c") == 2

    def test_released_slot_is_reused_before_higher_ones(self):
        scheduler = SlotScheduler(4)
        for device in ("a", "b", "c"):
            scheduler.assign(device)
        scheduler.release("a")
        assert scheduler.assign("d") == 0  # not 3
        assert scheduler.assign("e") == 3

    def test_full_fleet_rejected(self):
        scheduler = SlotScheduler(2)
        scheduler.assign("a")
        scheduler.assign("b")
        with pytest.raises(OrchestratorError, match="full"):
            scheduler.assign("c")

    def test_double_assignment_rejected(self):
        scheduler = SlotScheduler(2)
        scheduler.assign("a")
        with pytest.raises(OrchestratorError, match="already holds"):
            scheduler.assign("a")

    def test_release_of_unknown_device_rejected(self):
        scheduler = SlotScheduler(2)
        with pytest.raises(OrchestratorError, match="holds no slot"):
            scheduler.release("ghost")

    def test_queries_track_the_assignment(self):
        scheduler = SlotScheduler(3)
        scheduler.assign("a")
        scheduler.assign("b")
        assert scheduler.slot_of("b") == 1
        assert scheduler.device_of(1) == "b"
        assert scheduler.device_of(2) is None
        assert scheduler.occupied_slots() == frozenset({0, 1})
        assert scheduler.free_slots() == 1
        assert scheduler.assignments() == {"a": 0, "b": 1}


class TestShardsAndNeighbors:
    def test_shard_is_the_slot(self):
        scheduler = SlotScheduler(3)
        assert [scheduler.shard_for(s) for s in range(3)] == [0, 1, 2]

    def test_out_of_range_shard_rejected(self):
        scheduler = SlotScheduler(3)
        with pytest.raises(OrchestratorError):
            scheduler.shard_for(3)

    def test_neighbor_set_comes_from_the_base_topology(self):
        scheduler = SlotScheduler(4, base_topology=ring(4))
        assert set(scheduler.neighbor_set(0)) == {1, 3}

    def test_no_base_topology_means_no_neighbors(self):
        assert SlotScheduler(4).neighbor_set(0) == ()

    def test_capacity_topology_mismatch_rejected(self):
        with pytest.raises(OrchestratorError):
            SlotScheduler(5, base_topology=ring(4))

    def test_bad_capacity_rejected(self):
        with pytest.raises(OrchestratorError):
            SlotScheduler(0)


class TestDropCandidates:
    def test_edges_incident_to_leaving_slots(self):
        scheduler = SlotScheduler(5)
        topology = ring(5)
        candidates = scheduler.drop_candidates(topology, {0})
        assert candidates == ((0, 1), (0, 4))

    def test_multiple_leavers_deduplicate_shared_edges(self):
        scheduler = SlotScheduler(5)
        topology = ring(5)
        candidates = scheduler.drop_candidates(topology, {0, 1})
        assert candidates == ((0, 1), (0, 4), (1, 2))

    def test_no_leavers_no_candidates(self):
        scheduler = SlotScheduler(5)
        assert scheduler.drop_candidates(ring(5), frozenset()) == ()
