"""Shared fixtures for the fleet control-plane suite.

Time-dependent pieces (registry heartbeats, monitor sweeps) are tested
against an injected fake clock, never by sleeping; only the HTTP and
end-to-end suites touch real sockets and threads.
"""

from __future__ import annotations

import pytest

from repro.orchestrator import DeviceRegistry, HeartbeatMonitor


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, start: float = 100.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += float(seconds)
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry(clock):
    return DeviceRegistry(clock=clock)


@pytest.fixture
def monitor(registry, clock):
    return HeartbeatMonitor(
        registry, interval_s=1.0, evict_after_misses=3, clock=clock
    )
