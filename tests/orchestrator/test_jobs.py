"""Training jobs: enrollment, tenancy, and per-round membership decisions.

The decision machinery is exercised here against a *fake* runtime (a stub
carrying exactly the trainer surface ``TrainingJob`` reads: topology,
optimized weights, config, byte tracker), so every state transition is
deterministic and socket-free. The real-testbed path is the chaos-marked
end-to-end suite.
"""

from __future__ import annotations

import pytest

from repro.core.config import SNAPConfig
from repro.exceptions import ConfigurationError, OrchestratorError
from repro.orchestrator import JobManager, JobState
from repro.topology.graph import Topology
from repro.weights.optimizer import optimize_weight_matrix


def ring(n: int) -> Topology:
    return Topology(n, [(i, (i + 1) % n) for i in range(n)])


def complete(n: int) -> Topology:
    return Topology(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


class FakeTracker:
    def __init__(self):
        self.total_bytes = 0
        self.total_cost = 0

    def stage_bytes(self):
        return {}


class FakeTrainer:
    def __init__(self, topology):
        self.topology = topology
        self._weight_result = optimize_weight_matrix(topology, iterations=60)
        self._topology_controller = None
        self.config = SNAPConfig(optimize_weights=True)
        self.tracker = FakeTracker()


class FakeRuntime:
    def __init__(self, topology, ports=None):
        self.trainer = FakeTrainer(topology)
        self.ports = dict(ports or {})
        self.nodes = ()


@pytest.fixture
def manager(clock):
    return JobManager(heartbeat_s=1.0, evict_after_misses=3, clock=clock)


def enroll_devices(manager, job, count):
    device_ids = []
    for i in range(count):
        response = manager.register_device(f"edge-{i}", job_id=job.job_id)
        device_ids.append(response["device_id"])
    return device_ids


class TestEnrollment:
    def test_enroll_assigns_slot_shard_and_neighbors(self, manager):
        job = manager.create_job("train", capacity=4)
        response = manager.register_device("edge-0", job_id=job.job_id)
        assignment = response["assignment"]
        assert assignment["slot"] == 0
        assert assignment["shard"] == 0
        assert assignment["job_id"] == job.job_id
        assert job.enrolled_devices() == {response["device_id"]: 0}

    def test_enrolling_a_dead_device_rejected(self, manager):
        job = manager.create_job("train", capacity=4)
        record = manager.registry.register("edge-0")
        manager.registry.leave(record.device_id)
        with pytest.raises(OrchestratorError, match="re-register"):
            job.enroll(record.device_id)

    def test_enrolling_into_a_stopped_job_rejected(self, manager):
        job = manager.create_job("train", capacity=4)
        record = manager.registry.register("edge-0")
        job.stop("done")
        with pytest.raises(OrchestratorError, match="stopped"):
            job.enroll(record.device_id)

    def test_job_ids_are_sequential(self, manager):
        assert manager.create_job("a", capacity=2).job_id == "job-0001"
        assert manager.create_job("b", capacity=2).job_id == "job-0002"
        with pytest.raises(OrchestratorError):
            manager.get_job("job-0404")

    def test_bad_bytes_budget_rejected(self, manager):
        with pytest.raises(OrchestratorError):
            manager.create_job("train", capacity=2, bytes_budget=0)


class TestTenancy:
    def test_jobs_share_the_fleet_but_not_slots(self, manager):
        job_a = manager.create_job("a", capacity=4)
        job_b = manager.create_job("b", capacity=4)
        record = manager.registry.register("edge-0")
        # One fleet registration, one enrollment (and slot) per job.
        assert job_a.enroll(record.device_id)["slot"] == 0
        assert job_b.enroll(record.device_id)["slot"] == 0
        other = manager.registry.register("edge-1")
        assert job_a.enroll(other.device_id)["slot"] == 1
        assert len(manager.registry) == 2
        assert job_a.enrolled_devices() != job_b.enrolled_devices()

    def test_leave_withdraws_from_every_enrolled_job(self, manager):
        job_a = manager.create_job("a", capacity=4)
        job_b = manager.create_job("b", capacity=4)
        record = manager.registry.register("edge-0")
        job_a.enroll(record.device_id)
        job_b.enroll(record.device_id)
        response = manager.leave_device(record.device_id)
        assert response["withdrawn_slots"] == {
            job_a.job_id: 0,
            job_b.job_id: 0,
        }
        assert job_a.enrolled_devices() == {}
        assert job_b.enrolled_devices() == {}

    def test_heartbeat_eviction_propagates_to_jobs(self, manager, clock):
        job = manager.create_job("train", capacity=4)
        device_ids = enroll_devices(manager, job, 2)
        manager.registry.heartbeat(device_ids[1])
        clock.advance(10.0)
        manager.registry.heartbeat(device_ids[1])
        evicted = manager.monitor.sweep()
        assert evicted == (device_ids[0],)
        assert job.enrolled_devices() == {device_ids[1]: 1}


class TestBinding:
    def test_bind_requires_matching_capacity(self, manager):
        job = manager.create_job("train", capacity=5)
        with pytest.raises(ConfigurationError, match="capacity"):
            job.bind_runtime(FakeRuntime(ring(4)))

    def test_bind_requires_optimized_weights(self, manager):
        job = manager.create_job("train", capacity=4)
        runtime = FakeRuntime(ring(4))
        runtime.trainer._weight_result = None
        with pytest.raises(ConfigurationError, match="optimize_weights"):
            job.bind_runtime(runtime)

    def test_double_bind_rejected(self, manager):
        job = manager.create_job("train", capacity=4)
        job.bind_runtime(FakeRuntime(ring(4)))
        with pytest.raises(OrchestratorError, match="already bound"):
            job.bind_runtime(FakeRuntime(ring(4)))

    def test_bind_publishes_enrolled_ports(self, manager):
        job = manager.create_job("train", capacity=4)
        device_ids = enroll_devices(manager, job, 2)
        job.bind_runtime(FakeRuntime(ring(4), ports={0: 40001, 1: 40002}))
        assert job.state is JobState.BOUND
        assert manager.registry.get(device_ids[0]).port == 40001
        assert manager.registry.get(device_ids[1]).port == 40002

    def test_enroll_after_bind_hands_out_the_slot_port(self, manager):
        job = manager.create_job("train", capacity=4)
        job.bind_runtime(FakeRuntime(ring(4), ports={0: 40001}))
        response = manager.register_device("edge-0", job_id=job.job_id)
        assert response["assignment"]["port"] == 40001
        assert manager.registry.get(response["device_id"]).port == 40001

    def test_decide_before_bind_rejected(self, manager):
        job = manager.create_job("train", capacity=4)
        with pytest.raises(OrchestratorError, match="not bound"):
            job.decide(1)


class TestDecisions:
    """The per-round membership state machine, on a 4-slot complete graph.

    K4 gives every slot degree 3, so the connectivity guard has room to
    act without blocking the whole prune (a leaver always keeps exactly
    one algorithmic link).
    """

    def bound_job(self, manager, devices=3, capacity=4, **kwargs):
        job = manager.create_job("train", capacity=capacity, **kwargs)
        device_ids = enroll_devices(manager, job, devices)
        runtime = FakeRuntime(complete(capacity))
        job.bind_runtime(runtime)
        return job, device_ids, runtime

    def test_bring_up_idles_and_prunes_empty_slots(self, manager):
        job, _, _ = self.bound_job(manager, devices=3)
        decision = job.decide(1)
        assert decision.reason == "bring-up"
        assert decision.active == frozenset({0, 1, 2})
        assert not decision.stop
        # Slot 3's links are forced into the prune, connectivity-guarded:
        # of its three K4 edges exactly one survives (an isolated node
        # would disconnect the graph) and slot 3 is reweighted away at
        # mixing time.
        assert decision.swap is not None
        assert len(decision.swap.pruned_edges) == 2
        assert all(3 in edge for edge in decision.swap.pruned_edges)
        assert job.active_slots() == frozenset({0, 1, 2})

    def test_steady_rounds_are_swap_free(self, manager):
        job, _, _ = self.bound_job(manager, devices=3)
        job.decide(1)
        decision = job.decide(2)
        assert decision.reason == "steady"
        assert decision.swap is None
        assert decision.active == frozenset({0, 1, 2})

    def test_join_reoccupies_the_slot_and_readds_its_links(self, manager):
        job, _, _ = self.bound_job(manager, devices=3)
        pruned = job.decide(1).swap.pruned_edges
        joiner = manager.register_device("edge-late", job_id=job.job_id)
        assert joiner["assignment"]["slot"] == 3
        decision = job.decide(2)
        assert decision.reason == "membership"
        assert decision.active == frozenset({0, 1, 2, 3})
        assert decision.swap is not None
        assert set(decision.swap.added_edges) == set(pruned)

    def test_leave_frees_the_slot_and_drops_its_links(self, manager):
        job, device_ids, _ = self.bound_job(manager, devices=3)
        job.decide(1)
        manager.leave_device(device_ids[2])
        decision = job.decide(2)
        assert decision.reason == "membership"
        assert decision.active == frozenset({0, 1})
        assert decision.swap is not None
        assert decision.swap.pruned_edges  # the leaver sheds links...
        assert all(2 in edge for edge in decision.swap.pruned_edges)
        # ...but the guard leaves it at least one, so the graph stays whole.
        assert decision.swap.topology.is_connected()
        assert len(decision.swap.topology.neighbors(2)) >= 1

    def test_join_and_leave_between_rounds_cancel(self, manager):
        job, _, _ = self.bound_job(manager, devices=3)
        job.decide(1)
        flapper = manager.register_device("edge-flap", job_id=job.job_id)
        manager.leave_device(flapper["device_id"])
        decision = job.decide(2)
        assert decision.reason == "steady"
        assert decision.active == frozenset({0, 1, 2})

    def test_scheduled_callbacks_fire_before_their_round(self, manager):
        job, _, _ = self.bound_job(manager, devices=3)
        fired = []
        job.schedule(2, lambda: fired.append("now"))
        job.decide(1)
        assert fired == []
        job.decide(2)
        assert fired == ["now"]

    def test_bytes_budget_stops_the_run(self, manager):
        job, _, runtime = self.bound_job(manager, devices=3, bytes_budget=100)
        assert not job.decide(1).stop
        runtime.trainer.tracker.total_bytes = 150
        decision = job.decide(2)
        assert decision.stop
        assert decision.reason == "bytes budget exhausted"
        assert job.state is JobState.STOPPED

    def test_api_stop_wins_at_the_next_boundary(self, manager):
        job, _, _ = self.bound_job(manager, devices=3)
        job.decide(1)
        job.stop("operator said so")
        decision = job.decide(2)
        assert decision.stop
        assert decision.reason == "operator said so"

    def test_snapshot_reports_the_decided_state(self, manager):
        job, _, _ = self.bound_job(manager, devices=3)
        job.decide(1)
        snapshot = job.snapshot()
        assert snapshot["state"] == "bound"
        assert snapshot["active_slots"] == [0, 1, 2]
        assert snapshot["rounds_decided"] == 1
        assert snapshot["topology"]["swaps"] == 1
        assert snapshot["bytes"] == {"total": 0, "cost": 0, "stages": {}}
