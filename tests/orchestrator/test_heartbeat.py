"""Heartbeat monitoring: miss accrual, suspicion, and eviction."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import OrchestratorError
from repro.orchestrator import (
    DeviceRegistry,
    DeviceState,
    HeartbeatMonitor,
)


class TestSweep:
    def test_fresh_devices_are_untouched(self, registry, monitor):
        record = registry.register("edge-a")
        assert monitor.sweep() == ()
        assert record.state is DeviceState.ACTIVE

    def test_misses_charge_one_per_full_interval(self, registry, monitor, clock):
        record = registry.register("edge-a")
        clock.advance(2.5)  # two full 1s intervals elapsed
        assert monitor.sweep() == ()
        assert record.state is DeviceState.SUSPECT
        assert record.missed_heartbeats == 2

    def test_eviction_at_the_threshold(self, registry, monitor, clock):
        record = registry.register("edge-a")
        clock.advance(3.0)  # exactly evict_after_misses intervals
        assert monitor.sweep() == (record.device_id,)
        assert record.state is DeviceState.EVICTED
        assert record.missed_heartbeats == 3

    def test_heartbeat_between_sweeps_resets_the_clock(
        self, registry, monitor, clock
    ):
        record = registry.register("edge-a")
        clock.advance(2.0)
        monitor.sweep()
        assert record.state is DeviceState.SUSPECT
        registry.heartbeat(record.device_id)
        clock.advance(0.5)
        monitor.sweep()
        assert record.state is DeviceState.ACTIVE
        assert record.missed_heartbeats == 0

    def test_terminal_devices_are_not_reswept(self, registry, monitor, clock):
        record = registry.register("edge-a")
        registry.leave(record.device_id)
        clock.advance(100.0)
        assert monitor.sweep() == ()
        assert record.state is DeviceState.LEFT


class TestListeners:
    def test_listeners_hear_each_eviction_batch(self, registry, monitor, clock):
        heard = []
        monitor.add_listener(heard.append)
        a = registry.register("edge-a")
        b = registry.register("edge-b")
        clock.advance(10.0)
        evicted = monitor.sweep()
        assert set(evicted) == {a.device_id, b.device_id}
        assert heard == [evicted]
        assert monitor.evictions_total == 2

    def test_quiet_sweeps_do_not_notify(self, registry, monitor):
        heard = []
        monitor.add_listener(heard.append)
        registry.register("edge-a")
        monitor.sweep()
        assert heard == []
        assert monitor.sweeps == 1


class TestValidationAndBackground:
    @pytest.mark.parametrize("interval", [0.0, -1.0])
    def test_bad_interval_rejected(self, registry, interval):
        with pytest.raises(OrchestratorError):
            HeartbeatMonitor(registry, interval_s=interval)

    def test_bad_miss_threshold_rejected(self, registry):
        with pytest.raises(OrchestratorError):
            HeartbeatMonitor(registry, evict_after_misses=0)

    def test_background_sweeper_evicts_a_silent_device(self):
        # The one wall-clock test: a real daemon sweeper on a tight period
        # must evict a device that never heartbeats.
        registry = DeviceRegistry()
        monitor = HeartbeatMonitor(
            registry, interval_s=0.02, evict_after_misses=2
        )
        record = registry.register("edge-silent")
        monitor.start()
        try:
            deadline = time.monotonic() + 5.0
            while record.live and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            monitor.stop()
        assert record.state is DeviceState.EVICTED
        assert monitor.sweeps > 0
