"""/metrics rendering and its parsing inverse."""

from __future__ import annotations

import pytest

from repro.orchestrator import JobManager
from repro.orchestrator.metrics import parse_metrics, render_metrics


@pytest.fixture
def manager(clock):
    return JobManager(heartbeat_s=1.0, evict_after_misses=3, clock=clock)


def series(parsed, name, **labels):
    return parsed[name][frozenset(labels.items())]


class TestRender:
    def test_fleet_counters_reflect_the_registry(self, manager, clock):
        manager.registry.register("edge-a")
        stale = manager.registry.register("edge-b")
        clock.advance(10.0)
        manager.registry.heartbeat("dev-0001")
        manager.monitor.sweep()
        parsed = parse_metrics(render_metrics(manager))
        assert series(parsed, "fleet_devices", state="active") == 1
        assert series(parsed, "fleet_devices", state="evicted") == 1
        assert series(parsed, "heartbeat_sweeps_total") == 1
        assert series(parsed, "heartbeat_evictions_total") == 1
        assert series(parsed, "heartbeat_interval_seconds") == 1.0
        assert stale.state.value == "evicted"

    def test_unbound_job_exports_control_plane_gauges_only(self, manager):
        job = manager.create_job("train", capacity=8, bytes_budget=4096)
        parsed = parse_metrics(render_metrics(manager))
        assert series(parsed, "job_capacity", job=job.job_id) == 8
        assert series(parsed, "job_active_slots", job=job.job_id) == 0
        assert series(parsed, "job_rounds_decided", job=job.job_id) == 0
        assert series(parsed, "job_bytes_budget", job=job.job_id) == 4096
        # No runtime bound yet: no byte/staleness series to export.
        assert "job_bytes_total" not in parsed
        assert "job_link_staleness_total" not in parsed

    def test_output_ends_with_a_newline(self, manager):
        assert render_metrics(manager).endswith("\n")


class TestParse:
    def test_labels_values_and_comments(self):
        text = (
            "# a comment\n"
            'fleet_devices{state="active"} 3\n'
            "heartbeat_interval_seconds 0.25\n"
            'job_stage_bytes_total{job="job-0001",stage="testbed"} 42680\n'
        )
        parsed = parse_metrics(text)
        assert series(parsed, "fleet_devices", state="active") == 3
        assert series(parsed, "heartbeat_interval_seconds") == 0.25
        assert (
            series(
                parsed, "job_stage_bytes_total", job="job-0001", stage="testbed"
            )
            == 42680
        )

    def test_round_trips_every_rendered_line(self, manager):
        manager.registry.register("edge-a")
        manager.create_job("train", capacity=4)
        text = render_metrics(manager)
        parsed = parse_metrics(text)
        rendered_metric_lines = [
            line
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(rendered_metric_lines) == sum(
            len(by_labels) for by_labels in parsed.values()
        )
