"""End-to-end elastic fleets over the real TCP testbed (chaos tier).

One orchestrated run is shared by the whole join/leave class: a 6-slot
fleet brought up with 5 devices, one device joining at round 7 and one
leaving at round 12 — both over the live HTTP API — with strict invariant
monitors armed. The acceptance bars from the issue are asserted directly:
the run never aborts, churn triggers warm-started re-solves (including a
link re-add for the joiner), the final accuracy lands within 2 points of a
static-fleet run, and /metrics agrees with the in-process cost tracker.
"""

from __future__ import annotations

import threading

import pytest

from repro.orchestrator import (
    JobManager,
    OrchestratedMembership,
    default_fleet_config,
    run_elastic_fleet,
)
from repro.orchestrator.metrics import parse_metrics, render_metrics
from repro.runtime.testbed import TestbedRuntime
from repro.simulation.experiments import credit_svm_workload

ROUNDS = 20
JOIN_AT = 7
LEAVE_AT = 12


@pytest.fixture(scope="module")
def elastic_report():
    return run_elastic_fleet(
        n_slots=6,
        initial_devices=5,
        rounds=ROUNDS,
        join_at=JOIN_AT,
        leave_at=LEAVE_AT,
        heartbeats=False,  # deterministic: no wall-clock sweeps in the loop
        static_baseline=True,
        seed=0,
        n_train=900,
        n_test=450,
    )


def metric(parsed, name, **labels):
    return parsed[name][frozenset(labels.items())]


@pytest.mark.chaos
class TestElasticJoinLeave:
    def test_churn_never_aborts_the_run(self, elastic_report):
        assert elastic_report.result.n_rounds == ROUNDS
        assert not any(d.stop for d in elastic_report.decisions)
        assert elastic_report.job_status["state"] == "bound"
        assert elastic_report.job_status["stop_reason"] is None

    def test_membership_changes_trigger_warm_resolves(self, elastic_report):
        reasons = [d.reason for d in elastic_report.decisions if d.swap]
        assert reasons[0] == "bring-up"
        assert reasons.count("membership") == 2  # the join and the leave
        assert elastic_report.swaps == 3
        # Every membership re-solve warm-starts from the previous solution.
        assert all(
            swap.solver_steps > 0 for swap in elastic_report.job.controller.swaps
        )

    def test_join_readds_previously_pruned_links(self, elastic_report):
        assert elastic_report.readded_edges >= 1
        join_swaps = [
            d.swap
            for d in elastic_report.decisions
            if d.swap is not None and d.swap.added_edges
        ]
        assert join_swaps
        # The joiner occupied the bring-up-idled slot 5.
        assert all(
            5 in edge for swap in join_swaps for edge in swap.added_edges
        )

    def test_final_fleet_shape(self, elastic_report):
        # 5 initial + 1 join - 1 leave (the highest occupied slot, 4).
        assert sorted(elastic_report.active_slots) == [0, 1, 2, 3, 5]
        assert len(elastic_report.device_ids) == 6

    def test_every_layer_agrees_after_the_swaps(self, elastic_report):
        runtime = elastic_report.runtime
        topology = elastic_report.job.controller.topology
        for node in runtime.nodes:
            server = node.server
            assert set(server.neighbors) == set(
                topology.neighbors(server.node_id)
            )
            assert set(server.views) == set(server.neighbors)
            assert set(server.last_sent) == set(server.neighbors)
            # Algorithm links only ever shrink/regrow inside the wired set.
            assert set(server.neighbors) <= set(node.link_peers)

    def test_accuracy_within_two_points_of_static_fleet(self, elastic_report):
        assert elastic_report.static_accuracy is not None
        gap = abs(elastic_report.final_accuracy - elastic_report.static_accuracy)
        assert gap <= 0.02

    def test_metrics_endpoint_matches_the_cost_tracker(self, elastic_report):
        parsed = parse_metrics(elastic_report.metrics_text)
        job_id = elastic_report.job_id
        tracker = elastic_report.runtime.trainer.tracker
        assert metric(parsed, "job_bytes_total", job=job_id) == int(
            tracker.total_bytes
        )
        assert metric(
            parsed, "job_stage_bytes_total", job=job_id, stage="testbed"
        ) == int(tracker.total_bytes)
        assert metric(parsed, "job_topology_swaps", job=job_id) == 3
        assert metric(parsed, "job_active_slots", job=job_id) == 5
        assert (
            metric(parsed, "job_bytes_total", job=job_id)
            == elastic_report.job_status["bytes"]["total"]
        )


@pytest.mark.chaos
class TestConcurrentJobs:
    def test_two_jobs_share_the_fleet_with_isolated_state(self):
        manager = JobManager(heartbeat_s=1.0, evict_after_misses=3)
        job_a = manager.create_job("tenant-a", capacity=4)
        job_b = manager.create_job("tenant-b", capacity=4, bytes_budget=4_000)

        # One fleet: each device registers once and enrolls in both jobs.
        for i in range(4):
            record = manager.registry.register(f"edge-{i:02d}")
            job_a.enroll(record.device_id)
            job_b.enroll(record.device_id)
        assert len(manager.registry) == 4
        assert job_a.enrolled_devices() == job_b.enrolled_devices()

        runtimes = {}
        for job, seed in ((job_a, 0), (job_b, 1)):
            workload = credit_svm_workload(
                n_servers=4,
                average_degree=3.0,
                n_train=240,
                n_test=120,
                seed=seed,
            )
            runtimes[job.job_id] = TestbedRuntime(
                workload.model,
                workload.shards,
                workload.topology,
                config=default_fleet_config(seed=seed),
                membership=OrchestratedMembership(job),
                round_deadline_s=5.0,
            )

        results, errors = {}, {}

        def run(job_id):
            try:
                results[job_id] = runtimes[job_id].run(8)
            except Exception as error:  # noqa: BLE001 - reported below
                errors[job_id] = error

        threads = [
            threading.Thread(target=run, args=(job_id,), daemon=True)
            for job_id in runtimes
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == {}
        assert set(results) == {job_a.job_id, job_b.job_id}

        # The unbudgeted tenant runs to completion; the budgeted one stops
        # at the boundary where its own (and only its own) spend crossed.
        assert results[job_a.job_id].n_rounds == 8
        assert job_a.snapshot()["stop_reason"] is None
        assert job_b.snapshot()["stop_reason"] == "bytes budget exhausted"
        assert results[job_b.job_id].n_rounds < 8

        # Byte accounting is per job, and /metrics keeps them apart.
        bytes_a = runtimes[job_a.job_id].trainer.tracker.total_bytes
        bytes_b = runtimes[job_b.job_id].trainer.tracker.total_bytes
        assert bytes_a > bytes_b
        parsed = parse_metrics(render_metrics(manager))
        assert metric(parsed, "job_bytes_total", job=job_a.job_id) == int(bytes_a)
        assert metric(parsed, "job_bytes_total", job=job_b.job_id) == int(bytes_b)
        assert metric(parsed, "job_bytes_budget", job=job_b.job_id) == 4_000
