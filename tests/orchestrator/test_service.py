"""The HTTP API round trip: service, client, and error mapping."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import OrchestratorError
from repro.orchestrator import (
    HeartbeatSender,
    JobManager,
    OrchestratorClient,
    OrchestratorService,
)


@pytest.fixture
def service():
    # start_monitor=False: nothing here should depend on wall-clock sweeps.
    with OrchestratorService(JobManager(), start_monitor=False) as svc:
        yield svc


@pytest.fixture
def client(service):
    return OrchestratorClient(service.url)


class TestDeviceLifecycle:
    def test_register_heartbeat_leave_round_trip(self, client):
        response = client.register("edge-00", capabilities={"cpu_cores": 2})
        device_id = response["device_id"]
        assert response["state"] == "active"
        assert response["heartbeat_s"] > 0

        beat = client.heartbeat(device_id)
        assert beat == {
            "device_id": device_id,
            "state": "active",
            "missed_heartbeats": 0,
        }

        gone = client.leave(device_id)
        assert gone["state"] == "left"
        assert gone["withdrawn_slots"] == {}

    def test_register_with_job_enrolls_in_one_call(self, client, service):
        job = service.manager.create_job("train", capacity=4)
        response = client.register("edge-00", job=job.job_id)
        assignment = response["assignment"]
        assert assignment["job_id"] == job.job_id
        assert assignment["slot"] == 0
        assert job.enrolled_devices() == {response["device_id"]: 0}

    def test_publish_port_lands_in_the_fleet_snapshot(self, client):
        device_id = client.register("edge-00")["device_id"]
        client.publish_port(device_id, 43210)
        fleet = client.fleet()
        (record,) = fleet["fleet"]["devices"]
        assert record["port"] == 43210
        assert fleet["heartbeat"]["evict_after_misses"] > 0


class TestObservability:
    def test_job_status_and_listing(self, client, service):
        job = service.manager.create_job("train", capacity=4)
        listing = client.jobs()
        assert [j["job_id"] for j in listing["jobs"]] == [job.job_id]
        status = client.job_status(job.job_id)
        assert status["capacity"] == 4
        assert status["state"] == "created"

    def test_metrics_is_plain_text(self, client):
        client.register("edge-00")
        text = client.metrics()
        assert isinstance(text, str)
        assert 'fleet_devices{state="active"} 1' in text


class TestErrorMapping:
    def test_unknown_device_is_a_400(self, client):
        with pytest.raises(OrchestratorError, match="400"):
            client.heartbeat("dev-0404")

    def test_unknown_job_is_a_400(self, client):
        with pytest.raises(OrchestratorError, match="400"):
            client.job_status("job-0404")

    def test_missing_field_is_a_400(self, client):
        with pytest.raises(OrchestratorError, match="missing required field"):
            client._request("POST", "/heartbeat", {})

    def test_unknown_endpoint_is_a_404(self, client):
        with pytest.raises(OrchestratorError, match="404"):
            client._request("GET", "/nope")

    def test_invalid_json_is_a_400(self, service):
        import urllib.request

        request = urllib.request.Request(
            f"{service.url}/register",
            data=b"not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 400


class TestService:
    def test_ephemeral_port_is_bound_and_published(self):
        service = OrchestratorService(JobManager(), start_monitor=False)
        try:
            assert service.port > 0
            assert service.url.endswith(str(service.port))
        finally:
            service.stop()

    def test_two_services_coexist_on_one_host(self):
        with OrchestratorService(JobManager(), start_monitor=False) as a:
            with OrchestratorService(JobManager(), start_monitor=False) as b:
                assert a.port != b.port
                OrchestratorClient(a.url).register("edge-a")
                OrchestratorClient(b.url).register("edge-b")
                assert len(a.manager.registry) == 1
                assert len(b.manager.registry) == 1


class TestHeartbeatSender:
    def test_beats_until_the_device_leaves(self, client):
        device_id = client.register("edge-00")["device_id"]
        sender = HeartbeatSender(client, device_id, interval_s=0.02).start()
        try:
            deadline = time.monotonic() + 5.0
            while sender.beats < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sender.beats >= 3
            client.leave(device_id)
            # The loop notices the terminal state and winds itself down.
            deadline = time.monotonic() + 5.0
            while (
                sender._thread is not None
                and sender._thread.is_alive()
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert not sender._thread.is_alive()
        finally:
            sender.stop()

    def test_bad_interval_rejected(self, client):
        with pytest.raises(OrchestratorError):
            HeartbeatSender(client, "dev-0001", interval_s=0.0)
