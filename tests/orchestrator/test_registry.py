"""The device registry's lifecycle state machine."""

from __future__ import annotations

import pytest

from repro.exceptions import OrchestratorError, ReproError
from repro.orchestrator import DeviceState


class TestRegister:
    def test_ids_are_sequential_and_stable(self, registry):
        first = registry.register("edge-a")
        second = registry.register("edge-b")
        assert first.device_id == "dev-0001"
        assert second.device_id == "dev-0002"
        assert registry.get("dev-0001") is first

    def test_new_device_is_active_with_a_fresh_heartbeat(self, registry, clock):
        record = registry.register("edge-a", capabilities={"cpu_cores": 4})
        assert record.state is DeviceState.ACTIVE
        assert record.live
        assert record.registered_at == clock.now
        assert record.last_heartbeat == clock.now
        assert record.capabilities == {"cpu_cores": 4}

    def test_capabilities_are_copied_not_aliased(self, registry):
        capabilities = {"cpu_cores": 4}
        record = registry.register("edge-a", capabilities=capabilities)
        capabilities["cpu_cores"] = 8
        assert record.capabilities == {"cpu_cores": 4}

    def test_empty_name_rejected(self, registry):
        with pytest.raises(OrchestratorError):
            registry.register("")

    def test_errors_derive_from_repro_error(self, registry):
        with pytest.raises(ReproError):
            registry.get("dev-9999")


class TestHeartbeat:
    def test_heartbeat_refreshes_and_clears_misses(self, registry, clock):
        record = registry.register("edge-a")
        clock.advance(5.0)
        registry.suspect(record.device_id, misses=2)
        assert record.state is DeviceState.SUSPECT
        registry.heartbeat(record.device_id)
        assert record.state is DeviceState.ACTIVE
        assert record.missed_heartbeats == 0
        assert record.last_heartbeat == clock.now

    @pytest.mark.parametrize("terminal", ["leave", "evict"])
    def test_no_resurrection_from_terminal_states(self, registry, terminal):
        record = registry.register("edge-a")
        getattr(registry, terminal)(record.device_id)
        before = record.state
        after = registry.heartbeat(record.device_id)
        assert after.state is before
        assert not after.live

    def test_unknown_device_rejected(self, registry):
        with pytest.raises(OrchestratorError):
            registry.heartbeat("dev-0404")


class TestTerminalStates:
    def test_leave_is_terminal(self, registry):
        record = registry.register("edge-a")
        registry.leave(record.device_id)
        assert record.state is DeviceState.LEFT
        # A second leave (or an eviction racing it) does not flip the state.
        registry.evict(record.device_id)
        assert record.state is DeviceState.LEFT

    def test_evict_records_the_miss_count(self, registry):
        record = registry.register("edge-a")
        registry.evict(record.device_id, misses=7)
        assert record.state is DeviceState.EVICTED
        assert record.missed_heartbeats == 7

    def test_suspect_only_demotes_active(self, registry):
        record = registry.register("edge-a")
        registry.leave(record.device_id)
        registry.suspect(record.device_id, misses=1)
        assert record.state is DeviceState.LEFT


class TestPorts:
    def test_publish_port_round_trips(self, registry):
        record = registry.register("edge-a")
        assert record.port is None
        registry.publish_port(record.device_id, 43210)
        assert registry.get(record.device_id).port == 43210

    @pytest.mark.parametrize("port", [0, -1, 65536, 70000])
    def test_out_of_range_ports_rejected(self, registry, port):
        record = registry.register("edge-a")
        with pytest.raises(OrchestratorError):
            registry.publish_port(record.device_id, port)


class TestQueries:
    def test_state_counts_and_live_devices(self, registry):
        a = registry.register("edge-a")
        b = registry.register("edge-b")
        c = registry.register("edge-c")
        registry.leave(b.device_id)
        registry.suspect(c.device_id, misses=1)
        counts = registry.state_counts()
        assert counts == {"active": 1, "suspect": 1, "evicted": 0, "left": 1}
        assert {r.device_id for r in registry.live_devices()} == {
            a.device_id,
            c.device_id,
        }
        assert len(registry) == 3

    def test_snapshot_is_json_safe(self, registry):
        import json

        registry.register("edge-a", capabilities={"mem_mb": 512})
        snapshot = registry.snapshot()
        assert snapshot["registered_total"] == 1
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["devices"][0]["state"] == "active"
