"""Tests for repro.network.cost.CommunicationCostTracker."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.network.cost import CommunicationCostTracker
from repro.topology.generators import ring_topology
from repro.topology.routing import all_pairs_hop_counts


class TestExplicitHops:
    def test_cost_is_bytes_times_hops(self):
        tracker = CommunicationCostTracker()
        record = tracker.record(1, 0, 1, size_bytes=100, hops=3)
        assert record.cost == 300
        assert tracker.total_cost == 300
        assert tracker.total_bytes == 100

    def test_accumulation_over_rounds(self):
        tracker = CommunicationCostTracker()
        tracker.record(1, 0, 1, 10, hops=1)
        tracker.record(1, 1, 0, 20, hops=2)
        tracker.record(2, 0, 1, 30, hops=1)
        assert tracker.round_cost(1) == 10 + 40
        assert tracker.round_cost(2) == 30
        assert tracker.round_bytes(1) == 30
        assert tracker.total_cost == 80
        assert tracker.n_flows == 3

    def test_empty_round_reports_zero(self):
        tracker = CommunicationCostTracker()
        assert tracker.round_cost(99) == 0
        assert tracker.round_bytes(99) == 0

    def test_per_round_series_sorted(self):
        tracker = CommunicationCostTracker()
        tracker.record(3, 0, 1, 5, hops=1)
        tracker.record(1, 0, 1, 7, hops=1)
        assert tracker.per_round_costs() == [(1, 7), (3, 5)]
        assert tracker.per_round_bytes() == [(1, 7), (3, 5)]

    def test_missing_hops_without_matrix_rejected(self):
        tracker = CommunicationCostTracker()
        with pytest.raises(ConfigurationError):
            tracker.record(1, 0, 1, 10)

    def test_negative_bytes_rejected(self):
        tracker = CommunicationCostTracker()
        with pytest.raises(ConfigurationError):
            tracker.record(1, 0, 1, -5, hops=1)


class TestHopMatrix:
    def test_hops_looked_up(self):
        topo = ring_topology(6)
        tracker = CommunicationCostTracker(all_pairs_hop_counts(topo))
        record = tracker.record(1, 0, 3, size_bytes=10)
        assert record.hops == 3
        assert record.cost == 30

    def test_unreachable_pair_rejected(self):
        from repro.topology.graph import Topology

        topo = Topology(4, [(0, 1), (2, 3)])
        tracker = CommunicationCostTracker(all_pairs_hop_counts(topo))
        with pytest.raises(ConfigurationError):
            tracker.record(1, 0, 2, 10)

    def test_explicit_hops_override_matrix(self):
        topo = ring_topology(6)
        tracker = CommunicationCostTracker(all_pairs_hop_counts(topo))
        record = tracker.record(1, 0, 3, 10, hops=1)
        assert record.cost == 10

    def test_records_are_immutable_snapshots(self):
        tracker = CommunicationCostTracker()
        tracker.record(1, 0, 1, 10, hops=1)
        records = tracker.records()
        assert len(records) == 1
        assert records[0].size_bytes == 10


class TestRecordMany:
    def test_aggregates_match_individual_records(self):
        batch = CommunicationCostTracker()
        loop = CommunicationCostTracker()
        sources = [0, 1, 2, 0]
        destinations = [1, 2, 0, 2]
        sizes = [10, 0, 25, 7]
        count = batch.record_many(3, sources, destinations, sizes, hops=1)
        for s, d, b in zip(sources, destinations, sizes):
            loop.record(3, s, d, b, hops=1)
        assert count == 4
        assert batch.total_bytes == loop.total_bytes
        assert batch.total_cost == loop.total_cost
        assert batch.n_flows == loop.n_flows == 4
        assert batch.per_round_costs() == loop.per_round_costs()
        assert batch.records() == loop.records()

    def test_per_flow_hops_array(self):
        tracker = CommunicationCostTracker()
        tracker.record_many(1, [0, 1], [1, 0], [10, 20], hops=[2, 3])
        assert tracker.total_cost == 10 * 2 + 20 * 3

    def test_hop_matrix_lookup(self):
        topo = ring_topology(6)
        tracker = CommunicationCostTracker(all_pairs_hop_counts(topo))
        tracker.record_many(1, [0], [3], [10])
        assert tracker.total_cost == 30

    def test_mismatched_arrays_rejected(self):
        tracker = CommunicationCostTracker()
        with pytest.raises(ConfigurationError):
            tracker.record_many(1, [0, 1], [1], [10, 20], hops=1)

    def test_negative_size_rejected(self):
        tracker = CommunicationCostTracker()
        with pytest.raises(ConfigurationError):
            tracker.record_many(1, [0], [1], [-1], hops=1)

    def test_unreachable_pair_rejected(self):
        from repro.topology.graph import Topology

        topo = Topology(4, [(0, 1), (2, 3)])
        tracker = CommunicationCostTracker(all_pairs_hop_counts(topo))
        with pytest.raises(ConfigurationError):
            tracker.record_many(1, [0], [2], [10])

    def test_aggregates_stay_plain_ints(self):
        tracker = CommunicationCostTracker()
        tracker.record_many(1, [0], [1], [10], hops=1)
        assert type(tracker.total_bytes) is int
        assert type(tracker.round_cost(1)) is int


class TestRetainRecords:
    def test_disabled_keeps_aggregates_but_not_records(self):
        tracker = CommunicationCostTracker(retain_records=False)
        tracker.record(1, 0, 1, 10, hops=1)
        tracker.record_many(2, [0, 1], [1, 0], [5, 5], hops=1)
        assert tracker.total_bytes == 20
        assert tracker.n_flows == 3
        assert tracker.round_bytes(2) == 10
        with pytest.raises(ConfigurationError):
            tracker.records()

    def test_trainer_config_controls_retention(self):
        import numpy as np

        from repro.core.config import SNAPConfig
        from repro.core.trainer import SNAPTrainer
        from repro.data.dataset import Dataset
        from repro.models.logistic import LogisticRegression

        rng = np.random.default_rng(0)
        topo = ring_topology(4)
        shards = [
            Dataset(rng.normal(size=(12, 3)), (rng.normal(size=12) > 0).astype(float))
            for _ in range(4)
        ]
        config = SNAPConfig(
            max_rounds=3, optimize_weights=False, retain_flow_records=False, seed=1
        )
        trainer = SNAPTrainer(LogisticRegression(3), shards, topo, config)
        trainer.run(stop_on_convergence=False)
        assert trainer.tracker.total_bytes > 0
        with pytest.raises(ConfigurationError):
            trainer.tracker.records()
