"""Tests for repro.network.channel.Channel."""

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.network.channel import Channel
from repro.network.cost import CommunicationCostTracker
from repro.network.messages import ParameterUpdate
from repro.topology.failures import ScheduledFailures
from repro.topology.generators import ring_topology


@pytest.fixture
def ring():
    return ring_topology(5)


def message(sender=0, round_index=1, total=10):
    return ParameterUpdate.dense(sender, round_index, np.arange(float(total)))


class TestDelivery:
    def test_successful_send_records_one_hop_cost(self, ring):
        tracker = CommunicationCostTracker()
        channel = Channel(ring, tracker)
        msg = message()
        report = channel.send(0, 1, msg)
        assert report.delivered
        assert report.size_bytes == msg.size_bytes
        assert tracker.total_cost == msg.size_bytes  # exactly 1 hop
        assert tracker.total_bytes == msg.size_bytes

    def test_non_neighbor_send_rejected(self, ring):
        channel = Channel(ring, CommunicationCostTracker())
        with pytest.raises(TopologyError):
            channel.send(0, 2, message())

    def test_failed_link_drops_without_cost(self, ring):
        tracker = CommunicationCostTracker()
        failures = ScheduledFailures({1: [(0, 1)]})
        channel = Channel(ring, tracker, failures)
        report = channel.send(0, 1, message(round_index=1))
        assert not report.delivered
        assert tracker.total_cost == 0

    def test_failure_is_bidirectional(self, ring):
        failures = ScheduledFailures({1: [(0, 1)]})
        channel = Channel(ring, CommunicationCostTracker(), failures)
        assert not channel.send(1, 0, message(sender=1, round_index=1)).delivered

    def test_failure_is_round_scoped(self, ring):
        failures = ScheduledFailures({1: [(0, 1)]})
        channel = Channel(ring, CommunicationCostTracker(), failures)
        assert not channel.send(0, 1, message(round_index=1)).delivered
        assert channel.send(0, 1, message(round_index=2)).delivered

    def test_link_up_query(self, ring):
        failures = ScheduledFailures({4: [(2, 3)]})
        channel = Channel(ring, CommunicationCostTracker(), failures)
        assert not channel.link_up(3, 2, 4)
        assert channel.link_up(2, 3, 5)
        assert channel.link_up(0, 1, 4)
