"""Tests for repro.network.timing.LinkTimingModel."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.cost import CommunicationCostTracker, FlowRecord
from repro.network.timing import GIGABIT_PER_SECOND, LinkTimingModel


def flow(src, dst, size, hops=1, round_index=1):
    return FlowRecord(round_index, src, dst, size, hops)


class TestRoundMakespan:
    def test_single_flow(self):
        model = LinkTimingModel(bandwidth_bytes_per_s=100.0, latency_s=0.5)
        assert model.round_makespan([flow(0, 1, 200)]) == pytest.approx(0.5 + 2.0)

    def test_parallel_links_take_the_max(self):
        model = LinkTimingModel(bandwidth_bytes_per_s=100.0, latency_s=0.0)
        flows = [flow(0, 1, 100), flow(2, 3, 300)]
        assert model.round_makespan(flows) == pytest.approx(3.0)

    def test_shared_link_serializes(self):
        model = LinkTimingModel(bandwidth_bytes_per_s=100.0, latency_s=0.0)
        flows = [flow(0, 1, 100), flow(0, 1, 100)]
        assert model.round_makespan(flows) == pytest.approx(2.0)

    def test_multi_hop_flow_takes_hops_times_longer(self):
        model = LinkTimingModel(bandwidth_bytes_per_s=100.0, latency_s=0.0)
        assert model.round_makespan([flow(0, 5, 100, hops=3)]) == pytest.approx(3.0)

    def test_empty_round_costs_only_compute(self):
        model = LinkTimingModel(compute_s_per_round=0.25)
        assert model.round_makespan([]) == 0.25

    def test_directed_links_are_independent(self):
        model = LinkTimingModel(bandwidth_bytes_per_s=100.0, latency_s=0.0)
        flows = [flow(0, 1, 200), flow(1, 0, 200)]
        assert model.round_makespan(flows) == pytest.approx(2.0)


class TestTotalTime:
    def test_sums_round_makespans(self):
        tracker = CommunicationCostTracker()
        tracker.record(1, 0, 1, 100, hops=1)
        tracker.record(2, 0, 1, 300, hops=1)
        model = LinkTimingModel(bandwidth_bytes_per_s=100.0, latency_s=0.0)
        assert model.total_time(tracker, 2) == pytest.approx(1.0 + 3.0)

    def test_traffic_free_rounds_still_pay_compute(self):
        tracker = CommunicationCostTracker()
        model = LinkTimingModel(compute_s_per_round=0.1)
        assert model.total_time(tracker, 5) == pytest.approx(0.5)

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            LinkTimingModel().total_time(CommunicationCostTracker(), -1)


class TestEstimateResultTime:
    def test_estimate_from_byte_trace(self):
        from repro.results import RoundRecord, TrainingResult
        import numpy as np

        result = TrainingResult(
            scheme="snap",
            rounds=[
                RoundRecord(1, 1.0, 0.0, 1000, 1000, 10),
                RoundRecord(2, 0.9, 0.0, 0, 0, 0),  # quiet round
            ],
            converged_at=None,
            final_params=np.zeros(2),
            total_bytes=1000,
            total_cost=1000,
        )
        model = LinkTimingModel(
            bandwidth_bytes_per_s=100.0, latency_s=0.5, compute_s_per_round=0.1
        )
        # round 1: 0.1 compute + 0.5 latency + 10s transfer; round 2: 0.1 only
        assert model.estimate_result_time(result) == pytest.approx(10.7)

    def test_estimate_upper_bounds_exact_timing(self):
        """The trace-only estimate serializes all traffic through one pipe,
        so it can only exceed the exact parallel makespan."""
        from repro.network.cost import CommunicationCostTracker

        tracker = CommunicationCostTracker()
        tracker.record(1, 0, 1, 600, hops=1)
        tracker.record(1, 2, 3, 400, hops=1)
        model = LinkTimingModel(bandwidth_bytes_per_s=100.0, latency_s=0.0)
        exact = model.total_time(tracker, 1)  # busiest link: 6 s

        from repro.results import RoundRecord, TrainingResult
        import numpy as np

        result = TrainingResult(
            scheme="x",
            rounds=[RoundRecord(1, 1.0, 0.0, 1000, 1000, 0)],
            converged_at=None,
            final_params=np.zeros(1),
            total_bytes=1000,
            total_cost=1000,
        )
        estimate = model.estimate_result_time(result)  # one pipe: 10 s
        assert exact <= estimate


class TestHeterogeneousOverrides:
    """Per-node compute and per-link bandwidth dicts (heterogeneous fleets)."""

    def test_uniform_defaults_pin_legacy_makespans(self):
        """Empty override dicts reproduce the historical uniform outputs
        exactly — the backward-compatibility regression pin."""
        legacy = LinkTimingModel(bandwidth_bytes_per_s=100.0, latency_s=0.5)
        explicit = LinkTimingModel(
            bandwidth_bytes_per_s=100.0,
            latency_s=0.5,
            node_compute_s={},
            link_bandwidth={},
        )
        cases = [
            [flow(0, 1, 200)],
            [flow(0, 1, 100), flow(2, 3, 300)],
            [flow(0, 1, 100), flow(0, 1, 100)],
            [flow(0, 5, 100, hops=3)],
            [],
        ]
        for flows in cases:
            assert explicit.round_makespan(flows) == legacy.round_makespan(flows)
        assert legacy.round_makespan([flow(0, 1, 200)]) == pytest.approx(2.5)
        assert legacy.round_makespan([]) == 0.0

    def test_per_node_compute_takes_the_max(self):
        """A synchronous round waits for the slowest server's gradient."""
        model = LinkTimingModel(
            bandwidth_bytes_per_s=100.0,
            latency_s=0.0,
            compute_s_per_round=0.1,
            node_compute_s={3: 1.0},
        )
        assert model.compute_time(3) == 1.0
        assert model.compute_time(0) == 0.1
        assert model.max_compute_s() == 1.0
        assert model.round_makespan([flow(0, 1, 100)]) == pytest.approx(2.0)
        assert model.round_makespan([]) == pytest.approx(1.0)

    def test_per_link_bandwidth_override(self):
        model = LinkTimingModel(
            bandwidth_bytes_per_s=100.0,
            latency_s=0.0,
            link_bandwidth={(0, 1): 10.0},
        )
        # The slow link dominates; the untouched link keeps the default.
        flows = [flow(0, 1, 100), flow(2, 3, 100)]
        assert model.round_makespan(flows) == pytest.approx(10.0)
        assert model.round_makespan([flow(2, 3, 100)]) == pytest.approx(1.0)

    def test_undirected_key_covers_both_directions(self):
        model = LinkTimingModel(
            bandwidth_bytes_per_s=100.0, link_bandwidth={(1, 4): 50.0}
        )
        assert model.bandwidth(1, 4) == 50.0
        assert model.bandwidth(4, 1) == 50.0
        directed = LinkTimingModel(
            bandwidth_bytes_per_s=100.0,
            link_bandwidth={(1, 4): 50.0, (4, 1): 25.0},
        )
        # A directed key wins over the canonical undirected one.
        assert directed.bandwidth(4, 1) == 25.0
        assert directed.bandwidth(1, 4) == 50.0

    def test_transfer_s_prices_one_frame(self):
        model = LinkTimingModel(
            bandwidth_bytes_per_s=100.0,
            latency_s=0.5,
            link_bandwidth={(0, 1): 10.0},
        )
        assert model.transfer_s(0, 1, 20) == pytest.approx(0.5 + 2.0)
        assert model.transfer_s(2, 3, 20) == pytest.approx(0.5 + 0.2)
        assert model.transfer_s(2, 3, 20, hops=2) == pytest.approx(0.5 + 0.4)

    def test_override_validation(self):
        with pytest.raises(ConfigurationError):
            LinkTimingModel(node_compute_s={0: -1.0})
        with pytest.raises(ConfigurationError):
            LinkTimingModel(node_compute_s={"a": 1.0})
        with pytest.raises(ConfigurationError):
            LinkTimingModel(link_bandwidth={(0, 1): 0.0})
        with pytest.raises(ConfigurationError):
            LinkTimingModel(link_bandwidth={(0, 1, 2): 10.0})


class TestDefaults:
    def test_paper_link_speed(self):
        assert GIGABIT_PER_SECOND == 125_000_000.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkTimingModel(bandwidth_bytes_per_s=0.0)
        with pytest.raises(ConfigurationError):
            LinkTimingModel(latency_s=-1.0)


class TestWithRealRun:
    def test_snap_run_is_faster_than_sno_on_the_wire(self):
        """End to end: SNAP's shrinking frames shorten the estimated wall clock."""
        from repro.core import SNAPConfig, SNAPTrainer
        from repro.core.config import SelectionPolicy
        from repro.simulation.experiments import credit_svm_workload

        workload = credit_svm_workload(
            n_servers=6, average_degree=3.0, n_train=600, n_test=100, seed=2
        )
        model = LinkTimingModel(bandwidth_bytes_per_s=10_000.0, latency_s=0.0)
        times = {}
        for name, selection in [
            ("snap", SelectionPolicy.APE),
            ("sno", SelectionPolicy.DENSE),
        ]:
            trainer = SNAPTrainer(
                workload.model,
                workload.shards,
                workload.topology,
                config=SNAPConfig(selection=selection, seed=0),
                initial_params=workload.model.init_params(0),
            )
            trainer.run(max_rounds=80, stop_on_convergence=False)
            times[name] = model.total_time(trainer.tracker, 80)
        assert times["snap"] < times["sno"]
