"""Tests for repro.network.codec — the binary Fig. 3 frame codecs."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.network.codec import decode_update, encode_update
from repro.network.frames import FrameFormat
from repro.network.messages import ParameterUpdate


def make_update(total, indices, values, sender=3, round_index=7):
    return ParameterUpdate(
        sender=sender,
        round_index=round_index,
        total_params=total,
        indices=np.asarray(indices, dtype=np.int64),
        values=np.asarray(values, dtype=float),
    )


class TestRoundTrip:
    def test_sparse_update(self):
        update = make_update(20, [1, 5, 17], [1.5, -2.25, 3.0])
        payload = encode_update(update)
        assert len(payload) == update.size_bytes
        decoded = decode_update(payload, update.frame_format, 20, 3, 7)
        np.testing.assert_array_equal(decoded.indices, update.indices)
        np.testing.assert_array_equal(decoded.values, update.values)

    def test_dense_update_uses_unchanged_index_frame(self):
        params = np.linspace(-1, 1, 10)
        update = ParameterUpdate.dense(0, 1, params)
        assert update.frame_format is FrameFormat.UNCHANGED_INDEX
        payload = encode_update(update)
        assert len(payload) == update.size_bytes == 4 + 80
        decoded = decode_update(payload, update.frame_format, 10, 0, 1)
        np.testing.assert_array_equal(decoded.values, params)

    def test_empty_update(self):
        update = make_update(8, [], [])
        payload = encode_update(update)
        assert payload == b""
        decoded = decode_update(payload, update.frame_format, 8, 3, 7)
        assert decoded.n_sent == 0

    def test_mostly_sent_update(self):
        total = 30
        indices = [i for i in range(total) if i != 11]
        values = [float(i) for i in indices]
        update = make_update(total, indices, values)
        assert update.frame_format is FrameFormat.UNCHANGED_INDEX
        decoded = decode_update(
            encode_update(update), update.frame_format, total, 3, 7
        )
        np.testing.assert_array_equal(decoded.indices, update.indices)
        np.testing.assert_array_equal(decoded.values, update.values)

    def test_values_preserve_float64_precision(self):
        values = np.array([np.pi, -np.e * 1e-12, 1e300])
        update = make_update(5, [0, 2, 4], values)
        decoded = decode_update(
            encode_update(update), update.frame_format, 5, 3, 7
        )
        np.testing.assert_array_equal(decoded.values, values)


class TestMalformedInput:
    def test_truncated_unchanged_index_header(self):
        with pytest.raises(ProtocolError):
            decode_update(b"\x00\x01", FrameFormat.UNCHANGED_INDEX, 10, 0, 1)

    def test_wrong_length_unchanged_index_body(self):
        update = ParameterUpdate.dense(0, 1, np.zeros(6))
        payload = encode_update(update)
        with pytest.raises(ProtocolError):
            decode_update(payload[:-3], FrameFormat.UNCHANGED_INDEX, 6, 0, 1)

    def test_count_exceeding_total_rejected(self):
        import struct

        payload = struct.pack(">I", 99)
        with pytest.raises(ProtocolError):
            decode_update(payload, FrameFormat.UNCHANGED_INDEX, 10, 0, 1)

    def test_index_value_partial_record_rejected(self):
        update = make_update(20, [1, 2], [1.0, 2.0])
        payload = encode_update(update)
        with pytest.raises(ProtocolError):
            decode_update(payload[:-5], FrameFormat.INDEX_VALUE, 20, 0, 1)

    def test_index_value_out_of_range_index_rejected(self):
        update = make_update(20, [19], [1.0])
        payload = encode_update(update)
        with pytest.raises(ProtocolError):
            decode_update(payload, FrameFormat.INDEX_VALUE, 10, 0, 1)

    def test_unsorted_index_value_records_rejected(self):
        import struct

        payload = struct.pack(">Id", 5, 1.0) + struct.pack(">Id", 2, 2.0)
        with pytest.raises(ProtocolError):
            decode_update(payload, FrameFormat.INDEX_VALUE, 10, 0, 1)
