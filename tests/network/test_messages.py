"""Tests for repro.network.messages.ParameterUpdate."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.network.frames import FrameFormat
from repro.network.messages import ParameterUpdate


def make_update(total=20, indices=(1, 5, 7), values=(1.0, 2.0, 3.0)):
    return ParameterUpdate(
        sender=0,
        round_index=3,
        total_params=total,
        indices=np.array(indices, dtype=np.int64),
        values=np.array(values, dtype=float),
    )


class TestConstruction:
    def test_counts(self):
        update = make_update()
        assert update.n_sent == 3
        assert update.n_unsent == 17

    def test_frame_selected_and_sized(self):
        update = make_update()
        # N=20, M=17 -> N <= 2M+1 -> INDEX_VALUE, 12*3 bytes
        assert update.frame_format is FrameFormat.INDEX_VALUE
        assert update.size_bytes == 36

    def test_mostly_sent_uses_unchanged_index_frame(self):
        update = make_update(total=20, indices=tuple(range(18)), values=(0.0,) * 18)
        assert update.frame_format is FrameFormat.UNCHANGED_INDEX
        assert update.size_bytes == 4 + 8 * 20 - 4 * 2

    def test_rejects_unsorted_indices(self):
        with pytest.raises(ProtocolError):
            make_update(indices=(5, 1, 7))

    def test_rejects_duplicate_indices(self):
        with pytest.raises(ProtocolError):
            make_update(indices=(1, 1, 7))

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ProtocolError):
            make_update(total=5, indices=(1, 2, 5))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ProtocolError):
            make_update(indices=(1, 2), values=(1.0, 2.0, 3.0))

    def test_empty_update_allowed(self):
        update = make_update(indices=(), values=())
        assert update.n_sent == 0
        assert update.size_bytes == 0  # INDEX_VALUE frame of nothing


class TestApply:
    def test_overlays_only_sent_coordinates(self):
        update = make_update(total=5, indices=(1, 3), values=(10.0, 30.0))
        target = np.zeros(5)
        result = update.apply_to(target)
        np.testing.assert_array_equal(result, [0.0, 10.0, 0.0, 30.0, 0.0])

    def test_does_not_mutate_target(self):
        update = make_update(total=5, indices=(0,), values=(9.0,))
        target = np.zeros(5)
        update.apply_to(target)
        np.testing.assert_array_equal(target, np.zeros(5))

    def test_shape_mismatch_rejected(self):
        update = make_update(total=5, indices=(0,), values=(9.0,))
        with pytest.raises(ProtocolError):
            update.apply_to(np.zeros(6))


class TestDense:
    def test_dense_carries_everything(self):
        params = np.arange(7.0)
        update = ParameterUpdate.dense(2, 1, params)
        np.testing.assert_array_equal(update.apply_to(np.zeros(7)), params)
        assert update.n_unsent == 0
        assert update.sender == 2
