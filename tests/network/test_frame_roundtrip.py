"""Randomized round-trip coverage of all three wire frame formats.

200 seeded vectors each: ``decode(encode(x))`` must be *exact* (the frame
formats carry full-precision values or integer levels — nothing lossy
happens on the wire), and a CRC-corrupted frame of every format must be
detected at the transport layer.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.exceptions import FrameCorruptionError
from repro.network.codec import decode_update, encode_update
from repro.network.frames import FrameFormat, dequantize_levels, quantization_levels
from repro.network.messages import ParameterUpdate, QuantizationInfo
from repro.runtime.transport import FrameConnection

N_VECTORS = 200


def sparse_update(rng: np.random.Generator, dense: bool) -> ParameterUpdate:
    total = int(rng.integers(4, 120))
    if dense:
        # Few suppressed coordinates -> UNCHANGED_INDEX territory.
        n_sent = int(rng.integers((total + 2) // 2 + 1, total + 1))
    else:
        # Mostly suppressed -> INDEX_VALUE territory.
        n_sent = int(rng.integers(0, max(1, total // 3)))
    indices = np.sort(
        rng.choice(total, size=n_sent, replace=False).astype(np.int64)
    )
    return ParameterUpdate(
        sender=int(rng.integers(0, 50)),
        round_index=int(rng.integers(0, 1000)),
        total_params=total,
        indices=indices,
        values=rng.normal(size=n_sent),
    )


def quantized_update(rng: np.random.Generator) -> ParameterUpdate:
    total = int(rng.integers(4, 120))
    bits = int(rng.integers(2, 17))
    cap = quantization_levels(bits)
    n_sent = int(rng.integers(1, total + 1))
    indices = np.sort(
        rng.choice(total, size=n_sent, replace=False).astype(np.int64)
    )
    levels = np.zeros(n_sent, dtype=np.int64)
    while np.any(levels == 0):  # nonzero levels only, as compressors emit
        zero = levels == 0
        levels[zero] = rng.integers(-cap, cap + 1, size=int(zero.sum()))
    scale = float(rng.uniform(0.1, 5.0))
    reference = rng.normal(size=total)
    values = reference[indices] + dequantize_levels(levels, scale, bits)
    update = ParameterUpdate(
        sender=int(rng.integers(0, 50)),
        round_index=int(rng.integers(0, 1000)),
        total_params=total,
        indices=indices,
        values=values,
        quantization=QuantizationInfo(bits=bits, scale=scale, levels=levels),
    )
    return update, reference


class TestExactRoundTrip:
    def test_unchanged_index_frames(self):
        rng = np.random.default_rng(100)
        seen = 0
        for _ in range(N_VECTORS):
            update = sparse_update(rng, dense=True)
            decoded = decode_update(
                encode_update(update),
                update.frame_format,
                update.total_params,
                update.sender,
                update.round_index,
            )
            np.testing.assert_array_equal(decoded.indices, update.indices)
            np.testing.assert_array_equal(decoded.values, update.values)
            seen += update.frame_format is FrameFormat.UNCHANGED_INDEX
        assert seen > N_VECTORS // 2  # the generator actually hits the format

    def test_index_value_frames(self):
        rng = np.random.default_rng(200)
        seen = 0
        for _ in range(N_VECTORS):
            update = sparse_update(rng, dense=False)
            decoded = decode_update(
                encode_update(update),
                update.frame_format,
                update.total_params,
                update.sender,
                update.round_index,
            )
            np.testing.assert_array_equal(decoded.indices, update.indices)
            np.testing.assert_array_equal(decoded.values, update.values)
            seen += update.frame_format is FrameFormat.INDEX_VALUE
        assert seen > N_VECTORS // 2

    def test_quantized_frames(self):
        rng = np.random.default_rng(300)
        for _ in range(N_VECTORS):
            update, reference = quantized_update(rng)
            decoded = decode_update(
                encode_update(update),
                update.frame_format,
                update.total_params,
                update.sender,
                update.round_index,
            )
            if update.frame_format is not FrameFormat.QUANTIZED:
                # The codec picked a cheaper Fig. 3 frame; values round-trip
                # verbatim.
                np.testing.assert_array_equal(decoded.values, update.values)
                continue
            assert decoded.additive
            info = decoded.quantization
            assert info.bits == update.quantization.bits
            assert info.scale == update.quantization.scale
            np.testing.assert_array_equal(
                info.levels, update.quantization.levels
            )
            # Additive decode onto the shared reference == the sender's
            # absolute values, bit for bit.
            np.testing.assert_array_equal(
                decoded.apply_to(reference), update.apply_to(reference)
            )


@pytest.fixture
def socket_pair():
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    client = socket.create_connection(("127.0.0.1", port))
    server, _ = listener.accept()
    listener.close()
    yield FrameConnection(client), FrameConnection(server)
    client.close()
    server.close()


class TestCorruptionDetection:
    def _updates(self):
        rng = np.random.default_rng(400)
        unchanged = sparse_update(rng, dense=True)
        index_value = sparse_update(rng, dense=False)
        while index_value.n_sent == 0:
            index_value = sparse_update(rng, dense=False)
        quantized, _ = quantized_update(rng)
        return [unchanged, index_value, quantized]

    def test_corrupted_frames_of_every_format_are_detected(self, socket_pair):
        client, server = socket_pair
        for update in self._updates():
            client.send_corrupted(update)
            with pytest.raises(FrameCorruptionError):
                server.recv_update()
            # The stream stays usable: a clean frame lands afterwards.
            client.send_update(update)
            received = server.recv_update()
            np.testing.assert_array_equal(received.indices, update.indices)
