"""QUANTIZED-frame edge cases: degenerate vectors, bit-width extremes,
non-finite rejection, and the strictly-cheaper selection boundary.

The happy paths live in ``test_frame_roundtrip.py`` (200 random vectors per
format); this module pins the corners where the quantized extension could
silently disturb the paper's exact Fig. 3 accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.base import EdgeState, edge_rng
from repro.compression.quantize import (
    TernGradCompressor,
    UniformQuantizer,
    ternarize,
)
from repro.exceptions import ProtocolError
from repro.network.codec import decode_update, encode_update
from repro.network.frames import (
    FrameFormat,
    MAX_QUANT_BITS,
    MIN_QUANT_BITS,
    check_quant_bits,
    dequantize_levels,
    encoded_update_bytes,
    frame_size_bytes,
    quantization_levels,
    quantized_frame_bytes,
    select_frame_format,
)
from repro.network.messages import ParameterUpdate, QuantizationInfo


def _edge_state(n_params: int, reference: np.ndarray) -> EdgeState:
    state = EdgeState(
        source=0,
        destination=1,
        reference=reference,
        rng=edge_rng(0, 0, 1),
    )
    return state


class TestZeroRangeVectors:
    """A drift with zero dynamic range must quantize to 'send nothing'."""

    def test_uniform_zero_drift_sends_empty_payload(self):
        reference = np.linspace(-1.0, 1.0, 8)
        state = _edge_state(8, reference)
        payload = UniformQuantizer(bits=4).compress(
            reference.copy(), state, {}
        )
        assert payload.indices.size == 0
        assert payload.values.size == 0
        assert "quantization" not in payload.meta

    def test_uniform_batch_zero_rows_match_scalar_path(self):
        quantizer = UniformQuantizer(bits=4)
        references = np.vstack([np.zeros(6), np.linspace(0, 1, 6)])
        currents = np.vstack([np.zeros(6), np.linspace(0, 1, 6) + 0.25])
        states = [_edge_state(6, references[i]) for i in range(2)]
        batch = quantizer.compress_batch(currents, references, states, [{}, {}])
        assert batch[0].indices.size == 0  # zero-drift row
        single = quantizer.compress(currents[1], states[1], {})
        np.testing.assert_array_equal(batch[1].indices, single.indices)
        np.testing.assert_array_equal(batch[1].values, single.values)

    def test_ternarize_zero_vector_passes_through(self):
        rng = np.random.default_rng(0)
        out = ternarize(np.zeros(5), rng)
        np.testing.assert_array_equal(out, np.zeros(5))

    def test_terngrad_zero_drift_sends_empty_payload(self):
        reference = np.full(7, 3.25)
        state = _edge_state(7, reference)
        payload = TernGradCompressor().compress(reference.copy(), state, {})
        assert payload.indices.size == 0

    def test_quantization_info_rejects_zero_scale(self):
        # A zero-range vector must never reach the wire as a frame: scale 0
        # would make every level meaningless.
        with pytest.raises(ProtocolError):
            QuantizationInfo(bits=4, scale=0.0, levels=np.array([1]))


class TestBitWidthExtremes:
    """b=1 is rejected (a single level cannot carry sign); b=2 is the
    single-magnitude case with levels in {-1, 0, +1}."""

    @pytest.mark.parametrize("bits", [1, 0, -3, 17, 64])
    def test_out_of_range_bit_widths_rejected(self, bits):
        with pytest.raises(ProtocolError):
            check_quant_bits(bits)
        with pytest.raises(ProtocolError):
            quantized_frame_bytes(8, 2, bits)

    @pytest.mark.parametrize("bits", [True, 2.0, "2", None])
    def test_non_int_bit_widths_rejected(self, bits):
        with pytest.raises(ProtocolError):
            check_quant_bits(bits)

    def test_boundary_bit_widths_accepted(self):
        assert check_quant_bits(MIN_QUANT_BITS) == 2
        assert check_quant_bits(MAX_QUANT_BITS) == 16

    def test_two_bit_frames_have_single_level_magnitude(self):
        assert quantization_levels(2) == 1
        # level * (scale / L) with L = 1: levels reconstruct to +-scale.
        np.testing.assert_array_equal(
            dequantize_levels(np.array([-1, 0, 1]), 0.75, 2),
            np.array([-0.75, 0.0, 0.75]),
        )

    def test_two_bit_packing_round_trips_through_the_codec(self):
        """The minimum width exercises the densest bit-packing: 4 levels
        per byte, biased by L=1 so codes are {0, 1, 2}."""
        total = 9
        indices = np.arange(total, dtype=np.int64)
        levels = np.array([-1, 1, -1, 1, 1, -1, -1, 1, -1], dtype=np.int64)
        scale = 0.5
        reference = np.zeros(total)
        update = ParameterUpdate(
            sender=3,
            round_index=12,
            total_params=total,
            indices=indices,
            values=reference[indices] + dequantize_levels(levels, scale, 2),
            quantization=QuantizationInfo(bits=2, scale=scale, levels=levels),
        )
        assert update.frame_format is FrameFormat.QUANTIZED
        # Dense frame (K == N): no index list; 9 levels at 2 bits pack into
        # ceil(18/8) = 3 bytes after the 14-byte prologue.
        assert update.size_bytes == 14 + 3
        decoded = decode_update(
            encode_update(update), FrameFormat.QUANTIZED, total, 3, 12
        )
        np.testing.assert_array_equal(decoded.quantization.levels, levels)
        np.testing.assert_array_equal(
            decoded.apply_to(reference), update.apply_to(reference)
        )

    def test_two_bit_levels_beyond_unit_magnitude_rejected(self):
        with pytest.raises(ProtocolError):
            QuantizationInfo(bits=2, scale=1.0, levels=np.array([2]))


class TestNonFiniteRejection:
    @pytest.mark.parametrize("scale", [np.nan, np.inf, -np.inf, -1.0, 0.0])
    def test_bad_scales_rejected(self, scale):
        with pytest.raises(ProtocolError):
            QuantizationInfo(bits=4, scale=scale, levels=np.array([1]))

    def test_float_levels_rejected(self):
        with pytest.raises(ProtocolError):
            QuantizationInfo(bits=4, scale=1.0, levels=np.array([1.5]))

    def test_level_overflow_rejected(self):
        cap = quantization_levels(4)
        with pytest.raises(ProtocolError):
            QuantizationInfo(bits=4, scale=1.0, levels=np.array([cap + 1]))


class TestStrictlyCheaperBoundary:
    """QUANTIZED may only win when *strictly* smaller than the paper's two
    formats — a tie keeps the Fig. 3 choice so full-precision accounting
    is never disturbed by the extension."""

    def test_exact_tie_keeps_the_classic_format(self):
        # d=4, M=2, K=2: classic pick is INDEX_VALUE (4 > 2*2+1 is false)
        # at 12*2 = 24 bytes. Quantized at b=8: 14 + 4*2 + ceil(16/8) = 24.
        assert frame_size_bytes(4, 2, FrameFormat.INDEX_VALUE) == 24
        assert quantized_frame_bytes(4, 2, 8) == 24
        assert select_frame_format(4, 2, bits=8) is FrameFormat.INDEX_VALUE
        assert encoded_update_bytes(4, 2, 8) == 24

    def test_one_byte_cheaper_flips_to_quantized(self):
        # Same shape at b=4: 14 + 8 + ceil(8/8) = 23 < 24.
        assert quantized_frame_bytes(4, 2, 4) == 23
        assert select_frame_format(4, 2, bits=4) is FrameFormat.QUANTIZED
        assert encoded_update_bytes(4, 2, 4) == 23

    def test_without_bits_the_paper_rule_is_untouched(self):
        # N > 2M + 1 boundary: N=4, M=1 -> UNCHANGED_INDEX; N=3, M=1 -> tie
        # goes to INDEX_VALUE (the paper's "otherwise" branch).
        assert select_frame_format(4, 1) is FrameFormat.UNCHANGED_INDEX
        assert select_frame_format(3, 1) is FrameFormat.INDEX_VALUE

    def test_quantized_never_wins_at_high_precision(self):
        # b=16 on a mostly-suppressed update: 14 + 4K + 2K >= 12K for K <= 7,
        # so the classic sparse frame keeps winning.
        for total in range(4, 30):
            for unsent in range(total + 1):
                sent = total - unsent
                if sent == 0:
                    continue
                chosen = select_frame_format(total, unsent, bits=16)
                assert frame_size_bytes(
                    total, unsent, chosen, 16
                ) <= frame_size_bytes(
                    total,
                    unsent,
                    select_frame_format(total, unsent),
                )
