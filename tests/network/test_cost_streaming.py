"""Columnar tracker internals: observers, per-edge counters, retention bounds."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.network.cost import CommunicationCostTracker


class TestObservers:
    def test_single_record_arrives_as_length_one_batch(self):
        tracker = CommunicationCostTracker()
        seen = []
        tracker.add_observer(
            lambda r, s, d, b, h: seen.append(
                (r, s.tolist(), d.tolist(), b.tolist(), h.tolist())
            )
        )
        tracker.record(1, 0, 1, 40, hops=1)
        assert seen == [(1, [0], [1], [40], [1])]

    def test_batch_record_arrives_verbatim_in_insertion_order(self):
        tracker = CommunicationCostTracker()
        seen = []
        tracker.add_observer(lambda r, s, d, b, h: seen.append((r, b.sum())))
        tracker.record_many(2, [0, 1, 2], [1, 2, 0], [10, 20, 30], hops=1)
        tracker.record(3, 0, 1, 5, hops=1)
        assert [(r, int(total)) for r, total in seen] == [(2, 60), (3, 5)]

    def test_observers_fire_with_retention_off(self):
        tracker = CommunicationCostTracker(retain_records=False)
        seen = []
        tracker.add_observer(lambda r, s, d, b, h: seen.append(int(b.sum())))
        tracker.record_many(1, [0, 1], [1, 0], [7, 8], hops=1)
        assert seen == [15]
        with pytest.raises(ConfigurationError):
            tracker.records()


class TestColumnarAggregates:
    def test_per_edge_bytes_accumulates_across_batches(self):
        tracker = CommunicationCostTracker(retain_records=False)
        tracker.record_many(1, [0, 1], [1, 0], [10, 20], hops=1)
        tracker.record_many(2, [0, 3], [1, 2], [5, 40], hops=1)
        assert tracker.per_edge_bytes() == {
            (0, 1): 15,
            (1, 0): 20,
            (3, 2): 40,
        }

    def test_round_series_survive_geometric_growth(self):
        tracker = CommunicationCostTracker(retain_records=False)
        for round_index in (1, 100, 1000):
            tracker.record(round_index, 0, 1, 8, hops=2)
        assert tracker.per_round_bytes() == [(1, 8), (100, 8), (1000, 8)]
        assert tracker.per_round_costs() == [(1, 16), (100, 16), (1000, 16)]
        assert tracker.round_bytes(500) == 0
        assert type(tracker.round_bytes(100)) is int
        assert type(tracker.round_cost(1000)) is int

    def test_retention_off_keeps_no_per_flow_state(self):
        """Aggregate state stays O(rounds + edges) however many flows arrive."""
        tracker = CommunicationCostTracker(retain_records=False)
        sources = np.arange(50, dtype=np.int64)
        destinations = np.roll(sources, 1)
        for round_index in range(1, 201):
            tracker.record_many(
                round_index, sources, destinations, np.full(50, 12), hops=1
            )
        assert tracker.n_flows == 50 * 200
        assert tracker._records == []
        assert tracker._edge_keys.shape[0] == 50
        assert tracker.total_bytes == 50 * 200 * 12

    def test_retained_records_match_aggregates(self):
        retained = CommunicationCostTracker(retain_records=True)
        unretained = CommunicationCostTracker(retain_records=False)
        for tracker in (retained, unretained):
            tracker.record_many(1, [0, 1], [1, 2], [10, 30], hops=1)
            tracker.record(2, 2, 0, 44, hops=3)
        assert retained.total_bytes == unretained.total_bytes
        assert retained.total_cost == unretained.total_cost
        assert retained.per_round_costs() == unretained.per_round_costs()
        assert retained.per_edge_bytes() == unretained.per_edge_bytes()
        assert sum(f.size_bytes for f in retained.records()) == retained.total_bytes
