"""Tests for repro.network.frames — the Fig. 3 byte formulas."""

import pytest

from repro.exceptions import ProtocolError
from repro.network.frames import (
    FLOAT_BYTES,
    INT_BYTES,
    FrameFormat,
    encoded_update_bytes,
    frame_size_bytes,
    full_vector_bytes,
    select_frame_format,
    terngrad_vector_bytes,
)


class TestFrameSizes:
    def test_unchanged_index_formula(self):
        # paper: 4 + 8N - 4M bytes
        n, m = 100, 30
        assert frame_size_bytes(n, m, FrameFormat.UNCHANGED_INDEX) == 4 + 8 * n - 4 * m

    def test_index_value_formula(self):
        # paper: 12 (N - M) bytes
        n, m = 100, 30
        assert frame_size_bytes(n, m, FrameFormat.INDEX_VALUE) == 12 * (n - m)

    def test_nothing_suppressed(self):
        assert frame_size_bytes(10, 0, FrameFormat.UNCHANGED_INDEX) == 4 + 80
        assert frame_size_bytes(10, 0, FrameFormat.INDEX_VALUE) == 120

    def test_everything_suppressed(self):
        assert frame_size_bytes(10, 10, FrameFormat.UNCHANGED_INDEX) == 4 + 40
        assert frame_size_bytes(10, 10, FrameFormat.INDEX_VALUE) == 0

    def test_counts_validated(self):
        with pytest.raises(ProtocolError):
            frame_size_bytes(5, 6, FrameFormat.INDEX_VALUE)
        with pytest.raises(ProtocolError):
            frame_size_bytes(-1, 0, FrameFormat.INDEX_VALUE)


class TestSelection:
    def test_paper_crossover_rule(self):
        # first format iff N > 2M + 1
        assert select_frame_format(100, 10) is FrameFormat.UNCHANGED_INDEX
        assert select_frame_format(100, 60) is FrameFormat.INDEX_VALUE

    def test_boundary_goes_to_index_value(self):
        # N == 2M + 1: sizes are equal, the paper's "otherwise" branch applies.
        n, m = 21, 10
        assert frame_size_bytes(n, m, FrameFormat.UNCHANGED_INDEX) == frame_size_bytes(
            n, m, FrameFormat.INDEX_VALUE
        )
        assert select_frame_format(n, m) is FrameFormat.INDEX_VALUE

    def test_selected_format_is_never_larger(self):
        for n in (1, 2, 5, 21, 100, 1000):
            for m in range(0, n + 1, max(1, n // 7)):
                chosen = select_frame_format(n, m)
                chosen_size = frame_size_bytes(n, m, chosen)
                other = (
                    FrameFormat.INDEX_VALUE
                    if chosen is FrameFormat.UNCHANGED_INDEX
                    else FrameFormat.UNCHANGED_INDEX
                )
                assert chosen_size <= frame_size_bytes(n, m, other)

    def test_encoded_update_bytes_matches_selection(self):
        n, m = 50, 5
        assert encoded_update_bytes(n, m) == frame_size_bytes(
            n, m, select_frame_format(n, m)
        )


class TestOtherEncodings:
    def test_full_vector(self):
        assert full_vector_bytes(25) == 200
        assert full_vector_bytes(0) == 0
        with pytest.raises(ProtocolError):
            full_vector_bytes(-1)

    def test_terngrad_two_bits_per_param_plus_scale(self):
        # 100 params -> 200 bits -> 25 bytes + 8-byte scale
        assert terngrad_vector_bytes(100) == 25 + 8
        # rounding up partial bytes: 3 params -> 6 bits -> 1 byte + 8
        assert terngrad_vector_bytes(3) == 1 + 8

    def test_terngrad_is_much_smaller_than_full(self):
        n = 10_000
        assert terngrad_vector_bytes(n) < full_vector_bytes(n) / 30

    def test_byte_constants_match_paper(self):
        assert INT_BYTES == 4
        assert FLOAT_BYTES == 8
