"""Unit tests for the individual compressor implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import (
    APECompressor,
    RandomKCompressor,
    TernGradCompressor,
    TopKCompressor,
    UniformQuantizer,
    edge_rng,
)
from repro.exceptions import ConfigurationError
from repro.network.frames import (
    dequantize_levels,
    encoded_update_bytes,
    quantization_levels,
)


def make_state(compressor, reference, source=0, destination=1, seed=7):
    state = compressor.make_edge_state(reference.size, source, destination, seed)
    state.reference = reference
    return state


class TestTopK:
    def test_sends_k_largest_drifts_in_index_order(self):
        compressor = TopKCompressor(k=2)
        reference = np.zeros(5)
        current = np.array([0.1, -3.0, 0.2, 2.0, 0.0])
        state = make_state(compressor, reference)
        payload = compressor.compress(current, state, {})
        np.testing.assert_array_equal(payload.indices, [1, 3])
        np.testing.assert_array_equal(payload.values, [-3.0, 2.0])

    def test_never_sends_zero_drift_even_below_k(self):
        compressor = TopKCompressor(k=4)
        reference = np.array([1.0, 2.0, 3.0])
        current = np.array([1.0, 5.0, 3.0])
        state = make_state(compressor, reference)
        payload = compressor.compress(current, state, {})
        np.testing.assert_array_equal(payload.indices, [1])

    def test_batch_matches_per_edge_bitwise(self):
        compressor = TopKCompressor(k=3)
        rng = np.random.default_rng(0)
        currents = rng.normal(size=(4, 9))
        references = rng.normal(size=(4, 9))
        states = [make_state(compressor, references[i], 0, i) for i in range(4)]
        batched = compressor.compress_batch(
            currents, references, states, [{}] * 4
        )
        for row in range(4):
            single = compressor.compress(currents[row], states[row], {})
            np.testing.assert_array_equal(batched[row].indices, single.indices)
            np.testing.assert_array_equal(batched[row].values, single.values)

    def test_rejects_bad_k(self):
        for bad in (0, -1, 2.5, True):
            with pytest.raises(ConfigurationError):
                TopKCompressor(k=bad)


class TestRandomK:
    def test_sends_exactly_k_sorted_coordinates(self):
        compressor = RandomKCompressor(k=3)
        reference = np.zeros(10)
        state = make_state(compressor, reference)
        payload = compressor.compress(np.arange(10.0), state, {})
        assert payload.n_sent == 3
        assert np.all(np.diff(payload.indices) > 0)

    def test_draws_depend_only_on_edge_key(self):
        compressor = RandomKCompressor(k=4)
        reference = np.zeros(20)
        a = make_state(compressor, reference, source=2, destination=5)
        b = make_state(compressor, reference, source=2, destination=5)
        current = np.ones(20)
        first = compressor.compress(current, a, {})
        second = compressor.compress(current, b, {})
        np.testing.assert_array_equal(first.indices, second.indices)
        other_edge = make_state(compressor, reference, source=5, destination=2)
        third = compressor.compress(current, other_edge, {})
        assert not np.array_equal(first.indices, third.indices)


class TestUniformQuantizer:
    def test_values_match_receiver_side_dequantization(self):
        compressor = UniformQuantizer(bits=4)
        rng = np.random.default_rng(3)
        reference = rng.normal(size=12)
        current = reference + rng.normal(size=12)
        state = make_state(compressor, reference)
        payload = compressor.compress(current, state, {})
        info = payload.meta["quantization"]
        assert info.bits == 4
        expected = reference[payload.indices] + dequantize_levels(
            info.levels, info.scale, info.bits
        )
        np.testing.assert_array_equal(payload.values, expected)
        cap = quantization_levels(4)
        assert np.all(np.abs(info.levels) <= cap)

    def test_zero_drift_sends_empty_payload(self):
        compressor = UniformQuantizer(bits=4)
        reference = np.ones(6)
        state = make_state(compressor, reference)
        payload = compressor.compress(reference.copy(), state, {})
        assert payload.n_sent == 0
        assert "quantization" not in payload.meta

    def test_batch_matches_per_edge_bitwise(self):
        compressor = UniformQuantizer(bits=6)
        rng = np.random.default_rng(5)
        currents = rng.normal(size=(5, 8))
        references = currents.copy()
        references[1:] += rng.normal(size=(4, 8))  # row 0 has zero drift
        states = [make_state(compressor, references[i], 0, i) for i in range(5)]
        batched = compressor.compress_batch(
            currents, references, states, [{}] * 5
        )
        for row in range(5):
            single = compressor.compress(currents[row], states[row], {})
            np.testing.assert_array_equal(batched[row].indices, single.indices)
            np.testing.assert_array_equal(batched[row].values, single.values)

    def test_wire_bytes_use_quantized_frame_when_cheaper(self):
        compressor = UniformQuantizer(bits=2)
        rng = np.random.default_rng(9)
        reference = np.zeros(400)
        current = rng.normal(size=400)
        state = make_state(compressor, reference)
        payload = compressor.compress(current, state, {})
        size = compressor.bytes_on_wire(payload, 400)
        assert size == encoded_update_bytes(400, 400 - payload.n_sent, 2)
        assert size < encoded_update_bytes(400, 400 - payload.n_sent)


class TestTernGrad:
    def test_levels_are_ternary_and_values_reconstruct(self):
        compressor = TernGradCompressor()
        rng = np.random.default_rng(2)
        reference = rng.normal(size=30)
        current = reference + rng.normal(size=30)
        state = make_state(compressor, reference)
        payload = compressor.compress(current, state, {})
        info = payload.meta["quantization"]
        assert info.bits == 2
        assert set(np.unique(info.levels)) <= {-1, 1}
        expected = reference[payload.indices] + info.scale * info.levels
        np.testing.assert_allclose(payload.values, expected)

    def test_ternarize_is_unbiased_in_expectation(self):
        gradient = np.array([0.5, -1.0, 0.25, 0.0])
        rng = np.random.default_rng(0)
        draws = np.mean(
            [TernGradCompressor.ternarize(gradient, rng) for _ in range(4000)],
            axis=0,
        )
        np.testing.assert_allclose(draws, gradient, atol=0.05)


class TestAPECompressor:
    def test_dense_sends_every_coordinate(self):
        compressor = APECompressor(dense=True)
        reference = np.zeros(4)
        current = np.array([1.0, 0.0, 2.0, 0.0])
        state = make_state(compressor, reference)
        payload = compressor.compress(current, state, compressor.begin_round(current, 0))
        np.testing.assert_array_equal(payload.indices, np.arange(4))
        np.testing.assert_array_equal(payload.values, current)

    def test_zero_threshold_sends_exactly_the_changes(self):
        compressor = APECompressor()  # changed_only preset
        reference = np.array([1.0, 2.0, 3.0])
        current = np.array([1.0, 2.5, 3.0])
        state = make_state(compressor, reference)
        ctx = compressor.begin_round(current, 0)
        payload = compressor.compress(current, state, ctx)
        np.testing.assert_array_equal(payload.indices, [1])
        assert compressor.end_round(ctx) is False


class TestEdgeRng:
    def test_streams_are_order_independent(self):
        a = edge_rng(7, 1, 2).random(5)
        b = edge_rng(7, 2, 1).random(5)
        a_again = edge_rng(7, 1, 2).random(5)
        np.testing.assert_array_equal(a, a_again)
        assert not np.array_equal(a, b)
