"""CompressorSpec parsing, validation, and the builder."""

from __future__ import annotations

import pytest

from repro.compression import (
    APECompressor,
    CompressorSpec,
    ErrorFeedback,
    TopKCompressor,
    UniformQuantizer,
    build_compressor,
)
from repro.core.config import SNAPConfig, SelectionPolicy
from repro.exceptions import ConfigurationError


class TestParse:
    def test_bare_kind_fills_defaults(self):
        spec = CompressorSpec.parse("topk")
        assert spec.params_dict() == {"k": 16}
        assert spec.label == "topk(k=16)"

    def test_arguments_and_ef_prefix(self):
        spec = CompressorSpec.parse("ef:uniform:bits=6")
        assert spec.error_feedback
        assert spec.params_dict() == {"bits": 6}
        assert spec.label == "ef(uniform(bits=6))"

    def test_specs_are_hashable_and_canonical(self):
        a = CompressorSpec.parse("topk:k=16")
        b = CompressorSpec.parse("topk")
        assert a == b and hash(a) == hash(b)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown compressor kind"):
            CompressorSpec.parse("gzip")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="does not take parameter"):
            CompressorSpec.parse("topk:bits=3")

    def test_malformed_argument_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            CompressorSpec.parse("topk:k")

    def test_ef_on_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="already performs"):
            CompressorSpec.parse("ef:dense")

    def test_with_param_coerces_cli_strings(self):
        spec = CompressorSpec.parse("topk").with_param("k", "8")
        assert spec.params_dict() == {"k": 8}


class TestNormalize:
    def test_accepts_none_string_and_spec(self):
        assert CompressorSpec.normalize(None) is None
        spec = CompressorSpec.normalize("terngrad")
        assert spec.kind == "terngrad"
        assert CompressorSpec.normalize(spec) is spec

    def test_rejects_other_types(self):
        with pytest.raises(ConfigurationError):
            CompressorSpec.normalize(42)


class TestBuild:
    def test_presets_build_ape_compressor(self):
        assert isinstance(
            build_compressor(CompressorSpec("ape")), APECompressor
        )
        dense = build_compressor(CompressorSpec("dense"))
        assert isinstance(dense, APECompressor) and dense.dense

    def test_parameters_reach_the_instance(self):
        compressor = build_compressor(CompressorSpec.parse("topk:k=5"))
        assert isinstance(compressor, TopKCompressor)
        assert compressor.k == 5
        assert compressor.name == "topk(k=5)"

    def test_ef_wraps_the_inner_compressor(self):
        compressor = build_compressor(CompressorSpec.parse("ef:uniform:bits=6"))
        assert isinstance(compressor, ErrorFeedback)
        assert isinstance(compressor.inner, UniformQuantizer)
        assert compressor.name == "ef(uniform(bits=6))"


class TestConfigIntegration:
    def test_config_normalizes_spec_strings(self):
        config = SNAPConfig(compressor="topk:k=4")
        assert isinstance(config.compressor, CompressorSpec)
        assert config.compressor_spec().label == "topk(k=4)"

    def test_selection_is_the_fallback_spec(self):
        config = SNAPConfig(selection=SelectionPolicy.DENSE)
        assert config.compressor is None
        assert config.compressor_spec() == CompressorSpec("dense")
