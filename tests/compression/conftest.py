"""Shared harness for the compression test suite.

A small but non-trivial mesh (6 logistic-regression servers, 7 links, one
chord) that exercises every compressor code path: the clean variant runs the
pure round loop, the faulty variant layers Gilbert-Elliott link losses,
Markov node outages and payload corruption on top, so delivery/drop hooks
and down-peer skips all fire.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SelectionPolicy, SNAPConfig
from repro.core.trainer import SNAPTrainer
from repro.data.dataset import Dataset
from repro.faults.models import (
    GilbertElliottLinkFailures,
    IndependentCorruption,
    MarkovNodeFailures,
)
from repro.faults.plan import FaultPlan
from repro.models.logistic import LogisticRegression
from repro.testing import capture_run
from repro.topology.graph import Topology

N_NODES = 6
EDGES = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]
N_PARAMS = 5


def make_shards(seed: int = 1, n: int = 40, d: int = N_PARAMS) -> list[Dataset]:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(N_NODES):
        X = rng.normal(size=(n, d))
        w = rng.normal(size=d)
        y = (X @ w + 0.3 * rng.normal(size=n) > 0).astype(float)
        out.append(Dataset(X, y))
    return out


def make_fault_plan() -> FaultPlan:
    return FaultPlan(
        links=GilbertElliottLinkFailures(0.25, 0.5, seed=11),
        nodes=MarkovNodeFailures(0.12, 0.6, seed=12),
        corruption=IndependentCorruption(0.08, seed=13),
    )


def make_trainer(engine: str, faulty: bool = False, **config_kwargs) -> SNAPTrainer:
    config_kwargs.setdefault("max_rounds", 25)
    if isinstance(config_kwargs.get("selection"), str):
        config_kwargs["selection"] = SelectionPolicy(config_kwargs["selection"])
    config = SNAPConfig(
        engine=engine, seed=7, optimize_weights=False, **config_kwargs
    )
    return SNAPTrainer(
        LogisticRegression(N_PARAMS),
        make_shards(),
        Topology(N_NODES, EDGES),
        config,
        fault_plan=make_fault_plan() if faulty else None,
    )


def run_digest(trainer: SNAPTrainer) -> dict:
    """Legacy golden-pin dict, now via :class:`repro.testing.RunDigest`.

    The digest's hashing recipe is byte-identical to the one the golden
    values were captured with (the duplicated code that used to live here).
    """
    return capture_run(trainer).pinned()


def run_trace(trainer: SNAPTrainer) -> tuple:
    """Full comparable trace: per-round records, flow ledger, final params.

    Deliberately excludes the digest's ``server_state_sha``: the trace is
    also used to assert the error-feedback wrapper is *transparent*, and
    the wrapper's materialized residuals live exactly in that hash.
    """
    digest = capture_run(trainer)
    return digest.rounds_trace, digest.ledger_trace, digest.final_params_sha


@pytest.fixture(scope="module")
def mesh_setup():
    return (
        LogisticRegression(N_PARAMS),
        make_shards(),
        Topology(N_NODES, EDGES),
    )
