"""Error feedback: transparency and the residual invariant.

Reference tracking already performs error feedback, so the wrapper must be
a telemetry-only decoration: wrapping any compressor changes neither the
trajectory nor one wire byte, and the materialized residual always equals
``current - reference`` (everything the receiver does not yet hold).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import CompressorSpec
from repro.exceptions import ConfigurationError

from tests.compression.conftest import make_trainer, run_trace


@pytest.mark.parametrize("inner", ["topk:k=3", "uniform:bits=6", "randomk:k=2"])
@pytest.mark.parametrize("faulty", [False, True], ids=["clean", "faulty"])
def test_wrapper_is_transparent(inner, faulty):
    bare = run_trace(make_trainer("reference", faulty=faulty, compressor=inner))
    wrapped = run_trace(
        make_trainer("reference", faulty=faulty, compressor=f"ef:{inner}")
    )
    assert bare == wrapped


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_residual_equals_params_minus_last_sent(engine):
    trainer = make_trainer(engine, compressor="ef:uniform:bits=4", max_rounds=6)
    trainer.run(stop_on_convergence=False)
    if engine == "vectorized":
        trainer.engine.sync_to_servers()
    checked = 0
    for (source, destination), state in trainer._edge_states.items():
        assert state.residual is not None
        server = trainer.servers[source]
        np.testing.assert_array_equal(
            state.residual, server.params - server.last_sent[destination]
        )
        checked += 1
    assert checked > 0


@pytest.mark.parametrize("preset", ["ape", "changed_only", "dense"])
def test_wrapping_a_preset_is_rejected(preset):
    with pytest.raises(ConfigurationError, match="already performs error feedback"):
        CompressorSpec.parse(f"ef:{preset}")
