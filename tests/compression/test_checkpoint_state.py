"""Checkpoint / resume carries per-edge compressor state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoint import restore_checkpoint, save_checkpoint
from repro.exceptions import ConfigurationError

from tests.compression.conftest import make_trainer, run_trace


def resume_trace(spec, tmp_path, engine="reference"):
    first = make_trainer(engine, compressor=spec, max_rounds=12)
    first.run(max_rounds=6, stop_on_convergence=False)
    if hasattr(first.engine, "sync_to_servers"):
        first.engine.sync_to_servers()
    path = save_checkpoint(first, tmp_path / "ck.npz")
    resumed = make_trainer(engine, compressor=spec, max_rounds=12)
    restore_checkpoint(resumed, path)
    first.run(max_rounds=6, stop_on_convergence=False)
    resumed.run(max_rounds=6, stop_on_convergence=False)
    return first, resumed


@pytest.mark.parametrize(
    "spec", ["ef:randomk:k=2", "ef:uniform:bits=4", "terngrad"]
)
def test_resume_is_bit_identical(spec, tmp_path):
    first, resumed = resume_trace(spec, tmp_path)
    for a, b in zip(first.servers, resumed.servers):
        np.testing.assert_array_equal(a.params, b.params)


def test_restoring_into_mismatched_compressor_rejected(tmp_path):
    trainer = make_trainer("reference", compressor="topk:k=3", max_rounds=3)
    trainer.run(stop_on_convergence=False)
    path = save_checkpoint(trainer, tmp_path / "ck.npz")
    other = make_trainer("reference", max_rounds=3)  # ape preset
    with pytest.raises(ConfigurationError, match="topk"):
        restore_checkpoint(other, path)
