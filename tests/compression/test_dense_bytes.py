"""DENSE (SNO) traffic matches the analytic Fig. 3 dense-frame size.

With nothing suppressed (``M = 0``) the UNCHANGED_INDEX formula
``4 + 4M + 8(N - M)`` collapses to ``4 + 8N`` bytes per message — every
delivered flow in a DENSE run must charge exactly that, every round, on
both engines.
"""

from __future__ import annotations

import pytest

from repro.network.frames import FLOAT_BYTES, INT_BYTES

from tests.compression.conftest import EDGES, make_trainer


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_every_dense_flow_charges_the_analytic_size(engine):
    trainer = make_trainer(engine, selection="dense", max_rounds=8)
    result = trainer.run(stop_on_convergence=False)
    n = trainer.model.n_params
    dense_bytes = INT_BYTES + FLOAT_BYTES * n  # 4 + 8N - 4M with M = 0
    records = trainer.tracker.records()
    assert records, "a dense run must produce traffic"
    assert all(flow.size_bytes == dense_bytes for flow in records)
    # Per-round totals: 2 directed flows per undirected link, every round.
    expected_round = 2 * len(EDGES) * dense_bytes
    assert all(r.bytes_sent == expected_round for r in result.rounds)
    # And the per-round ledger has exactly one record per directed link.
    by_round: dict[int, int] = {}
    for flow in records:
        by_round[flow.round_index] = by_round.get(flow.round_index, 0) + 1
    assert set(by_round.values()) == {2 * len(EDGES)}
