"""Reference vs vectorized engine parity for the generic compressors.

The subsystem's contract is that both engines share the compressor
implementations and per-edge state, so every scheme — not just the paper's
presets — must produce the *identical* run on both: same per-round records,
same flow ledger, same final parameters, clean and under the fault plan.
"""

from __future__ import annotations

import pytest

from tests.compression.conftest import make_trainer, run_trace

SPECS = [
    "topk:k=3",
    "randomk:k=2",
    "uniform:bits=4",
    "terngrad",
    "ef:topk:k=3",
    "ef:uniform:bits=6",
]


@pytest.mark.parametrize("faulty", [False, True], ids=["clean", "faulty"])
@pytest.mark.parametrize("spec", SPECS)
def test_engines_agree_bit_for_bit(spec, faulty):
    reference = run_trace(make_trainer("reference", faulty=faulty, compressor=spec))
    vectorized = run_trace(make_trainer("vectorized", faulty=faulty, compressor=spec))
    assert reference == vectorized


def test_scheme_name_carries_spec_label():
    trainer = make_trainer("reference", compressor="topk:k=3", max_rounds=2)
    result = trainer.run(stop_on_convergence=False)
    assert result.scheme == "snap+topk(k=3)"
    assert result.info["compressor"] == "topk(k=3)"
