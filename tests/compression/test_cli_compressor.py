"""The --compressor / --compressor-arg CLI surface."""

from __future__ import annotations

import pytest

from repro.cli import EXIT_USAGE, build_parser, main

SMALL_RUN = [
    "run",
    "--n-servers",
    "4",
    "--degree",
    "2",
    "--n-train",
    "200",
    "--n-test",
    "60",
    "--rounds",
    "4",
]


class TestParser:
    def test_defaults_to_no_compressor(self):
        args = build_parser().parse_args(["run"])
        assert args.compressor is None
        assert args.compressor_arg is None

    def test_accepts_repeated_args(self):
        args = build_parser().parse_args(
            ["run", "--compressor", "topk", "--compressor-arg", "k=8"]
        )
        assert args.compressor == "topk"
        assert args.compressor_arg == ["k=8"]


class TestRun:
    def test_compressed_run_reports_scheme_label(self, capsys):
        code = main(SMALL_RUN + ["--compressor", "topk", "--compressor-arg", "k=8"])
        assert code == 0
        assert "snap+topk(k=8)" in capsys.readouterr().out

    def test_non_mesh_scheme_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(SMALL_RUN + ["--scheme", "ps", "--compressor", "topk"])
        assert excinfo.value.code == EXIT_USAGE
        assert "mesh schemes" in capsys.readouterr().err

    def test_compressor_arg_without_compressor_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(SMALL_RUN + ["--compressor-arg", "k=8"])
        assert excinfo.value.code == EXIT_USAGE

    def test_bad_spec_rejected_with_usage_exit(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(SMALL_RUN + ["--compressor", "gzip"])
        assert excinfo.value.code == EXIT_USAGE
        assert "unknown compressor kind" in capsys.readouterr().err

    def test_preset_spec_rejects_parameters(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                SMALL_RUN
                + ["--compressor", "ape", "--compressor-arg", "k=8"]
            )
        assert excinfo.value.code == EXIT_USAGE
