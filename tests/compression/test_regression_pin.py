"""Default presets are pinned bit-for-bit to the pre-subsystem behavior.

The golden digests below were captured on the commit *before* the
compression subsystem existed (selection logic inlined in the trainer and
engines). The acceptance bar for the refactor is that SNAP / SNAP-0 / SNO
runs — RoundRecords, the flow ledger, and the final parameters — are
byte-identical on both engines, clean and under the chaos fault plan.
"""

from __future__ import annotations

import pytest

from tests.compression.conftest import make_trainer, run_digest

GOLDEN = {
    "ape|clean": {
        "rounds_sha": "b744f9f67690516bd15ec0d10972e1f1d6cd95d10fa5cbd839fce0e6782b3c86",
        "ledger_sha": "d0389b65714e3ed202942b710833bace02e891bbca0cc318afdd012c88f025de",
        "final_params_sha": "5a4f2bbc685edadc93c5b06ba29050b5c0a5e39c17c464d63eb0fd2a819426a3",
        "total_bytes": 17828,
        "total_cost": 17828,
        "final_loss": "0x1.4ae69e0d624cfp-1",
    },
    "ape|faulty": {
        "rounds_sha": "5ed6e4a51722e113e99839f0ae4154ab7aef9b8859293359bb31b1f05109be44",
        "ledger_sha": "a1abc24243bc4daf29d76862fbe61a3b7dfb15d2ada554d9e54548b934fc4e80",
        "final_params_sha": "9d34474cc2ab3c8ece4163bec79cbf9e80c529dd5154f7bdd6c5394b4ee0604a",
        "total_bytes": 8784,
        "total_cost": 8784,
        "final_loss": "0x1.5c75da190bd1fp-1",
    },
    "changed_only|clean": {
        "rounds_sha": "0def568bec13491505d3a126071a5d0d597d4521ff1f693e5a5b3349726616e6",
        "ledger_sha": "920594952823d60fe0e54a913455e05381843f9da5a6afdb927c7e72c6d2b8b6",
        "final_params_sha": "90074dec430929f7a25940f8b6c1baa0760b38691e68706cedc2fe237f988a72",
        "total_bytes": 18200,
        "total_cost": 18200,
        "final_loss": "0x1.534fd18d2e803p-1",
    },
    "changed_only|faulty": {
        "rounds_sha": "b6b19041f4b7c73a9aaece61e2bac1846c00916b1570b1e77c1bfccbbaa0c269",
        "ledger_sha": "0062a73c0dc2f17c41e4ab5cfcd606f62f8dbbadc11649ac85144cafc85fb64a",
        "final_params_sha": "2441694e5110b189fe009eef84554ef23f99b0d101423c44eecc0a9ded686ac6",
        "total_bytes": 8840,
        "total_cost": 8840,
        "final_loss": "0x1.5fc0d4b8019a0p-1",
    },
    # On this 5-parameter model SNO and SNAP-0 coincide: with every
    # coordinate changing every round, SNAP-0's UNCHANGED_INDEX frame
    # degenerates to the dense size 4 + 8N, so values *and* bytes agree.
    "dense|clean": None,  # == changed_only|clean
    "dense|faulty": None,  # == changed_only|faulty
}
GOLDEN["dense|clean"] = GOLDEN["changed_only|clean"]
GOLDEN["dense|faulty"] = GOLDEN["changed_only|faulty"]

SELECTIONS = ("ape", "changed_only", "dense")


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
@pytest.mark.parametrize("faulty", [False, True], ids=["clean", "faulty"])
@pytest.mark.parametrize("selection", SELECTIONS)
def test_preset_matches_pre_refactor_golden(engine, selection, faulty):
    trainer = make_trainer(engine, faulty=faulty, selection=selection)
    key = f"{selection}|{'faulty' if faulty else 'clean'}"
    assert run_digest(trainer) == GOLDEN[key]


@pytest.mark.parametrize("selection", SELECTIONS)
def test_explicit_preset_spec_equals_selection_policy(selection):
    """SNAPConfig(compressor='ape') is the same run as selection=APE."""
    via_selection = run_digest(make_trainer("reference", selection=selection))
    via_spec = run_digest(make_trainer("reference", compressor=selection))
    assert via_spec == via_selection
