"""Sanity checks on the public API surface."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_headline_types_importable(self):
        from repro import (  # noqa: F401
            ConvergenceDetector,
            ReproError,
            SNAPConfig,
            SNAPTrainer,
            SelectionPolicy,
            Topology,
            TrainingResult,
        )


SUBPACKAGES = [
    "repro.analysis",
    "repro.baselines",
    "repro.consensus",
    "repro.core",
    "repro.data",
    "repro.faults",
    "repro.models",
    "repro.network",
    "repro.orchestrator",
    "repro.runtime",
    "repro.simulation",
    "repro.testing",
    "repro.topology",
    "repro.utils",
    "repro.weights",
]


@pytest.mark.parametrize("package", SUBPACKAGES)
def test_subpackage_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} has no __all__"
    for name in module.__all__:
        assert getattr(module, name, None) is not None, f"{package}.{name}"


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import exceptions

        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not exceptions.ReproError and name.endswith("Error"):
                    assert issubclass(obj, exceptions.ReproError), name

    def test_catching_the_base_catches_everything(self):
        from repro.exceptions import ConfigurationError, ReproError

        with pytest.raises(ReproError):
            raise ConfigurationError("x")
