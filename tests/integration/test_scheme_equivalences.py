"""Cross-scheme equivalences the paper relies on.

Section V-A: "Consider the topology of our testbed, the accuracy changing
process under PS scheme should be the same as the SNAP-0 scheme" — on a
fully connected testbed with uniform averaging weights, one EXTRA/SNAP-0
iteration mixes exactly like a PS round. We verify the equivalences that are
exactly true in our implementation.
"""

import numpy as np
import pytest

from repro.consensus.extra import ExtraIteration
from repro.core import SNAPConfig, SNAPTrainer
from repro.core.config import SelectionPolicy
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.models.ridge import RidgeRegression
from repro.topology.generators import complete_topology, random_topology
from repro.weights.construction import metropolis_weights


@pytest.fixture
def ridge_case(rng):
    n, p = 180, 3
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p) + 0.05 * rng.normal(size=n)
    dataset = Dataset(X, y)
    model = RidgeRegression(p, regularization=0.1)
    return model, dataset


class TestServerMatchesMatrixEngine:
    """The message-level SNAP-0 trainer must replay the matrix-form EXTRA
    recursion exactly when nothing is suppressed and no links fail."""

    @pytest.mark.parametrize("topology_seed", [0, 1, 2])
    def test_exact_replay(self, ridge_case, topology_seed):
        model, dataset = ridge_case
        topo = random_topology(5, 3.0, seed=topology_seed)
        shards = iid_partition(dataset, 5, seed=3)
        weights = metropolis_weights(topo)
        alpha = 0.05
        init = model.init_params(seed=4)

        trainer = SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig(
                selection=SelectionPolicy.CHANGED_ONLY, alpha=alpha, seed=0
            ),
            weight_matrix=weights,
            initial_params=init,
        )
        trainer.run(max_rounds=12, stop_on_convergence=False)

        gradients = [
            lambda w, s=s: model.gradient(w, s.X, s.y) for s in shards
        ]
        engine = ExtraIteration(weights, gradients, alpha)
        state = engine.run(np.tile(init, (5, 1)), 12)

        np.testing.assert_allclose(trainer.stacked_params(), state.current, atol=1e-10)

    def test_sno_replays_identically_to_snap0(self, ridge_case):
        """SNO sends everything, SNAP-0 sends all changes — identical dynamics."""
        model, dataset = ridge_case
        topo = random_topology(4, 2.5, seed=5)
        shards = iid_partition(dataset, 4, seed=6)
        init = model.init_params(seed=7)
        outcomes = {}
        for name, selection in [
            ("snap0", SelectionPolicy.CHANGED_ONLY),
            ("sno", SelectionPolicy.DENSE),
        ]:
            trainer = SNAPTrainer(
                model,
                shards,
                topo,
                config=SNAPConfig(selection=selection, alpha=0.05, seed=0),
                weight_matrix=metropolis_weights(topo),
                initial_params=init,
            )
            trainer.run(max_rounds=10, stop_on_convergence=False)
            outcomes[name] = trainer.stacked_params()
        np.testing.assert_allclose(outcomes["snap0"], outcomes["sno"], atol=1e-12)


class TestTestbedPSEquivalence:
    def test_uniform_k3_first_snap_step_is_a_ps_step(self, ridge_case):
        """On K3 with W = J/3, the first EXTRA step equals mix-then-descend,
        which is exactly what one PS round computes from a common model."""
        model, dataset = ridge_case
        topo = complete_topology(3)
        shards = iid_partition(dataset, 3, seed=8)
        uniform = np.full((3, 3), 1.0 / 3.0)
        init = model.init_params(seed=9)
        alpha = 0.05

        trainer = SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig(
                selection=SelectionPolicy.CHANGED_ONLY, alpha=alpha, seed=0
            ),
            weight_matrix=uniform,
            initial_params=init,
        )
        trainer.run(max_rounds=1, stop_on_convergence=False)

        # PS from the same common model: x1 = x0 - alpha * mean gradient.
        # With W uniform and identical x0 rows, W x0 = x0, so the EXTRA step
        # is x0 - alpha * grad_i; the *average* over servers matches PS.
        mean_gradient = np.mean(
            [model.gradient(init, s.X, s.y) for s in shards], axis=0
        )
        ps_step = init - alpha * mean_gradient
        np.testing.assert_allclose(trainer.mean_params(), ps_step, atol=1e-12)
