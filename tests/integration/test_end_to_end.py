"""End-to-end integration: the paper's headline behaviours on small workloads."""

import numpy as np
import pytest

from repro.simulation.experiments import credit_svm_workload
from repro.simulation.runner import reference_target_loss, run_comparison, run_scheme


@pytest.fixture(scope="module")
def workload():
    return credit_svm_workload(
        n_servers=8, average_degree=3, n_train=1200, n_test=400, seed=11
    )


@pytest.fixture(scope="module")
def results(workload):
    """One full comparison run shared by the assertions below."""
    target = reference_target_loss(workload, margin=0.03, max_rounds=600)
    return run_comparison(
        workload,
        schemes=("centralized", "ps", "terngrad", "snap", "snap0", "sno"),
        max_rounds=400,
        detector_kwargs={"target_loss": target},
    )


class TestAccuracyClaims:
    def test_snap_matches_centralized_accuracy(self, results):
        """Section V: 'SNAP can achieve the same accuracy performance as the
        centralized training method.'"""
        gap = results["centralized"].final_accuracy - results["snap"].final_accuracy
        assert gap < 0.02

    def test_snap0_matches_centralized_accuracy(self, results):
        gap = results["centralized"].final_accuracy - results["snap0"].final_accuracy
        assert gap < 0.02

    def test_all_schemes_learn_something(self, results):
        for scheme, result in results.items():
            assert result.final_accuracy > 0.7, scheme


class TestConvergenceClaims:
    def test_snap_family_converges(self, results):
        for scheme in ("snap", "snap0", "sno"):
            assert results[scheme].converged_at is not None, scheme

    def test_snap_needs_few_extra_iterations_vs_snap0(self, results):
        """Fig. 6(a): ignoring small changes costs only a few iterations."""
        extra = (
            results["snap"].iterations_to_converge
            - results["snap0"].iterations_to_converge
        )
        assert extra <= 0.5 * results["snap0"].iterations_to_converge


class TestCommunicationClaims:
    def test_snap_cheapest_of_the_decentralized_family(self, results):
        assert results["snap"].total_bytes <= results["snap0"].total_bytes
        assert results["snap0"].total_bytes <= results["sno"].total_bytes

    def test_snap_beats_ps_in_hop_weighted_cost_at_scale(self):
        """Fig. 8(a): SNAP's cost advantage over PS appears as the network
        grows (PS pays multi-hop routing for every dense vector; SNAP pays
        one hop for shrinking frames). On very small networks PS can win —
        the paper's sweep starts at a few dozen servers, so we compare
        there.
        """
        workload = credit_svm_workload(
            n_servers=24, average_degree=3, n_train=2400, n_test=400, seed=11
        )
        target = reference_target_loss(workload, margin=0.03, max_rounds=600)
        outcome = run_comparison(
            workload,
            schemes=("ps", "snap"),
            max_rounds=400,
            detector_kwargs={"target_loss": target},
        )
        assert outcome["snap"].total_cost < outcome["ps"].total_cost

    def test_snap_traffic_decays_while_ps_stays_flat(self, results):
        snap_trace = results["snap"].bytes_trace()
        ps_trace = results["ps"].bytes_trace()
        assert snap_trace[-1] < snap_trace[0]
        assert len(set(ps_trace)) == 1

    def test_centralized_has_zero_iteration_traffic(self, results):
        assert results["centralized"].total_bytes == 0


class TestConsensus:
    def test_snap_servers_agree_at_the_end(self, workload):
        from repro.core import SNAPConfig, SNAPTrainer

        trainer = SNAPTrainer(
            workload.model,
            workload.shards,
            workload.topology,
            config=SNAPConfig(seed=0),
        )
        trainer.run(max_rounds=300)
        stacked = trainer.stacked_params()
        spread = np.max(np.abs(stacked - stacked.mean(axis=0)))
        scale = np.max(np.abs(stacked.mean(axis=0)))
        assert spread < 0.05 * max(scale, 1.0)
