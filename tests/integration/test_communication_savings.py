"""Integration tests for SNAP's communication-saving machinery end to end."""

import numpy as np
import pytest

from repro.core import SNAPConfig, SNAPTrainer
from repro.core.config import SelectionPolicy
from repro.simulation.experiments import mnist_mlp_workload


@pytest.fixture(scope="module")
def mlp_runs():
    """SNAP vs SNAP-0 on the (small) MLP testbed workload with a shared alpha."""
    # Easier noise level so the run converges (and SNAP's traffic decays)
    # within the test's round budget.
    workload = mnist_mlp_workload(
        n_servers=3, n_train=600, n_test=200, noise_std=0.3, seed=1
    )
    init = workload.model.init_params(workload.seed)
    outcomes = {}
    for name, selection in [
        ("snap", SelectionPolicy.APE),
        ("snap0", SelectionPolicy.CHANGED_ONLY),
    ]:
        trainer = SNAPTrainer(
            workload.model,
            workload.shards,
            workload.topology,
            config=SNAPConfig(selection=selection, alpha=0.5, seed=workload.seed),
            initial_params=init,
        )
        outcomes[name] = trainer.run(
            max_rounds=120, test_set=workload.test_set, stop_on_convergence=False
        )
    return outcomes


class TestMLPSavings:
    """The Fig. 4 testbed regime: many parameters, most barely changing."""

    def test_large_byte_savings(self, mlp_runs):
        ratio = mlp_runs["snap"].total_bytes / mlp_runs["snap0"].total_bytes
        assert ratio < 0.7  # the paper reports ~80% savings at convergence

    def test_accuracy_preserved(self, mlp_runs):
        gap = mlp_runs["snap0"].final_accuracy - mlp_runs["snap"].final_accuracy
        assert gap < 0.05

    def test_snap_traffic_decays_toward_zero(self, mlp_runs):
        trace = mlp_runs["snap"].bytes_trace()
        assert trace[-1] < 0.25 * trace[0]

    def test_snap0_traffic_does_not_decay_to_zero(self, mlp_runs):
        """SNAP-0 keeps sending slightly-changed parameters (Fig. 4(b))."""
        trace = mlp_runs["snap0"].bytes_trace()
        assert trace[-1] > 0.5 * trace[0]

    def test_params_sent_shrinks(self, mlp_runs):
        sent = [r.params_sent for r in mlp_runs["snap"].rounds]
        assert sent[-1] < sent[0]


class TestFrameAccounting:
    def test_bytes_match_frame_formulas_exactly(self):
        """Replay a short run and recompute every frame size by hand."""
        workload = mnist_mlp_workload(n_servers=3, n_train=90, n_test=30, seed=2)
        trainer = SNAPTrainer(
            workload.model,
            workload.shards,
            workload.topology,
            config=SNAPConfig(alpha=0.3, seed=0),
        )
        trainer.run(max_rounds=5, stop_on_convergence=False)
        from repro.network.frames import encoded_update_bytes

        total = 0
        for record in trainer.tracker.records():
            assert record.hops == 1
            total += record.size_bytes
        assert total == trainer.tracker.total_bytes
        # every flow's size must be one of the achievable frame sizes
        n_params = workload.model.n_params
        achievable = {
            encoded_update_bytes(n_params, m) for m in range(n_params + 1)
        }
        for record in trainer.tracker.records():
            assert record.size_bytes in achievable
