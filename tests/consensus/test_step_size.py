"""Tests for repro.consensus.step_size."""

import numpy as np
import pytest

from repro.consensus.step_size import extra_max_step_size, safe_step_size
from repro.exceptions import ConfigurationError
from repro.topology.generators import complete_topology
from repro.weights.construction import metropolis_weights


class TestExtraMaxStepSize:
    def test_matches_formula_on_known_spectrum(self):
        # W with eigenvalues {1, 0}: W_tilde has {1, 0.5}, cap = 2*0.5/L.
        n = 3
        w = np.full((n, n), 1.0 / n)
        assert extra_max_step_size(w, lipschitz=2.0) == pytest.approx(0.5)

    def test_identity_matrix_gives_cap_two_over_l(self):
        # W = I: W_tilde = I, lambda_min = 1, cap = 2/L (centralized GD cap).
        assert extra_max_step_size(np.eye(4), lipschitz=4.0) == pytest.approx(0.5)

    def test_scales_inversely_with_lipschitz(self):
        w = metropolis_weights(complete_topology(4))
        assert extra_max_step_size(w, 1.0) == pytest.approx(
            2.0 * extra_max_step_size(w, 2.0)
        )

    def test_rejects_nonpositive_lipschitz(self):
        with pytest.raises(ConfigurationError):
            extra_max_step_size(np.eye(3), 0.0)

    def test_rejects_matrix_with_eigenvalue_at_minus_one(self):
        # W = [[0,1],[1,0]] has eigenvalue -1 -> W_tilde singular.
        w = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ConfigurationError):
            extra_max_step_size(w, 1.0)


class TestSafeStepSize:
    def test_is_fraction_of_cap(self):
        w = metropolis_weights(complete_topology(5))
        cap = extra_max_step_size(w, 3.0)
        assert safe_step_size(w, 3.0, safety=0.5) == pytest.approx(0.5 * cap)

    def test_safety_must_be_fraction(self):
        w = np.eye(3)
        with pytest.raises(ConfigurationError):
            safe_step_size(w, 1.0, safety=1.0)
