"""Tests for repro.consensus.gradient_tracking (DIGing)."""

import numpy as np
import pytest

from repro.consensus.gradient_tracking import GradientTrackingIteration
from repro.exceptions import ConfigurationError
from repro.topology.generators import random_topology
from repro.weights.construction import metropolis_weights
from repro.weights.optimizer import lazify


@pytest.fixture
def setup(rng):
    """Heterogeneous quadratics with a known curvature-weighted optimum."""
    topo = random_topology(6, 3.0, seed=1)
    weights = lazify(metropolis_weights(topo))
    centers = rng.normal(size=(6, 3))
    curvatures = np.array([0.4, 0.6, 0.9, 1.1, 1.4, 1.6])
    gradients = [
        lambda x, c=c, a=a: a * (x - c) for c, a in zip(centers, curvatures)
    ]
    optimum = (curvatures[:, None] * centers).sum(axis=0) / curvatures.sum()
    return weights, gradients, optimum


class TestTrackingInvariant:
    def test_tracker_mean_equals_mean_gradient(self, setup, rng):
        weights, gradients, _ = setup
        engine = GradientTrackingIteration(weights, gradients, alpha=0.1)
        state = engine.initialize(rng.normal(size=(6, 3)))
        for _ in range(15):
            engine.step(state)
            mean_gradient = engine.gradients(state.current).mean(axis=0)
            np.testing.assert_allclose(
                state.tracker.mean(axis=0), mean_gradient, atol=1e-10
            )


class TestConvergence:
    def test_converges_exactly(self, setup):
        weights, gradients, optimum = setup
        engine = GradientTrackingIteration(weights, gradients, alpha=0.15)
        state = engine.run(np.zeros((6, 3)), 800)
        for row in state.current:
            np.testing.assert_allclose(row, optimum, atol=1e-8)

    def test_beats_dgd_bias_like_extra_does(self, setup):
        from repro.consensus.dgd import DGDIteration

        weights, gradients, optimum = setup
        alpha = 0.15
        tracking = GradientTrackingIteration(weights, gradients, alpha).run(
            np.zeros((6, 3)), 800
        )
        dgd = DGDIteration(weights, gradients, alpha).run(np.zeros((6, 3)), 800)
        tracking_gap = np.linalg.norm(tracking.current.mean(axis=0) - optimum)
        dgd_gap = np.linalg.norm(dgd.current.mean(axis=0) - optimum)
        assert tracking_gap < 1e-8
        assert dgd_gap > 1e-3

    def test_comparable_to_extra(self, setup):
        """Both exact engines land on the same solution."""
        from repro.consensus.extra import ExtraIteration

        weights, gradients, optimum = setup
        tracking = GradientTrackingIteration(weights, gradients, 0.15).run(
            np.zeros((6, 3)), 800
        )
        extra = ExtraIteration(weights, gradients, 0.15).run(np.zeros((6, 3)), 800)
        np.testing.assert_allclose(
            tracking.current.mean(axis=0), extra.current.mean(axis=0), atol=1e-6
        )


class TestValidation:
    def test_gradient_count_checked(self, setup):
        weights, gradients, _ = setup
        with pytest.raises(ConfigurationError):
            GradientTrackingIteration(weights, gradients[:2], alpha=0.1)

    def test_initial_shape_checked(self, setup):
        weights, gradients, _ = setup
        engine = GradientTrackingIteration(weights, gradients, alpha=0.1)
        with pytest.raises(ConfigurationError):
            engine.initialize(np.zeros((3, 3)))

    def test_callback_and_counter(self, setup, rng):
        weights, gradients, _ = setup
        engine = GradientTrackingIteration(weights, gradients, alpha=0.1)
        seen = []
        state = engine.run(
            rng.normal(size=(6, 3)), 4, callback=lambda s: seen.append(s.iteration)
        )
        assert seen == [1, 2, 3, 4]
        assert state.iteration == 4
