"""Tests for repro.consensus.dgd."""

import numpy as np
import pytest

from repro.consensus.dgd import DGDIteration
from repro.exceptions import ConfigurationError
from repro.topology.generators import complete_topology
from repro.weights.construction import metropolis_weights


@pytest.fixture
def setup(rng):
    """Heterogeneous quadratics f_i(x) = a_i/2 ||x - c_i||^2.

    Differing curvatures expose DGD's constant-step bias (with identical
    curvature the per-node biases cancel and DGD is accidentally exact).
    """
    topo = complete_topology(4)
    weights = metropolis_weights(topo)
    centers = rng.normal(size=(4, 2))
    curvatures = np.array([0.3, 0.7, 1.2, 1.8])
    gradients = [
        lambda x, c=c, a=a: a * (x - c) for c, a in zip(centers, curvatures)
    ]
    optimum = (curvatures[:, None] * centers).sum(axis=0) / curvatures.sum()
    return weights, gradients, centers, curvatures, optimum


class TestDGD:
    def test_single_step_matches_equation(self, setup, rng):
        weights, gradients, centers, curvatures, _ = setup
        alpha = 0.2
        engine = DGDIteration(weights, gradients, alpha)
        x0 = rng.normal(size=(4, 2))
        state = engine.run(x0, 1)
        expected = weights @ x0 - alpha * (curvatures[:, None] * (x0 - centers))
        np.testing.assert_allclose(state.current, expected)

    def test_reaches_neighborhood_of_optimum(self, setup):
        weights, gradients, _, _, optimum = setup
        engine = DGDIteration(weights, gradients, alpha=0.1)
        state = engine.run(np.zeros((4, 2)), 800)
        gap = np.linalg.norm(state.current.mean(axis=0) - optimum)
        assert 0 < gap < 0.5  # near but not exactly at the optimum

    def test_smaller_step_smaller_bias(self, setup):
        weights, gradients, _, _, optimum = setup

        def bias(alpha):
            state = DGDIteration(weights, gradients, alpha).run(
                np.zeros((4, 2)), 5000
            )
            return np.linalg.norm(state.current.mean(axis=0) - optimum)

        assert bias(0.02) < bias(0.2)

    def test_iteration_counter(self, setup):
        weights, gradients, _, _, _ = setup
        engine = DGDIteration(weights, gradients, alpha=0.1)
        state = engine.run(np.zeros((4, 2)), 3)
        assert state.iteration == 3

    def test_mismatched_gradients_rejected(self, setup):
        weights, gradients, _, _, _ = setup
        with pytest.raises(ConfigurationError):
            DGDIteration(weights, gradients[:2], alpha=0.1)

    def test_bad_initial_shape_rejected(self, setup):
        weights, gradients, _, _, _ = setup
        engine = DGDIteration(weights, gradients, alpha=0.1)
        with pytest.raises(ConfigurationError):
            engine.run(np.zeros((3, 2)), 1)
