"""Tests for repro.consensus.theory — the executable Section IV-B math."""

import numpy as np
import pytest

from repro.consensus.theory import (
    best_delta_bound,
    delta_bound,
    max_step_size_for_linear_rate,
    verify_simplifications,
)
from repro.exceptions import ConfigurationError
from repro.topology.generators import complete_topology, random_topology, ring_topology
from repro.weights.construction import metropolis_weights
from repro.weights.optimizer import lazify, optimize_weight_matrix


@pytest.fixture(params=[0, 1, 2])
def weights(request):
    topo = random_topology(10, 3.0, seed=request.param)
    return metropolis_weights(topo)


class TestSimplifications:
    def test_identities_hold_for_metropolis(self, weights):
        report = verify_simplifications(weights)
        assert report.all_hold

    def test_identities_hold_for_optimized_matrices(self):
        topo = random_topology(8, 3.0, seed=5)
        result = optimize_weight_matrix(topo, iterations=60)
        assert verify_simplifications(result.matrix).all_hold

    def test_identities_hold_for_structured_topologies(self):
        for topo in (ring_topology(7), complete_topology(5)):
            assert verify_simplifications(metropolis_weights(topo)).all_hold

    def test_non_stochastic_matrix_fails_lambda_max(self):
        report = verify_simplifications(0.5 * np.eye(3))
        assert not report.lambda_max_is_one
        assert not report.all_hold


class TestStepCap:
    def test_formula_on_known_spectrum(self):
        # W = J/n: lambda_min(W~) = 0.5, cap = 2 mu 0.5 / L^2 = mu / L^2.
        n = 4
        W = np.full((n, n), 1.0 / n)
        assert max_step_size_for_linear_rate(W, mu_g=2.0, lipschitz=4.0) == (
            pytest.approx(2.0 * 2.0 * 0.5 / 16.0)
        )

    def test_rejects_degenerate_matrix(self):
        W = np.array([[0.0, 1.0], [1.0, 0.0]])  # lambda_min(W~) = 0
        with pytest.raises(ConfigurationError):
            max_step_size_for_linear_rate(W, 1.0, 1.0)


class TestDeltaBound:
    def test_positive_under_valid_step(self, weights):
        lazy = lazify(weights)
        mu_g, lipschitz = 0.5, 2.0
        cap = max_step_size_for_linear_rate(lazy, mu_g, lipschitz)
        bound = best_delta_bound(lazy, 0.25 * cap, mu_g, lipschitz)
        assert bound > 0.0

    def test_bound_collapses_for_oversized_step(self, weights):
        # A huge step violates the second term's condition: the bound
        # certifies nothing (nonpositive).
        assert delta_bound(weights, alpha=100.0, mu_g=0.5, lipschitz=2.0) <= 0.0

    def test_better_mixing_gives_a_larger_bound(self):
        # K_n averaging (gap 1) certifies a faster rate than a ring at the
        # same (alpha, mu, L).
        ring = lazify(metropolis_weights(ring_topology(8)))
        complete = np.full((8, 8), 1.0 / 8.0)
        mu_g, lipschitz = 0.5, 2.0
        alpha = 0.1 * max_step_size_for_linear_rate(ring, mu_g, lipschitz)
        assert best_delta_bound(complete, alpha, mu_g, lipschitz) > (
            best_delta_bound(ring, alpha, mu_g, lipschitz)
        )

    def test_parameter_validation(self, weights):
        with pytest.raises(ConfigurationError):
            delta_bound(weights, alpha=0.1, mu_g=0.5, lipschitz=2.0, theta=1.0)
        with pytest.raises(ConfigurationError):
            delta_bound(weights, alpha=0.1, mu_g=0.5, lipschitz=2.0, eta=1.0)

    def test_best_is_at_least_default(self, weights):
        lazy = lazify(weights)
        mu_g, lipschitz = 0.5, 2.0
        alpha = 0.1 * max_step_size_for_linear_rate(lazy, mu_g, lipschitz)
        default = delta_bound(lazy, alpha, mu_g, lipschitz)
        assert best_delta_bound(lazy, alpha, mu_g, lipschitz) >= default - 1e-15

    def test_bound_certifies_observed_rate_on_quadratics(self):
        """The certified rate must not exceed the empirically observed one.

        Strongly convex quadratics f_i(x) = 0.5||x - c_i||^2 give mu = L = 1
        (and mu_g >= mu); EXTRA's residual should shrink at least as fast as
        the (1+delta)^{-k} certificate.
        """
        from repro.consensus.extra import ExtraIteration

        rng = np.random.default_rng(0)
        topo = random_topology(6, 3.0, seed=3)
        W = lazify(metropolis_weights(topo))
        centers = rng.normal(size=(6, 2))
        gradients = [lambda x, c=c: x - c for c in centers]
        mu_g, lipschitz = 1.0, 1.0
        alpha = 0.25 * max_step_size_for_linear_rate(W, mu_g, lipschitz)
        delta = best_delta_bound(W, alpha, mu_g, lipschitz)
        assert delta > 0

        engine = ExtraIteration(W, gradients, alpha)
        optimum = centers.mean(axis=0)
        state = engine.initialize(np.zeros((6, 2)))
        errors = []
        for _ in range(200):
            engine.step(state)
            errors.append(np.linalg.norm(state.current - optimum))
        observed_rate = (errors[-1] / errors[20]) ** (1.0 / (200 - 21))
        certified_rate = 1.0 / (1.0 + delta)
        assert observed_rate <= certified_rate + 1e-6
