"""Tests for repro.consensus.extra — the matrix-form EXTRA engine."""

import numpy as np
import pytest

from repro.consensus.convergence import consensus_error
from repro.consensus.extra import ExtraIteration
from repro.consensus.step_size import safe_step_size
from repro.data.partition import iid_partition
from repro.exceptions import ConfigurationError
from repro.models.ridge import RidgeRegression
from repro.topology.generators import random_topology
from repro.weights.construction import metropolis_weights
from repro.weights.optimizer import lazify


def quadratic_setup(rng, n_nodes=5, dim=3):
    """Per-node quadratics f_i(x) = 0.5 ||x - c_i||^2 with known optimum.

    The aggregate optimum of sum_i f_i is the mean of the centers.
    """
    centers = rng.normal(size=(n_nodes, dim))
    gradients = [lambda x, c=c: x - c for c in centers]
    return centers, gradients, centers.mean(axis=0)


@pytest.fixture
def topo():
    return random_topology(5, 3.0, seed=0)


@pytest.fixture
def weights(topo):
    return lazify(metropolis_weights(topo))


class TestConstruction:
    def test_rejects_gradient_count_mismatch(self, weights):
        with pytest.raises(ConfigurationError):
            ExtraIteration(weights, [lambda x: x], alpha=0.1)

    def test_rejects_nonsquare_matrix(self):
        with pytest.raises(ConfigurationError):
            ExtraIteration(np.ones((2, 3)), [lambda x: x] * 2, alpha=0.1)

    def test_rejects_bad_initial_shape(self, weights):
        engine = ExtraIteration(weights, [lambda x: x] * 5, alpha=0.1)
        with pytest.raises(ConfigurationError):
            engine.initialize(np.zeros((3, 2)))

    def test_w_tilde_is_average_with_identity(self, weights):
        engine = ExtraIteration(weights, [lambda x: x] * 5, alpha=0.1)
        np.testing.assert_allclose(engine.w_tilde, (weights + np.eye(5)) / 2)


class TestFirstStep:
    def test_matches_equation(self, topo, weights, rng):
        centers, gradients, _ = quadratic_setup(rng)
        alpha = 0.2
        engine = ExtraIteration(weights, gradients, alpha)
        x0 = rng.normal(size=(5, 3))
        state = engine.initialize(x0)
        engine.step(state)
        expected = weights @ x0 - alpha * (x0 - centers)
        np.testing.assert_allclose(state.current, expected)
        np.testing.assert_allclose(state.previous, x0)
        assert state.iteration == 1


class TestSecondStep:
    def test_matches_equation(self, topo, weights, rng):
        centers, gradients, _ = quadratic_setup(rng)
        alpha = 0.2
        engine = ExtraIteration(weights, gradients, alpha)
        x0 = rng.normal(size=(5, 3))
        x1 = weights @ x0 - alpha * (x0 - centers)
        state = engine.run(x0, 2)
        w_tilde = (weights + np.eye(5)) / 2
        expected = (
            (np.eye(5) + weights) @ x1
            - w_tilde @ x0
            - alpha * ((x1 - centers) - (x0 - centers))
        )
        np.testing.assert_allclose(state.current, expected)


class TestConvergence:
    def test_converges_to_aggregate_optimum(self, topo, weights, rng):
        centers, gradients, optimum = quadratic_setup(rng)
        engine = ExtraIteration(weights, gradients, alpha=0.3)
        state = engine.run(np.zeros((5, 3)), 400)
        for row in state.current:
            np.testing.assert_allclose(row, optimum, atol=1e-6)

    def test_consensus_error_vanishes(self, topo, weights, rng):
        _, gradients, _ = quadratic_setup(rng)
        engine = ExtraIteration(weights, gradients, alpha=0.3)
        state = engine.run(rng.normal(size=(5, 3)), 400)
        assert consensus_error(state.current) < 1e-8

    def test_exactness_beats_dgd_bias(self, topo, weights, rng):
        """EXTRA's signature property: exact convergence with constant step.

        Heterogeneous curvatures ``f_i(x) = a_i/2 ||x - c_i||^2`` are needed
        to expose DGD's bias — with identical curvature the biases cancel.
        The aggregate optimum is the curvature-weighted center mean.
        """
        from repro.consensus.dgd import DGDIteration

        centers = rng.normal(size=(5, 3))
        curvatures = np.array([0.2, 0.5, 1.0, 1.5, 2.0])
        gradients = [
            lambda x, c=c, a=a: a * (x - c) for c, a in zip(centers, curvatures)
        ]
        optimum = (curvatures[:, None] * centers).sum(axis=0) / curvatures.sum()
        alpha = 0.2
        extra = ExtraIteration(weights, gradients, alpha).run(np.zeros((5, 3)), 800)
        dgd = DGDIteration(weights, gradients, alpha).run(np.zeros((5, 3)), 800)
        extra_gap = np.linalg.norm(extra.current.mean(axis=0) - optimum)
        dgd_gap = np.linalg.norm(dgd.current.mean(axis=0) - optimum)
        assert extra_gap < 1e-6
        assert dgd_gap > 100 * extra_gap  # DGD stalls at a biased fixed point

    def test_converges_on_ridge_shards_to_global_solution(self, rng):
        """End-to-end against the closed-form ridge optimum.

        Equal-size shards make the EXTRA objective sum_i f_i proportional to
        the full-data ridge objective, so the consensual optimum equals the
        closed-form solution on the concatenated data.
        """
        topo = random_topology(4, 2.5, seed=1)
        weights = lazify(metropolis_weights(topo))
        n, p = 160, 3
        X = rng.normal(size=(n, p))
        y = X @ rng.normal(size=p) + 0.1 * rng.normal(size=n)
        from repro.data.dataset import Dataset

        shards = iid_partition(Dataset(X, y), 4, seed=2)
        model = RidgeRegression(p, regularization=0.1)
        gradients = [
            lambda w, s=s: model.gradient(w, s.X, s.y) for s in shards
        ]
        lipschitz = max(model.gradient_lipschitz_bound(s.X) for s in shards)
        alpha = safe_step_size(weights, lipschitz)
        engine = ExtraIteration(weights, gradients, alpha)
        state = engine.run(np.zeros((4, model.n_params)), 2500)
        exact = model.solve_exact(X, y)
        for row in state.current:
            np.testing.assert_allclose(row, exact, atol=1e-4)

    def test_callback_sees_every_iteration(self, weights, rng):
        _, gradients, _ = quadratic_setup(rng)
        engine = ExtraIteration(weights, gradients, alpha=0.1)
        seen = []
        engine.run(np.zeros((5, 3)), 7, callback=lambda s: seen.append(s.iteration))
        assert seen == list(range(1, 8))

    def test_negative_iterations_rejected(self, weights, rng):
        _, gradients, _ = quadratic_setup(rng)
        engine = ExtraIteration(weights, gradients, alpha=0.1)
        with pytest.raises(ConfigurationError):
            engine.run(np.zeros((5, 3)), -1)
