"""Tests for repro.consensus.convergence."""

import numpy as np
import pytest

from repro.consensus.convergence import (
    ConvergenceDetector,
    consensus_error,
    mean_parameters,
)


class TestConsensusError:
    def test_zero_at_consensus(self):
        stacked = np.tile(np.array([1.0, 2.0, 3.0]), (4, 1))
        assert consensus_error(stacked) == 0.0

    def test_positive_off_consensus(self):
        stacked = np.array([[0.0, 0.0], [2.0, 2.0]])
        assert consensus_error(stacked) == pytest.approx(1.0)

    def test_scale_with_deviation(self):
        base = np.array([[0.0], [2.0]])
        assert consensus_error(3 * base) == pytest.approx(3 * consensus_error(base))

    def test_mean_parameters(self):
        stacked = np.array([[1.0, 3.0], [3.0, 5.0]])
        np.testing.assert_allclose(mean_parameters(stacked), [2.0, 4.0])


class TestPlateauDetection:
    def test_flat_loss_converges_after_window(self):
        detector = ConvergenceDetector(loss_window=3, min_iterations=3)
        results = [detector.observe(1.0) for _ in range(5)]
        assert results == [False, False, True, True, True]
        assert detector.converged_at == 3

    def test_decreasing_loss_does_not_converge(self):
        detector = ConvergenceDetector(loss_window=3, min_iterations=1)
        for k in range(10):
            assert not detector.observe(10.0 - k)

    def test_relative_tolerance_scales_with_loss(self):
        detector = ConvergenceDetector(
            loss_window=3, relative_loss_tolerance=0.01, min_iterations=1
        )
        # fluctuations of 0.5% around 100 -> within 1% relative tolerance
        assert not detector.observe(100.0)
        assert not detector.observe(100.5)
        assert detector.observe(100.2)

    def test_consensus_gate_blocks_convergence(self):
        detector = ConvergenceDetector(
            loss_window=2, min_iterations=1, consensus_tolerance=0.1
        )
        for _ in range(5):
            assert not detector.observe(1.0, consensus=0.5)
        assert detector.observe(1.0, consensus=0.01)

    def test_min_iterations_enforced(self):
        detector = ConvergenceDetector(loss_window=2, min_iterations=10)
        for _ in range(9):
            assert not detector.observe(1.0)
        assert detector.observe(1.0)

    def test_reset_clears_state(self):
        detector = ConvergenceDetector(loss_window=2, min_iterations=1)
        detector.observe(1.0)
        detector.observe(1.0)
        assert detector.converged
        detector.reset()
        assert not detector.converged
        assert detector.converged_at is None
        assert not detector.observe(5.0)

    def test_convergence_is_sticky(self):
        detector = ConvergenceDetector(loss_window=2, min_iterations=1)
        detector.observe(1.0)
        detector.observe(1.0)
        assert detector.observe(100.0)  # stays converged
        assert detector.converged_at == 2


class TestTargetDetection:
    def test_fires_exactly_at_target(self):
        detector = ConvergenceDetector(target_loss=0.5)
        assert not detector.observe(0.9)
        assert not detector.observe(0.6)
        assert detector.observe(0.5)
        assert detector.converged_at == 3

    def test_target_ignores_plateau(self):
        detector = ConvergenceDetector(
            target_loss=0.1, loss_window=2, min_iterations=1
        )
        # perfectly flat but above target: never converges
        for _ in range(10):
            assert not detector.observe(0.2)

    def test_target_respects_consensus_gate(self):
        detector = ConvergenceDetector(target_loss=0.5, consensus_tolerance=0.01)
        assert not detector.observe(0.4, consensus=1.0)
        assert detector.observe(0.4, consensus=0.0)
