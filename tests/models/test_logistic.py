"""Tests for repro.models.logistic.LogisticRegression."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.models.logistic import LogisticRegression, _stable_sigmoid
from repro.models.metrics import accuracy_score


class TestStableSigmoid:
    def test_matches_naive_formula_in_safe_range(self, rng):
        z = rng.normal(0, 3, size=100)
        np.testing.assert_allclose(_stable_sigmoid(z), 1 / (1 + np.exp(-z)))

    def test_no_overflow_at_extremes(self):
        out = _stable_sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.all(np.isfinite(out))


class TestLoss:
    def test_zero_params_gives_log2(self, binary_dataset):
        model = LogisticRegression(binary_dataset.n_features, regularization=0.0)
        loss = model.loss(np.zeros(model.n_params), binary_dataset.X, binary_dataset.y)
        assert loss == pytest.approx(np.log(2.0))

    def test_extreme_margins_do_not_overflow(self, binary_dataset):
        model = LogisticRegression(binary_dataset.n_features)
        huge = np.full(model.n_params, 1e4)
        assert np.isfinite(model.loss(huge, binary_dataset.X, binary_dataset.y))

    def test_accepts_both_label_conventions(self, binary_dataset):
        model = LogisticRegression(binary_dataset.n_features)
        params = model.init_params(seed=0)
        y01 = (binary_dataset.y + 1) / 2
        assert model.loss(params, binary_dataset.X, binary_dataset.y) == pytest.approx(
            model.loss(params, binary_dataset.X, y01)
        )

    def test_rejects_other_labels(self, binary_dataset):
        model = LogisticRegression(binary_dataset.n_features)
        with pytest.raises(DataError):
            model.loss(
                model.init_params(0),
                binary_dataset.X,
                np.full(binary_dataset.n_samples, 3.0),
            )


class TestTraining:
    def test_learns_separable_data(self, rng):
        n = 300
        X = rng.normal(size=(n, 4))
        w = np.array([1.5, -2.0, 1.0, 0.5])
        y = (X @ w > 0).astype(float)
        model = LogisticRegression(4, regularization=1e-3)
        params = model.init_params(seed=1)
        step = 1.0 / model.gradient_lipschitz_bound(X)
        for _ in range(800):
            params = params - step * model.gradient(params, X, y)
        assert accuracy_score(y, model.predict(params, X)) > 0.97

    def test_predict_proba_in_unit_interval(self, binary_dataset):
        model = LogisticRegression(binary_dataset.n_features)
        probs = model.predict_proba(model.init_params(seed=2), binary_dataset.X)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_predictions_are_zero_one(self, binary_dataset):
        model = LogisticRegression(binary_dataset.n_features)
        preds = model.predict(model.init_params(seed=3), binary_dataset.X)
        assert set(np.unique(preds)) <= {0.0, 1.0}

    def test_lipschitz_bound_holds(self, binary_dataset, rng):
        model = LogisticRegression(binary_dataset.n_features, regularization=0.01)
        bound = model.gradient_lipschitz_bound(binary_dataset.X)
        for _ in range(10):
            a = rng.normal(size=model.n_params)
            b = rng.normal(size=model.n_params)
            gap = np.linalg.norm(
                model.gradient(a, binary_dataset.X, binary_dataset.y)
                - model.gradient(b, binary_dataset.X, binary_dataset.y)
            )
            assert gap <= bound * np.linalg.norm(a - b) + 1e-9
