"""Tests for repro.models.metrics."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.models.metrics import accuracy_score, zero_one_error


class TestAccuracy:
    def test_perfect(self):
        y = np.array([1, 0, 1])
        assert accuracy_score(y, y) == 1.0

    def test_half(self):
        assert accuracy_score(np.array([1, 0]), np.array([1, 1])) == 0.5

    def test_signed_labels(self):
        assert accuracy_score(np.array([-1.0, 1.0]), np.array([-1.0, -1.0])) == 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            accuracy_score(np.array([1, 0]), np.array([1]))

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            accuracy_score(np.array([]), np.array([]))


class TestZeroOne:
    def test_complements_accuracy(self):
        y_true = np.array([0, 1, 2, 1])
        y_pred = np.array([0, 2, 2, 1])
        assert zero_one_error(y_true, y_pred) == pytest.approx(
            1.0 - accuracy_score(y_true, y_pred)
        )
