"""Tests for repro.models.ridge.RidgeRegression."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.models.ridge import RidgeRegression


class TestExactSolution:
    def test_gradient_vanishes_at_closed_form_optimum(self, linear_dataset):
        model = RidgeRegression(linear_dataset.n_features, regularization=0.05)
        optimum = model.solve_exact(linear_dataset.X, linear_dataset.y)
        gradient = model.gradient(optimum, linear_dataset.X, linear_dataset.y)
        np.testing.assert_allclose(gradient, 0.0, atol=1e-10)

    def test_closed_form_beats_any_random_point(self, linear_dataset, rng):
        model = RidgeRegression(linear_dataset.n_features, regularization=0.05)
        optimum = model.solve_exact(linear_dataset.X, linear_dataset.y)
        best = model.loss(optimum, linear_dataset.X, linear_dataset.y)
        for _ in range(20):
            other = rng.normal(size=model.n_params)
            assert best <= model.loss(other, linear_dataset.X, linear_dataset.y)

    def test_gradient_descent_converges_to_closed_form(self, linear_dataset):
        model = RidgeRegression(linear_dataset.n_features, regularization=0.05)
        optimum = model.solve_exact(linear_dataset.X, linear_dataset.y)
        params = np.zeros(model.n_params)
        step = 1.0 / model.gradient_lipschitz_bound(linear_dataset.X)
        for _ in range(2000):
            params = params - step * model.gradient(
                params, linear_dataset.X, linear_dataset.y
            )
        np.testing.assert_allclose(params, optimum, atol=1e-6)

    def test_recovers_true_weights_on_clean_data(self, rng):
        n, p = 400, 4
        X = rng.normal(size=(n, p))
        true = np.array([1.0, -2.0, 0.5, 3.0, -1.0])  # last entry is bias
        y = X @ true[:-1] + true[-1]
        model = RidgeRegression(p, regularization=1e-8)
        estimate = model.solve_exact(X, y)
        np.testing.assert_allclose(estimate, true, atol=1e-4)


class TestInterface:
    def test_predict_is_linear(self, linear_dataset):
        model = RidgeRegression(linear_dataset.n_features)
        params = model.init_params(seed=0)
        a = model.predict(params, linear_dataset.X)
        b = model.predict(2 * params, linear_dataset.X)
        np.testing.assert_allclose(b, 2 * a)

    def test_lipschitz_bound_is_exact_for_quadratic(self, linear_dataset, rng):
        model = RidgeRegression(linear_dataset.n_features, regularization=0.1)
        bound = model.gradient_lipschitz_bound(linear_dataset.X)
        # For a quadratic the bound equals the Hessian's top eigenvalue;
        # verify tightness within a few percent using random directions.
        observed = 0.0
        for _ in range(30):
            a = rng.normal(size=model.n_params)
            b = rng.normal(size=model.n_params)
            gap = np.linalg.norm(
                model.gradient(a, linear_dataset.X, linear_dataset.y)
                - model.gradient(b, linear_dataset.X, linear_dataset.y)
            )
            observed = max(observed, gap / np.linalg.norm(a - b))
        assert observed <= bound + 1e-9
        assert observed >= 0.5 * bound

    def test_feature_mismatch_rejected(self, linear_dataset):
        model = RidgeRegression(linear_dataset.n_features + 1)
        with pytest.raises(DataError):
            model.loss(model.init_params(0), linear_dataset.X, linear_dataset.y)

    def test_no_intercept_variant(self, rng):
        model = RidgeRegression(3, fit_intercept=False)
        assert model.n_params == 3
        X = rng.normal(size=(10, 3))
        y = rng.normal(size=10)
        assert np.isfinite(model.loss(np.zeros(3), X, y))
