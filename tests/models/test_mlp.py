"""Tests for repro.models.mlp.MLPClassifier."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.models.metrics import accuracy_score
from repro.models.mlp import MLPClassifier


@pytest.fixture
def xor_like(rng):
    """A small nonlinearly separable problem (XOR with noise)."""
    n = 240
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int64)
    return X, y


class TestConstruction:
    def test_param_count(self):
        model = MLPClassifier((784, 30, 10))
        assert model.n_params == 784 * 30 + 30 + 30 * 10 + 10

    def test_needs_two_layers(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier((5,))

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier((5, 0, 2))

    def test_n_classes_is_output_size(self):
        assert MLPClassifier((4, 3, 7)).n_classes == 7


class TestPacking:
    def test_pack_unpack_round_trip(self, rng):
        model = MLPClassifier((5, 4, 3))
        params = model.init_params(seed=0)
        repacked = model.pack(model.unpack(params))
        np.testing.assert_array_equal(repacked, params)

    def test_unpack_shapes(self):
        model = MLPClassifier((5, 4, 3))
        layers = model.unpack(model.init_params(seed=1))
        assert layers[0][0].shape == (5, 4)
        assert layers[0][1].shape == (4,)
        assert layers[1][0].shape == (4, 3)
        assert layers[1][1].shape == (3,)

    def test_unpack_gives_views_into_the_flat_vector(self):
        model = MLPClassifier((3, 2, 2))
        params = model.init_params(seed=2)
        layers = model.unpack(params)
        layers[0][0][0, 0] = 123.0
        assert params[0] == 123.0


class TestForward:
    def test_probabilities_sum_to_one(self, xor_like):
        X, _ = xor_like
        model = MLPClassifier((2, 6, 2))
        probs = model.predict_proba(model.init_params(seed=0), X)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_zero_params_give_uniform_probabilities(self, xor_like):
        X, y = xor_like
        model = MLPClassifier((2, 6, 2), regularization=0.0)
        probs = model.predict_proba(np.zeros(model.n_params), X)
        np.testing.assert_allclose(probs, 0.5)
        assert model.loss(np.zeros(model.n_params), X, y) == pytest.approx(np.log(2))

    def test_feature_mismatch_rejected(self, xor_like):
        X, y = xor_like
        model = MLPClassifier((3, 4, 2))
        with pytest.raises(DataError):
            model.loss(model.init_params(0), X, y)

    def test_label_range_checked(self, xor_like):
        X, _ = xor_like
        model = MLPClassifier((2, 4, 2))
        with pytest.raises(DataError):
            model.loss(model.init_params(0), X, np.full(X.shape[0], 2))


class TestTraining:
    def test_learns_xor(self, xor_like):
        X, y = xor_like
        model = MLPClassifier((2, 12, 2), regularization=1e-5)
        params = model.init_params(seed=3)
        for _ in range(1500):
            params = params - 1.0 * model.gradient(params, X, y)
        assert accuracy_score(y, model.predict(params, X)) > 0.9

    def test_xavier_init_scales_with_fan_in(self):
        model = MLPClassifier((1000, 10, 2))
        layers = model.unpack(model.init_params(seed=4))
        first_std = layers[0][0].std()
        second_std = layers[1][0].std()
        assert first_std < second_std  # 1/sqrt(1000) << 1/sqrt(10)

    def test_biases_initialized_to_zero(self):
        model = MLPClassifier((4, 3, 2))
        layers = model.unpack(model.init_params(seed=5))
        for _w, bias in layers:
            np.testing.assert_array_equal(bias, 0.0)

    def test_regularization_pulls_loss_up(self, xor_like):
        X, y = xor_like
        params = MLPClassifier((2, 4, 2), regularization=0.0).init_params(seed=6)
        plain = MLPClassifier((2, 4, 2), regularization=0.0).loss(params, X, y)
        regularized = MLPClassifier((2, 4, 2), regularization=1.0).loss(params, X, y)
        assert regularized > plain
