"""Numerical gradient checks for every model.

EXTRA is a first-order method: a wrong gradient silently wrecks convergence,
so each model's hand-derived gradient is checked against central differences
on random parameters and data.
"""

import numpy as np
import pytest

from repro.models.logistic import LogisticRegression
from repro.models.mlp import MLPClassifier
from repro.models.ridge import RidgeRegression
from repro.models.softmax import SoftmaxRegression
from repro.models.svm import LinearSVM


def _random_batch(rng, n, p, labels):
    X = rng.normal(size=(n, p))
    if labels == "signed":
        y = rng.choice([-1.0, 1.0], size=n)
    elif labels == "binary":
        y = rng.choice([0.0, 1.0], size=n)
    elif labels == "real":
        y = rng.normal(size=n)
    else:
        y = rng.integers(0, labels, size=n)
    return X, y


MODELS = [
    ("svm", lambda p: LinearSVM(p, regularization=0.05), "signed"),
    ("svm_noreg", lambda p: LinearSVM(p, regularization=0.0), "signed"),
    (
        "svm_nobias",
        lambda p: LinearSVM(p, regularization=0.02, fit_intercept=False),
        "signed",
    ),
    ("logistic", lambda p: LogisticRegression(p, regularization=0.03), "binary"),
    ("ridge", lambda p: RidgeRegression(p, regularization=0.1), "real"),
    ("softmax", lambda p: SoftmaxRegression(p, n_classes=4, regularization=0.02), 4),
    (
        "mlp",
        lambda p: MLPClassifier((p, 7, 3), regularization=0.01),
        3,
    ),
    (
        "mlp_deep",
        lambda p: MLPClassifier((p, 6, 5, 3), regularization=0.0),
        3,
    ),
]


@pytest.mark.parametrize("name,factory,labels", MODELS, ids=[m[0] for m in MODELS])
def test_gradient_matches_finite_differences(name, factory, labels, gradient_checker):
    rng = np.random.default_rng(hash(name) % 2**32)
    p = 5
    model = factory(p)
    X, y = _random_batch(rng, 20, p, labels)
    params = model.init_params(seed=1, scale=0.3) if name.startswith("mlp") is False else model.init_params(seed=1)
    analytic = model.gradient(params, X, y)
    numeric = gradient_checker(lambda w: model.loss(w, X, y), params)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)


@pytest.mark.parametrize("name,factory,labels", MODELS, ids=[m[0] for m in MODELS])
def test_gradient_shape_matches_params(name, factory, labels):
    rng = np.random.default_rng(0)
    model = factory(5)
    X, y = _random_batch(rng, 10, 5, labels)
    params = model.init_params(seed=2)
    assert model.gradient(params, X, y).shape == (model.n_params,)


@pytest.mark.parametrize("name,factory,labels", MODELS, ids=[m[0] for m in MODELS])
def test_gradient_step_decreases_loss(name, factory, labels):
    rng = np.random.default_rng(1)
    model = factory(5)
    X, y = _random_batch(rng, 40, 5, labels)
    params = model.init_params(seed=3)
    gradient = model.gradient(params, X, y)
    before = model.loss(params, X, y)
    after = model.loss(params - 1e-3 * gradient, X, y)
    assert after <= before
