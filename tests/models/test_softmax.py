"""Tests for repro.models.softmax.SoftmaxRegression."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.models.metrics import accuracy_score
from repro.models.softmax import SoftmaxRegression


@pytest.fixture
def blobs(rng):
    """Three Gaussian blobs in 2-D, trivially separable."""
    centers = np.array([[3.0, 0.0], [-3.0, 3.0], [0.0, -3.0]])
    X = np.concatenate([c + 0.5 * rng.normal(size=(60, 2)) for c in centers])
    y = np.repeat([0, 1, 2], 60)
    return X, y


class TestLoss:
    def test_zero_params_gives_log_k(self, blobs):
        X, y = blobs
        model = SoftmaxRegression(2, n_classes=3, regularization=0.0)
        loss = model.loss(np.zeros(model.n_params), X, y)
        assert loss == pytest.approx(np.log(3.0))

    def test_shift_invariance_of_logits(self, blobs):
        # Adding a constant column offset to every class leaves softmax
        # probabilities unchanged (only through the bias rows).
        X, y = blobs
        model = SoftmaxRegression(2, n_classes=3, regularization=0.0)
        params = model.init_params(seed=0)
        weights = params.reshape(model.n_inputs, 3).copy()
        shifted = weights.copy()
        shifted[-1] += 5.0  # bias row: same shift for every class
        a = model.predict_proba(weights.reshape(-1), X)
        b = model.predict_proba(shifted.reshape(-1), X)
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_extreme_logits_stable(self, blobs):
        X, y = blobs
        model = SoftmaxRegression(2, n_classes=3)
        huge = np.full(model.n_params, 500.0)
        assert np.isfinite(model.loss(huge, X, y))


class TestLabels:
    def test_rejects_out_of_range(self, blobs):
        X, _ = blobs
        model = SoftmaxRegression(2, n_classes=3)
        with pytest.raises(DataError):
            model.loss(model.init_params(0), X, np.full(X.shape[0], 3))

    def test_rejects_non_integer(self, blobs):
        X, _ = blobs
        model = SoftmaxRegression(2, n_classes=3)
        with pytest.raises(DataError):
            model.loss(model.init_params(0), X, np.full(X.shape[0], 0.5))

    def test_needs_two_classes(self):
        with pytest.raises(DataError):
            SoftmaxRegression(2, n_classes=1)


class TestTraining:
    def test_learns_blobs(self, blobs):
        X, y = blobs
        model = SoftmaxRegression(2, n_classes=3, regularization=1e-3)
        params = model.init_params(seed=1)
        step = 1.0 / model.gradient_lipschitz_bound(X)
        for _ in range(500):
            params = params - step * model.gradient(params, X, y)
        assert accuracy_score(y, model.predict(params, X)) > 0.97

    def test_probabilities_sum_to_one(self, blobs):
        X, _ = blobs
        model = SoftmaxRegression(2, n_classes=3)
        probs = model.predict_proba(model.init_params(seed=2), X)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_n_params_accounting(self):
        assert SoftmaxRegression(10, 4).n_params == 11 * 4
        assert SoftmaxRegression(10, 4, fit_intercept=False).n_params == 40
