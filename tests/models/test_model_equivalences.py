"""Cross-model mathematical equivalences and consistency checks."""

import numpy as np
import pytest

from repro.models.logistic import LogisticRegression
from repro.models.ridge import RidgeRegression
from repro.models.softmax import SoftmaxRegression
from repro.models.svm import LinearSVM


class TestSoftmaxLogisticEquivalence:
    """Two-class softmax and binary logistic regression define the same
    classifier family; trained on the same data they reach the same decision
    boundary (their parametrizations differ by a gauge)."""

    def test_same_predictions_after_training(self, rng):
        n, p = 240, 3
        X = rng.normal(size=(n, p))
        w = rng.normal(size=p)
        y01 = (X @ w + 0.2 * rng.normal(size=n) > 0).astype(np.int64)

        logistic = LogisticRegression(p, regularization=1e-3)
        params_l = logistic.init_params(seed=0)
        step = 1.0 / logistic.gradient_lipschitz_bound(X)
        for _ in range(1500):
            params_l = params_l - step * logistic.gradient(params_l, X, y01.astype(float))

        softmax = SoftmaxRegression(p, n_classes=2, regularization=1e-3)
        params_s = softmax.init_params(seed=0)
        step = 1.0 / softmax.gradient_lipschitz_bound(X)
        for _ in range(1500):
            params_s = params_s - step * softmax.gradient(params_s, X, y01)

        pred_l = logistic.predict(params_l, X)
        pred_s = softmax.predict(params_s, X).astype(float)
        agreement = np.mean(pred_l == pred_s)
        assert agreement > 0.99

    def test_probabilities_agree(self, rng):
        """With matched parameters (softmax columns w/2, -w/2), the
        probability functions coincide exactly."""
        p = 4
        logistic = LogisticRegression(p, regularization=0.0)
        softmax = SoftmaxRegression(p, n_classes=2, regularization=0.0)
        w = rng.normal(size=logistic.n_params)
        # softmax weight matrix: class-0 column -w/2, class-1 column +w/2
        matrix = np.stack([-w / 2, w / 2], axis=1)
        X = rng.normal(size=(50, p))
        p_logistic = logistic.predict_proba(w, X)
        p_softmax = softmax.predict_proba(matrix.reshape(-1), X)[:, 1]
        np.testing.assert_allclose(p_logistic, p_softmax, atol=1e-12)


class TestInitializationContracts:
    @pytest.mark.parametrize(
        "model",
        [
            LinearSVM(5),
            LogisticRegression(5),
            RidgeRegression(5),
            SoftmaxRegression(5, 3),
        ],
        ids=["svm", "logistic", "ridge", "softmax"],
    )
    def test_init_is_seed_deterministic(self, model):
        np.testing.assert_array_equal(
            model.init_params(seed=7), model.init_params(seed=7)
        )
        assert not np.array_equal(
            model.init_params(seed=7), model.init_params(seed=8)
        )

    def test_mlp_init_deterministic(self):
        from repro.models.mlp import MLPClassifier

        model = MLPClassifier((6, 4, 2))
        np.testing.assert_array_equal(
            model.init_params(seed=7), model.init_params(seed=7)
        )


class TestSvmVsLogisticOnSeparableData:
    def test_both_separate_clean_data(self, rng):
        n, p = 200, 3
        X = rng.normal(size=(n, p))
        w = rng.normal(size=p)
        signed = np.where(X @ w > 0, 1.0, -1.0)

        svm = LinearSVM(p, regularization=1e-4)
        params = svm.init_params(seed=0)
        step = 0.5 / svm.gradient_lipschitz_bound(X)
        for _ in range(600):
            params = params - step * svm.gradient(params, X, signed)
        svm_accuracy = np.mean(svm.predict(params, X) == signed)

        logistic = LogisticRegression(p, regularization=1e-4)
        params = logistic.init_params(seed=0)
        step = 0.5 / logistic.gradient_lipschitz_bound(X)
        y01 = (signed + 1) / 2
        for _ in range(600):
            params = params - step * logistic.gradient(params, X, y01)
        logistic_accuracy = np.mean(logistic.predict(params, X) == y01)

        assert svm_accuracy > 0.98
        assert logistic_accuracy > 0.98
