"""Tests for repro.models.svm.LinearSVM."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.models.metrics import accuracy_score
from repro.models.svm import LinearSVM


@pytest.fixture
def separable(rng):
    n = 200
    X = rng.normal(size=(n, 3))
    w = np.array([2.0, -1.0, 0.5])
    y = np.where(X @ w > 0, 1.0, -1.0)
    return X, y


class TestLoss:
    def test_zero_params_loss_is_one_plus_reg(self, separable):
        X, y = separable
        model = LinearSVM(3, regularization=0.0)
        # margin 0 everywhere -> squared hinge = 1 for every sample.
        assert model.loss(np.zeros(model.n_params), X, y) == pytest.approx(1.0)

    def test_perfect_margin_has_zero_data_loss(self):
        X = np.array([[1.0], [-1.0]])
        y = np.array([1.0, -1.0])
        model = LinearSVM(1, regularization=0.0, fit_intercept=False)
        assert model.loss(np.array([2.0]), X, y) == pytest.approx(0.0)

    def test_regularizer_added(self):
        X = np.array([[1.0], [-1.0]])
        y = np.array([1.0, -1.0])
        model = LinearSVM(1, regularization=0.5, fit_intercept=False)
        w = np.array([2.0])
        assert model.loss(w, X, y) == pytest.approx(0.5 * 0.5 * 4.0)

    def test_loss_is_convex_along_a_line(self, separable, rng):
        X, y = separable
        model = LinearSVM(3, regularization=0.01)
        a = rng.normal(size=model.n_params)
        b = rng.normal(size=model.n_params)
        mid = model.loss((a + b) / 2, X, y)
        assert mid <= (model.loss(a, X, y) + model.loss(b, X, y)) / 2 + 1e-12


class TestLabels:
    def test_accepts_zero_one_labels(self, separable):
        X, y = separable
        model = LinearSVM(3)
        y01 = (y + 1) / 2
        params = model.init_params(seed=0)
        assert model.loss(params, X, y) == pytest.approx(model.loss(params, X, y01))

    def test_rejects_other_labels(self, separable):
        X, _ = separable
        model = LinearSVM(3)
        with pytest.raises(DataError):
            model.loss(model.init_params(0), X, np.full(X.shape[0], 2.0))


class TestTraining:
    def test_gradient_descent_separates_separable_data(self, separable):
        X, y = separable
        model = LinearSVM(3, regularization=1e-3)
        params = model.init_params(seed=1)
        step = 0.5 / model.gradient_lipschitz_bound(X)
        for _ in range(300):
            params = params - step * model.gradient(params, X, y)
        assert accuracy_score(y, model.predict(params, X)) > 0.98

    def test_predictions_are_signed(self, separable):
        X, y = separable
        model = LinearSVM(3)
        preds = model.predict(model.init_params(seed=2), X)
        assert set(np.unique(preds)) <= {-1.0, 1.0}

    def test_decision_function_sign_matches_predict(self, separable):
        X, _ = separable
        model = LinearSVM(3)
        params = model.init_params(seed=3)
        margins = model.decision_function(params, X)
        preds = model.predict(params, X)
        np.testing.assert_array_equal(preds, np.where(margins >= 0, 1.0, -1.0))


class TestValidation:
    def test_feature_mismatch_rejected(self, separable):
        X, y = separable
        model = LinearSVM(5)
        with pytest.raises(DataError):
            model.loss(model.init_params(0), X, y)

    def test_param_shape_checked(self, separable):
        X, y = separable
        model = LinearSVM(3)
        with pytest.raises(DataError):
            model.loss(np.zeros(2), X, y)

    def test_empty_batch_rejected(self):
        model = LinearSVM(3)
        with pytest.raises(DataError):
            model.loss(model.init_params(0), np.empty((0, 3)), np.empty(0))

    def test_n_params_counts_intercept(self):
        assert LinearSVM(24).n_params == 25
        assert LinearSVM(24, fit_intercept=False).n_params == 24


class TestLipschitz:
    def test_bound_dominates_observed_curvature(self, separable, rng):
        X, y = separable
        model = LinearSVM(3, regularization=0.01)
        bound = model.gradient_lipschitz_bound(X)
        for _ in range(10):
            a = rng.normal(size=model.n_params)
            b = rng.normal(size=model.n_params)
            grad_gap = np.linalg.norm(
                model.gradient(a, X, y) - model.gradient(b, X, y)
            )
            assert grad_gap <= bound * np.linalg.norm(a - b) + 1e-9
