"""ScenarioGen: determinism, lattice validity, and fresh-object discipline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.spec import CompressorSpec
from repro.core.config import SelectionPolicy, StragglerStrategy
from repro.testing import Scenario, ScenarioGen

GEN = ScenarioGen(master_seed=7)
SAMPLE = GEN.scenarios(12)


class TestDeterminism:
    def test_scenario_is_a_pure_function_of_its_index(self):
        assert GEN.scenario(5) == ScenarioGen(7).scenario(5)

    def test_index_order_does_not_matter(self):
        fresh = ScenarioGen(7)
        backwards = [fresh.scenario(i) for i in reversed(range(12))]
        assert list(reversed(backwards)) == SAMPLE

    def test_from_index_matches_the_generator(self):
        for scenario in SAMPLE[:4]:
            assert (
                Scenario.from_index(scenario.master_seed, scenario.index)
                == scenario
            )

    def test_different_master_seeds_diverge(self):
        assert ScenarioGen(7).scenarios(6) != ScenarioGen(8).scenarios(6)

    def test_start_offset_slices_the_same_stream(self):
        assert GEN.scenarios(4, start=3) == SAMPLE[3:7]


class TestLatticeValidity:
    @pytest.mark.parametrize("scenario", SAMPLE, ids=lambda s: f"i{s.index}")
    def test_fields_are_in_range(self, scenario):
        assert 4 <= scenario.n_nodes <= 8
        assert 0 <= len(scenario.chords) <= 3
        assert scenario.model_kind in ("logistic", "svm")
        assert 3 <= scenario.n_features <= 8
        assert 20 <= scenario.n_samples <= 45
        assert 6 <= scenario.max_rounds <= 14
        SelectionPolicy(scenario.selection)
        StragglerStrategy(scenario.straggler)

    @pytest.mark.parametrize("scenario", SAMPLE, ids=lambda s: f"i{s.index}")
    def test_topology_is_connected(self, scenario):
        topology = scenario.topology()
        assert topology.is_connected()
        assert topology.n_nodes == scenario.n_nodes

    @pytest.mark.parametrize("scenario", SAMPLE, ids=lambda s: f"i{s.index}")
    def test_compressor_specs_parse(self, scenario):
        if scenario.compressor is None:
            return
        spec = CompressorSpec.parse(scenario.compressor)
        params = spec.params_dict()
        if "k" in params:
            assert 1 <= params["k"] <= scenario.n_features + 1
        if "bits" in params:
            assert 2 <= params["bits"] <= 8

    def test_shards_are_deterministic_binary_and_sized(self):
        scenario = SAMPLE[0]
        shards = scenario.shards()
        assert len(shards) == scenario.n_nodes
        for shard in shards:
            assert shard.X.shape == (scenario.n_samples, scenario.n_features)
            assert set(np.unique(shard.y)) <= {0.0, 1.0}
        again = scenario.shards()
        for first, second in zip(shards, again):
            np.testing.assert_array_equal(first.X, second.X)


class TestFreshObjects:
    def test_fault_plans_are_never_shared(self):
        scenario = next(s for s in SAMPLE if s.faulty)
        assert scenario.fault_plan() is not scenario.fault_plan()

    def test_clean_scenarios_have_no_plan(self):
        scenario = next(s for s in SAMPLE if not s.faulty)
        assert scenario.fault_plan() is None

    def test_build_trainer_builds_independent_trainers(self):
        scenario = SAMPLE[0].with_overrides(max_rounds=3)
        first = scenario.build_trainer("reference")
        second = scenario.build_trainer("reference")
        assert first is not second
        assert first.servers[0] is not second.servers[0]
        # Running one must not advance the other.
        first.run(stop_on_convergence=False)
        assert second.rounds_completed == 0


class TestOverridesAndDescribe:
    def test_with_overrides_replaces_without_mutating(self):
        scenario = SAMPLE[0]
        other = scenario.with_overrides(max_rounds=99)
        assert other.max_rounds == 99
        assert scenario.max_rounds != 99
        assert other.with_overrides(max_rounds=scenario.max_rounds) == scenario

    def test_describe_names_the_reproduction_pair(self):
        scenario = SAMPLE[3]
        text = scenario.describe()
        assert f"[{scenario.master_seed}/{scenario.index}]" in text
        assert scenario.model_kind in text
        if scenario.compressor:
            assert scenario.compressor in text
