"""RunDigest: determinism, legacy-pin compatibility, serialization, diffing."""

from __future__ import annotations

import dataclasses

import pytest

from repro.exceptions import ConfigurationError
from repro.testing import (
    DIGEST_VERSION,
    LEGACY_PIN_KEYS,
    RunDigest,
    Scenario,
    capture_run,
)

pytestmark = []


def _scenario(**overrides) -> Scenario:
    base = Scenario.from_index(master_seed=1234, index=0)
    return base.with_overrides(max_rounds=5, faulty=False, **overrides)


@pytest.fixture(scope="module")
def digest() -> RunDigest:
    return capture_run(_scenario().build_trainer("reference"))


class TestDeterminism:
    def test_same_run_same_digest(self, digest):
        again = capture_run(_scenario().build_trainer("reference"))
        assert again == digest
        assert again.diff(digest) == ""

    def test_different_seed_different_digest(self, digest):
        other = capture_run(
            _scenario(data_seed=999).build_trainer("reference")
        )
        assert other != digest

    def test_traces_do_not_affect_equality(self, digest):
        stripped = dataclasses.replace(
            digest, rounds_trace=(), ledger_trace=()
        )
        assert stripped == digest  # compare=False fields


class TestLegacyPins:
    def test_pinned_emits_exactly_the_legacy_keys(self, digest):
        pin = digest.pinned()
        assert tuple(pin) == LEGACY_PIN_KEYS

    def test_matches_pin(self, digest):
        assert digest.matches_pin(digest.pinned())
        broken = dict(digest.pinned(), total_bytes=digest.total_bytes + 1)
        assert not digest.matches_pin(broken)


class TestSerialization:
    def test_json_round_trip(self, digest):
        loaded = RunDigest.from_json(digest.to_json())
        assert loaded == digest
        assert loaded.version == DIGEST_VERSION

    def test_version_mismatch_refuses_to_load(self, digest):
        text = digest.to_json().replace(
            f'"version": {DIGEST_VERSION}', '"version": 999'
        )
        with pytest.raises(ConfigurationError) as excinfo:
            RunDigest.from_json(text)
        assert "version" in str(excinfo.value)


class TestDiff:
    def test_diff_names_totals(self, digest):
        other = dataclasses.replace(digest, total_bytes=digest.total_bytes + 7)
        assert "total_bytes" in digest.diff(other)

    def test_diff_points_at_first_diverging_round(self, digest):
        other = capture_run(
            _scenario(run_seed=digest.total_bytes + 1).build_trainer("reference")
        )
        if other == digest:  # pragma: no cover - seeds collide only by luck
            pytest.skip("seed change produced an identical run")
        report = digest.diff(other)
        assert "rounds_sha differs" in report or "total" in report
        if "rounds_sha differs" in report:
            assert "first diverging round" in report

    def test_diff_flags_server_state_only_divergence(self, digest):
        other = dataclasses.replace(digest, server_state_sha="0" * 64)
        assert "server_state_sha" in digest.diff(other)

    def test_diff_against_non_digest(self, digest):
        assert "not a RunDigest" in digest.diff("nope")
