"""Streaming digest property: incremental per-round hashing == retained-trace path.

The streaming telemetry layer folds round-trace and flow-ledger entries into
the two SHA-256 accumulators as they happen, instead of hashing retained
object lists after the run. The digests must be byte-identical — same
``DIGEST_VERSION`` recipe — across generated scenarios and all three
engines, including with per-flow record retention switched off (the
configuration large-N runs use).
"""

import dataclasses

import pytest

from repro.core.trainer import SNAPTrainer
from repro.testing.differential import ENGINES
from repro.testing.digest import capture_run
from repro.testing.scenarios import ScenarioGen

N_SCENARIOS = 10


def _trainer(scenario, engine, *, retain):
    config = dataclasses.replace(
        scenario.config(engine), retain_flow_records=retain
    )
    return SNAPTrainer(
        scenario.model(),
        scenario.shards(),
        scenario.topology(),
        config,
        fault_plan=scenario.fault_plan(),
    )


@pytest.mark.parametrize("index", range(N_SCENARIOS))
@pytest.mark.parametrize("engine", ENGINES)
def test_streaming_digest_equals_retained(index, engine):
    scenario = ScenarioGen(master_seed=7).scenario(index)
    retained = capture_run(_trainer(scenario, engine, retain=True))
    streamed = capture_run(
        _trainer(scenario, engine, retain=False), streaming=True
    )
    assert streamed == retained, (
        f"streaming digest diverged from the retained-trace recipe on "
        f"{scenario.describe()} ({engine}):\n{retained.diff(streamed)}"
    )


def test_streaming_hashes_match_bytewise_not_just_compare_equal():
    """The streamed SHA-256 hexdigests themselves equal the retained ones."""
    scenario = ScenarioGen(master_seed=7).scenario(0)
    retained = capture_run(_trainer(scenario, "vectorized", retain=True))
    streamed = capture_run(
        _trainer(scenario, "vectorized", retain=False), streaming=True
    )
    assert streamed.rounds_sha == retained.rounds_sha
    assert streamed.ledger_sha == retained.ledger_sha
    assert streamed.final_params_sha == retained.final_params_sha


def test_streaming_preserves_ledger_hash_where_legacy_capture_cannot():
    """With retention off the legacy path hashes an empty ledger; streaming
    still produces the true flow-ledger hash because it observed every batch
    as it was recorded."""
    scenario = ScenarioGen(master_seed=7).scenario(0)
    retained = capture_run(_trainer(scenario, "vectorized", retain=True))
    legacy_unretained = capture_run(_trainer(scenario, "vectorized", retain=False))
    streamed = capture_run(
        _trainer(scenario, "vectorized", retain=False), streaming=True
    )
    assert legacy_unretained.ledger_sha != retained.ledger_sha
    assert streamed.ledger_sha == retained.ledger_sha
