"""InvariantMonitor: config wiring, clean-run silence, violation catching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SNAPConfig
from repro.exceptions import ConfigurationError, InvariantViolation
from repro.testing import (
    InvariantMonitor,
    feasible_frame_sizes,
    quantization_bits,
    run_injection,
    run_selftest,
)
from repro.testing.selftest import INJECTIONS, _base_scenario


class TestConfigWiring:
    def test_invariants_value_is_validated(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(invariants="lenient")

    def test_off_builds_no_monitor(self):
        trainer = _base_scenario().build_trainer("reference")
        assert trainer.monitor is None

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_strict_builds_and_runs_monitor(self, engine):
        trainer = _base_scenario().build_trainer(engine, invariants="strict")
        assert isinstance(trainer.monitor, InvariantMonitor)
        trainer.run(stop_on_convergence=False)
        summary = trainer.monitor.summary()
        # Every built-in invariant ran, once per round (or once at start).
        assert summary["weight-stochasticity"] == 1
        assert summary["weight-spectrum"] == 1
        rounds = trainer.rounds_completed
        for per_round in (
            "ape-budget",
            "byte-ledger",
            "error-feedback",
            "consensus-envelope",
        ):
            assert summary[per_round] == rounds

    def test_monitored_run_matches_unmonitored_digest(self):
        """Arming the monitors must not perturb the trajectory."""
        from repro.testing import capture_run

        scenario = _base_scenario()
        plain = capture_run(scenario.build_trainer("reference"))
        watched = capture_run(
            scenario.build_trainer("reference", invariants="strict")
        )
        assert plain == watched


class TestSelfTestInjections:
    @pytest.mark.parametrize("name", sorted(INJECTIONS))
    def test_each_injection_is_caught_by_its_invariant(self, name):
        outcome = run_injection(name)
        assert outcome.caught, outcome.diagnostic
        assert outcome.expected_invariant in outcome.diagnostic

    def test_selftest_runs_every_injection(self):
        outcomes = run_selftest()
        assert {o.injection for o in outcomes} == set(INJECTIONS)
        assert all(o.caught for o in outcomes)

    def test_violation_carries_invariant_and_round(self):
        trainer = _base_scenario().build_trainer("reference", invariants="strict")
        INJECTIONS["ledger"][0](trainer)
        with pytest.raises(InvariantViolation) as excinfo:
            trainer.run(stop_on_convergence=False)
        assert excinfo.value.invariant == "byte-ledger"
        assert excinfo.value.round_index == 1


class TestCustomChecks:
    def test_add_check_runs_every_round_and_can_violate(self):
        trainer = _base_scenario().build_trainer("reference", invariants="strict")
        seen = []

        def spy(monitor, record, down):
            seen.append(record.round_index)

        trainer.monitor.add_check("spy", spy)
        trainer.run(stop_on_convergence=False)
        assert seen == list(range(1, trainer.rounds_completed + 1))
        assert trainer.monitor.summary()["spy"] == len(seen)

        fresh = _base_scenario().build_trainer("reference", invariants="strict")
        fresh.monitor.add_check(
            "always-fails",
            lambda monitor, record, down: monitor.violate(
                "always-fails", "synthetic", record.round_index
            ),
        )
        with pytest.raises(InvariantViolation) as excinfo:
            fresh.run(stop_on_convergence=False)
        assert excinfo.value.invariant == "always-fails"


class TestFrameSizeOracle:
    def test_feasible_sizes_cover_every_suppression_count(self):
        sizes = feasible_frame_sizes(5, None)
        # d=5: M=0..1 UNCHANGED (44, 40), M=2..5 INDEX_VALUE (36, 24, 12, 0).
        assert sizes == frozenset({44, 40, 36, 24, 12, 0})

    def test_quantized_widths_extend_the_lattice(self):
        classic = feasible_frame_sizes(5, None)
        extended = feasible_frame_sizes(5, 2)
        assert classic <= extended

    def test_quantization_bits_reads_the_spec(self):
        from repro.compression.spec import CompressorSpec

        assert quantization_bits(CompressorSpec.parse("uniform:bits=6")) == 6
        assert quantization_bits(CompressorSpec.parse("terngrad")) == 2
        assert quantization_bits(CompressorSpec.parse("topk:k=3")) is None
        assert quantization_bits(CompressorSpec.parse("ape")) is None


class TestWeightChecks:
    def test_asymmetric_matrix_rejected_at_run_start(self):
        trainer = _base_scenario().build_trainer("reference", invariants="strict")
        trainer.weight_matrix[2, 3] += 1e-3
        with pytest.raises(InvariantViolation) as excinfo:
            trainer.run(stop_on_convergence=False)
        assert excinfo.value.invariant == "weight-stochasticity"

    def test_off_support_weight_rejected(self):
        trainer = _base_scenario().build_trainer("reference", invariants="strict")
        n = trainer.topology.n_nodes
        # Move weight onto a non-edge symmetrically, keeping row sums intact
        # so only the support check can catch it.
        u, v = 0, 3
        assert v not in trainer.topology.neighbors(u)
        w = trainer.weight_matrix
        shift = 0.01
        w[u, v] += shift
        w[v, u] += shift
        w[u, u] -= shift
        w[v, v] -= shift
        assert np.allclose(w.sum(axis=1), np.ones(n))
        with pytest.raises(InvariantViolation) as excinfo:
            trainer.run(stop_on_convergence=False)
        assert excinfo.value.invariant == "weight-stochasticity"
        assert "not an edge" in str(excinfo.value)

    def test_spectrum_gap_check_catches_disconnected_mixing(self):
        trainer = _base_scenario().build_trainer("reference", invariants="strict")
        monitor = trainer.monitor
        # Identity mixing is symmetric doubly stochastic but has no spectral
        # gap: consensus cannot contract.
        trainer.weight_matrix = np.eye(trainer.topology.n_nodes)
        with pytest.raises(InvariantViolation) as excinfo:
            monitor.on_run_start()
        assert excinfo.value.invariant == "weight-spectrum"


class TestConsensusEnvelope:
    def test_divergence_is_flagged_at_its_round(self):
        trainer = _base_scenario().build_trainer("reference", invariants="strict")

        # The monitor runs before the on_round observer each round, so a
        # kick injected at the end of round 4 (past the 3-round warmup)
        # surfaces as a consensus blow-up checked at round 5.
        def kick(record):
            if record.round_index == 4:
                trainer.servers[0].params = trainer.servers[0].params + 1e9

        with pytest.raises(InvariantViolation) as excinfo:
            trainer.run(stop_on_convergence=False, on_round=kick)
        assert excinfo.value.invariant == "consensus-envelope"
        assert excinfo.value.round_index == 5
