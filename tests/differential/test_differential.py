"""The generated-scenario oracle sweep (ISSUE acceptance criterion).

Marked ``differential`` — excluded from tier-1 and run by
``make verify-invariants`` / CI's bounded smoke. Every generated scenario
must agree bit-for-bit across the reference and vectorized engines with the
invariant monitors armed, and every deliberate fault injection must be
caught with a diagnostic naming the violated invariant.
"""

from __future__ import annotations

import pytest

from repro.testing import (
    run_injection,
    run_scenario,
    run_suite,
    summarize,
)
from repro.testing.scenarios import ScenarioGen
from repro.testing.selftest import INJECTIONS

pytestmark = pytest.mark.differential

#: The acceptance floor: at least this many seeded scenarios must pass.
SWEEP_COUNT = 25
MASTER_SEED = 0


class TestOracleSweep:
    def test_reference_and_vectorized_agree_on_generated_scenarios(self):
        reports = run_suite(SWEEP_COUNT, MASTER_SEED)
        failures = [report for report in reports if not report.ok]
        assert not failures, summarize(reports)
        # The monitors actually ran: both engines, every scenario.
        for report in reports:
            assert set(report.monitor_checks) == {"reference", "vectorized"}
            for checks in report.monitor_checks.values():
                assert checks.get("byte-ledger", 0) >= 1

    def test_single_scenario_report_shape(self):
        report = run_scenario(ScenarioGen(MASTER_SEED).scenario(0))
        assert report.ok, report.detail
        assert report.digests["reference"] == report.digests["vectorized"]
        assert str(report).startswith("[ok] scenario[0/0]")


class TestSelfTest:
    @pytest.mark.parametrize("name", sorted(INJECTIONS))
    def test_injected_faults_are_caught(self, name):
        outcome = run_injection(name)
        assert outcome.caught, outcome.diagnostic
        assert outcome.expected_invariant in outcome.diagnostic
