"""The generated-scenario oracle sweep (ISSUE acceptance criterion).

Marked ``differential`` — excluded from tier-1 and run by
``make verify-invariants`` / CI's bounded smoke. Every generated scenario
must agree bit-for-bit across the reference and vectorized engines with the
invariant monitors armed, and every deliberate fault injection must be
caught with a diagnostic naming the violated invariant.
"""

from __future__ import annotations

import pytest

from repro.testing import (
    run_injection,
    run_scenario,
    run_semisync_smoke,
    run_suite,
    summarize,
)
from repro.testing.scenarios import ScenarioGen
from repro.testing.selftest import INJECTIONS

pytestmark = pytest.mark.differential

#: The acceptance floor: at least this many seeded scenarios must pass.
SWEEP_COUNT = 25
MASTER_SEED = 0


class TestOracleSweep:
    def test_all_engines_agree_on_generated_scenarios(self):
        reports = run_suite(SWEEP_COUNT, MASTER_SEED)
        failures = [report for report in reports if not report.ok]
        assert not failures, summarize(reports)
        # The monitors actually ran: every engine, every scenario. This is
        # also the semi-sync τ=0 synchronous-anchor acceptance sweep: the
        # event-driven engine must match the reference digest bit-for-bit
        # on all SWEEP_COUNT scenarios.
        for report in reports:
            assert set(report.monitor_checks) == {
                "reference",
                "vectorized",
                "semisync",
            }
            for checks in report.monitor_checks.values():
                assert checks.get("byte-ledger", 0) >= 1
            assert checks.get("semi-sync", 0) >= 1  # semisync ran last

    def test_single_scenario_report_shape(self):
        report = run_scenario(ScenarioGen(MASTER_SEED).scenario(0))
        assert report.ok, report.detail
        assert report.digests["reference"] == report.digests["vectorized"]
        assert report.digests["reference"] == report.digests["semisync"]
        assert str(report).startswith("[ok] scenario[0/0]")

    def test_semisync_chaos_smoke(self):
        """τ ∈ {0, 2, 8} × the scenarios' own fault plans × a 10× straggler
        clock: strict monitors stay clean and progress staleness obeys τ."""
        reports = run_semisync_smoke(4, MASTER_SEED)
        failures = [report for report in reports if not report.ok]
        assert not failures, summarize(reports)
        assert len(reports) == 12  # 4 scenarios × 3 taus


class TestSelfTest:
    @pytest.mark.parametrize("name", sorted(INJECTIONS))
    def test_injected_faults_are_caught(self, name):
        outcome = run_injection(name)
        assert outcome.caught, outcome.diagnostic
        assert outcome.expected_invariant in outcome.diagnostic
