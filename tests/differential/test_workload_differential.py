"""The workload scenario pack: byzantine / drifting / hierarchical sweeps.

Marked ``differential`` — excluded from tier-1 and run by
``make verify-invariants`` / CI's ``scenario-smoke``. Two layers of
certification:

* **Cross-engine** — every curated pack scenario and the first generated
  scenarios of the workload axis (indices ≥ ``WORKLOAD_AXIS_START``) must
  agree bit-for-bit across reference, vectorized, and semi-sync engines
  with strict monitors armed.
* **Golden pins** — the reference digest of each curated scenario is
  committed below. A pin moving means byzantine transmission, robust
  mixing, drift resharding, or tiered weighting changed numerically; update
  the constants only with an explanation of *why* the trajectory moved.

The pre-existing 25-scenario pins (``test_differential.py``,
``tests/compression/test_regression_pin.py``) draw every field before the
workload axis is sampled, so they are untouched by construction — the axis
gate is asserted here too.
"""

from __future__ import annotations

import pytest

from repro.testing import run_scenario, run_workload_suite, summarize
from repro.testing.digest import capture_run
from repro.testing.scenarios import (
    WORKLOAD_AXIS_START,
    ScenarioGen,
    workload_scenarios,
)

pytestmark = pytest.mark.differential

MASTER_SEED = 0

#: How many generated workload-axis scenarios the sweep must clear.
AXIS_SWEEP_COUNT = 6

#: Reference-engine digests of the curated pack, keyed by scenario index.
#: Captured via ``RunDigest.pinned()`` — legacy pin keys, so the same
#: tooling that diffs the compression pins diffs these.
GOLDEN = {
    -101: {  # sign_flip x2 vs trimmed_mean:f=2
        "rounds_sha": "778057cf2a2c9ebfc30f6bf80682569c53b8febe62eb72fb2e286cdf83640d0d",
        "ledger_sha": "bf6f8912749bf53496611121e0c20d4b00dd3f648b9af0027e193ea20a087cee",
        "final_params_sha": "e7a27f23e9118ec5af862e87cdc2487c118a5cb133c9787838de429d6ebe971e",
        "total_bytes": 7244,
        "total_cost": 7244,
        "final_loss": "0x1.5ce2053a4f69bp-1",
    },
    -102: {  # gaussian noise vs median, under a full link/node fault plan
        "rounds_sha": "6f34b3093ba6675ba0805730d3ccb57056b38221c513dd86ac233917976baad8",
        "ledger_sha": "9f06efa1c46b3cdf8d4a9a0b435f7e9eef88e398d6de633c2b259363a272974a",
        "final_params_sha": "a3853ce250aca003204e7f2f7c85f10c14631a54d6f9a16a7057d2f92c40403a",
        "total_bytes": 3792,
        "total_cost": 3792,
        "final_loss": "0x1.6633495cd4463p-1",
    },
    -103: {  # scaled-update boosting vs krum, top-k compressed
        "rounds_sha": "1304215f66b26810303fd9165548ddb55c58481ca7fd548eb0b49037d9935618",
        "ledger_sha": "36a2bf2ff067d50be5b36df6b307114355b6e0631ef05c8da46b7e471788409e",
        "final_params_sha": "d062a8e7d75c7bf5c4c244eaa27bef59685e33ddbc273aed93bdda5d5338e61f",
        "total_bytes": 5040,
        "total_cost": 5040,
        "final_loss": "0x1.53bb2ac6018f4p-1",
    },
    -104: {  # label-shift drift, period 3
        "rounds_sha": "9c1c83f0d3e1fe936700d46d08e593d5dc80818e12195cc72944480ee1d1421c",
        "ledger_sha": "9cb65a1a3b797077f99089e196f2233f692bcfeed00670f2207aa9aedbdc1365",
        "final_params_sha": "7b7c224e5f1ee2b16fa6283e556bb8d13b6228256174e77114369a566d972187",
        "total_bytes": 7216,
        "total_cost": 7216,
        "final_loss": "0x1.43026bd78c443p-1",
    },
    -105: {  # streaming arrival, error-feedback top-k
        "rounds_sha": "650e164dbd57b3f7000aeaec48ff29091df6bf2c6b6cdd48114947359a4a39c1",
        "ledger_sha": "36a2bf2ff067d50be5b36df6b307114355b6e0631ef05c8da46b7e471788409e",
        "final_params_sha": "cb15830ab9fc0edb90323567c566086ed86253ec7db72418a4b09692a010aa5b",
        "total_bytes": 5040,
        "total_cost": 5040,
        "final_loss": "0x1.4e14361238a8cp-1",
    },
    -106: {  # 1+2+6 hierarchy, tiered Metropolis, changed-only selection
        "rounds_sha": "d964c53c7b24bf39cedd9026099d00c8f8d42ab3fef9ac9512fee5fdee3450a7",
        "ledger_sha": "0f530e0228aaa2198dc85b02090569310fbc57ce8af6d6b5efc0deac5c2a5c91",
        "final_params_sha": "6102159dcf0c63c0996fb7d7fca6e80e9e2de3a63bd410c1091863e5baea8b71",
        "total_bytes": 8320,
        "total_cost": 8320,
        "final_loss": "0x1.0d2487f6e9fcdp-1",
    },
    -107: {  # 1+3+6 hierarchy with a sign-flip attacker vs trimmed_mean
        "rounds_sha": "4eb2251d726c5358452082f71226747660bbd73230a443606b5fb312f666227b",
        "ledger_sha": "54d7ca8c9d8b0b7b4dcd26ec13d951f9148931e5fd48f247d490bc953df2cff9",
        "final_params_sha": "78505c8877c81f4f54d20af03d13ea68d2c100356c17cefb4fd8b4a61a816e3c",
        "total_bytes": 9204,
        "total_cost": 9204,
        "final_loss": "0x1.532758f8f72eep-1",
    },
}


class TestWorkloadPack:
    def test_pack_covers_all_three_axes(self):
        pack = workload_scenarios(MASTER_SEED)
        assert {s.index for s in pack} == set(GOLDEN)
        assert any(s.byzantine for s in pack)
        assert any(s.drift_kind for s in pack)
        assert any(s.hierarchy for s in pack)
        # ... and the composed corners: byzantine under faults, byzantine
        # with compression, byzantine inside a hierarchy.
        assert any(s.byzantine and s.faulty for s in pack)
        assert any(s.byzantine and s.compressor for s in pack)
        assert any(s.byzantine and s.hierarchy for s in pack)

    def test_all_engines_agree_on_the_pack(self):
        reports = run_workload_suite(MASTER_SEED)
        failures = [report for report in reports if not report.ok]
        assert not failures, summarize(reports)
        for report in reports:
            assert set(report.monitor_checks) == {
                "reference",
                "vectorized",
                "semisync",
            }
            for checks in report.monitor_checks.values():
                assert checks.get("byte-ledger", 0) >= 1

    @pytest.mark.parametrize(
        "scenario",
        workload_scenarios(MASTER_SEED),
        ids=lambda s: f"scenario[{s.index}]",
    )
    def test_reference_digest_matches_golden_pin(self, scenario):
        trainer = scenario.build_trainer("reference", invariants="strict")
        digest = capture_run(trainer)
        pin = GOLDEN[scenario.index]
        assert digest.matches_pin(pin), (
            f"{scenario.describe()} moved off its golden pin:\n"
            f"  pinned: {pin}\n  got:    {digest.pinned()}"
        )


class TestWorkloadAxisSweep:
    def test_generated_axis_scenarios_agree_across_engines(self):
        gen = ScenarioGen(MASTER_SEED)
        reports = [
            run_scenario(gen.scenario(WORKLOAD_AXIS_START + i))
            for i in range(AXIS_SWEEP_COUNT)
        ]
        failures = [report for report in reports if not report.ok]
        assert not failures, summarize(reports)

    def test_axis_gate_leaves_historical_scenarios_unchanged(self):
        """Indices below the gate never sample the workload axis, so every
        pre-pack golden pin stays valid by construction."""
        gen = ScenarioGen(MASTER_SEED)
        for index in range(WORKLOAD_AXIS_START):
            scenario = gen.scenario(index)
            assert scenario.byzantine is None
            assert scenario.robust is None
            assert scenario.drift_kind is None
            assert scenario.hierarchy == ()
