"""Differential pins for mid-run topology swaps.

Every handcrafted scenario below arms the adaptive topology controller and
runs through :func:`repro.testing.differential.run_scenario`, which demands
full digest equality (round trace, flow ledger, final parameters, server
state) across the reference, vectorized and semi-synchronous engines under
strict invariants. The scenarios are chosen so the controller actually
acts: hub-chord topologies whose optimizer drives chord weights under the
pruning threshold, a fault plan that exercises the churn trigger, and
explicit compressors so knob-carrying swaps cross engine boundaries too.

A swap that any engine timed, ordered, or applied differently shows up as
a digest mismatch; a swap the monitor did not re-validate shows up in the
``topology-swap`` check counts pinned per engine.
"""

from __future__ import annotations

import pytest

from repro.testing.differential import ENGINES, run_scenario
from repro.testing.scenarios import Scenario

pytestmark = pytest.mark.differential


def adaptive_scenario(index: int, **overrides) -> Scenario:
    """A hand-built adaptive scenario (negative index: not generator-drawn)."""
    base = Scenario(
        master_seed=0,
        index=index,
        n_nodes=8,
        chords=((0, 2), (0, 4), (0, 6)),
        model_kind="logistic",
        n_features=5,
        n_samples=30,
        data_seed=211,
        selection="ape",
        compressor=None,
        straggler="stale",
        optimize_weights=True,
        faulty=False,
        fault_seed=0,
        link_p_fail=0.0,
        link_p_recover=1.0,
        node_p_fail=0.0,
        node_p_recover=1.0,
        corruption_rate=0.0,
        max_rounds=12,
        run_seed=29,
        adaptive=True,
        reoptimize_every=3,
        prune_threshold=0.08,
    )
    return base.with_overrides(**overrides)


#: (label, scenario, expect_swap) — expect_swap pins topology-swap >= 1 on
#: every engine, i.e. the run is guaranteed to prune at least once.
CASES = [
    (
        "ape-preset-pruning",
        adaptive_scenario(-2),
        True,
    ),
    (
        "uniform-knob",
        adaptive_scenario(-3, compressor="uniform:bits=6", max_rounds=10),
        True,
    ),
    (
        "churn-trigger",
        adaptive_scenario(
            -4,
            compressor="topk:k=3",
            faulty=True,
            fault_seed=5,
            link_p_fail=0.2,
            link_p_recover=0.6,
            node_p_fail=0.05,
            node_p_recover=0.7,
            corruption_rate=0.0,
            max_rounds=14,
        ),
        False,  # churn decides when/if links prune; equality is the pin
    ),
    (
        "svm-reweight",
        adaptive_scenario(
            -5,
            model_kind="svm",
            selection="changed_only",
            straggler="reweight",
            reoptimize_every=2,
        ),
        True,
    ),
    (
        "error-feedback-wrapper",
        adaptive_scenario(-6, compressor="ef:randomk:k=2", max_rounds=10),
        True,
    ),
]


@pytest.mark.parametrize(
    "label, scenario, expect_swap", CASES, ids=[c[0] for c in CASES]
)
def test_adaptive_scenarios_stay_engine_equal(label, scenario, expect_swap):
    report = run_scenario(scenario, invariants="strict")
    assert report.ok, report.detail
    assert set(report.monitor_checks) == set(ENGINES)
    for engine in ENGINES:
        checks = report.monitor_checks[engine]
        # Strict invariants audited every round on every engine.
        assert checks.get("byte-ledger", 0) >= 1
        if expect_swap:
            assert checks.get("topology-swap", 0) >= 1, (
                f"{label}: {engine} never swapped"
            )
    # All engines saw the identical swap sequence.
    swap_counts = {
        engine: report.monitor_checks[engine].get("topology-swap", 0)
        for engine in ENGINES
    }
    assert len(set(swap_counts.values())) == 1, swap_counts


def test_generated_adaptive_scenarios_exist_and_pass():
    """The generator's adaptive axis produces runnable, engine-equal cases."""
    from repro.testing.scenarios import ScenarioGen

    gen = ScenarioGen(1)
    adaptive = [
        s for s in (gen.scenario(i) for i in range(60)) if s.adaptive
    ]
    assert adaptive, "adaptive axis never fired in 60 draws"
    report = run_scenario(adaptive[0], invariants="strict")
    assert report.ok, report.detail
