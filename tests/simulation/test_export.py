"""Tests for repro.simulation.export — CSV persistence of sweep rows/traces."""

import pytest

from repro.exceptions import DataError
from repro.results import RoundRecord, TrainingResult
from repro.simulation.export import read_rows_csv, write_rows_csv, write_trace_csv

import numpy as np


class TestRowsCsv:
    def test_round_trip(self, tmp_path):
        rows = [
            {"scheme": "snap", "iterations": 42, "accuracy": 0.91},
            {"scheme": "ps", "iterations": 33, "accuracy": 0.9},
        ]
        path = write_rows_csv(rows, tmp_path / "sweep.csv")
        assert read_rows_csv(path) == rows

    def test_union_header_with_missing_cells(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": "x"}]
        loaded = read_rows_csv(write_rows_csv(rows, tmp_path / "u.csv"))
        assert loaded[0] == {"a": 1, "b": None}
        assert loaded[1] == {"a": 2, "b": "x"}

    def test_booleans_and_none_round_trip(self, tmp_path):
        rows = [{"converged": True, "note": None}]
        loaded = read_rows_csv(write_rows_csv(rows, tmp_path / "b.csv"))
        assert loaded[0]["converged"] is True
        assert loaded[0]["note"] is None

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(DataError):
            write_rows_csv([], tmp_path / "empty.csv")


class TestTraceCsv:
    def test_trace_written_per_round(self, tmp_path):
        result = TrainingResult(
            scheme="snap",
            rounds=[
                RoundRecord(1, 1.0, 0.1, 100, 100, 10),
                RoundRecord(2, 0.5, 0.05, 80, 80, 8, accuracy=0.9),
            ],
            converged_at=None,
            final_params=np.zeros(2),
            total_bytes=180,
            total_cost=180,
        )
        loaded = read_rows_csv(write_trace_csv(result, tmp_path / "trace.csv"))
        assert len(loaded) == 2
        assert loaded[0]["round"] == 1
        assert loaded[1]["accuracy"] == 0.9
        assert loaded[0]["accuracy"] is None

    def test_empty_result_rejected(self, tmp_path):
        result = TrainingResult(
            scheme="snap",
            rounds=[],
            converged_at=None,
            final_params=np.zeros(1),
            total_bytes=0,
            total_cost=0,
        )
        with pytest.raises(DataError):
            write_trace_csv(result, tmp_path / "trace.csv")

    def test_sweep_rows_export_end_to_end(self, tmp_path):
        from repro.simulation.sweep import sweep_network_scale

        rows = sweep_network_scale(
            schemes=("centralized",),
            n_servers_values=(4,),
            max_rounds=40,
            n_train=200,
            n_test=60,
            seed=0,
        )
        loaded = read_rows_csv(write_rows_csv(rows, tmp_path / "sweep.csv"))
        assert loaded[0]["scheme"] == "centralized"
        assert loaded[0]["n_servers"] == 4
