"""Tests for repro.simulation.runner."""

import numpy as np
import pytest

from repro.core.config import SNAPConfig
from repro.exceptions import ConfigurationError
from repro.simulation.experiments import credit_svm_workload
from repro.simulation.runner import (
    SCHEMES,
    reference_target_loss,
    run_comparison,
    run_scheme,
)
from repro.topology.failures import IndependentLinkFailures


@pytest.fixture(scope="module")
def workload():
    return credit_svm_workload(
        n_servers=6, average_degree=3, n_train=600, n_test=150, seed=2
    )


class TestRunScheme:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_scheme_runs(self, workload, scheme):
        result = run_scheme(scheme, workload, max_rounds=15)
        assert result.scheme == scheme
        assert result.n_rounds <= 15
        assert result.final_accuracy is not None
        assert np.all(np.isfinite(result.final_params))

    def test_unknown_scheme_rejected(self, workload):
        with pytest.raises(ConfigurationError):
            run_scheme("sgd", workload)

    def test_all_schemes_share_initialization(self, workload):
        """Scheme comparisons are run from identical initial parameters."""
        snap = run_scheme("snap0", workload, max_rounds=1, stop_on_convergence=False)
        central = run_scheme(
            "centralized", workload, max_rounds=1, stop_on_convergence=False
        )
        # after 1 round both moved from the same x0; their distance is small
        assert (
            np.linalg.norm(snap.final_params - central.final_params)
            < np.linalg.norm(central.final_params) + 1.0
        )

    def test_explicit_alpha_propagates(self, workload):
        result = run_scheme(
            "snap0", workload, max_rounds=3, alpha=0.01, stop_on_convergence=False
        )
        assert result.info["alpha"] == 0.01
        result = run_scheme(
            "centralized", workload, max_rounds=3, alpha=0.01, stop_on_convergence=False
        )
        assert result.info["alpha"] == 0.01

    def test_snap_config_override(self, workload):
        config = SNAPConfig(ape_initial_fraction=0.5, max_rounds=5)
        result = run_scheme(
            "snap", workload, max_rounds=5, snap_config=config,
            stop_on_convergence=False,
        )
        assert result.scheme == "snap"

    def test_failure_model_reaches_snap(self, workload):
        # 10 rounds of total link loss legitimately trips the trainer's
        # sustained-partition warning; this test is about byte accounting.
        with pytest.warns(RuntimeWarning, match="partitioned"):
            result = run_scheme(
                "snap",
                workload,
                max_rounds=10,
                failure_model=IndependentLinkFailures(1.0, seed=0),
                stop_on_convergence=False,
            )
        # all links always down -> no traffic at all
        assert result.total_bytes == 0

    def test_optimize_weights_toggle(self, workload):
        optimized = run_scheme(
            "snap0", workload, max_rounds=2, stop_on_convergence=False
        )
        baseline = run_scheme(
            "snap0",
            workload,
            max_rounds=2,
            optimize_weights=False,
            stop_on_convergence=False,
        )
        assert baseline.info["weight_problem"] == "metropolis"
        assert optimized.info["weight_problem"] != "metropolis"


class TestRunComparison:
    def test_runs_selected_schemes(self, workload):
        results = run_comparison(
            workload, schemes=("centralized", "snap0"), max_rounds=5,
            stop_on_convergence=False,
        )
        assert set(results) == {"centralized", "snap0"}


class TestReferenceTargetLoss:
    def test_target_is_above_optimum(self, workload):
        target = reference_target_loss(workload, margin=0.05, max_rounds=400)
        tight = reference_target_loss(workload, margin=0.0, max_rounds=400)
        assert target == pytest.approx(tight * 1.05)

    def test_schemes_reach_the_target(self, workload):
        target = reference_target_loss(workload, margin=0.05, max_rounds=400)
        result = run_scheme(
            "snap0",
            workload,
            max_rounds=400,
            detector_kwargs={"target_loss": target},
        )
        assert result.converged_at is not None

    def test_negative_margin_rejected(self, workload):
        with pytest.raises(ConfigurationError):
            reference_target_loss(workload, margin=-0.1)
