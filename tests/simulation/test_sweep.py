"""Tests for repro.simulation.sweep."""

import pytest

from repro.simulation.sweep import sweep_network_scale, sweep_node_degree


class TestSweepNetworkScale:
    def test_one_row_per_point_and_scheme(self):
        rows = sweep_network_scale(
            schemes=("centralized", "snap0"),
            n_servers_values=(4, 6),
            max_rounds=60,
            n_train=400,
            n_test=100,
            seed=0,
        )
        assert len(rows) == 4
        assert {(r["n_servers"], r["scheme"]) for r in rows} == {
            (4, "centralized"),
            (6, "centralized"),
            (4, "snap0"),
            (6, "snap0"),
        }

    def test_rows_carry_expected_fields(self):
        rows = sweep_network_scale(
            schemes=("snap0",),
            n_servers_values=(4,),
            max_rounds=60,
            n_train=300,
            n_test=80,
            seed=0,
        )
        row = rows[0]
        for field in (
            "n_servers",
            "average_degree",
            "target_loss",
            "iterations_to_converge",
            "total_bytes",
            "total_cost",
            "final_accuracy",
        ):
            assert field in row


class TestSweepNodeDegree:
    def test_degrees_swept(self):
        rows = sweep_node_degree(
            schemes=("snap0",),
            degree_values=(2.0, 3.0),
            n_servers=6,
            max_rounds=60,
            n_train=300,
            n_test=80,
            seed=0,
        )
        degrees = sorted({round(r["average_degree"], 1) for r in rows})
        assert degrees == [2.0, 3.0]

    def test_target_is_shared_within_a_point(self):
        rows = sweep_node_degree(
            schemes=("centralized", "snap0"),
            degree_values=(3.0,),
            n_servers=6,
            max_rounds=60,
            n_train=300,
            n_test=80,
            seed=0,
        )
        targets = {r["target_loss"] for r in rows}
        assert len(targets) == 1
