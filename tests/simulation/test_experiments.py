"""Tests for repro.simulation.experiments (the standard workloads)."""

import pytest

from repro.models.mlp import MLPClassifier
from repro.models.svm import LinearSVM
from repro.simulation.experiments import credit_svm_workload, mnist_mlp_workload


class TestCreditSvmWorkload:
    def test_paper_geometry(self):
        workload = credit_svm_workload(
            n_servers=10, average_degree=3, n_train=500, n_test=100, seed=0
        )
        assert isinstance(workload.model, LinearSVM)
        assert workload.model.n_features == 24
        assert workload.topology.n_nodes == 10
        assert len(workload.shards) == 10
        assert sum(s.n_samples for s in workload.shards) == 500
        assert workload.test_set.n_samples == 100
        assert workload.n_servers == 10

    def test_topology_hits_target_degree(self):
        workload = credit_svm_workload(
            n_servers=30, average_degree=4, n_train=600, n_test=100, seed=1
        )
        assert workload.topology.average_degree() == pytest.approx(4.0, abs=0.2)
        assert workload.topology.is_connected()

    def test_deterministic_given_seed(self):
        a = credit_svm_workload(n_servers=5, n_train=200, n_test=50, seed=7)
        b = credit_svm_workload(n_servers=5, n_train=200, n_test=50, seed=7)
        assert a.topology == b.topology
        import numpy as np

        np.testing.assert_array_equal(a.shards[0].X, b.shards[0].X)

    def test_name_encodes_settings(self):
        workload = credit_svm_workload(
            n_servers=12, average_degree=3, n_train=200, n_test=50, seed=0
        )
        assert "n12" in workload.name


class TestMnistMlpWorkload:
    def test_paper_geometry(self):
        workload = mnist_mlp_workload(n_train=300, n_test=60, seed=0)
        assert isinstance(workload.model, MLPClassifier)
        assert workload.model.layer_sizes == (784, 30, 10)
        assert workload.topology.n_nodes == 3
        # fully connected testbed
        assert workload.topology.n_edges == 3
        assert sum(s.n_samples for s in workload.shards) == 300

    def test_custom_hidden_units(self):
        workload = mnist_mlp_workload(hidden_units=16, n_train=120, n_test=30, seed=0)
        assert workload.model.layer_sizes == (784, 16, 10)

    def test_shards_nearly_equal(self):
        workload = mnist_mlp_workload(n_train=301, n_test=30, seed=0)
        sizes = [s.n_samples for s in workload.shards]
        assert max(sizes) - min(sizes) <= 1
