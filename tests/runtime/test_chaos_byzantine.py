"""Chaos tests for the byzantine scenario axis (ISSUE acceptance criterion).

Two headline claims:

* **Defense holds at fleet scale** — an N=32 fleet with 20% sign-flip
  attackers defended by coordinate-wise trimmed-mean finishes within two
  accuracy points of the all-honest baseline, while the same attack with no
  defense wrecks the run.
* **One plan, two runtimes** — a shared byzantine plan replays identically
  on real TCP sockets and in the simulator: byte ledgers and final
  parameters agree exactly, because attackers poison only the transmitted
  vector and both runtimes transmit through the same
  ``SNAPTrainer.transmit_params`` hook.
"""

import numpy as np
import pytest

from repro.core import SNAPConfig, SNAPTrainer
from repro.core.config import SelectionPolicy
from repro.data.dataset import Dataset
from repro.faults import FaultPlan
from repro.faults.byzantine import ByzantinePlan, SignFlipAttack
from repro.models.logistic import LogisticRegression
from repro.runtime.testbed import TestbedRuntime
from repro.topology.generators import (
    complete_topology,
    random_regular_topology,
)
from repro.weights.construction import metropolis_weights

pytestmark = pytest.mark.chaos

N_NODES = 32
N_ATTACKERS = 6  # ~20% of the fleet
DEGREE = 12  # (DEGREE - 1) // 2 = 5 trimmable slots per node
FEATURES = 6
SAMPLES_PER_NODE = 40


def _fleet_data(seed=7):
    """Linearly-separable-ish binary shards drawn from one global law."""
    rng = np.random.default_rng(seed)
    truth = rng.normal(size=FEATURES)
    shards = []
    for _ in range(N_NODES):
        X = rng.normal(size=(SAMPLES_PER_NODE, FEATURES))
        noise = 0.3 * rng.normal(size=SAMPLES_PER_NODE)
        shards.append(Dataset(X, (X @ truth + noise > 0).astype(float)))
    return shards


def _accuracy(model, params, shards):
    X = np.concatenate([shard.X for shard in shards])
    y = np.concatenate([shard.y for shard in shards])
    return float(np.mean(model.predict(params, X) == y))


def _run_fleet(byzantine=None, robust=None, rounds=30):
    model = LogisticRegression(FEATURES)
    shards = _fleet_data()
    topo = random_regular_topology(N_NODES, DEGREE, seed=9)
    config = SNAPConfig(
        selection=SelectionPolicy.CHANGED_ONLY,
        alpha=0.05,
        seed=0,
        engine="vectorized",
        optimize_weights=False,
        robust_aggregation=robust,
    )
    plan = FaultPlan(byzantine=byzantine) if byzantine is not None else None
    trainer = SNAPTrainer(
        model,
        shards,
        topo,
        config=config,
        weight_matrix=metropolis_weights(topo),
        fault_plan=plan,
    )
    trainer.run(max_rounds=rounds, stop_on_convergence=False)
    attackers = trainer.byzantine_nodes
    honest = sorted(set(range(N_NODES)) - attackers)
    params = trainer.stacked_params()[honest].mean(axis=0)
    return _accuracy(model, params, shards), trainer


def _attack_plan():
    # scale=3 makes the poison decisive: the undefended fleet's accuracy
    # collapses below 0.35 while the defended run stays at the baseline.
    return ByzantinePlan(
        SignFlipAttack(scale=3.0), attackers=tuple(range(0, 2 * N_ATTACKERS, 2))
    )


def test_trimmed_mean_holds_fleet_accuracy_under_20pct_sign_flip():
    topo = random_regular_topology(N_NODES, DEGREE, seed=9)
    attackers = _attack_plan().attackers(topo)
    assert len(attackers) == N_ATTACKERS

    # Structural precondition: every honest node's hostile-neighbor count
    # must be coverable by trimming, or the defense's contract is void.
    hostile = max(
        sum(1 for j in topo.neighbors(i) if j in attackers)
        for i in range(N_NODES)
        if i not in attackers
    )
    assert hostile <= (DEGREE - 1) // 2, (
        f"attacker placement overwhelms degree-{DEGREE} trimming"
    )

    honest_acc, _ = _run_fleet()
    defended_acc, trainer = _run_fleet(
        byzantine=_attack_plan(), robust=f"trimmed_mean:f={hostile}"
    )
    assert trainer.byzantine_nodes == attackers
    assert honest_acc > 0.75  # the baseline actually learns
    assert defended_acc >= honest_acc - 0.02, (
        f"defended accuracy {defended_acc:.4f} fell more than 2 points "
        f"below the honest baseline {honest_acc:.4f}"
    )


def test_undefended_sign_flip_degrades_the_fleet():
    """Sanity check on the chaos itself: the same attack with no robust
    mixer drags honest accuracy well below the defended run."""
    honest_acc, _ = _run_fleet()
    undefended_acc, _ = _run_fleet(byzantine=_attack_plan())
    assert honest_acc > 0.75
    assert undefended_acc < 0.5  # the poison wrecks the undefended fleet


def test_byzantine_testbed_matches_simulator_bit_for_bit():
    """One byzantine plan, two runtimes: the TCP testbed and the simulator
    transmit the same poisoned vectors, so byte ledgers, loss traces, and
    final parameters agree exactly."""
    n, rounds = 5, 10
    rng = np.random.default_rng(11)
    truth = rng.normal(size=4)
    shards = []
    for _ in range(n):
        X = rng.normal(size=(24, 4))
        shards.append(Dataset(X, (X @ truth > 0).astype(float)))
    model = LogisticRegression(4)
    topo = complete_topology(n)
    weights = metropolis_weights(topo)
    init = model.init_params(seed=1)

    def plan():
        # Fresh per runtime: plans cache their attacker resolution.
        return FaultPlan(
            byzantine=ByzantinePlan(SignFlipAttack(), attackers=(2,))
        )

    def config():
        return SNAPConfig(
            selection=SelectionPolicy.CHANGED_ONLY,
            alpha=0.05,
            seed=0,
            robust_aggregation="trimmed_mean:f=1",
        )

    simulated = SNAPTrainer(
        model, shards, topo, config=config(), weight_matrix=weights,
        initial_params=init, fault_plan=plan(),
    )
    sim_result = simulated.run(max_rounds=rounds, stop_on_convergence=False)

    testbed = TestbedRuntime(
        model, shards, topo, config=config(), weight_matrix=weights,
        initial_params=init, fault_plan=plan(), round_deadline_s=5.0,
    )
    net_result = testbed.run(rounds)

    np.testing.assert_array_equal(
        net_result.final_params, simulated.stacked_params()
    )
    assert net_result.payload_bytes_total == sim_result.total_bytes
    assert net_result.per_round_payload_bytes == sim_result.bytes_trace()
    np.testing.assert_allclose(
        net_result.mean_loss_trace, sim_result.loss_trace(), atol=1e-12
    )
