"""Chaos tests for the TCP testbed: crashes, corruption, silent peers.

The headline claims: a fault plan replays identically on real sockets and
in the simulator (bit-for-bit), a hard-killed server degrades the run
instead of deadlocking it, and wire corruption is caught by the CRC32
check and resolved by the straggler rule — never by a crash.
"""

import numpy as np
import pytest

from repro.core import SNAPConfig, SNAPTrainer
from repro.core.config import SelectionPolicy
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.faults import (
    CrashRestartSchedule,
    FaultPlan,
    ScheduledCorruption,
)
from repro.models.ridge import RidgeRegression
from repro.runtime.testbed import TestbedRuntime
from repro.topology.failures import ScheduledFailures
from repro.topology.generators import complete_topology, ring_topology
from repro.weights.construction import metropolis_weights

pytestmark = pytest.mark.chaos


@pytest.fixture
def ridge_setup(rng):
    n, p = 120, 3
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p) + 0.1 * rng.normal(size=n)
    shards = iid_partition(Dataset(X, y), 3, seed=0)
    model = RidgeRegression(p, regularization=0.1)
    topo = complete_topology(3)
    weights = metropolis_weights(topo)
    init = model.init_params(seed=1)
    return model, shards, topo, weights, init


def test_faulty_testbed_matches_faulty_simulation_bit_for_bit(ridge_setup):
    """One FaultPlan, two runtimes, identical mathematics: link outages,
    node-down spans, and wire corruption all replay exactly."""
    model, shards, topo, weights, init = ridge_setup
    rounds = 12

    def plan():
        # Fresh per runtime: scheduled models bind to one topology instance.
        return FaultPlan(
            links=ScheduledFailures({3: [(0, 1)], 4: [(0, 1)]}),
            nodes=CrashRestartSchedule({1: [(6, 7)]}),
            corruption=ScheduledCorruption({9: [(0, 2)]}),
        )

    def config():
        return SNAPConfig(
            selection=SelectionPolicy.CHANGED_ONLY, alpha=0.05, seed=0
        )

    simulated = SNAPTrainer(
        model, shards, topo, config=config(), weight_matrix=weights,
        initial_params=init, fault_plan=plan(),
    )
    sim_result = simulated.run(max_rounds=rounds, stop_on_convergence=False)

    testbed = TestbedRuntime(
        model, shards, topo, config=config(), weight_matrix=weights,
        initial_params=init, fault_plan=plan(), round_deadline_s=5.0,
    )
    net_result = testbed.run(rounds)

    np.testing.assert_array_equal(
        net_result.final_params, simulated.stacked_params()
    )
    assert net_result.payload_bytes_total == sim_result.total_bytes
    assert net_result.per_round_payload_bytes == sim_result.bytes_trace()
    np.testing.assert_allclose(
        net_result.mean_loss_trace, sim_result.loss_trace(), atol=1e-12
    )
    assert net_result.corrupt_frames_total == 1
    # Final staleness agrees with the simulator's per-link ages.
    assert net_result.link_staleness == simulated.link_staleness


def test_testbed_stale_view_ledger_matches_semisync_engine(ridge_setup):
    """The testbed's ``stale_view_rounds`` ledger counts exactly what the
    semi-synchronous simulator engine counts: rounds a node started with a
    neighbor view older than the previous round. Same fault plan, two
    runtimes, identical straggler ledgers (and zero on a clean run)."""
    model, shards, topo, weights, init = ridge_setup
    rounds = 12

    def plan():
        return FaultPlan(
            links=ScheduledFailures({3: [(0, 1)], 4: [(0, 1)]}),
            nodes=CrashRestartSchedule({1: [(6, 7)]}),
            corruption=ScheduledCorruption({9: [(0, 2)]}),
        )

    def config(engine):
        return SNAPConfig(
            selection=SelectionPolicy.CHANGED_ONLY,
            alpha=0.05,
            seed=0,
            engine=engine,
        )

    simulated = SNAPTrainer(
        model, shards, topo, config=config("semisync"), weight_matrix=weights,
        initial_params=init, fault_plan=plan(),
    )
    simulated.run(max_rounds=rounds, stop_on_convergence=False)

    testbed = TestbedRuntime(
        model, shards, topo, config=config("reference"),
        weight_matrix=weights, initial_params=init, fault_plan=plan(),
        round_deadline_s=5.0,
    )
    net_result = testbed.run(rounds)

    engine_ledger = dict(simulated.engine.stale_view_rounds)
    testbed_ledger = {
        edge: count
        for edge, count in net_result.stale_view_rounds.items()
        if count  # the engine's Counter only holds incremented edges
    }
    assert testbed_ledger == engine_ledger
    # The faults actually left someone working from an old view.
    assert sum(testbed_ledger.values()) > 0
    # Every directed edge appears in the testbed ledger, stale or not.
    assert set(net_result.stale_view_rounds) == {
        (u, v) for u in topo for v in topo.neighbors(u)
    }


def test_kill_one_server_mid_run_degrades_without_deadlock(rng):
    """Hard-crash a server mid-run: sockets die abruptly, survivors fall
    back to cached views and finish every round."""
    n, p = 200, 3
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p)
    n_servers = 5
    shards = iid_partition(Dataset(X, y), n_servers, seed=2)
    model = RidgeRegression(p, regularization=0.1)
    topo = ring_topology(n_servers)
    rounds = 8
    victim, crash_round = 4, 3

    testbed = TestbedRuntime(
        model,
        shards,
        topo,
        config=SNAPConfig(
            selection=SelectionPolicy.CHANGED_ONLY, alpha=0.05, seed=0
        ),
        round_deadline_s=3.0,
        crash_schedule={crash_round: [victim]},
    )
    result = testbed.run(rounds)

    assert result.n_rounds == rounds
    assert result.dead_nodes == {victim}
    # The victim stepped only before its crash round.
    victim_node = testbed.nodes[victim]
    assert len(victim_node.loss_trace) == crash_round - 1
    # Every link into the victim's neighbors from the victim went stale and
    # stayed stale for the rest of the run.
    for neighbor in topo.neighbors(victim):
        assert result.link_staleness[(victim, neighbor)] >= (
            rounds - crash_round
        )
    # Survivors kept exchanging: their mutual links are not all stale.
    assert any(
        age == 0
        for (source, _), age in result.link_staleness.items()
        if source != victim
    )
    # Survivors kept learning after the crash.
    assert result.mean_loss_trace[-1] < result.mean_loss_trace[0]


def test_wire_corruption_is_detected_and_survived(ridge_setup):
    """Frames damaged in flight are rejected by the CRC32 check and never
    applied — the receiver keeps its cached view and the run completes."""
    model, shards, topo, weights, init = ridge_setup
    plan = FaultPlan(
        corruption=ScheduledCorruption({2: [(0, 1)], 4: [(2, 0), (1, 2)]})
    )
    testbed = TestbedRuntime(
        model, shards, topo,
        config=SNAPConfig(
            selection=SelectionPolicy.CHANGED_ONLY, alpha=0.05, seed=0
        ),
        weight_matrix=weights, initial_params=init,
        fault_plan=plan, round_deadline_s=5.0,
    )
    result = testbed.run(6)
    assert result.n_rounds == 6
    assert result.corrupt_frames_total == 3
    assert result.dead_nodes == frozenset()
    # All parameters finite and the run still learned.
    assert np.all(np.isfinite(result.final_params))
    assert result.mean_loss_trace[-1] < result.mean_loss_trace[0]


def test_silent_peer_declared_dead_after_k_misses(rng):
    """A peer that stays connected but stops sending (silent packet loss)
    costs its neighbors one receive deadline per round until
    ``dead_after_misses`` misses accumulate; after that they stop waiting."""
    n, p = 90, 2
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p)
    shards = iid_partition(Dataset(X, y), 3, seed=3)
    model = RidgeRegression(p, regularization=0.1)
    topo = complete_topology(3)
    rounds = 5

    testbed = TestbedRuntime(
        model, shards, topo,
        config=SNAPConfig(
            selection=SelectionPolicy.CHANGED_ONLY, alpha=0.05, seed=0
        ),
        round_deadline_s=0.5,
        dead_after_misses=2,
    )
    # Node 0 goes mute: frames are built but never transmitted.
    testbed.nodes[0]._send = lambda neighbor, message, corrupt, payload, state: None
    result = testbed.run(rounds)

    assert result.n_rounds == rounds
    for other in (1, 2):
        # Node 0's updates never arrived anywhere.
        assert result.link_staleness[(0, other)] == rounds
        # After 2 missed deadlines the peers wrote node 0 off.
        assert 0 in testbed.nodes[other].dead_peers
        assert testbed.nodes[other].miss_streak[0] == 2
    # The mute node still *received* fine.
    assert result.link_staleness[(1, 0)] == 0
    assert result.link_staleness[(2, 0)] == 0


def test_crash_request_api_validates_node(ridge_setup):
    from repro.exceptions import ConfigurationError

    model, shards, topo, weights, init = ridge_setup
    testbed = TestbedRuntime(
        model, shards, topo, weight_matrix=weights, initial_params=init
    )
    with pytest.raises(ConfigurationError):
        testbed.crash(99)


def test_bad_fault_knobs_rejected(ridge_setup):
    from repro.exceptions import ConfigurationError

    model, shards, topo, weights, init = ridge_setup
    with pytest.raises(ConfigurationError):
        TestbedRuntime(
            model, shards, topo, weight_matrix=weights, round_deadline_s=0
        )
    with pytest.raises(ConfigurationError):
        TestbedRuntime(
            model, shards, topo, weight_matrix=weights, dead_after_misses=0
        )
    with pytest.raises(ConfigurationError):
        TestbedRuntime(
            model, shards, topo, weight_matrix=weights,
            crash_schedule={1: [99]},
        )
