"""Tests for repro.runtime.transport over real localhost sockets."""

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.exceptions import FrameCorruptionError, ProtocolError
from repro.network.messages import ParameterUpdate
from repro.runtime.transport import HEADER_BYTES, FrameConnection, RetryPolicy


@pytest.fixture
def socket_pair():
    """A connected (client, server) socket pair on localhost."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    client = socket.create_connection(("127.0.0.1", port))
    server, _ = listener.accept()
    listener.close()
    yield FrameConnection(client), FrameConnection(server)
    client.close()
    server.close()


def make_update(total=30, n_sent=7, seed=0, sender=2, round_index=5):
    rng = np.random.default_rng(seed)
    indices = np.sort(rng.choice(total, size=n_sent, replace=False))
    return ParameterUpdate(
        sender=sender,
        round_index=round_index,
        total_params=total,
        indices=indices.astype(np.int64),
        values=rng.normal(size=n_sent),
    )


class TestFrameConnection:
    def test_round_trip_over_a_real_socket(self, socket_pair):
        client, server = socket_pair
        update = make_update()
        client.send_update(update)
        received = server.recv_update()
        assert received.sender == update.sender
        assert received.round_index == update.round_index
        np.testing.assert_array_equal(received.indices, update.indices)
        np.testing.assert_array_equal(received.values, update.values)

    def test_payload_byte_count_matches_accounting(self, socket_pair):
        client, _ = socket_pair
        update = make_update()
        assert client.send_update(update) == update.size_bytes

    def test_multiple_frames_stream_in_order(self, socket_pair):
        client, server = socket_pair
        updates = [make_update(seed=s, round_index=s) for s in range(5)]
        for update in updates:
            client.send_update(update)
        for update in updates:
            received = server.recv_update()
            assert received.round_index == update.round_index

    def test_both_frame_formats_cross_the_wire(self, socket_pair):
        client, server = socket_pair
        dense = ParameterUpdate.dense(0, 1, np.arange(6.0))  # UNCHANGED_INDEX
        sparse = make_update(total=40, n_sent=2)  # INDEX_VALUE
        client.send_update(dense)
        client.send_update(sparse)
        first = server.recv_update()
        second = server.recv_update()
        np.testing.assert_array_equal(first.values, np.arange(6.0))
        assert second.n_sent == 2

    def test_closed_connection_raises_protocol_error(self, socket_pair):
        client, server = socket_pair
        client.close()
        with pytest.raises(ProtocolError):
            server.recv_update()

    def test_header_size_constant(self):
        assert HEADER_BYTES == 21  # 4 + 4 + 1 + 4 + 4 + 4 (CRC32)


class TestIntegrity:
    def test_corrupted_frame_raises_with_sender_and_round(self, socket_pair):
        client, server = socket_pair
        update = make_update(sender=2, round_index=5)
        client.send_corrupted(update)
        with pytest.raises(FrameCorruptionError) as excinfo:
            server.recv_update()
        assert excinfo.value.sender == 2
        assert excinfo.value.round_index == 5
        assert "CRC32" in str(excinfo.value)

    def test_stream_stays_aligned_after_corruption(self, socket_pair):
        """The length field frames the payload even when the CRC is wrong,
        so the frame after a corrupted one decodes normally."""
        client, server = socket_pair
        client.send_corrupted(make_update(round_index=1))
        good = make_update(round_index=2)
        client.send_update(good)
        with pytest.raises(FrameCorruptionError):
            server.recv_update()
        received = server.recv_update()
        assert received.round_index == 2
        np.testing.assert_array_equal(received.values, good.values)

    def test_corrupted_send_costs_the_same_bytes(self, socket_pair):
        client, _ = socket_pair
        update = make_update()
        assert client.send_corrupted(update) == update.size_bytes

    def test_corruption_error_is_a_protocol_error(self):
        assert issubclass(FrameCorruptionError, ProtocolError)


class TestDeadlinesAndErrors:
    def test_mid_frame_eof_names_peer_and_missing_bytes(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        client = socket.create_connection(("127.0.0.1", listener.getsockname()[1]))
        server_sock, _ = listener.accept()
        listener.close()
        connection = FrameConnection(server_sock, peer="server 7")
        client.sendall(b"\x00" * 5)  # a fragment of the 21-byte header
        client.close()
        with pytest.raises(ProtocolError, match=r"server 7.*mid-frame.*16 of 20"):
            connection.recv_update()
        connection.close()

    def test_idle_timeout_returns_none(self, socket_pair):
        _, server = socket_pair
        assert server.recv_update(idle_timeout_s=0.05) is None

    def test_frame_timeout_is_absolute_not_per_chunk(self):
        """A sender that trickles bytes slowly cannot keep a frame alive
        forever: the deadline starts at the frame's first byte and is never
        reset by partial progress."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        client = socket.create_connection(("127.0.0.1", listener.getsockname()[1]))
        server_sock, _ = listener.accept()
        listener.close()
        connection = FrameConnection(
            server_sock, peer="server 4", frame_timeout_s=0.25
        )
        # A well-formed header announcing a 64-byte INDEX_VALUE payload...
        header = struct.pack(">IIBIII", 1, 2, 1, 30, 64, 0)
        stop = threading.Event()

        def trickle():
            client.sendall(header)
            for _ in range(64):
                if stop.is_set():
                    return
                try:
                    client.sendall(b"\x00")  # ...that arrives one byte at a time
                except OSError:
                    return
                time.sleep(0.05)

        sender = threading.Thread(target=trickle, daemon=True)
        sender.start()
        started = time.monotonic()
        with pytest.raises(ProtocolError, match=r"server 4.*timed out mid-frame"):
            connection.recv_update()
        # The deadline fired on schedule, not after 64 * 0.05s of trickle.
        assert time.monotonic() - started < 2.0
        stop.set()
        connection.close()
        client.close()

    def test_frame_timeout_aborts_a_stalled_frame(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        client = socket.create_connection(("127.0.0.1", listener.getsockname()[1]))
        server_sock, _ = listener.accept()
        listener.close()
        connection = FrameConnection(
            server_sock, peer="server 3", frame_timeout_s=0.2
        )
        client.sendall(b"\x00" * 5)  # frame starts, then the sender hangs
        with pytest.raises(ProtocolError, match="timed out mid-frame"):
            connection.recv_update()
        connection.close()
        client.close()


class TestRetryAndReconnect:
    def test_send_retries_through_reconnect(self):
        """A send whose socket has died transparently re-dials and lands."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        port = listener.getsockname()[1]

        accepted = []

        def accept_loop():
            while len(accepted) < 2:
                sock, _ = listener.accept()
                accepted.append(sock)

        acceptor = threading.Thread(target=accept_loop, daemon=True)
        acceptor.start()

        first = socket.create_connection(("127.0.0.1", port))
        sender = FrameConnection(
            first,
            peer="server 1",
            reconnect=lambda: socket.create_connection(("127.0.0.1", port)),
            retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=0.01),
        )
        while len(accepted) < 1:
            pass
        # Kill the server side of the first connection so the next sends
        # eventually fail with ECONNRESET/EPIPE.
        accepted[0].setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER,
            __import__("struct").pack("ii", 1, 0),
        )
        accepted[0].close()

        update = make_update()
        # Keep sending until the dead socket is noticed and replaced; every
        # call must either succeed or retry internally — never raise.
        for _ in range(50):
            sender.send_update(update)
            if len(accepted) >= 2:
                break
        assert len(accepted) >= 2  # the reconnect path actually re-dialed
        receiver = FrameConnection(accepted[-1])
        received = receiver.recv_update()
        assert received.round_index == update.round_index
        sender.close()
        receiver.close()
        listener.close()

    def test_exhausted_retries_raise_protocol_error_naming_peer(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        client = socket.create_connection(("127.0.0.1", listener.getsockname()[1]))
        server_sock, _ = listener.accept()
        listener.close()
        sender = FrameConnection(
            client,
            peer="server 9",
            retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
        )
        server_sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER,
            __import__("struct").pack("ii", 1, 0),
        )
        server_sock.close()
        update = make_update(total=4000, n_sent=2000)
        with pytest.raises(ProtocolError, match="server 9"):
            for _ in range(200):  # the OS buffer absorbs the first few
                sender.send_update(update)
        sender.close()

    def test_reconnect_storm_after_peer_restart(self):
        """A peer that restarts (all connections reset, then the listener
        comes back on the same port) triggers simultaneous re-dials from
        every sender; all of them must land their frames on the new
        incarnation without a single ProtocolError escaping."""
        n_senders = 4
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(n_senders * 2)
        port = listener.getsockname()[1]

        old_accepted = []
        senders = []
        for i in range(n_senders):
            client = socket.create_connection(("127.0.0.1", port))
            sock, _ = listener.accept()
            old_accepted.append(sock)
            senders.append(
                FrameConnection(
                    client,
                    peer=f"server {i}",
                    reconnect=lambda: socket.create_connection(
                        ("127.0.0.1", port)
                    ),
                    retry_policy=RetryPolicy(
                        max_attempts=8, backoff_base_s=0.01, backoff_max_s=0.05
                    ),
                )
            )

        # Restart the peer: reset every established connection, drop the
        # listener, then come back on the same port.
        listener.close()
        for sock in old_accepted:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            sock.close()
        restarted = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        restarted.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        restarted.bind(("127.0.0.1", port))
        restarted.listen(n_senders * 2)

        new_accepted = []

        def accept_loop():
            restarted.settimeout(0.2)
            while len(new_accepted) < n_senders:
                try:
                    sock, _ = restarted.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                new_accepted.append(sock)

        acceptor = threading.Thread(target=accept_loop, daemon=True)
        acceptor.start()

        errors = []

        def pump(index):
            # The first sends may vanish into the dead socket's buffer;
            # keep pushing until the reconnect path has demonstrably fired.
            try:
                for round_index in range(100):
                    senders[index].send_update(
                        make_update(sender=index, round_index=round_index)
                    )
                    if len(new_accepted) >= n_senders:
                        return
            except ProtocolError as error:
                errors.append(error)

        pumps = [
            threading.Thread(target=pump, args=(i,)) for i in range(n_senders)
        ]
        for thread in pumps:
            thread.start()
        for thread in pumps:
            thread.join(timeout=10.0)

        assert not errors  # every send either landed or retried internally
        assert len(new_accepted) >= n_senders
        seen = set()
        for sock in new_accepted:
            receiver = FrameConnection(sock)
            update = receiver.recv_update(idle_timeout_s=1.0)
            if update is not None:
                seen.add(update.sender)
            receiver.close()
        assert seen == set(range(n_senders))
        for sender in senders:
            sender.close()
        restarted.close()

    def test_exhaustion_with_failing_reconnect_names_peer_and_attempts(self):
        """When the peer never comes back (reconnect factory keeps failing),
        the send gives up after exactly ``max_attempts`` tries with an error
        naming the peer and chaining the underlying socket failure."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        client = socket.create_connection(("127.0.0.1", listener.getsockname()[1]))
        server_sock, _ = listener.accept()
        listener.close()

        def dial_the_void():
            raise OSError("connection refused")

        sender = FrameConnection(
            client,
            peer="server 5",
            reconnect=dial_the_void,
            retry_policy=RetryPolicy(max_attempts=3, backoff_base_s=0.01),
        )
        server_sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        server_sock.close()
        update = make_update(total=4000, n_sent=2000)
        with pytest.raises(
            ProtocolError, match=r"server 5.*after 3 attempt"
        ) as excinfo:
            for _ in range(200):  # the OS buffer absorbs the first few
                sender.send_update(update)
        assert isinstance(excinfo.value.__cause__, OSError)
        sender.close()

    def test_retry_policy_backoff_grows_and_caps(self):
        import random

        policy = RetryPolicy(
            max_attempts=5, backoff_base_s=0.1, backoff_max_s=0.3, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.delay_s(attempt, rng) for attempt in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]  # doubles, then caps
