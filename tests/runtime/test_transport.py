"""Tests for repro.runtime.transport over real localhost sockets."""

import socket
import threading

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.network.messages import ParameterUpdate
from repro.runtime.transport import HEADER_BYTES, FrameConnection


@pytest.fixture
def socket_pair():
    """A connected (client, server) socket pair on localhost."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    client = socket.create_connection(("127.0.0.1", port))
    server, _ = listener.accept()
    listener.close()
    yield FrameConnection(client), FrameConnection(server)
    client.close()
    server.close()


def make_update(total=30, n_sent=7, seed=0, sender=2, round_index=5):
    rng = np.random.default_rng(seed)
    indices = np.sort(rng.choice(total, size=n_sent, replace=False))
    return ParameterUpdate(
        sender=sender,
        round_index=round_index,
        total_params=total,
        indices=indices.astype(np.int64),
        values=rng.normal(size=n_sent),
    )


class TestFrameConnection:
    def test_round_trip_over_a_real_socket(self, socket_pair):
        client, server = socket_pair
        update = make_update()
        client.send_update(update)
        received = server.recv_update()
        assert received.sender == update.sender
        assert received.round_index == update.round_index
        np.testing.assert_array_equal(received.indices, update.indices)
        np.testing.assert_array_equal(received.values, update.values)

    def test_payload_byte_count_matches_accounting(self, socket_pair):
        client, _ = socket_pair
        update = make_update()
        assert client.send_update(update) == update.size_bytes

    def test_multiple_frames_stream_in_order(self, socket_pair):
        client, server = socket_pair
        updates = [make_update(seed=s, round_index=s) for s in range(5)]
        for update in updates:
            client.send_update(update)
        for update in updates:
            received = server.recv_update()
            assert received.round_index == update.round_index

    def test_both_frame_formats_cross_the_wire(self, socket_pair):
        client, server = socket_pair
        dense = ParameterUpdate.dense(0, 1, np.arange(6.0))  # UNCHANGED_INDEX
        sparse = make_update(total=40, n_sent=2)  # INDEX_VALUE
        client.send_update(dense)
        client.send_update(sparse)
        first = server.recv_update()
        second = server.recv_update()
        np.testing.assert_array_equal(first.values, np.arange(6.0))
        assert second.n_sent == 2

    def test_closed_connection_raises_protocol_error(self, socket_pair):
        client, server = socket_pair
        client.close()
        with pytest.raises(ProtocolError):
            server.recv_update()

    def test_header_size_constant(self):
        assert HEADER_BYTES == 17  # 4 + 4 + 1 + 4 + 4
