"""Integration tests: the networked testbed equals the in-process simulation."""

import numpy as np
import pytest

from repro.core import SNAPConfig, SNAPTrainer
from repro.core.config import SelectionPolicy
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.exceptions import ConfigurationError
from repro.models.ridge import RidgeRegression
from repro.models.svm import LinearSVM
from repro.runtime.testbed import TestbedRuntime
from repro.runtime.transport import HEADER_BYTES
from repro.topology.generators import complete_topology, random_topology
from repro.weights.construction import metropolis_weights


@pytest.fixture
def ridge_setup(rng):
    n, p = 120, 3
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p) + 0.1 * rng.normal(size=n)
    shards = iid_partition(Dataset(X, y), 3, seed=0)
    model = RidgeRegression(p, regularization=0.1)
    topo = complete_topology(3)
    weights = metropolis_weights(topo)
    init = model.init_params(seed=1)
    return model, shards, topo, weights, init


@pytest.mark.parametrize(
    "selection",
    [SelectionPolicy.APE, SelectionPolicy.CHANGED_ONLY, SelectionPolicy.DENSE],
)
def test_testbed_matches_simulation_bit_for_bit(ridge_setup, selection):
    """The headline property: real sockets, identical mathematics."""
    model, shards, topo, weights, init = ridge_setup
    rounds = 12

    simulated = SNAPTrainer(
        model,
        shards,
        topo,
        config=SNAPConfig(selection=selection, alpha=0.05, seed=0),
        weight_matrix=weights,
        initial_params=init,
    )
    sim_result = simulated.run(max_rounds=rounds, stop_on_convergence=False)

    testbed = TestbedRuntime(
        model,
        shards,
        topo,
        config=SNAPConfig(selection=selection, alpha=0.05, seed=0),
        weight_matrix=weights,
        initial_params=init,
    )
    net_result = testbed.run(rounds)

    np.testing.assert_array_equal(
        net_result.final_params, simulated.stacked_params()
    )
    # The paper's metric — payload bytes written into the socket — matches
    # the simulator's frame accounting exactly.
    assert net_result.payload_bytes_total == sim_result.total_bytes
    assert net_result.per_round_payload_bytes == sim_result.bytes_trace()


def test_testbed_loss_trace_matches_simulation(ridge_setup):
    model, shards, topo, weights, init = ridge_setup
    config = SNAPConfig(selection=SelectionPolicy.CHANGED_ONLY, alpha=0.05, seed=0)
    simulated = SNAPTrainer(
        model, shards, topo, config=config, weight_matrix=weights,
        initial_params=init,
    )
    sim_result = simulated.run(max_rounds=8, stop_on_convergence=False)
    testbed = TestbedRuntime(
        model, shards, topo, config=config, weight_matrix=weights,
        initial_params=init,
    )
    net_result = testbed.run(8)
    np.testing.assert_allclose(
        net_result.mean_loss_trace, sim_result.loss_trace(), atol=1e-12
    )


def test_testbed_on_sparse_topology_trains_an_svm(rng):
    """A 5-node, degree-limited networked run learns and reports overhead."""
    n, p = 250, 4
    X = rng.normal(size=(n, p))
    y = np.where(X @ rng.normal(size=p) > 0, 1.0, -1.0)
    shards = iid_partition(Dataset(X, y), 5, seed=2)
    model = LinearSVM(p, regularization=1e-2)
    topo = random_topology(5, 2.5, seed=3)
    testbed = TestbedRuntime(
        model,
        shards,
        topo,
        config=SNAPConfig(seed=0),
    )
    result = testbed.run(40)
    assert result.n_rounds == 40
    assert result.mean_loss_trace[-1] < result.mean_loss_trace[0]
    assert result.payload_bytes_total > 0
    # header overhead: one fixed-size header per directed frame
    n_frames = 2 * topo.n_edges * 40
    assert result.header_bytes_total == n_frames * HEADER_BYTES


def test_bad_round_count_rejected(ridge_setup):
    model, shards, topo, weights, init = ridge_setup
    testbed = TestbedRuntime(model, shards, topo, weight_matrix=weights)
    with pytest.raises(ConfigurationError):
        testbed.run(0)


def test_bad_timeout_rejected(ridge_setup):
    model, shards, topo, weights, _ = ridge_setup
    with pytest.raises(ConfigurationError):
        TestbedRuntime(model, shards, topo, weight_matrix=weights, timeout_s=0)
