"""Tier-2 performance smoke test: the vectorized engine must actually be fast.

The full scaling study lives in ``benchmarks/bench_engine_scaling.py`` (run
via ``make bench``); this is the cheap CI guard that the fast path has not
silently regressed into reference-speed territory. The ISSUE-2 acceptance
bar is >=10x at N=128; the smoke test asserts a conservative >=5x at N=64 so
machine noise on loaded CI workers cannot flake it.
"""

import resource
import time

import numpy as np
import pytest

from repro.core.config import SNAPConfig
from repro.core.trainer import SNAPTrainer
from repro.data.dataset import Dataset
from repro.models.logistic import LogisticRegression
from repro.models.mlp import MLPClassifier
from repro.topology.generators import random_regular_topology

N_NODES = 64
N_FEATURES = 10
SAMPLES_PER_SHARD = 30


def _make_trainer(engine: str, model_kind: str = "logistic") -> SNAPTrainer:
    rng = np.random.default_rng(42)
    shards = []
    for _ in range(N_NODES):
        X = rng.normal(size=(SAMPLES_PER_SHARD, N_FEATURES))
        if model_kind == "logistic":
            w = rng.normal(size=N_FEATURES)
            y = (X @ w > 0).astype(float)
        else:
            y = rng.integers(0, 3, SAMPLES_PER_SHARD).astype(float)
        shards.append(Dataset(X, y))
    topology = random_regular_topology(N_NODES, degree=4, seed=3)
    config = SNAPConfig(
        engine=engine,
        max_rounds=10_000,
        seed=7,
        optimize_weights=False,
        retain_flow_records=False,
    )
    if model_kind == "logistic":
        model = LogisticRegression(N_FEATURES)
    else:
        model = MLPClassifier((N_FEATURES, 16, 3))
    return SNAPTrainer(model, shards, topology, config)


def _rounds_per_second(engine: str, rounds: int, model_kind: str = "logistic") -> float:
    trainer = _make_trainer(engine, model_kind)
    trainer.run(max_rounds=2, stop_on_convergence=False)  # warm-up
    start = time.perf_counter()
    trainer.run(max_rounds=rounds, stop_on_convergence=False)
    return rounds / (time.perf_counter() - start)


@pytest.mark.perf
def test_vectorized_beats_reference_5x_at_n64():
    reference = _rounds_per_second("reference", rounds=8)
    vectorized = _rounds_per_second("vectorized", rounds=80)
    speedup = vectorized / reference
    assert speedup >= 5.0, (
        f"vectorized engine only {speedup:.1f}x faster than reference at "
        f"N={N_NODES} ({vectorized:.1f} vs {reference:.1f} rounds/s)"
    )


@pytest.mark.perf
def test_vectorized_mlp_beats_reference_4x_at_n64():
    """The grouped MLP kernels must keep the fast path fast for deep models.

    Before the grouped forward/backward landed, the MLP batch path fell back
    to a per-node Python loop and the vectorized engine only reached ~1.7x
    over reference; the grouped kernels deliver ~7x here, so 4x is a
    regression guard with headroom for loaded CI workers.
    """
    reference = _rounds_per_second("reference", rounds=8, model_kind="mlp")
    vectorized = _rounds_per_second("vectorized", rounds=80, model_kind="mlp")
    speedup = vectorized / reference
    assert speedup >= 4.0, (
        f"vectorized engine only {speedup:.1f}x faster than reference on the "
        f"MLP at N={N_NODES} ({vectorized:.1f} vs {reference:.1f} rounds/s)"
    )


@pytest.mark.perf
def test_retention_off_bounds_memory_at_n512():
    """A retention-off N=512 run must stay within a modest RSS budget.

    With ``retain_flow_records=False``, ``sparse_weights=True`` and the
    columnar telemetry layer, the tracker and result hold O(rounds + edges)
    state — nothing proportional to rounds x edges. The 512 MiB ceiling is
    far above the steady-state footprint (~tens of MiB above the Python
    baseline) but far below what a retained per-flow ledger or a dense
    (N, N) weight matrix path would consume at this scale.
    """
    rng = np.random.default_rng(0)
    n, d = 512, 16
    shards = []
    for _ in range(n):
        X = rng.normal(size=(10, d))
        w = rng.normal(size=d)
        shards.append(Dataset(X, (X @ w > 0).astype(float)))
    topology = random_regular_topology(n, degree=4, seed=1)
    config = SNAPConfig(
        engine="vectorized",
        max_rounds=40,
        seed=7,
        optimize_weights=False,
        sparse_weights=True,
        retain_flow_records=False,
    )
    trainer = SNAPTrainer(LogisticRegression(d), shards, topology, config)
    trainer.run(stop_on_convergence=False)
    peak_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    assert peak_mib < 512, (
        f"peak RSS {peak_mib:.0f} MiB at N={n} with retention off; the "
        "memory-bounded fast path must stay well under 512 MiB"
    )
