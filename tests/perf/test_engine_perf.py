"""Tier-2 performance smoke test: the vectorized engine must actually be fast.

The full scaling study lives in ``benchmarks/bench_engine_scaling.py`` (run
via ``make bench``); this is the cheap CI guard that the fast path has not
silently regressed into reference-speed territory. The ISSUE-2 acceptance
bar is >=10x at N=128; the smoke test asserts a conservative >=5x at N=64 so
machine noise on loaded CI workers cannot flake it.
"""

import time

import numpy as np
import pytest

from repro.core.config import SNAPConfig
from repro.core.trainer import SNAPTrainer
from repro.data.dataset import Dataset
from repro.models.logistic import LogisticRegression
from repro.topology.generators import random_regular_topology

N_NODES = 64
N_FEATURES = 10
SAMPLES_PER_SHARD = 30


def _make_trainer(engine: str) -> SNAPTrainer:
    rng = np.random.default_rng(42)
    shards = []
    for _ in range(N_NODES):
        X = rng.normal(size=(SAMPLES_PER_SHARD, N_FEATURES))
        w = rng.normal(size=N_FEATURES)
        y = (X @ w > 0).astype(float)
        shards.append(Dataset(X, y))
    topology = random_regular_topology(N_NODES, degree=4, seed=3)
    config = SNAPConfig(
        engine=engine,
        max_rounds=10_000,
        seed=7,
        optimize_weights=False,
        retain_flow_records=False,
    )
    return SNAPTrainer(LogisticRegression(N_FEATURES), shards, topology, config)


def _rounds_per_second(engine: str, rounds: int) -> float:
    trainer = _make_trainer(engine)
    trainer.run(max_rounds=2, stop_on_convergence=False)  # warm-up
    start = time.perf_counter()
    trainer.run(max_rounds=rounds, stop_on_convergence=False)
    return rounds / (time.perf_counter() - start)


@pytest.mark.perf
def test_vectorized_beats_reference_5x_at_n64():
    reference = _rounds_per_second("reference", rounds=8)
    vectorized = _rounds_per_second("vectorized", rounds=80)
    speedup = vectorized / reference
    assert speedup >= 5.0, (
        f"vectorized engine only {speedup:.1f}x faster than reference at "
        f"N={N_NODES} ({vectorized:.1f} vs {reference:.1f} rounds/s)"
    )
