"""Tests for repro.topology.generators."""

import pytest

from repro.exceptions import TopologyError
from repro.topology.generators import (
    complete_topology,
    grid_topology,
    random_regular_topology,
    random_topology,
    ring_topology,
    star_topology,
)


class TestStructuredTopologies:
    def test_complete(self):
        topo = complete_topology(4)
        assert topo.n_edges == 6
        assert all(topo.degree(node) == 3 for node in topo)
        assert topo.is_connected()

    def test_complete_rejects_zero(self):
        with pytest.raises(TopologyError):
            complete_topology(0)

    def test_ring_degrees(self):
        topo = ring_topology(7)
        assert all(topo.degree(node) == 2 for node in topo)
        assert topo.n_edges == 7
        assert topo.is_connected()

    def test_ring_needs_three_nodes(self):
        with pytest.raises(TopologyError):
            ring_topology(2)

    def test_star(self):
        topo = star_topology(5, center=2)
        assert topo.degree(2) == 4
        assert all(topo.degree(n) == 1 for n in topo if n != 2)

    def test_star_rejects_bad_center(self):
        with pytest.raises(TopologyError):
            star_topology(3, center=5)

    def test_grid(self):
        topo = grid_topology(3, 4)
        assert topo.n_nodes == 12
        # edges: horizontal 3*3 + vertical 2*4 = 17
        assert topo.n_edges == 17
        assert topo.is_connected()
        # corner nodes have degree 2
        assert topo.degree(0) == 2

    def test_grid_rejects_zero_dims(self):
        with pytest.raises(TopologyError):
            grid_topology(0, 3)


class TestRandomTopology:
    def test_connected_and_hits_target_degree(self):
        topo = random_topology(30, 4.0, seed=0)
        assert topo.is_connected()
        assert topo.average_degree() == pytest.approx(4.0, abs=0.2)

    def test_deterministic_given_seed(self):
        a = random_topology(15, 3.0, seed=9)
        b = random_topology(15, 3.0, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_topology(15, 3.0, seed=1)
        b = random_topology(15, 3.0, seed=2)
        assert a != b

    def test_minimum_degree_gives_tree(self):
        n = 10
        topo = random_topology(n, 2.0 * (n - 1) / n, seed=3)
        assert topo.n_edges == n - 1
        assert topo.is_connected()

    def test_max_degree_gives_complete_graph(self):
        topo = random_topology(6, 5.0, seed=4)
        assert topo.n_edges == 15

    def test_too_small_degree_rejected(self):
        with pytest.raises(TopologyError):
            random_topology(10, 1.0, seed=0)

    def test_too_large_degree_rejected(self):
        with pytest.raises(TopologyError):
            random_topology(10, 10.0, seed=0)

    def test_needs_two_nodes(self):
        with pytest.raises(TopologyError):
            random_topology(1, 0.0, seed=0)


class TestRandomRegular:
    def test_exact_degrees(self):
        topo = random_regular_topology(12, 3, seed=0)
        assert all(topo.degree(node) == 3 for node in topo)
        assert topo.is_connected()

    def test_parity_constraint(self):
        with pytest.raises(TopologyError):
            random_regular_topology(5, 3, seed=0)

    def test_degree_must_be_below_n(self):
        with pytest.raises(TopologyError):
            random_regular_topology(4, 4, seed=0)

    def test_degree_at_least_two(self):
        with pytest.raises(TopologyError):
            random_regular_topology(6, 1, seed=0)
