"""Tests for repro.topology.routing."""

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology.generators import complete_topology, ring_topology
from repro.topology.graph import Topology
from repro.topology.routing import (
    UNREACHABLE,
    all_pairs_hop_counts,
    diameter,
    eccentricity,
    hop_count,
)


class TestHopCount:
    def test_path_graph_distances(self):
        topo = Topology(4, [(0, 1), (1, 2), (2, 3)])
        assert hop_count(topo, 0, 0) == 0
        assert hop_count(topo, 0, 1) == 1
        assert hop_count(topo, 0, 3) == 3

    def test_unreachable(self):
        topo = Topology(3, [(0, 1)])
        assert hop_count(topo, 0, 2) == UNREACHABLE

    def test_ring_wraps_around(self):
        topo = ring_topology(6)
        assert hop_count(topo, 0, 3) == 3
        assert hop_count(topo, 0, 5) == 1


class TestAllPairs:
    def test_matches_pairwise_and_is_symmetric(self):
        topo = Topology(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        matrix = all_pairs_hop_counts(topo)
        for u in topo:
            for v in topo:
                assert matrix[u, v] == hop_count(topo, u, v)
        np.testing.assert_array_equal(matrix, matrix.T)

    def test_diagonal_is_zero(self):
        matrix = all_pairs_hop_counts(complete_topology(4))
        np.testing.assert_array_equal(np.diag(matrix), np.zeros(4))

    def test_complete_graph_all_ones_off_diagonal(self):
        matrix = all_pairs_hop_counts(complete_topology(4))
        off = matrix[~np.eye(4, dtype=bool)]
        assert set(off.tolist()) == {1}

    def test_disconnected_pairs_marked(self):
        topo = Topology(4, [(0, 1), (2, 3)])
        matrix = all_pairs_hop_counts(topo)
        assert matrix[0, 2] == UNREACHABLE
        assert matrix[1, 3] == UNREACHABLE


class TestDiameterEccentricity:
    def test_path_graph(self):
        topo = Topology(4, [(0, 1), (1, 2), (2, 3)])
        assert diameter(topo) == 3
        assert eccentricity(topo, 0) == 3
        assert eccentricity(topo, 1) == 2

    def test_disconnected_raises(self):
        topo = Topology(3, [(0, 1)])
        with pytest.raises(TopologyError):
            diameter(topo)
        with pytest.raises(TopologyError):
            eccentricity(topo, 0)
