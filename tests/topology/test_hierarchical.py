"""Unit tests for hierarchical topologies and tiered weight construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology.generators import (
    HierarchicalTopology,
    hierarchical_topology,
)
from repro.topology.graph import Topology
from repro.weights.construction import (
    metropolis_weights,
    tiered_metropolis_weights,
)


class TestHierarchicalTopology:
    def test_tier_labels_are_exposed(self):
        topo = HierarchicalTopology(3, [(0, 1), (1, 2)], (0, 1, 2))
        assert topo.tiers == (0, 1, 2)
        assert [topo.tier_of(i) for i in range(3)] == [0, 1, 2]

    def test_rejects_edges_spanning_two_tiers(self):
        with pytest.raises(TopologyError):
            HierarchicalTopology(3, [(0, 1), (0, 2)], (0, 1, 2))

    def test_rejects_mismatched_tier_count(self):
        with pytest.raises(TopologyError):
            HierarchicalTopology(3, [(0, 1), (1, 2)], (0, 1))
        with pytest.raises(TopologyError):
            HierarchicalTopology(3, [(0, 1), (1, 2)], (0, -1, 0))


class TestHierarchicalGenerator:
    def test_node_counts_and_bfs_numbering(self):
        topo = hierarchical_topology([3, 4])
        assert topo.n_nodes == 1 + 3 + 12
        assert topo.tiers == (0,) + (1,) * 3 + (2,) * 12
        # Cloud 0 links to every aggregator; each aggregator to 4 edges.
        assert sorted(topo.neighbors(0)) == [1, 2, 3]
        assert sorted(topo.neighbors(1)) == [0, 4, 5, 6, 7]

    def test_single_tier_is_a_star(self):
        topo = hierarchical_topology([4])
        assert topo.n_nodes == 5
        assert topo.n_edges == 4
        assert sorted(topo.neighbors(0)) == [1, 2, 3, 4]

    def test_sibling_rings_connect_children(self):
        plain = hierarchical_topology([2, 3])
        ringed = hierarchical_topology([2, 3], sibling_rings=True)
        assert ringed.n_nodes == plain.n_nodes == 9
        # Each of the two aggregators gains a closed 3-ring among its
        # children; the two aggregators themselves gain one chord.
        assert ringed.n_edges > plain.n_edges
        # Children of aggregator 1 (nodes 3, 4, 5) form a ring.
        assert 4 in ringed.neighbors(3) and 5 in ringed.neighbors(3)

    def test_rejects_degenerate_branching(self):
        with pytest.raises(TopologyError):
            hierarchical_topology([])
        with pytest.raises(TopologyError):
            hierarchical_topology([0])


class TestTieredWeights:
    def _topo(self):
        return hierarchical_topology([2, 2], sibling_rings=True)

    def test_result_is_symmetric_doubly_stochastic(self):
        W = tiered_metropolis_weights(self._topo(), uplink_damping=0.5)
        np.testing.assert_allclose(W, W.T)
        np.testing.assert_allclose(W.sum(axis=0), 1.0)
        np.testing.assert_allclose(W.sum(axis=1), 1.0)
        assert np.all(np.diag(W) > 0.0)

    def test_damping_shrinks_cross_tier_weights_only(self):
        topo = self._topo()
        full = tiered_metropolis_weights(topo, uplink_damping=1.0)
        damped = tiered_metropolis_weights(topo, uplink_damping=0.5)
        tiers = topo.tiers
        for u, v in topo.edges:
            if tiers[u] != tiers[v]:
                np.testing.assert_allclose(damped[u, v], 0.5 * full[u, v])
            else:
                np.testing.assert_allclose(damped[u, v], full[u, v])
        # The shed cross-tier mass lands on the diagonal.
        assert np.all(np.diag(damped) >= np.diag(full) - 1e-12)

    def test_no_damping_matches_metropolis(self):
        topo = self._topo()
        undamped = tiered_metropolis_weights(topo, uplink_damping=1.0)
        plain = metropolis_weights(topo)
        np.testing.assert_allclose(undamped, plain)

    def test_requires_tier_labels(self):
        flat = Topology(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        with pytest.raises(TopologyError):
            tiered_metropolis_weights(flat)

    def test_rejects_out_of_range_damping(self):
        topo = self._topo()
        with pytest.raises(TopologyError):
            tiered_metropolis_weights(topo, uplink_damping=0.0)
        with pytest.raises(TopologyError):
            tiered_metropolis_weights(topo, uplink_damping=1.5)
