"""Tests for repro.topology.failures."""

import pytest

from repro.exceptions import ConfigurationError
from repro.topology.failures import (
    IndependentLinkFailures,
    NoFailures,
    ScheduledFailures,
)
from repro.topology.generators import random_topology


@pytest.fixture
def topo():
    return random_topology(12, 4.0, seed=0)


class TestNoFailures:
    def test_always_empty(self, topo):
        model = NoFailures()
        assert model.failed_links(topo, 0) == frozenset()
        assert model.failed_links(topo, 999) == frozenset()


class TestIndependentLinkFailures:
    def test_zero_rate_never_fails(self, topo):
        model = IndependentLinkFailures(0.0, seed=1)
        assert all(not model.failed_links(topo, r) for r in range(20))

    def test_full_rate_fails_everything(self, topo):
        model = IndependentLinkFailures(1.0, seed=1)
        assert model.failed_links(topo, 3) == frozenset(topo.edges)

    def test_deterministic_per_round(self, topo):
        model = IndependentLinkFailures(0.3, seed=2)
        assert model.failed_links(topo, 5) == model.failed_links(topo, 5)

    def test_rounds_differ(self, topo):
        model = IndependentLinkFailures(0.5, seed=2)
        outcomes = {model.failed_links(topo, r) for r in range(10)}
        assert len(outcomes) > 1

    def test_seed_controls_outcomes(self, topo):
        a = IndependentLinkFailures(0.5, seed=1).failed_links(topo, 0)
        b = IndependentLinkFailures(0.5, seed=1).failed_links(topo, 0)
        assert a == b

    def test_empirical_rate_is_close(self, topo):
        model = IndependentLinkFailures(0.2, seed=3)
        total = sum(len(model.failed_links(topo, r)) for r in range(300))
        rate = total / (300 * topo.n_edges)
        assert rate == pytest.approx(0.2, abs=0.03)

    def test_failed_links_are_canonical_edges(self, topo):
        model = IndependentLinkFailures(0.9, seed=4)
        for u, v in model.failed_links(topo, 0):
            assert u < v
            assert (u, v) in topo.edges

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            IndependentLinkFailures(1.5)

    def test_rejects_negative_round(self, topo):
        model = IndependentLinkFailures(0.1, seed=0)
        with pytest.raises(ConfigurationError):
            model.failed_links(topo, -1)


class TestScheduledFailures:
    def test_schedule_is_followed(self, topo):
        edge = topo.edges[0]
        model = ScheduledFailures({2: [edge]})
        assert model.failed_links(topo, 2) == frozenset({edge})
        assert model.failed_links(topo, 1) == frozenset()

    def test_edges_canonicalized(self, topo):
        u, v = topo.edges[0]
        model = ScheduledFailures({0: [(v, u)]})
        assert model.failed_links(topo, 0) == frozenset({(u, v)})
