"""Tests for the small-world and scale-free topology generators."""

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology.generators import scale_free_topology, small_world_topology
from repro.topology.routing import diameter


class TestSmallWorld:
    def test_connected_with_expected_degree(self):
        topo = small_world_topology(30, base_degree=4, seed=0)
        assert topo.is_connected()
        assert topo.average_degree() == pytest.approx(4.0, abs=0.3)

    def test_deterministic(self):
        a = small_world_topology(20, seed=5)
        b = small_world_topology(20, seed=5)
        assert a == b

    def test_shortcuts_shrink_the_diameter(self):
        lattice = small_world_topology(40, base_degree=4, rewire_probability=0.0, seed=1)
        rewired = small_world_topology(40, base_degree=4, rewire_probability=0.3, seed=1)
        assert diameter(rewired) < diameter(lattice)

    def test_odd_base_degree_rejected(self):
        with pytest.raises(TopologyError):
            small_world_topology(20, base_degree=3)

    def test_bad_rewire_probability_rejected(self):
        with pytest.raises(TopologyError):
            small_world_topology(20, rewire_probability=1.5)

    def test_degree_must_fit(self):
        with pytest.raises(TopologyError):
            small_world_topology(4, base_degree=4)


class TestScaleFree:
    def test_connected_with_hub_structure(self):
        topo = scale_free_topology(40, attachments=2, seed=0)
        assert topo.is_connected()
        degrees = sorted(topo.degree(node) for node in topo)
        # a hub exists: max degree well above the median
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]

    def test_edge_count(self):
        # BA graph with m attachments has ~m*(n - m) edges
        topo = scale_free_topology(30, attachments=2, seed=1)
        assert topo.n_edges == 2 * (30 - 2)

    def test_deterministic(self):
        assert scale_free_topology(15, seed=3) == scale_free_topology(15, seed=3)

    def test_bad_attachments_rejected(self):
        with pytest.raises(TopologyError):
            scale_free_topology(10, attachments=0)
        with pytest.raises(TopologyError):
            scale_free_topology(10, attachments=10)


class TestTrainingOnStructuredTopologies:
    @pytest.mark.parametrize("maker", [small_world_topology, scale_free_topology])
    def test_snap_trains_on_it(self, maker, rng):
        from repro.core import SNAPConfig, SNAPTrainer
        from repro.data.dataset import Dataset
        from repro.data.partition import iid_partition
        from repro.models.ridge import RidgeRegression

        topo = maker(10, seed=7)
        n, p = 200, 3
        X = rng.normal(size=(n, p))
        y = X @ rng.normal(size=p)
        shards = iid_partition(Dataset(X, y), 10, seed=8)
        model = RidgeRegression(p, regularization=0.1)
        trainer = SNAPTrainer(
            model, shards, topo, config=SNAPConfig.snap0(seed=0)
        )
        trainer.run(max_rounds=600, stop_on_convergence=False)
        exact = model.solve_exact(X, y)
        np.testing.assert_allclose(trainer.mean_params(), exact, atol=2e-3)
