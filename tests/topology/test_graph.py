"""Tests for repro.topology.graph.Topology."""

import networkx as nx
import pytest

from repro.exceptions import TopologyError
from repro.topology.graph import Topology


class TestConstruction:
    def test_basic_properties(self):
        topo = Topology(4, [(0, 1), (1, 2), (2, 3)])
        assert topo.n_nodes == 4
        assert topo.n_edges == 3
        assert topo.edges == ((0, 1), (1, 2), (2, 3))

    def test_duplicate_and_reversed_edges_collapse(self):
        topo = Topology(3, [(0, 1), (1, 0), (0, 1)])
        assert topo.n_edges == 1

    def test_edges_are_canonicalized(self):
        topo = Topology(3, [(2, 0)])
        assert topo.edges == ((0, 2),)

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Topology(3, [(1, 1)])

    def test_out_of_range_node_rejected(self):
        with pytest.raises(TopologyError):
            Topology(3, [(0, 3)])

    def test_nonpositive_size_rejected(self):
        with pytest.raises(TopologyError):
            Topology(0, [])

    def test_empty_graph_allowed(self):
        topo = Topology(2, [])
        assert topo.n_edges == 0
        assert not topo.is_connected()


class TestNeighbors:
    def test_neighbor_sets(self):
        topo = Topology(4, [(0, 1), (0, 2), (2, 3)])
        assert topo.neighbors(0) == (1, 2)
        assert topo.neighbors(3) == (2,)
        assert topo.degree(0) == 2
        assert topo.degree(1) == 1

    def test_average_degree(self):
        topo = Topology(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert topo.average_degree() == pytest.approx(2.0)

    def test_has_edge(self):
        topo = Topology(3, [(0, 1)])
        assert topo.has_edge(0, 1)
        assert topo.has_edge(1, 0)
        assert not topo.has_edge(0, 2)
        assert not topo.has_edge(1, 1)

    def test_has_edge_rejects_unknown_node(self):
        topo = Topology(3, [(0, 1)])
        with pytest.raises(TopologyError):
            topo.has_edge(0, 5)

    def test_neighbors_rejects_unknown_node(self):
        topo = Topology(2, [(0, 1)])
        with pytest.raises(TopologyError):
            topo.neighbors(2)

    def test_neighbor_map_covers_all_nodes(self):
        topo = Topology(3, [(0, 1)])
        mapping = topo.neighbor_map()
        assert set(mapping) == {0, 1, 2}
        assert mapping[2] == ()


class TestStructure:
    def test_connectivity(self):
        connected = Topology(3, [(0, 1), (1, 2)])
        disconnected = Topology(3, [(0, 1)])
        assert connected.is_connected()
        assert not disconnected.is_connected()

    def test_networkx_round_trip(self):
        topo = Topology(5, [(0, 1), (1, 2), (3, 4)])
        again = Topology.from_networkx(topo.to_networkx())
        assert again == topo

    def test_from_networkx_relabels_arbitrary_nodes(self):
        graph = nx.Graph()
        graph.add_edges_from([("a", "b"), ("b", "c")])
        topo = Topology.from_networkx(graph)
        assert topo.n_nodes == 3
        assert topo.n_edges == 2

    def test_remove_edges(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        reduced = topo.remove_edges([(2, 1)])
        assert reduced.edges == ((0, 1),)
        # original is untouched (immutability)
        assert topo.n_edges == 2

    def test_equality_and_hash(self):
        a = Topology(3, [(0, 1)])
        b = Topology(3, [(1, 0)])
        c = Topology(3, [(0, 2)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a topology"

    def test_iteration_yields_node_ids(self):
        topo = Topology(4, [(0, 1)])
        assert list(topo) == [0, 1, 2, 3]

    def test_repr_mentions_size(self):
        assert "n_nodes=3" in repr(Topology(3, [(0, 1)]))
