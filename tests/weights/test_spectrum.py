"""Tests for repro.weights.spectrum."""

import numpy as np
import pytest

from repro.weights.spectrum import analyze_weight_matrix


class TestAnalyzeWeightMatrix:
    def test_complete_average_matrix(self):
        n = 4
        w = np.full((n, n), 1.0 / n)
        report = analyze_weight_matrix(w)
        assert report.largest == pytest.approx(1.0)
        assert report.second_largest == pytest.approx(0.0, abs=1e-12)
        assert report.smallest == pytest.approx(0.0, abs=1e-12)
        assert report.upper_gap == pytest.approx(1.0)
        assert report.lower_gap == pytest.approx(1.0)
        assert report.rate_score == pytest.approx(1.0)

    def test_two_node_matrix(self):
        a = 0.6
        w = np.array([[a, 1 - a], [1 - a, a]])
        report = analyze_weight_matrix(w)
        assert report.second_largest == pytest.approx(2 * a - 1)
        assert report.smallest == pytest.approx(2 * a - 1)
        assert report.rate_score == pytest.approx((1 - (2 * a - 1)) * (1 + (2 * a - 1)))

    def test_identity_has_zero_score(self):
        report = analyze_weight_matrix(np.eye(3))
        assert report.second_largest == 1.0
        assert report.upper_gap == 0.0
        assert report.rate_score == 0.0

    def test_rate_score_is_product_of_gaps(self):
        w = np.diag([1.0, 0.5, -0.4])
        report = analyze_weight_matrix(w)
        assert report.rate_score == pytest.approx(report.upper_gap * report.lower_gap)

    def test_lazification_improves_score_of_negative_spectrum(self):
        # Eigenvalues 1 and -0.9: lower gap 0.1 dominates badly.
        a = 0.05
        w = np.array([[a, 1 - a], [1 - a, a]])
        lazy = (w + np.eye(2)) / 2
        assert (
            analyze_weight_matrix(lazy).rate_score
            > analyze_weight_matrix(w).rate_score
        )
