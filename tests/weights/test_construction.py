"""Tests for repro.weights.construction."""

import numpy as np
import pytest

from repro.topology.generators import (
    complete_topology,
    random_topology,
    ring_topology,
    star_topology,
)
from repro.utils.linalg import is_doubly_stochastic, is_symmetric
from repro.weights.construction import (
    max_degree_weights,
    metropolis_weights,
    uniform_neighbor_weights,
)
from repro.weights.validation import check_weight_matrix


@pytest.fixture(params=["ring", "star", "complete", "random"])
def topology(request):
    return {
        "ring": ring_topology(6),
        "star": star_topology(7),
        "complete": complete_topology(5),
        "random": random_topology(12, 3.5, seed=1),
    }[request.param]


class TestMetropolisWeights:
    def test_structurally_valid_on_all_topologies(self, topology):
        w = metropolis_weights(topology)
        check_weight_matrix(w, topology)

    def test_matches_equation_24_off_diagonal(self):
        topo = star_topology(4)  # center 0 has degree 3, leaves degree 1
        epsilon = 0.01
        w = metropolis_weights(topo, epsilon=epsilon)
        expected = 1.0 / (3 + epsilon)
        for leaf in (1, 2, 3):
            assert w[0, leaf] == pytest.approx(expected)

    def test_diagonal_completes_rows_to_one(self, topology):
        w = metropolis_weights(topology)
        np.testing.assert_allclose(w.sum(axis=1), 1.0)

    def test_positive_epsilon_gives_positive_diagonal(self, topology):
        w = metropolis_weights(topology, epsilon=0.05)
        assert np.all(np.diag(w) > 0)

    def test_zero_epsilon_allowed(self):
        topo = ring_topology(5)
        w = metropolis_weights(topo, epsilon=0.0)
        assert is_doubly_stochastic(w)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(Exception):
            metropolis_weights(ring_topology(5), epsilon=-0.1)


class TestMaxDegreeWeights:
    def test_structurally_valid(self, topology):
        check_weight_matrix(max_degree_weights(topology), topology)

    def test_uniform_edge_weight(self):
        topo = star_topology(5)
        w = max_degree_weights(topo)
        # max degree 4 -> every edge weight 1/5
        for i in range(1, 5):
            assert w[0, i] == pytest.approx(0.2)

    def test_edgeless_topology_gives_identity(self):
        from repro.topology.graph import Topology

        topo = Topology(3, [])
        np.testing.assert_array_equal(max_degree_weights(topo), np.eye(3))


class TestUniformNeighborWeights:
    def test_structurally_valid(self, topology):
        check_weight_matrix(uniform_neighbor_weights(topology), topology)

    def test_symmetrized_by_minimum_share(self):
        topo = star_topology(4)
        w = uniform_neighbor_weights(topo, self_weight=0.4)
        # center share = 0.6/3 = 0.2, leaf share = 0.6 -> edge weight 0.2
        assert w[0, 1] == pytest.approx(0.2)
        assert is_symmetric(w)

    def test_bad_self_weight_rejected(self):
        with pytest.raises(Exception):
            uniform_neighbor_weights(ring_topology(5), self_weight=1.0)
