"""Tests for repro.weights.planning (Section IV-D neighbor-set planning)."""

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.weights.planning import plan_neighbor_sets
from repro.weights.validation import check_weight_matrix


class TestPlanNeighborSets:
    def test_zero_threshold_keeps_complete_graph_support(self):
        plan = plan_neighbor_sets(6, weight_threshold=0.0, iterations=60)
        assert plan.kept_edges == 15
        assert plan.topology.n_edges == 15

    def test_pruned_topology_is_connected_and_matrix_feasible(self):
        plan = plan_neighbor_sets(8, weight_threshold=0.02, iterations=60)
        assert plan.topology.is_connected()
        check_weight_matrix(plan.weight_matrix, plan.topology)

    def test_higher_threshold_prunes_more(self):
        loose = plan_neighbor_sets(8, weight_threshold=0.005, iterations=60)
        tight = plan_neighbor_sets(8, weight_threshold=0.05, iterations=60)
        assert tight.kept_edges <= loose.kept_edges

    def test_excessive_threshold_rejected(self):
        with pytest.raises(TopologyError):
            plan_neighbor_sets(8, weight_threshold=0.9, iterations=40)

    def test_reports_present(self):
        plan = plan_neighbor_sets(6, weight_threshold=0.02, iterations=60)
        assert plan.report.rate_score > 0
        assert plan.dense_report.rate_score > 0

    def test_single_node_rejected(self):
        with pytest.raises(TopologyError):
            plan_neighbor_sets(1)

    def test_planned_network_trains(self, rng):
        """End-to-end: a planned topology actually supports a SNAP run."""
        from repro.core import SNAPConfig, SNAPTrainer
        from repro.data.dataset import Dataset
        from repro.data.partition import iid_partition
        from repro.models.ridge import RidgeRegression

        plan = plan_neighbor_sets(5, weight_threshold=0.02, iterations=60)
        n, p = 150, 3
        X = rng.normal(size=(n, p))
        y = X @ rng.normal(size=p)
        shards = iid_partition(Dataset(X, y), 5, seed=0)
        model = RidgeRegression(p, regularization=0.1)
        trainer = SNAPTrainer(
            model,
            shards,
            plan.topology,
            config=SNAPConfig.snap0(seed=0),
            weight_matrix=plan.weight_matrix,
        )
        trainer.run(max_rounds=600, stop_on_convergence=False)
        exact = model.solve_exact(X, y)
        np.testing.assert_allclose(trainer.mean_params(), exact, atol=1e-3)
