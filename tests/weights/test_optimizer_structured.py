"""Weight optimization on structured topologies: known-answer sanity checks."""

import numpy as np
import pytest

from repro.topology.generators import (
    complete_topology,
    grid_topology,
    ring_topology,
    scale_free_topology,
    small_world_topology,
    star_topology,
)
from repro.weights.construction import metropolis_weights
from repro.weights.optimizer import optimize_weight_matrix
from repro.weights.spectrum import analyze_weight_matrix
from repro.weights.validation import check_weight_matrix


class TestStructuredTopologies:
    @pytest.mark.parametrize(
        "topology",
        [
            ring_topology(8),
            star_topology(7),
            grid_topology(3, 3),
            complete_topology(6),
            small_world_topology(12, seed=0),
            scale_free_topology(12, seed=0),
        ],
        ids=["ring", "star", "grid", "complete", "small-world", "scale-free"],
    )
    def test_feasible_and_no_worse_than_metropolis(self, topology):
        result = optimize_weight_matrix(topology, iterations=80)
        check_weight_matrix(result.matrix, topology)
        baseline = analyze_weight_matrix(metropolis_weights(topology)).rate_score
        assert result.report.rate_score >= baseline - 1e-9

    def test_complete_graph_optimum_approaches_uniform_averaging(self):
        """On K_n the ideal mixer is J/n (rate score 1); the solver should
        get most of the way there."""
        topology = complete_topology(6)
        result = optimize_weight_matrix(topology, iterations=250)
        assert result.report.rate_score > 0.8

    def test_star_center_carries_the_mixing(self):
        """On a star every path runs through the hub; the optimizer must put
        substantial weight on the hub's links."""
        topology = star_topology(8, center=0)
        result = optimize_weight_matrix(topology, iterations=150)
        hub_weights = [result.matrix[0, leaf] for leaf in range(1, 8)]
        assert min(hub_weights) > 0.01

    def test_ring_beats_its_metropolis_spectral_gap(self):
        topology = ring_topology(10)
        result = optimize_weight_matrix(topology, iterations=200)
        baseline = analyze_weight_matrix(metropolis_weights(topology))
        assert result.report.rate_score > baseline.rate_score

    def test_rate_scores_order_by_connectivity(self):
        """More connectivity -> better achievable mixing: K_n > grid > ring."""
        scores = {}
        for name, topology in (
            ("complete", complete_topology(9)),
            ("grid", grid_topology(3, 3)),
            ("ring", ring_topology(9)),
        ):
            scores[name] = optimize_weight_matrix(
                topology, iterations=150
            ).report.rate_score
        assert scores["complete"] > scores["grid"] > scores["ring"]
