"""Tests for repro.weights.parametrization.EdgeParametrization."""

import numpy as np
import pytest

from repro.exceptions import WeightMatrixError
from repro.topology.generators import random_topology, ring_topology
from repro.utils.linalg import is_doubly_stochastic, is_symmetric
from repro.weights.construction import metropolis_weights
from repro.weights.parametrization import EdgeParametrization


@pytest.fixture
def topo():
    return random_topology(8, 3.0, seed=2)


@pytest.fixture
def parametrization(topo):
    return EdgeParametrization(topo, min_self_weight=0.01)


class TestRoundTrip:
    def test_matrix_from_theta_is_symmetric_stochastic(self, parametrization):
        theta = np.full(parametrization.n_edges, 0.05)
        w = parametrization.to_matrix(theta)
        assert is_symmetric(w)
        np.testing.assert_allclose(w.sum(axis=1), 1.0)

    def test_round_trip_through_matrix(self, parametrization):
        theta = np.linspace(0.01, 0.1, parametrization.n_edges)
        recovered = parametrization.from_matrix(parametrization.to_matrix(theta))
        np.testing.assert_allclose(recovered, theta)

    def test_metropolis_is_representable(self, topo, parametrization):
        w = metropolis_weights(topo)
        theta = parametrization.from_matrix(w)
        np.testing.assert_allclose(parametrization.to_matrix(theta), w, atol=1e-12)

    def test_shape_mismatch_rejected(self, parametrization):
        with pytest.raises(WeightMatrixError):
            parametrization.to_matrix(np.zeros(parametrization.n_edges + 1))
        with pytest.raises(WeightMatrixError):
            parametrization.from_matrix(np.eye(3))


class TestFeasibility:
    def test_zero_theta_is_feasible(self, parametrization):
        assert parametrization.is_feasible(np.zeros(parametrization.n_edges))

    def test_negative_theta_infeasible(self, parametrization):
        theta = np.zeros(parametrization.n_edges)
        theta[0] = -0.01
        assert not parametrization.is_feasible(theta)

    def test_oversubscribed_node_infeasible(self, parametrization):
        theta = np.full(parametrization.n_edges, 0.9)
        assert not parametrization.is_feasible(theta)

    def test_min_edge_weight_too_large_rejected(self):
        topo = ring_topology(5)
        with pytest.raises(WeightMatrixError):
            EdgeParametrization(topo, min_edge_weight=0.6, min_self_weight=0.01)


class TestProjection:
    def test_projection_is_identity_on_feasible_points(self, parametrization):
        theta = np.full(parametrization.n_edges, 0.05)
        projected = parametrization.project(theta)
        np.testing.assert_allclose(projected, theta, atol=1e-9)

    def test_projection_lands_in_feasible_set(self, parametrization, rng):
        for _ in range(5):
            theta = rng.normal(0.3, 0.5, size=parametrization.n_edges)
            projected = parametrization.project(theta)
            assert parametrization.is_feasible(projected, atol=1e-6)

    def test_projection_clips_negatives(self, parametrization):
        theta = np.full(parametrization.n_edges, -1.0)
        projected = parametrization.project(theta)
        np.testing.assert_allclose(projected, 0.0, atol=1e-9)

    def test_projection_is_euclidean_optimal_on_simple_case(self):
        # Single edge between two nodes: feasible set is [0, 1 - s].
        from repro.topology.graph import Topology

        topo = Topology(2, [(0, 1)])
        par = EdgeParametrization(topo, min_self_weight=0.1)
        assert par.project(np.array([2.0]))[0] == pytest.approx(0.9, abs=1e-9)
        assert par.project(np.array([-2.0]))[0] == pytest.approx(0.0, abs=1e-9)
        assert par.project(np.array([0.4]))[0] == pytest.approx(0.4, abs=1e-9)


class TestSubgradient:
    def test_matches_finite_differences(self, parametrization):
        # For a simple eigenvalue, d λ / d θ_e = -(v_u - v_v)^2.
        theta = np.linspace(0.02, 0.12, parametrization.n_edges)
        w = parametrization.to_matrix(theta)
        eigenvalues, eigenvectors = np.linalg.eigh(w)
        vector = eigenvectors[:, 0]  # smallest eigenvalue
        analytic = parametrization.eigenvalue_subgradient(vector)
        eps = 1e-7
        for k in range(parametrization.n_edges):
            up = theta.copy()
            up[k] += eps
            lam_up = np.linalg.eigvalsh(parametrization.to_matrix(up))[0]
            numeric = (lam_up - eigenvalues[0]) / eps
            assert analytic[k] == pytest.approx(numeric, abs=1e-4)

    def test_subgradient_is_nonpositive(self, parametrization, rng):
        vector = rng.normal(size=parametrization.topology.n_nodes)
        assert np.all(parametrization.eigenvalue_subgradient(vector) <= 0)

    def test_wrong_vector_shape_rejected(self, parametrization):
        with pytest.raises(WeightMatrixError):
            parametrization.eigenvalue_subgradient(np.zeros(3))
