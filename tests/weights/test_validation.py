"""Tests for repro.weights.validation.check_weight_matrix."""

import numpy as np
import pytest

from repro.exceptions import WeightMatrixError
from repro.topology.graph import Topology
from repro.weights.construction import metropolis_weights
from repro.weights.validation import check_weight_matrix


@pytest.fixture
def topo():
    return Topology(4, [(0, 1), (1, 2), (2, 3)])


class TestCheckWeightMatrix:
    def test_accepts_metropolis(self, topo):
        w = metropolis_weights(topo)
        out = check_weight_matrix(w, topo)
        np.testing.assert_array_equal(out, w)

    def test_rejects_wrong_shape(self, topo):
        with pytest.raises(WeightMatrixError, match="shape"):
            check_weight_matrix(np.eye(3), topo)

    def test_rejects_asymmetric(self, topo):
        w = metropolis_weights(topo)
        w[0, 1] += 0.01
        with pytest.raises(WeightMatrixError, match="symmetric"):
            check_weight_matrix(w, topo)

    def test_rejects_bad_row_sums(self, topo):
        w = metropolis_weights(topo)
        w[0, 0] += 0.05
        with pytest.raises(WeightMatrixError, match="stochastic"):
            check_weight_matrix(w, topo)

    def test_rejects_negative_entries(self, topo):
        w = metropolis_weights(topo)
        w[0, 0] -= 2 * w[0, 1]
        w[0, 1] += w[0, 1]  # keep row sum 1 but this breaks symmetry anyway
        w = (w + w.T) / 2
        w[1, 1] = 1 - w[1].sum() + w[1, 1]
        # Construct a clean negative-entry violation instead:
        bad = np.array(
            [
                [1.2, -0.2, 0.0, 0.0],
                [-0.2, 1.2, 0.0, 0.0],
                [0.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        with pytest.raises(WeightMatrixError):
            check_weight_matrix(bad, topo)

    def test_rejects_mass_outside_neighbor_set(self, topo):
        # Valid doubly stochastic but uses the (0, 3) non-edge.
        w = np.eye(4)
        w[0, 0] = w[3, 3] = 0.5
        w[0, 3] = w[3, 0] = 0.5
        with pytest.raises(WeightMatrixError, match="non-neighbor"):
            check_weight_matrix(w, topo)

    def test_identity_is_always_feasible(self, topo):
        check_weight_matrix(np.eye(4), topo)
