"""Tests for repro.weights.optimizer — the Section IV-B solvers."""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.topology.generators import (
    complete_topology,
    random_topology,
    ring_topology,
)
from repro.topology.graph import Topology
from repro.weights.construction import metropolis_weights
from repro.weights.optimizer import (
    lazify,
    maximize_smallest_eigenvalue,
    minimize_second_eigenvalue,
    optimize_weight_matrix,
)
from repro.weights.spectrum import analyze_weight_matrix
from repro.weights.validation import check_weight_matrix


@pytest.fixture
def topo():
    return random_topology(10, 3.0, seed=11)


class TestMinimizeSecondEigenvalue:
    def test_result_is_feasible(self, topo):
        result = minimize_second_eigenvalue(topo, iterations=80)
        check_weight_matrix(result.matrix, topo)

    def test_improves_on_metropolis(self, topo):
        baseline = analyze_weight_matrix(metropolis_weights(topo)).second_largest
        result = minimize_second_eigenvalue(topo, iterations=120)
        assert result.report.second_largest <= baseline + 1e-9

    def test_objective_trace_is_monotone(self, topo):
        result = minimize_second_eigenvalue(topo, iterations=60)
        trace = np.array(result.objective_trace)
        assert np.all(np.diff(trace) <= 1e-12)

    def test_ring_known_optimum_direction(self):
        # On a ring the optimal lambda_2 is cos(2 pi / n) scaled by mixing;
        # we only assert the solver beats the trivial uniform construction.
        topo = ring_topology(8)
        baseline = analyze_weight_matrix(metropolis_weights(topo)).second_largest
        result = minimize_second_eigenvalue(topo, iterations=150)
        assert result.report.second_largest < baseline

    def test_complete_graph_reaches_near_zero(self):
        # On K_n the uniform averaging matrix has lambda_2 = 0 (optimal
        # among PSD candidates); the solver should approach a small value.
        topo = complete_topology(5)
        result = minimize_second_eigenvalue(topo, iterations=200)
        assert result.report.second_largest < 0.1


class TestMaximizeSmallestEigenvalue:
    def test_result_is_feasible(self, topo):
        result = maximize_smallest_eigenvalue(topo, iterations=80)
        check_weight_matrix(result.matrix, topo)

    def test_improves_on_metropolis(self, topo):
        baseline = analyze_weight_matrix(metropolis_weights(topo)).smallest
        result = maximize_smallest_eigenvalue(topo, iterations=120)
        assert result.report.smallest >= baseline - 1e-9

    def test_identity_direction_is_the_limit(self):
        # lambda_min is maximized by shrinking edge weights toward zero
        # (identity); the solver should push lambda_min close to 0 or above.
        topo = ring_topology(6)
        result = maximize_smallest_eigenvalue(topo, iterations=200)
        assert result.report.smallest > -0.25


class TestOptimizeWeightMatrix:
    def test_never_worse_than_metropolis(self, topo):
        best = optimize_weight_matrix(topo, iterations=80)
        baseline = analyze_weight_matrix(metropolis_weights(topo)).rate_score
        assert best.report.rate_score >= baseline - 1e-9

    def test_feasible(self, topo):
        best = optimize_weight_matrix(topo, iterations=80)
        check_weight_matrix(best.matrix, topo)

    def test_problem_label_is_set(self, topo):
        best = optimize_weight_matrix(topo, iterations=50)
        assert best.problem in {
            "min_second_eigenvalue",
            "max_smallest_eigenvalue",
            "lazy_min_second_eigenvalue",
            "lazy_max_smallest_eigenvalue",
            "metropolis_baseline",
        }

    def test_single_node_rejected(self):
        with pytest.raises(OptimizationError):
            optimize_weight_matrix(Topology(1, []))

    def test_edgeless_rejected(self):
        with pytest.raises(OptimizationError):
            optimize_weight_matrix(Topology(3, []))


class TestLazify:
    def test_spectrum_shifts_toward_one(self, topo):
        w = metropolis_weights(topo)
        lazy = lazify(w)
        original = analyze_weight_matrix(w)
        shifted = analyze_weight_matrix(lazy)
        assert shifted.smallest == pytest.approx((original.smallest + 1) / 2)
        assert shifted.second_largest == pytest.approx(
            (original.second_largest + 1) / 2
        )

    def test_stays_feasible(self, topo):
        check_weight_matrix(lazify(metropolis_weights(topo)), topo)

    def test_lazy_smallest_eigenvalue_is_nonnegative(self, topo):
        lazy = lazify(metropolis_weights(topo))
        assert analyze_weight_matrix(lazy).smallest >= -1e-9
