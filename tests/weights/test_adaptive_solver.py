"""Tests for the adaptive-topology solver extensions.

Covers the three solver-side pieces the adaptive runtime builds on: the
seeded-Lanczos objective backend (tolerance-pinned against dense ``eigh``),
``warm_start=`` (the online re-solve path, with the >=5x step-count
regression bar), and the cached lazy :class:`MixingReport` that the EXTRA
step-size cap reuses bitwise instead of recomputing a dense spectrum.
"""

import numpy as np
import pytest
from scipy.sparse import csr_array

from repro.consensus.step_size import extra_max_step_size, safe_step_size
from repro.exceptions import OptimizationError
from repro.topology.generators import random_regular_topology, ring_topology
from repro.topology.graph import Topology
from repro.utils.linalg import (
    extreme_eigenpairs_sparse,
    smallest_eigenvalue,
)
from repro.weights.construction import metropolis_weights
from repro.weights.optimizer import (
    lazify,
    maximize_smallest_eigenvalue,
    minimize_second_eigenvalue,
    optimize_weight_matrix,
)
from repro.weights.parametrization import EdgeParametrization
from repro.weights.spectrum import analyze_weight_matrix


def ring_with_chords(n: int, chords) -> Topology:
    edges = [(i, (i + 1) % n) for i in range(n)] + list(chords)
    return Topology(n, edges)


#: Solver-tolerance bound for Lanczos-vs-dense eigenvalue agreement. ARPACK
#: converges the extreme pairs to machine precision on these sizes; the pin
#: is deliberately tighter than any decision threshold built on top.
LANCZOS_TOL = 1e-9


class TestExtremeEigenpairsSparse:
    def test_matches_dense_both_ends(self):
        topo = random_regular_topology(64, degree=4, seed=5)
        w = metropolis_weights(topo)
        sparse = csr_array(w)
        dense_values = np.linalg.eigvalsh(w)
        low, _ = extreme_eigenpairs_sparse(sparse, k=1, which="SA")
        high, _ = extreme_eigenpairs_sparse(sparse, k=2, which="LA")
        assert low[0] == pytest.approx(dense_values[0], abs=LANCZOS_TOL)
        assert high[1] == pytest.approx(dense_values[-1], abs=LANCZOS_TOL)
        assert high[0] == pytest.approx(dense_values[-2], abs=LANCZOS_TOL)

    def test_eigenvectors_satisfy_definition(self):
        topo = random_regular_topology(48, degree=4, seed=7)
        w = csr_array(metropolis_weights(topo))
        values, vectors = extreme_eigenpairs_sparse(w, k=2, which="LA")
        for i in range(2):
            residual = w @ vectors[:, i] - values[i] * vectors[:, i]
            assert np.linalg.norm(residual) < 1e-8

    def test_deterministic_across_calls(self):
        topo = random_regular_topology(48, degree=4, seed=3)
        w = csr_array(metropolis_weights(topo))
        first, _ = extreme_eigenpairs_sparse(w, k=1, which="SA")
        second, _ = extreme_eigenpairs_sparse(w, k=1, which="SA")
        assert first[0] == second[0]

    def test_small_matrix_dense_fallback(self):
        w = csr_array(metropolis_weights(ring_topology(3)))
        values, vectors = extreme_eigenpairs_sparse(w, k=2, which="LA")
        dense = np.linalg.eigvalsh(np.asarray(w.todense(), dtype=float))
        assert values == pytest.approx(dense[-2:], abs=1e-12)
        assert vectors.shape == (3, 2)


class TestSparseParametrization:
    def test_to_sparse_matches_to_matrix(self):
        topo = random_regular_topology(32, degree=4, seed=1)
        par = EdgeParametrization(topo)
        theta = par.project(par.from_matrix(metropolis_weights(topo)))
        dense = par.to_matrix(theta)
        sparse = par.to_sparse(theta)
        assert np.allclose(np.asarray(sparse.todense()), dense, atol=1e-12)


class TestLanczosBackend:
    @pytest.mark.parametrize(
        "solver", [minimize_second_eigenvalue, maximize_smallest_eigenvalue]
    )
    def test_backend_agrees_with_dense(self, solver):
        # The iterates themselves can drift once a single eigenvalue estimate
        # differs in the last ulp, so the pin is on solution *quality*: both
        # backends must land on the same optimum to solver tolerance.
        topo = random_regular_topology(64, degree=4, seed=9)
        dense = solver(topo, iterations=60, backend="dense")
        lanczos = solver(topo, iterations=60, backend="lanczos")
        assert lanczos.objective_trace[-1] == pytest.approx(
            dense.objective_trace[-1], abs=5e-4
        )
        assert lanczos.report.rate_score == pytest.approx(
            dense.report.rate_score, abs=5e-4
        )

    def test_first_step_objective_is_tolerance_identical(self):
        # Step 0 evaluates both backends at the *same* theta (the projected
        # Metropolis point), so the objective values must agree to Lanczos
        # tolerance before any trajectory divergence can compound.
        topo = random_regular_topology(64, degree=4, seed=2)
        dense = minimize_second_eigenvalue(topo, iterations=1, backend="dense")
        lanczos = minimize_second_eigenvalue(topo, iterations=1, backend="lanczos")
        assert lanczos.objective_trace[0] == pytest.approx(
            dense.objective_trace[0], abs=LANCZOS_TOL
        )

    def test_auto_backend_small_graph_is_bitwise_dense(self):
        # Below the Lanczos floor "auto" must resolve to the dense path and
        # therefore reproduce it bit for bit.
        topo = ring_with_chords(10, [(0, 5), (2, 7)])
        dense = minimize_second_eigenvalue(topo, iterations=40, backend="dense")
        auto = minimize_second_eigenvalue(topo, iterations=40, backend="auto")
        assert np.array_equal(dense.matrix, auto.matrix)
        assert dense.objective_trace == auto.objective_trace

    def test_unknown_backend_rejected(self):
        with pytest.raises(OptimizationError):
            minimize_second_eigenvalue(ring_topology(6), backend="cholesky")


class TestWarmStart:
    def test_warm_start_five_times_fewer_steps(self):
        # The satellite bar: after pruning one edge from a ring+chords graph,
        # the warm-started re-solve reaches the shared best objective in
        # >=5x fewer subgradient steps than the cold solve. The pruned chord
        # is one of five parallel hub chords, i.e. a link whose removal
        # barely moves the optimum — exactly the regime the online pruning
        # rule operates in (it only drops links with near-zero weight).
        topo = ring_with_chords(12, [(0, 2), (0, 4), (0, 6), (0, 8), (0, 10)])
        prior = optimize_weight_matrix(topo, iterations=300)
        pruned = topo.remove_edges([(0, 6)])
        cold = optimize_weight_matrix(pruned, iterations=300)
        warm = optimize_weight_matrix(pruned, iterations=300, warm_start=prior)
        assert warm.problem == cold.problem
        target = max(cold.objective_trace[-1], warm.objective_trace[-1]) + 1e-9
        steps_warm = next(
            i + 1 for i, v in enumerate(warm.objective_trace) if v <= target
        )
        steps_cold = next(
            (i + 1 for i, v in enumerate(cold.objective_trace) if v <= target),
            len(cold.objective_trace),
        )
        assert warm.report.rate_score >= cold.report.rate_score - 1e-4
        assert steps_cold >= 5 * steps_warm

    def test_warm_start_reads_only_surviving_edges(self):
        topo = ring_with_chords(8, [(0, 4)])
        prior = optimize_weight_matrix(topo, iterations=80)
        pruned = topo.remove_edges([(0, 4)])
        warm = optimize_weight_matrix(pruned, iterations=80, warm_start=prior)
        assert warm.matrix.shape == (8, 8)
        assert warm.matrix[0, 4] == 0.0

    def test_patience_stops_early(self):
        topo = ring_with_chords(12, [(0, 6)])
        prior = optimize_weight_matrix(topo, iterations=150)
        full = minimize_second_eigenvalue(topo, iterations=150)
        early = minimize_second_eigenvalue(
            topo, iterations=150, initial_matrix=prior.matrix, patience=10
        )
        assert len(early.objective_trace) < len(full.objective_trace)
        assert early.objective_trace[-1] <= full.objective_trace[-1] + 1e-3


class TestBandwidthPenalty:
    def test_costly_edge_gets_less_weight(self):
        topo = ring_with_chords(10, [(0, 5)])
        costs = np.zeros(len(topo.edges))
        chord = topo.edges.index((0, 5))
        costs[chord] = 1.0
        plain = minimize_second_eigenvalue(topo, iterations=120)
        penalized = minimize_second_eigenvalue(
            topo, iterations=120, edge_costs=costs, cost_weight=0.5
        )
        assert penalized.matrix[0, 5] < plain.matrix[0, 5]

    def test_zero_cost_weight_is_bitwise_noop(self):
        topo = ring_with_chords(10, [(0, 5)])
        costs = np.ones(len(topo.edges))
        plain = minimize_second_eigenvalue(topo, iterations=40)
        weighted = minimize_second_eigenvalue(
            topo, iterations=40, edge_costs=costs, cost_weight=0.0
        )
        assert np.array_equal(plain.matrix, weighted.matrix)

    def test_cost_vector_shape_checked(self):
        topo = ring_topology(6)
        with pytest.raises(OptimizationError):
            minimize_second_eigenvalue(
                topo, edge_costs=np.ones(3), cost_weight=1.0
            )

    def test_negative_cost_weight_rejected(self):
        topo = ring_topology(6)
        with pytest.raises(OptimizationError):
            minimize_second_eigenvalue(
                topo, edge_costs=np.ones(6), cost_weight=-0.1
            )


class TestCachedLazyReport:
    def test_winner_carries_lazy_report(self):
        topo = ring_with_chords(10, [(0, 5), (2, 7)])
        result = optimize_weight_matrix(topo, iterations=60)
        assert result.lazy_report is not None

    def test_lazy_report_is_bitwise_the_lazy_spectrum(self):
        topo = ring_with_chords(10, [(0, 5), (2, 7)])
        result = optimize_weight_matrix(topo, iterations=60)
        recomputed = analyze_weight_matrix(lazify(result.matrix))
        assert result.lazy_report.smallest == recomputed.smallest
        assert result.lazy_report.second_largest == recomputed.second_largest

    def test_step_size_cap_reuse_is_bitwise(self):
        # The whole point of the cache: passing lazy_report.smallest into the
        # step-size cap must reproduce the recomputed cap bit for bit.
        topo = ring_with_chords(10, [(0, 5), (2, 7)])
        result = optimize_weight_matrix(topo, iterations=60)
        direct = extra_max_step_size(result.matrix, 4.0)
        cached = extra_max_step_size(
            result.matrix, 4.0, lam_min_tilde=result.lazy_report.smallest
        )
        assert direct == cached
        assert safe_step_size(result.matrix, 4.0) == safe_step_size(
            result.matrix, 4.0, lam_min_tilde=result.lazy_report.smallest
        )

    def test_lam_min_tilde_matches_direct_smallest(self):
        topo = ring_with_chords(10, [(0, 5)])
        result = optimize_weight_matrix(topo, iterations=60)
        w_tilde = (result.matrix + np.eye(result.matrix.shape[0])) / 2.0
        assert result.lazy_report.smallest == smallest_eigenvalue(w_tilde)

    def test_solver_results_have_no_lazy_report_by_default(self):
        result = minimize_second_eigenvalue(ring_topology(8), iterations=30)
        assert result.lazy_report is None
