"""Link re-adds: restoring pruned links bounded to the wired base graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology.graph import Topology
from repro.weights import readd_links
from repro.weights.adaptive import TopologyController, prune_links
from repro.weights.optimizer import optimize_weight_matrix


def ring_with_chords(n: int, chords) -> Topology:
    return Topology(n, [(i, (i + 1) % n) for i in range(n)] + list(chords))


BASE = ring_with_chords(8, [(0, 2), (0, 4), (2, 6)])


class TestReaddLinks:
    def test_restores_missing_base_edges_in_order(self):
        pruned = BASE.remove_edges([(0, 4), (0, 2)])
        grown, added = readd_links(pruned, ((0, 4), (0, 2)), BASE)
        assert added == ((0, 2), (0, 4))
        assert set(grown.edges) == set(BASE.edges)

    def test_present_candidates_are_skipped(self):
        grown, added = readd_links(BASE, ((0, 2),), BASE)
        assert added == ()
        assert grown is BASE  # no change: the same object comes back

    def test_candidates_outside_the_base_are_rejected(self):
        pruned = BASE.remove_edges([(0, 2)])
        with pytest.raises(TopologyError, match="outside the base topology"):
            readd_links(pruned, ((3, 7),), BASE)

    def test_unordered_endpoints_are_canonicalized(self):
        pruned = BASE.remove_edges([(0, 4)])
        _, added = readd_links(pruned, ((4, 0),), BASE)
        assert added == ((0, 4),)


class TestForcedPruning:
    def test_forced_edges_drop_regardless_of_weight(self):
        result = optimize_weight_matrix(BASE, iterations=80)
        # Threshold 0 would prune nothing; forcing overrides the weight test.
        pruned, removed = prune_links(
            BASE, result.matrix, 0.0, forced=((0, 2),)
        )
        assert removed == ((0, 2),)
        assert (0, 2) not in pruned.edges

    def test_forced_non_edges_are_rejected(self):
        matrix = np.eye(BASE.n_nodes)
        with pytest.raises(TopologyError, match="not a topology edge"):
            prune_links(BASE, matrix, 0.0, forced=((3, 7),))

    def test_connectivity_guard_overrides_forcing(self):
        # On a tree every edge is a bridge: forcing cannot break the graph.
        tree = Topology(4, [(0, 1), (1, 2), (2, 3)])
        matrix = np.eye(4)
        pruned, removed = prune_links(
            tree, matrix, 0.0, forced=((0, 1), (1, 2))
        )
        assert removed == ()
        assert pruned.edges == tree.edges

    def test_forcing_every_edge_of_a_node_keeps_one(self):
        result = optimize_weight_matrix(BASE, iterations=80)
        incident = tuple(e for e in BASE.edges if 0 in e)
        pruned, removed = prune_links(BASE, result.matrix, 0.0, forced=incident)
        assert len(pruned.neighbors(0)) >= 1
        assert len(removed) == len(incident) - len(pruned.neighbors(0))
        assert pruned.is_connected()


class TestControllerReadds:
    def make_controller(self):
        result = optimize_weight_matrix(BASE, iterations=80)
        return TopologyController(
            BASE, result, reoptimize_every=10_000, prune_threshold=0.0
        )

    def test_pruned_ever_tracks_the_readd_pool(self):
        controller = self.make_controller()
        swap = controller.propose(
            5, reason="membership", drop_candidates=((0, 2), (0, 4))
        )
        assert set(swap.pruned_edges) == {(0, 2), (0, 4)}
        assert controller.pruned_ever == {(0, 2), (0, 4)}
        assert controller.readd_candidates({0}) == ((0, 2), (0, 4))
        assert controller.readd_candidates({4}) == ((0, 4),)
        assert controller.readd_candidates({3}) == ()

    def test_readding_shrinks_the_pool_and_records_the_swap(self):
        controller = self.make_controller()
        controller.propose(
            5, reason="membership", drop_candidates=((0, 2), (0, 4))
        )
        swap = controller.propose(
            9, reason="membership", add_candidates=((0, 4),)
        )
        assert swap.added_edges == ((0, 4),)
        assert swap.pruned_edges == ()
        assert (0, 4) in controller.topology.edges
        assert controller.pruned_ever == {(0, 2)}
        assert swap.solver_steps > 0  # the edge set changed: a warm re-solve ran
        assert controller.summary()["added_edges"] == 1

    def test_readded_matrix_is_valid_for_the_grown_topology(self):
        from repro.weights.validation import check_weight_matrix

        controller = self.make_controller()
        controller.propose(
            5, reason="membership", drop_candidates=((0, 2), (0, 4))
        )
        swap = controller.propose(
            9, reason="membership", add_candidates=((0, 2), (0, 4))
        )
        check_weight_matrix(swap.matrix, swap.topology)
        assert set(swap.topology.edges) == set(BASE.edges)

    def test_readd_outside_base_is_rejected(self):
        controller = self.make_controller()
        with pytest.raises(TopologyError, match="outside the base topology"):
            controller.propose(
                5, reason="membership", add_candidates=((3, 7),)
            )
