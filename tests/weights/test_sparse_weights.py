"""Sparse end-to-end weight path: CSR Metropolis weights through a full run.

``SNAPConfig(sparse_weights=True)`` keeps W in CSR from construction through
validation, per-server rows, the engine's mixing operators, and step-size
selection — no dense (N, N) materialization anywhere. The sparse constructor
must be *bitwise* equal to the dense one entry for entry; full runs must be
digest-equal to dense runs once the step size is pinned (the Lanczos λ_min
matches the dense eigensolver only to solver tolerance, so an auto-derived
alpha may differ in the last bits).
"""

import dataclasses

import numpy as np
import pytest
from scipy.sparse import issparse

from repro.core.config import SNAPConfig
from repro.core.trainer import SNAPTrainer
from repro.exceptions import WeightMatrixError
from repro.testing.digest import capture_run
from repro.testing.scenarios import ScenarioGen
from repro.topology.generators import random_regular_topology, ring_topology
from repro.utils.linalg import smallest_eigenvalue, smallest_eigenvalue_sparse
from repro.weights.construction import WeightRowView, metropolis_weights
from repro.weights.validation import check_weight_matrix


class TestSparseConstruction:
    @pytest.mark.parametrize("n,degree", [(8, 3), (20, 4), (50, 6)])
    def test_sparse_metropolis_bitwise_equals_dense(self, n, degree):
        topology = random_regular_topology(n, degree=degree, seed=1)
        dense = metropolis_weights(topology)
        sparse = metropolis_weights(topology, sparse=True)
        assert issparse(sparse)
        assert np.array_equal(sparse.toarray(), dense)

    def test_sparse_matrix_passes_validation(self):
        topology = ring_topology(12)
        sparse = metropolis_weights(topology, sparse=True)
        checked = check_weight_matrix(sparse, topology)
        assert issparse(checked)

    def test_validation_rejects_asymmetric_sparse(self):
        topology = ring_topology(6)
        sparse = metropolis_weights(topology, sparse=True).tolil()
        sparse[0, 1] += 0.05
        with pytest.raises(WeightMatrixError):
            check_weight_matrix(sparse.tocsr(), topology)

    def test_row_view_matches_dense_row(self):
        topology = random_regular_topology(10, degree=3, seed=2)
        dense = metropolis_weights(topology)
        sparse = metropolis_weights(topology, sparse=True)
        for node in range(10):
            view = WeightRowView(sparse, node)
            assert len(view) == 10
            for j in range(10):
                assert view[j] == dense[node, j]
            assert set(view.nonzero_indices()) == set(
                np.flatnonzero(dense[node]).tolist()
            )


class TestSparseSpectrum:
    def test_lanczos_lambda_min_agrees_with_dense(self):
        topology = random_regular_topology(30, degree=4, seed=3)
        sparse = metropolis_weights(topology, sparse=True)
        dense_value = smallest_eigenvalue(sparse.toarray())
        sparse_value = smallest_eigenvalue_sparse(sparse)
        assert sparse_value == pytest.approx(dense_value, abs=1e-8)

    def test_tiny_matrix_falls_back_to_dense(self):
        topology = ring_topology(3)  # n == 3 ring is a triangle
        sparse = metropolis_weights(topology, sparse=True)
        tiny = sparse[:2, :2].tocsr()
        assert smallest_eigenvalue_sparse(tiny) == pytest.approx(
            smallest_eigenvalue(tiny.toarray())
        )


class TestSparseRunEquality:
    @pytest.mark.parametrize("index", [0, 2])
    def test_sparse_run_digest_equals_dense_with_pinned_alpha(self, index):
        scenario = ScenarioGen(master_seed=11).scenario(index)
        base = dataclasses.replace(
            scenario.config("vectorized"),
            optimize_weights=False,
            alpha=0.05,
        )

        def build(sparse: bool) -> SNAPTrainer:
            return SNAPTrainer(
                scenario.model(),
                scenario.shards(),
                scenario.topology(),
                dataclasses.replace(base, sparse_weights=sparse),
                fault_plan=scenario.fault_plan(),
            )

        dense_digest = capture_run(build(False))
        sparse_trainer = build(True)
        assert issparse(sparse_trainer.weight_matrix)
        sparse_digest = capture_run(sparse_trainer)
        assert sparse_digest == dense_digest, dense_digest.diff(sparse_digest)

    def test_sparse_run_with_auto_alpha_completes(self):
        scenario = ScenarioGen(master_seed=11).scenario(0)
        config = dataclasses.replace(
            scenario.config("vectorized"),
            optimize_weights=False,
            sparse_weights=True,
        )
        trainer = SNAPTrainer(
            scenario.model(),
            scenario.shards(),
            scenario.topology(),
            config,
            fault_plan=scenario.fault_plan(),
        )
        result = trainer.run(stop_on_convergence=False)
        assert np.isfinite(result.rounds[-1].mean_loss)

    def test_strict_invariants_run_on_sparse_weights(self):
        scenario = ScenarioGen(master_seed=11).scenario(0)
        config = dataclasses.replace(
            scenario.config("vectorized", invariants="strict"),
            optimize_weights=False,
            sparse_weights=True,
            alpha=0.05,
        )
        trainer = SNAPTrainer(
            scenario.model(),
            scenario.shards(),
            scenario.topology(),
            config,
            fault_plan=scenario.fault_plan(),
        )
        trainer.run(stop_on_convergence=False)
        summary = trainer.monitor.summary()
        assert summary["weight-stochasticity"] == 1
        assert summary["weight-spectrum"] == 1
        assert summary["byte-ledger"] == trainer.rounds_completed
