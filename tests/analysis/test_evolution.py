"""Tests for repro.analysis.evolution.ParameterEvolutionRecorder."""

import numpy as np
import pytest

from repro.analysis.evolution import ParameterEvolutionRecorder
from repro.consensus.extra import ExtraIteration, ExtraState
from repro.exceptions import DataError
from repro.topology.generators import complete_topology
from repro.weights.construction import metropolis_weights


class TestRecorder:
    def test_skips_initial_state(self):
        recorder = ParameterEvolutionRecorder()
        recorder(ExtraState(current=np.zeros((2, 3))))
        assert recorder.snapshots == []

    def test_records_differences_and_ratios(self):
        recorder = ParameterEvolutionRecorder()
        state = ExtraState(
            current=np.array([[1.0, 2.0]]),
            previous=np.array([[1.0, 1.0]]),
            iteration=1,
        )
        recorder(state)
        snapshot = recorder.snapshots[0]
        np.testing.assert_array_equal(snapshot.differences, [0.0, 1.0])
        assert snapshot.unchanged_fraction == 0.5
        np.testing.assert_array_equal(snapshot.change_ratios, [0.0, 1.0])

    def test_ratio_skips_zero_previous(self):
        recorder = ParameterEvolutionRecorder()
        state = ExtraState(
            current=np.array([[1.0, 2.0]]),
            previous=np.array([[0.0, 1.0]]),
            iteration=1,
        )
        recorder(state)
        assert recorder.snapshots[0].change_ratios.shape == (1,)

    def test_zero_tol_widens_unchanged(self):
        loose = ParameterEvolutionRecorder(zero_tol=0.5)
        state = ExtraState(
            current=np.array([[1.1, 3.0]]),
            previous=np.array([[1.0, 1.0]]),
            iteration=1,
        )
        loose(state)
        assert loose.snapshots[0].unchanged_fraction == 0.5

    def test_negative_tol_rejected(self):
        with pytest.raises(DataError):
            ParameterEvolutionRecorder(zero_tol=-1.0)

    def test_snapshot_lookup(self):
        recorder = ParameterEvolutionRecorder()
        for k in (1, 2):
            recorder(
                ExtraState(
                    current=np.full((1, 2), float(k + 1)),
                    previous=np.full((1, 2), float(k)),
                    iteration=k,
                )
            )
        assert recorder.snapshot_at(2).iteration == 2
        with pytest.raises(DataError):
            recorder.snapshot_at(9)


class TestWithExtraEngine:
    def test_differences_shrink_as_extra_converges(self, rng):
        """The Fig. 2 takeaway: changes get smaller with more iterations."""
        topo = complete_topology(3)
        weights = metropolis_weights(topo)
        centers = rng.normal(size=(3, 4))
        gradients = [lambda x, c=c: x - c for c in centers]
        engine = ExtraIteration(weights, gradients, alpha=0.3)
        recorder = ParameterEvolutionRecorder()
        engine.run(np.zeros((3, 4)), 40, callback=recorder)
        early = np.median(recorder.snapshot_at(2).differences)
        late = np.median(recorder.snapshot_at(40).differences)
        assert late < early / 10

    def test_unchanged_trace_aligned_with_iterations(self, rng):
        topo = complete_topology(3)
        weights = metropolis_weights(topo)
        gradients = [lambda x: x for _ in range(3)]
        engine = ExtraIteration(weights, gradients, alpha=0.1)
        recorder = ParameterEvolutionRecorder()
        engine.run(rng.normal(size=(3, 2)), 5, callback=recorder)
        assert [s.iteration for s in recorder.snapshots] == [1, 2, 3, 4, 5]
        assert recorder.unchanged_trace()[0][0] == 1
