"""Tests for repro.analysis.cdf."""

import numpy as np
import pytest

from repro.analysis.cdf import empirical_cdf, fraction_below, quantile_points
from repro.exceptions import DataError


class TestEmpiricalCdf:
    def test_sorted_and_normalized(self):
        values, cdf = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(cdf, [1 / 3, 2 / 3, 1.0])

    def test_handles_matrices(self):
        values, cdf = empirical_cdf(np.arange(6.0).reshape(2, 3))
        assert values.shape == (6,)
        assert cdf[-1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            empirical_cdf(np.array([]))


class TestFractionBelow:
    def test_basic(self):
        values = np.array([0.1, 0.2, 0.3, 0.4])
        assert fraction_below(values, 0.25) == 0.5
        assert fraction_below(values, 1.0) == 1.0
        assert fraction_below(values, 0.0) == 0.0

    def test_threshold_is_inclusive(self):
        assert fraction_below(np.array([1.0, 2.0]), 1.0) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            fraction_below(np.array([]), 0.5)


class TestQuantilePoints:
    def test_median_of_known_data(self):
        points = quantile_points(np.arange(101.0), quantiles=(0.5,))
        assert points[0.5] == pytest.approx(50.0)

    def test_default_quantiles_cover_paper_readings(self):
        points = quantile_points(np.linspace(0, 1, 1000))
        assert set(points) == {0.5, 0.9, 0.94, 0.98, 0.99}
