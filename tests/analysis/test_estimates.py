"""Tests for repro.analysis.estimates — the paper's introduction arithmetic."""

import pytest

from repro.analysis.estimates import (
    mlp_parameter_count,
    neighbor_exchange_traffic,
    parameter_server_traffic,
)


class TestParameterCount:
    def test_testbed_network(self):
        # the paper's 784-30-10 testbed MLP
        assert mlp_parameter_count(784, 30, 10) == 784 * 30 + 30 + 30 * 10 + 10

    def test_intro_scale_network_has_about_1e5_parameters(self):
        # "hundreds of inputs, hundreds of perceptrons ... tens of outputs
        # -> ~1e5 parameters"
        count = mlp_parameter_count(300, 300, 30)
        assert 9e4 < count < 2e5


class TestIntroTrafficClaim:
    def test_1e10_bytes_within_tens_of_iterations(self):
        """The introduction's headline: ~1e10 bytes for tens of servers and
        tens of iterations at 8 bytes per parameter."""
        n_params = mlp_parameter_count(300, 300, 30)
        traffic = parameter_server_traffic(
            n_params, n_workers=50, n_iterations=100
        )
        assert 0.5e10 < traffic < 2e10

    def test_section_ivc_gigabytes_claim(self):
        """Section IV-C: millions of parameters, tens of servers, 4 neighbors,
        100 iterations -> tens of gigabytes."""
        traffic = neighbor_exchange_traffic(
            n_params=1_000_000,
            n_servers=30,
            average_degree=4.0,
            n_iterations=100,
        )
        assert 1e10 < traffic < 2e11


class TestScaling:
    def test_ps_traffic_linear_in_everything(self):
        base = parameter_server_traffic(1000, 10, 10)
        assert parameter_server_traffic(2000, 10, 10) == 2 * base
        assert parameter_server_traffic(1000, 20, 10) == 2 * base
        assert parameter_server_traffic(1000, 10, 20) == 2 * base

    def test_sent_fraction_scales_neighbor_traffic(self):
        full = neighbor_exchange_traffic(1000, 10, 3.0, 10, sent_fraction=1.0)
        half = neighbor_exchange_traffic(1000, 10, 3.0, 10, sent_fraction=0.5)
        assert half == pytest.approx(full / 2)

    def test_validation(self):
        with pytest.raises(Exception):
            parameter_server_traffic(0, 10, 10)
        with pytest.raises(ValueError):
            neighbor_exchange_traffic(10, 10, 0.0, 10)
        with pytest.raises(ValueError):
            neighbor_exchange_traffic(10, 10, 3.0, 10, sent_fraction=1.5)
