"""Tests for repro.analysis.plots (terminal sparklines)."""

import math

import pytest

from repro.analysis.plots import sparkline, trace_panel
from repro.exceptions import DataError


class TestSparkline:
    def test_monotone_ramp_uses_increasing_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series_is_flat(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_length_matches_input(self):
        assert len(sparkline(range(23))) == 23

    def test_downsampling_to_width(self):
        assert len(sparkline(range(1000), width=40)) == 40

    def test_short_input_not_padded(self):
        assert len(sparkline([1, 2], width=40)) == 2

    def test_non_finite_values_render_as_spaces(self):
        line = sparkline([1.0, math.nan, 3.0])
        assert line[1] == " "
        assert line[0] != " " and line[2] != " "

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            sparkline([])

    def test_bad_width_rejected(self):
        with pytest.raises(DataError):
            sparkline([1, 2], width=0)

    def test_extremes_map_to_extreme_blocks(self):
        line = sparkline([0.0, 10.0])
        assert line[0] == "▁"
        assert line[1] == "█"


class TestTracePanel:
    def test_contains_title_and_endpoints(self):
        panel = trace_panel("loss", [1.5, 1.0, 0.5])
        assert panel.startswith("loss")
        assert "1.5" in panel
        assert "0.5" in panel

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            trace_panel("loss", [])

    def test_long_trace_fits_width(self):
        panel = trace_panel("bytes", list(range(500)), width=30)
        # title + 2 numbers + sparkline; sparkline itself is <= 30 chars
        spark = panel.split(" ")[-2]
        assert len(spark) <= 30
