"""Tests for repro.analysis.reporting."""

import pytest

from repro.analysis.reporting import ascii_table, format_bytes


class TestAsciiTable:
    def test_alignment_and_content(self):
        table = ascii_table(
            ["scheme", "bytes"], [["snap", 123], ["terngrad", 4567]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("scheme")
        assert "snap" in lines[2]
        assert "4567" in lines[3]

    def test_floats_formatted_compactly(self):
        table = ascii_table(["v"], [[0.123456789]])
        assert "0.1235" in table

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])

    def test_handles_none(self):
        assert "None" in ascii_table(["x"], [[None]])


class TestFormatBytes:
    def test_plain_bytes(self):
        assert format_bytes(17) == "17 B"

    def test_kib(self):
        assert format_bytes(2048) == "2.00 KiB"

    def test_mib(self):
        assert format_bytes(5 * 1024 * 1024) == "5.00 MiB"

    def test_huge_values_capped_at_tib(self):
        assert format_bytes(2**50) == "1024.00 TiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)
