"""Shared fixtures for the test suite.

Everything is deliberately small: tests exercise behaviour and invariants,
not paper-scale performance (that is the benchmark harness's job).
"""

from __future__ import annotations

import importlib.util
import os
import signal
import threading

import numpy as np
import pytest

from repro.data.credit import SyntheticCreditDefault
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.models.ridge import RidgeRegression
from repro.models.svm import LinearSVM
from repro.topology.generators import complete_topology, random_topology, ring_topology
from repro.weights.construction import metropolis_weights


_TIMEOUT_PLUGIN_PRESENT = importlib.util.find_spec("pytest_timeout") is not None

#: Default per-test wall-clock limit for socket/thread-heavy suites: a
#: deadlocked testbed must fail fast, not hang the whole run.
NETWORKED_TEST_TIMEOUT_S = 120


def pytest_collection_modifyitems(config, items):
    """Give every networked/integration test a timeout unless it set its own."""
    for item in items:
        path = str(item.fspath)
        networked = (
            f"{os.sep}integration{os.sep}" in path
            or f"{os.sep}runtime{os.sep}" in path
            or f"{os.sep}orchestrator{os.sep}" in path
        )
        if networked and item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(NETWORKED_TEST_TIMEOUT_S))


@pytest.fixture(autouse=True)
def _timeout_fallback(request):
    """Enforce ``@pytest.mark.timeout`` via SIGALRM when pytest-timeout is absent.

    The real plugin (a dev extra that may not be installed everywhere) takes
    precedence when importable. The fallback only works on POSIX from the
    main thread — elsewhere the marker is quietly advisory.
    """
    marker = request.node.get_closest_marker("timeout")
    if (
        marker is None
        or _TIMEOUT_PLUGIN_PRESENT
        or os.name != "posix"
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    seconds = int(marker.args[0]) if marker.args else NETWORKED_TEST_TIMEOUT_S

    def _expired(signum, frame):
        raise TimeoutError(f"test exceeded its {seconds}s timeout")

    previous_handler = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous_handler)


@pytest.fixture
def rng():
    """A fixed-seed generator for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_topology():
    """A connected 8-node random topology with average degree ~3."""
    return random_topology(8, 3.0, seed=42)


@pytest.fixture
def triangle_topology():
    """The paper's 3-server fully connected testbed topology."""
    return complete_topology(3)


@pytest.fixture
def ring6():
    """A 6-node ring."""
    return ring_topology(6)


@pytest.fixture
def small_weights(small_topology):
    """Metropolis weights on the small topology."""
    return metropolis_weights(small_topology)


@pytest.fixture
def linear_dataset(rng):
    """A small well-conditioned regression dataset with known solution."""
    n, p = 120, 5
    X = rng.normal(size=(n, p))
    true_w = rng.normal(size=p + 1)  # includes bias
    y = X @ true_w[:-1] + true_w[-1] + 0.05 * rng.normal(size=n)
    return Dataset(X, y)


@pytest.fixture
def binary_dataset(rng):
    """A small linearly separable-ish binary dataset with labels in {-1,+1}."""
    n, p = 160, 6
    X = rng.normal(size=(n, p))
    w = rng.normal(size=p)
    y = np.where(X @ w + 0.3 * rng.normal(size=n) > 0, 1.0, -1.0)
    return Dataset(X, y)


@pytest.fixture
def svm_model(binary_dataset):
    """A linear SVM sized for ``binary_dataset``."""
    return LinearSVM(n_features=binary_dataset.n_features, regularization=1e-2)


@pytest.fixture
def ridge_model(linear_dataset):
    """A ridge model sized for ``linear_dataset``."""
    return RidgeRegression(n_features=linear_dataset.n_features, regularization=1e-2)


@pytest.fixture
def credit_shards():
    """Four IID shards of a small synthetic credit dataset plus a test set."""
    generator = SyntheticCreditDefault(seed=5)
    train, test = generator.train_test(n_train=800, n_test=200, seed=6)
    shards = iid_partition(train, 4, seed=7)
    return shards, test


def numerical_gradient(f, params, epsilon=1e-6):
    """Central-difference gradient of a scalar function, for gradient checks."""
    params = np.asarray(params, dtype=float)
    grad = np.zeros_like(params)
    for i in range(params.size):
        up = params.copy()
        down = params.copy()
        up[i] += epsilon
        down[i] -= epsilon
        grad[i] = (f(up) - f(down)) / (2.0 * epsilon)
    return grad


@pytest.fixture
def gradient_checker():
    """Expose the central-difference helper to tests as a fixture."""
    return numerical_gradient
