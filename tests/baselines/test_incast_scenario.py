"""The incast scenario from the paper's introduction.

The paper motivates peer-to-peer operation partly by the incast problem:
"when an edge server is selected as a parameter server to collect the
parameter updates from other servers, the incast problem may occur", and by
multi-hop cost: "there are usually multiple physical hops from an edge
server to a selected parameter server". These tests pin down both effects in
the cost accounting.
"""

import numpy as np
import pytest

from repro.baselines.parameter_server import ParameterServerTrainer
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.models.ridge import RidgeRegression
from repro.network.timing import LinkTimingModel
from repro.topology.generators import star_topology
from repro.topology.graph import Topology


@pytest.fixture
def star_setup(rng):
    n, p = 160, 3
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p)
    n_servers = 8
    shards = iid_partition(Dataset(X, y), n_servers, seed=0)
    model = RidgeRegression(p, regularization=0.1)
    return model, shards, star_topology(n_servers, center=0)


class TestHopCostDependsOnElection:
    def test_hub_server_is_cheapest(self, star_setup):
        """Electing the hub gives every worker a 1-hop path; electing a leaf
        forces 2 hops for all the other leaves — strictly more cost for the
        same bytes."""
        model, shards, topo = star_setup
        costs = {}
        for server_node in (0, 1):  # hub vs leaf
            trainer = ParameterServerTrainer(
                model, shards, topo, server_node=server_node, seed=0
            )
            result = trainer.run(max_rounds=3, stop_on_convergence=False)
            costs[server_node] = result.total_cost
            assert result.total_bytes == costs.get("bytes", result.total_bytes)
            costs["bytes"] = result.total_bytes
        assert costs[0] < costs[1]
        # hub election: every flow is exactly one hop -> cost == bytes
        assert costs[0] == costs["bytes"]

    def test_leaf_election_cost_formula(self, star_setup):
        """With a leaf elected, the 6 other leaves pay 2 hops each way and
        the hub pays 1: cost = bytes * (2*6 + 1*1) / 7 per direction."""
        model, shards, topo = star_setup
        trainer = ParameterServerTrainer(
            model, shards, topo, server_node=1, seed=0
        )
        result = trainer.run(max_rounds=1, stop_on_convergence=False)
        per_flow = 8 * model.n_params
        # 7 workers up + 7 pushes down; hub (node 0) flows are 1 hop, the
        # other 6 leaves are 2 hops.
        expected = 2 * per_flow * (1 * 1 + 6 * 2)
        assert result.total_cost == expected


class TestIncastSerialization:
    def test_hub_ingress_serializes_in_the_timing_model(self, star_setup):
        """All worker->server flows target the same node; on a star, each
        arrives over its own link, but the *push* direction leaves the hub
        over distinct links too — the incast pain appears when the elected
        server is a leaf: every flow funnels through the single hub-leaf
        link and the round's makespan scales with the worker count."""
        model, shards, topo = star_setup
        timing = LinkTimingModel(bandwidth_bytes_per_s=1000.0, latency_s=0.0)

        def round_time(server_node):
            trainer = ParameterServerTrainer(
                model, shards, topo, server_node=server_node, seed=0
            )
            trainer.run(max_rounds=1, stop_on_convergence=False)
            return timing.total_time(trainer.tracker, 1)

        # Leaf election funnels 2-hop flows; hub election parallelizes.
        assert round_time(1) > round_time(0)


class TestSnapAvoidsTheHotspot:
    def test_snap_star_traffic_is_spread_across_links(self, star_setup):
        """Under SNAP the hub still touches every flow on a star (it is
        everyone's only neighbor), but no *multi-hop* funnel exists and the
        per-link load is one frame per direction per round."""
        from repro.core import SNAPConfig, SNAPTrainer
        from repro.core.config import SelectionPolicy

        model, shards, topo = star_setup
        trainer = SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig(selection=SelectionPolicy.CHANGED_ONLY, seed=0),
        )
        trainer.run(max_rounds=2, stop_on_convergence=False)
        for record in trainer.tracker.records():
            assert record.hops == 1
        # every round: one frame per directed edge = 2 * 7 flows
        round_one = [
            r for r in trainer.tracker.records() if r.round_index == 1
        ]
        assert len(round_one) == 2 * topo.n_edges


class TestPathGraphWorstCase:
    def test_cost_grows_with_distance_to_the_server(self, rng):
        """On a path graph, electing an endpoint maximizes total hop cost."""
        p = 2
        n_servers = 6
        X = rng.normal(size=(120, p))
        y = rng.normal(size=120)
        shards = iid_partition(Dataset(X, y), n_servers, seed=0)
        model = RidgeRegression(p, regularization=0.1)
        path = Topology(n_servers, [(i, i + 1) for i in range(n_servers - 1)])

        def cost(server_node):
            trainer = ParameterServerTrainer(
                model, shards, path, server_node=server_node, seed=0
            )
            return trainer.run(
                max_rounds=1, stop_on_convergence=False
            ).total_cost

        middle = cost(2)
        endpoint = cost(0)
        assert endpoint > middle
