"""Tests for repro.baselines.centralized.CentralizedTrainer."""

import numpy as np
import pytest

from repro.baselines.centralized import CentralizedTrainer
from repro.consensus.convergence import ConvergenceDetector
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.exceptions import ConfigurationError
from repro.models.ridge import RidgeRegression


@pytest.fixture
def setup(rng):
    n, p = 150, 3
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p) + 0.1 * rng.normal(size=n)
    shards = iid_partition(Dataset(X, y), 3, seed=0)
    model = RidgeRegression(p, regularization=0.1)
    return model, shards, model.solve_exact(X, y)


class TestTraining:
    def test_converges_to_exact_optimum(self, setup):
        model, shards, exact = setup
        trainer = CentralizedTrainer(model, shards, seed=0)
        result = trainer.run(
            max_rounds=3000,
            detector=ConvergenceDetector(relative_loss_tolerance=1e-10, loss_window=10),
        )
        np.testing.assert_allclose(result.final_params, exact, atol=1e-4)

    def test_loss_is_monotone_under_safe_step(self, setup):
        model, shards, _ = setup
        trainer = CentralizedTrainer(model, shards, seed=0)
        result = trainer.run(max_rounds=50, stop_on_convergence=False)
        losses = result.loss_trace()
        assert all(b <= a + 1e-12 for a, b in zip(losses, losses[1:]))

    def test_no_network_traffic(self, setup):
        model, shards, _ = setup
        result = CentralizedTrainer(model, shards, seed=0).run(max_rounds=5)
        assert result.total_bytes == 0
        assert result.total_cost == 0
        assert all(r.bytes_sent == 0 for r in result.rounds)

    def test_raw_upload_cost_reported(self, setup):
        model, shards, _ = setup
        trainer = CentralizedTrainer(model, shards, seed=0)
        n_values = sum(s.X.size + s.y.size for s in shards)
        assert trainer.raw_data_upload_bytes == 8 * n_values
        result = trainer.run(max_rounds=2, stop_on_convergence=False)
        assert result.info["raw_data_upload_bytes"] == 8 * n_values

    def test_scheme_name(self, setup):
        model, shards, _ = setup
        result = CentralizedTrainer(model, shards, seed=0).run(max_rounds=2)
        assert result.scheme == "centralized"

    def test_explicit_alpha_respected(self, setup):
        model, shards, _ = setup
        trainer = CentralizedTrainer(model, shards, alpha=0.123, seed=0)
        assert trainer.alpha == 0.123

    def test_empty_shards_rejected(self, setup):
        model, _, _ = setup
        with pytest.raises(ConfigurationError):
            CentralizedTrainer(model, [])

    def test_bad_alpha_rejected(self, setup):
        model, shards, _ = setup
        with pytest.raises(ConfigurationError):
            CentralizedTrainer(model, shards, alpha=-1.0)
