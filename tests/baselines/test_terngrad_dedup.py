"""The TernGrad baseline now imports ternarize from repro.compression.

The frozen copy below is the baseline's pre-refactor implementation,
verbatim. The canonical implementation that replaced it must produce
bit-identical output on the same generator state — the dedup is a move,
not a rewrite.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import terngrad as baseline
from repro.compression import TernGradCompressor, ternarize
from repro.compression.quantize import ternarize as canonical


def _ternarize_frozen(gradient, rng):
    """Pre-refactor repro.baselines.terngrad.ternarize, copied verbatim."""
    gradient = np.asarray(gradient, dtype=float)
    scale = float(np.max(np.abs(gradient))) if gradient.size else 0.0
    if scale == 0.0:
        return gradient.copy()
    keep_probability = np.abs(gradient) / scale
    kept = rng.random(gradient.shape) < keep_probability
    return scale * np.sign(gradient) * kept


def test_canonical_matches_frozen_copy_bitwise():
    for seed in range(50):
        rng_data = np.random.default_rng(seed)
        gradient = rng_data.normal(size=int(rng_data.integers(1, 200)))
        old = _ternarize_frozen(gradient, np.random.default_rng(1000 + seed))
        new = canonical(gradient, np.random.default_rng(1000 + seed))
        np.testing.assert_array_equal(old, new)


def test_zero_and_empty_vectors_pass_through():
    rng = np.random.default_rng(0)
    np.testing.assert_array_equal(canonical(np.zeros(5), rng), np.zeros(5))
    assert canonical(np.empty(0), rng).size == 0


def test_baseline_reexports_the_canonical_function():
    assert baseline.ternarize is canonical
    assert ternarize is canonical
    assert TernGradCompressor.ternarize is canonical
