"""Tests for repro.baselines.terngrad."""

import numpy as np
import pytest

from repro.baselines.parameter_server import ParameterServerTrainer
from repro.baselines.terngrad import TernGradTrainer, ternarize
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.models.ridge import RidgeRegression
from repro.network.frames import full_vector_bytes, terngrad_vector_bytes
from repro.topology.generators import ring_topology


class TestTernarize:
    def test_values_are_ternary(self, rng):
        gradient = rng.normal(size=500)
        encoded = ternarize(gradient, rng)
        scale = np.max(np.abs(gradient))
        unique = set(np.round(np.unique(encoded), 12))
        assert unique <= {-round(scale, 12), 0.0, round(scale, 12)}

    def test_unbiased(self, rng):
        gradient = np.array([0.5, -0.25, 1.0, 0.0])
        samples = np.mean([ternarize(gradient, rng) for _ in range(4000)], axis=0)
        np.testing.assert_allclose(samples, gradient, atol=0.05)

    def test_max_magnitude_component_always_kept(self, rng):
        gradient = np.array([0.1, -2.0, 0.3])
        for _ in range(50):
            encoded = ternarize(gradient, rng)
            assert encoded[1] == pytest.approx(-2.0)

    def test_zero_vector_passthrough(self, rng):
        np.testing.assert_array_equal(ternarize(np.zeros(5), rng), np.zeros(5))

    def test_signs_preserved(self, rng):
        gradient = rng.normal(size=100)
        encoded = ternarize(gradient, rng)
        nonzero = encoded != 0
        np.testing.assert_array_equal(
            np.sign(encoded[nonzero]), np.sign(gradient[nonzero])
        )


@pytest.fixture
def setup(rng):
    n, p = 200, 4
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p) + 0.1 * rng.normal(size=n)
    shards = iid_partition(Dataset(X, y), 6, seed=0)
    model = RidgeRegression(p, regularization=0.1)
    return model, shards, ring_topology(6)


class TestTernGradTrainer:
    def test_scheme_name(self, setup):
        model, shards, topo = setup
        result = TernGradTrainer(model, shards, topo, seed=0).run(
            max_rounds=3, stop_on_convergence=False
        )
        assert result.scheme == "terngrad"

    def test_worker_to_server_bytes_are_quantized(self, setup):
        model, shards, topo = setup
        trainer = TernGradTrainer(model, shards, topo, server_node=0, seed=0)
        result = trainer.run(max_rounds=1, stop_on_convergence=False)
        n_workers = topo.n_nodes - 1
        expected = n_workers * (
            terngrad_vector_bytes(model.n_params) + full_vector_bytes(model.n_params)
        )
        assert result.rounds[0].bytes_sent == expected

    def test_cheaper_per_round_than_ps(self, setup):
        model, shards, topo = setup
        terngrad = TernGradTrainer(model, shards, topo, server_node=0, seed=0).run(
            max_rounds=2, stop_on_convergence=False
        )
        ps = ParameterServerTrainer(model, shards, topo, server_node=0, seed=0).run(
            max_rounds=2, stop_on_convergence=False
        )
        assert terngrad.rounds[0].bytes_sent < ps.rounds[0].bytes_sent

    def test_noisier_than_ps_at_same_round_count(self, setup):
        """Quantization noise leaves TernGrad farther from the optimum."""
        model, shards, topo = setup
        init = model.init_params(seed=3)
        rounds = 150
        terngrad = TernGradTrainer(
            model, shards, topo, initial_params=init, seed=0, quantization_seed=1
        ).run(max_rounds=rounds, stop_on_convergence=False)
        ps = ParameterServerTrainer(
            model, shards, topo, initial_params=init, seed=0
        ).run(max_rounds=rounds, stop_on_convergence=False)
        assert terngrad.rounds[-1].mean_loss >= ps.rounds[-1].mean_loss

    def test_quantization_seed_reproducible(self, setup):
        model, shards, topo = setup
        init = model.init_params(seed=3)

        def run():
            return TernGradTrainer(
                model,
                shards,
                topo,
                initial_params=init,
                server_node=0,
                seed=0,
                quantization_seed=42,
            ).run(max_rounds=5, stop_on_convergence=False)

        np.testing.assert_array_equal(run().final_params, run().final_params)
