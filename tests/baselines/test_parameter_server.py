"""Tests for repro.baselines.parameter_server.ParameterServerTrainer."""

import numpy as np
import pytest

from repro.baselines.centralized import CentralizedTrainer
from repro.baselines.parameter_server import ParameterServerTrainer
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.exceptions import ConfigurationError
from repro.models.ridge import RidgeRegression
from repro.network.frames import full_vector_bytes
from repro.topology.generators import ring_topology
from repro.topology.routing import all_pairs_hop_counts


@pytest.fixture
def setup(rng):
    n, p = 160, 3
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p) + 0.1 * rng.normal(size=n)
    shards = iid_partition(Dataset(X, y), 8, seed=0)
    model = RidgeRegression(p, regularization=0.1)
    topo = ring_topology(8)
    return model, shards, topo, model.solve_exact(X, y)


class TestTraining:
    def test_converges_to_near_optimum(self, setup):
        model, shards, topo, exact = setup
        trainer = ParameterServerTrainer(model, shards, topo, seed=1)
        result = trainer.run(max_rounds=3000, stop_on_convergence=False)
        # Gradient averaging over equal-size IID shards minimizes the mean
        # objective, whose optimum is close to (not identical to) the pooled
        # closed-form solution when shard sizes differ by at most one.
        np.testing.assert_allclose(result.final_params, exact, atol=5e-3)

    def test_equivalent_to_centralized_dynamics(self, rng):
        """With equal shard sizes, PS gradient-averaging equals full-batch GD."""
        n, p = 120, 3
        X = rng.normal(size=(n, p))
        y = X @ rng.normal(size=p)
        shards = iid_partition(Dataset(X, y), 4, seed=0)  # 30 each
        model = RidgeRegression(p, regularization=0.1)
        init = model.init_params(seed=5)
        alpha = 0.1
        ps = ParameterServerTrainer(
            model, shards, ring_topology(4), alpha=alpha, initial_params=init, seed=0
        ).run(max_rounds=40, stop_on_convergence=False)
        central = CentralizedTrainer(
            model, shards, alpha=alpha, initial_params=init
        ).run(max_rounds=40, stop_on_convergence=False)
        np.testing.assert_allclose(ps.final_params, central.final_params, atol=1e-10)


class TestCommunicationAccounting:
    def test_per_round_cost_formula(self, setup):
        model, shards, topo, _ = setup
        server_node = 0
        trainer = ParameterServerTrainer(
            model, shards, topo, server_node=server_node, seed=0
        )
        result = trainer.run(max_rounds=3, stop_on_convergence=False)
        hops = all_pairs_hop_counts(topo)
        vec = full_vector_bytes(model.n_params)
        expected_cost = sum(
            2 * vec * hops[worker, server_node]
            for worker in topo
            if worker != server_node
        )
        assert all(r.cost == expected_cost for r in result.rounds)

    def test_cost_exceeds_bytes_on_multi_hop_topology(self, setup):
        model, shards, topo, _ = setup
        trainer = ParameterServerTrainer(model, shards, topo, server_node=0, seed=0)
        result = trainer.run(max_rounds=2, stop_on_convergence=False)
        assert result.total_cost > result.total_bytes

    def test_constant_traffic_per_round(self, setup):
        """Fig. 4(b): PS traffic does not decay with iterations."""
        model, shards, topo, _ = setup
        result = ParameterServerTrainer(model, shards, topo, seed=0).run(
            max_rounds=10, stop_on_convergence=False
        )
        traces = result.bytes_trace()
        assert len(set(traces)) == 1


class TestServerElection:
    def test_random_election_is_seeded(self, setup):
        model, shards, topo, _ = setup
        a = ParameterServerTrainer(model, shards, topo, seed=7).server_node
        b = ParameterServerTrainer(model, shards, topo, seed=7).server_node
        assert a == b

    def test_explicit_server_node(self, setup):
        model, shards, topo, _ = setup
        trainer = ParameterServerTrainer(model, shards, topo, server_node=5, seed=0)
        assert trainer.server_node == 5

    def test_bad_server_node_rejected(self, setup):
        model, shards, topo, _ = setup
        with pytest.raises(ConfigurationError):
            ParameterServerTrainer(model, shards, topo, server_node=99)

    def test_shard_count_mismatch_rejected(self, setup):
        model, shards, topo, _ = setup
        with pytest.raises(ConfigurationError):
            ParameterServerTrainer(model, shards[:3], topo)
