"""Tests for repro.data.mnist.SyntheticMNIST."""

import numpy as np
import pytest

from repro.data.mnist import IMAGE_SIDE, N_CLASSES, N_PIXELS, SyntheticMNIST
from repro.models.metrics import accuracy_score
from repro.models.softmax import SoftmaxRegression


class TestShape:
    def test_sample_shapes_and_ranges(self):
        data = SyntheticMNIST(seed=0).sample(100, seed=1)
        assert data.X.shape == (100, N_PIXELS)
        assert data.y.shape == (100,)
        assert data.X.min() >= 0.0 and data.X.max() <= 1.0
        assert set(np.unique(data.y)) <= set(range(N_CLASSES))

    def test_paper_default_split_sizes(self):
        generator = SyntheticMNIST(seed=0)
        train, test = generator.train_test(n_train=500, n_test=120, seed=2)
        assert train.n_samples == 500
        assert test.n_samples == 120

    def test_geometry_constants(self):
        assert N_PIXELS == IMAGE_SIDE * IMAGE_SIDE == 784
        assert N_CLASSES == 10


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = SyntheticMNIST(seed=3).sample(50, seed=4)
        b = SyntheticMNIST(seed=3).sample(50, seed=4)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_templates_fixed_per_generator(self):
        generator = SyntheticMNIST(seed=5)
        t1 = generator.templates.copy()
        generator.sample(10)
        np.testing.assert_array_equal(generator.templates, t1)

    def test_templates_are_read_only(self):
        generator = SyntheticMNIST(seed=5)
        with pytest.raises(ValueError):
            generator.templates[0, 0] = 1.0


class TestLearnability:
    def test_linear_model_learns_it(self):
        """The substitution promise: a simple model must reach high accuracy."""
        generator = SyntheticMNIST(seed=0)
        train, test = generator.train_test(n_train=1000, n_test=300, seed=1)
        model = SoftmaxRegression(N_PIXELS, N_CLASSES, regularization=1e-4)
        params = model.init_params(seed=0)
        step = 1.0 / model.gradient_lipschitz_bound(train.X)
        for _ in range(150):
            params = params - step * model.gradient(params, train.X, train.y)
        accuracy = accuracy_score(test.y, model.predict(params, test.X))
        assert accuracy > 0.9

    def test_noise_hurts(self):
        clean = SyntheticMNIST(seed=0, noise_std=0.01)
        noisy = SyntheticMNIST(seed=0, noise_std=0.9)
        c = clean.sample(200, seed=1)
        n = noisy.sample(200, seed=1)
        # Distance of samples to their class templates grows with noise.
        def mean_template_distance(gen, data):
            return np.mean(
                np.linalg.norm(data.X - gen.templates[data.y], axis=1)
            )
        assert mean_template_distance(noisy, n) > mean_template_distance(clean, c)

    def test_classes_are_roughly_balanced(self):
        data = SyntheticMNIST(seed=0).sample(5000, seed=2)
        counts = np.bincount(data.y, minlength=N_CLASSES)
        assert counts.min() > 300
