"""Tests for repro.data.partition."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.partition import dirichlet_partition, iid_partition, shard_partition
from repro.exceptions import DataError


@pytest.fixture
def labeled_dataset(rng):
    n = 200
    X = rng.normal(size=(n, 3))
    y = rng.integers(0, 5, size=n).astype(np.int64)
    return Dataset(X, y)


def assert_is_partition(dataset, parts):
    """Every sample appears in exactly one shard."""
    total = sum(p.n_samples for p in parts)
    assert total == dataset.n_samples
    seen = np.vstack([p.X for p in parts])
    assert {tuple(r) for r in seen} == {tuple(r) for r in dataset.X}


class TestIIDPartition:
    def test_is_a_partition(self, labeled_dataset):
        parts = iid_partition(labeled_dataset, 7, seed=0)
        assert_is_partition(labeled_dataset, parts)

    def test_near_equal_sizes(self, labeled_dataset):
        parts = iid_partition(labeled_dataset, 7, seed=0)
        sizes = [p.n_samples for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self, labeled_dataset):
        a = iid_partition(labeled_dataset, 4, seed=3)
        b = iid_partition(labeled_dataset, 4, seed=3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.X, y.X)

    def test_too_many_parts_rejected(self, labeled_dataset):
        with pytest.raises(DataError):
            iid_partition(labeled_dataset, 201, seed=0)

    def test_single_part_is_whole_dataset(self, labeled_dataset):
        (part,) = iid_partition(labeled_dataset, 1, seed=0)
        assert part.n_samples == labeled_dataset.n_samples


class TestDirichletPartition:
    def test_is_a_partition(self, labeled_dataset):
        parts = dirichlet_partition(labeled_dataset, 5, concentration=1.0, seed=0)
        assert_is_partition(labeled_dataset, parts)

    def test_low_concentration_is_more_skewed(self, labeled_dataset):
        def label_skew(parts):
            # mean over shards of (max class share within the shard)
            skews = []
            for p in parts:
                counts = np.bincount(p.y.astype(int), minlength=5)
                skews.append(counts.max() / max(counts.sum(), 1))
            return np.mean(skews)

        skewed = dirichlet_partition(labeled_dataset, 5, concentration=0.05, seed=1)
        uniform = dirichlet_partition(labeled_dataset, 5, concentration=100.0, seed=1)
        assert label_skew(skewed) > label_skew(uniform)

    def test_min_samples_respected(self, labeled_dataset):
        parts = dirichlet_partition(
            labeled_dataset, 4, concentration=0.3, seed=2, min_samples=5
        )
        assert all(p.n_samples >= 5 for p in parts)

    def test_impossible_min_samples_rejected(self, labeled_dataset):
        with pytest.raises(DataError):
            dirichlet_partition(labeled_dataset, 10, seed=0, min_samples=50)


class TestShardPartition:
    def test_is_a_partition(self, labeled_dataset):
        parts = shard_partition(labeled_dataset, 5, shards_per_part=2, seed=0)
        assert_is_partition(labeled_dataset, parts)

    def test_parts_see_few_classes(self, labeled_dataset):
        parts = shard_partition(labeled_dataset, 10, shards_per_part=1, seed=1)
        classes_per_part = [len(np.unique(p.y)) for p in parts]
        # one contiguous label shard covers at most 2 distinct classes
        assert max(classes_per_part) <= 2

    def test_too_many_shards_rejected(self, labeled_dataset):
        with pytest.raises(DataError):
            shard_partition(labeled_dataset, 150, shards_per_part=2, seed=0)
