"""Tests for repro.data.credit.SyntheticCreditDefault."""

import numpy as np
import pytest

from repro.data.credit import DEFAULT_POSITIVE_RATE, N_FEATURES, SyntheticCreditDefault
from repro.models.metrics import accuracy_score
from repro.models.svm import LinearSVM


class TestShape:
    def test_paper_geometry(self):
        data = SyntheticCreditDefault(seed=0).sample(500, seed=1)
        assert data.X.shape == (500, N_FEATURES)
        assert N_FEATURES == 24
        assert set(np.unique(data.y)) <= {-1.0, 1.0}

    def test_default_split_totals_paper_sample_count(self):
        generator = SyntheticCreditDefault(seed=0)
        train, test = generator.train_test(seed=1)
        assert train.n_samples + test.n_samples == 30_000

    def test_features_standardized(self):
        data = SyntheticCreditDefault(seed=0).sample(5000, seed=2)
        np.testing.assert_allclose(data.X.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(data.X.std(axis=0), 1.0, atol=1e-6)


class TestLabels:
    def test_positive_rate_calibrated(self):
        data = SyntheticCreditDefault(seed=0).sample(20_000, seed=3)
        rate = np.mean(data.y == 1.0)
        assert rate == pytest.approx(DEFAULT_POSITIVE_RATE, abs=0.03)

    def test_custom_positive_rate(self):
        generator = SyntheticCreditDefault(seed=0, positive_rate=0.5, label_noise=0.0)
        data = generator.sample(10_000, seed=4)
        assert np.mean(data.y == 1.0) == pytest.approx(0.5, abs=0.02)

    def test_label_noise_reduces_learnable_accuracy(self):
        def best_accuracy(noise):
            gen = SyntheticCreditDefault(seed=0, label_noise=noise)
            train = gen.sample(3000, seed=1)
            test = gen.sample(1000, seed=2)
            model = LinearSVM(N_FEATURES, regularization=1e-3)
            params = model.init_params(seed=0)
            step = 0.5 / model.gradient_lipschitz_bound(train.X)
            for _ in range(400):
                params = params - step * model.gradient(params, train.X, train.y)
            return accuracy_score(test.y, model.predict(params, test.X))

        assert best_accuracy(0.0) > best_accuracy(0.25)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = SyntheticCreditDefault(seed=9).sample(100, seed=1)
        b = SyntheticCreditDefault(seed=9).sample(100, seed=1)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_true_weights_read_only(self):
        generator = SyntheticCreditDefault(seed=0)
        with pytest.raises(ValueError):
            generator.true_weights[0] = 0.0

    def test_svm_learns_it(self):
        """The substitution promise: a 24-parameter SVM fits it well."""
        generator = SyntheticCreditDefault(seed=0)
        train, test = generator.train_test(n_train=4000, n_test=1000, seed=1)
        model = LinearSVM(N_FEATURES, regularization=1e-3)
        params = model.init_params(seed=0)
        step = 0.5 / model.gradient_lipschitz_bound(train.X)
        for _ in range(400):
            params = params - step * model.gradient(params, train.X, train.y)
        assert accuracy_score(test.y, model.predict(params, test.X)) > 0.8
