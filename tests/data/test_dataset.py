"""Tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, train_test_split
from repro.exceptions import DataError


@pytest.fixture
def dataset(rng):
    return Dataset(rng.normal(size=(30, 4)), rng.integers(0, 2, size=30))


class TestDataset:
    def test_shapes(self, dataset):
        assert dataset.n_samples == 30
        assert dataset.n_features == 4
        assert len(dataset) == 30

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(DataError):
            Dataset(rng.normal(size=(5, 2)), rng.normal(size=4))

    def test_rejects_1d_features(self, rng):
        with pytest.raises(DataError):
            Dataset(rng.normal(size=5), rng.normal(size=5))

    def test_rejects_2d_labels(self, rng):
        with pytest.raises(DataError):
            Dataset(rng.normal(size=(5, 2)), rng.normal(size=(5, 1)))

    def test_subset_selects_and_copies(self, dataset):
        sub = dataset.subset(np.array([0, 2, 4]))
        assert sub.n_samples == 3
        np.testing.assert_array_equal(sub.X[1], dataset.X[2])
        sub.X[0, 0] = 1e9
        assert dataset.X[0, 0] != 1e9

    def test_subset_range_checked(self, dataset):
        with pytest.raises(DataError):
            dataset.subset(np.array([30]))

    def test_shuffled_preserves_pairs(self, dataset):
        shuffled = dataset.shuffled(seed=0)
        assert shuffled.n_samples == dataset.n_samples
        # every (row, label) pair must still exist
        original = {(tuple(x), y) for x, y in zip(dataset.X, dataset.y)}
        permuted = {(tuple(x), y) for x, y in zip(shuffled.X, shuffled.y)}
        assert original == permuted


class TestTrainTestSplit:
    def test_sizes(self, dataset):
        train, test = train_test_split(dataset, test_fraction=0.2, seed=0)
        assert test.n_samples == 6
        assert train.n_samples == 24

    def test_disjoint_and_complete(self, dataset):
        train, test = train_test_split(dataset, test_fraction=0.3, seed=1)
        combined = np.vstack([train.X, test.X])
        assert combined.shape[0] == dataset.n_samples
        assert {tuple(r) for r in combined} == {tuple(r) for r in dataset.X}

    def test_at_least_one_sample_each_side(self, rng):
        tiny = Dataset(rng.normal(size=(2, 1)), rng.normal(size=2))
        train, test = train_test_split(tiny, test_fraction=0.01, seed=0)
        assert train.n_samples == 1
        assert test.n_samples == 1

    def test_bad_fraction_rejected(self, dataset):
        with pytest.raises(DataError):
            train_test_split(dataset, test_fraction=0.0)

    def test_single_sample_rejected(self, rng):
        one = Dataset(rng.normal(size=(1, 1)), rng.normal(size=1))
        with pytest.raises(DataError):
            train_test_split(one)

    def test_deterministic_given_seed(self, dataset):
        a_train, _ = train_test_split(dataset, seed=5)
        b_train, _ = train_test_split(dataset, seed=5)
        np.testing.assert_array_equal(a_train.X, b_train.X)
