"""Unit tests for the drifting-data shard schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.drift import DriftSchedule, LabelShiftDrift, StreamingArrival
from repro.exceptions import ConfigurationError


def _base(n=24, d=3, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = np.arange(n) % classes
    return Dataset(X, y)


class TestEpochArithmetic:
    def test_epoch_boundaries(self):
        schedule = StreamingArrival(period=3)
        assert [schedule.epoch(k) for k in range(1, 8)] == [0, 0, 0, 1, 1, 1, 2]

    def test_epoch_rejects_round_zero(self):
        schedule = StreamingArrival(period=3)
        with pytest.raises(ConfigurationError):
            schedule.epoch(0)

    def test_period_must_be_positive(self):
        with pytest.raises(Exception):
            StreamingArrival(period=0)


class TestLabelShiftDrift:
    def test_epoch_zero_is_the_base_shard(self):
        base = _base()
        drift = LabelShiftDrift(period=2, seed=9)
        assert drift.shard(0, base, 0) is base

    def test_later_epochs_resample_deterministically(self):
        base = _base()
        a = LabelShiftDrift(period=2, seed=9)
        b = LabelShiftDrift(period=2, seed=9)
        shard_a = a.shard(1, base, 2)
        shard_b = b.shard(1, base, 2)
        np.testing.assert_array_equal(shard_a.X, shard_b.X)
        np.testing.assert_array_equal(shard_a.y, shard_b.y)
        assert shard_a.n_samples == base.n_samples

    def test_focal_class_is_boosted(self):
        base = _base(n=300, classes=3)
        drift = LabelShiftDrift(period=2, boost=8.0, seed=3)
        epoch, node = 1, 0
        focal = np.unique(base.y)[(epoch + node) % 3]
        shard = drift.shard(node, base, epoch)
        base_count = int(np.sum(base.y == focal))
        drift_count = int(np.sum(shard.y == focal))
        assert drift_count > base_count

    def test_distinct_nodes_and_epochs_draw_distinct_shards(self):
        base = _base()
        drift = LabelShiftDrift(period=2, seed=9)
        s_node = drift.shard(0, base, 1)
        s_other = drift.shard(1, base, 1)
        s_epoch = drift.shard(0, base, 2)
        assert not np.array_equal(s_node.X, s_other.X)
        assert not np.array_equal(s_node.X, s_epoch.X)

    def test_boost_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            LabelShiftDrift(period=2, boost=1.0)


class TestStreamingArrival:
    def test_prefix_grows_until_full(self):
        base = _base(n=20)
        drift = StreamingArrival(
            period=2, initial_fraction=0.25, arrival_fraction=0.25
        )
        sizes = [drift.shard(0, base, e).n_samples for e in range(5)]
        assert sizes == [5, 10, 15, 20, 20]
        assert drift.shard(0, base, 4) is base  # full window is zero-copy

    def test_prefix_preserves_sample_order(self):
        base = _base(n=20)
        drift = StreamingArrival(period=2)
        shard = drift.shard(0, base, 1)
        np.testing.assert_array_equal(shard.X, base.X[: shard.n_samples])
        np.testing.assert_array_equal(shard.y, base.y[: shard.n_samples])

    def test_fractions_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            StreamingArrival(period=2, initial_fraction=0.0)
        with pytest.raises(ConfigurationError):
            StreamingArrival(period=2, arrival_fraction=0.0)
        with pytest.raises(Exception):
            StreamingArrival(period=2, initial_fraction=1.5)


class TestAbstractContract:
    def test_shard_is_abstract(self):
        with pytest.raises(TypeError):
            DriftSchedule(period=2)  # type: ignore[abstract]
