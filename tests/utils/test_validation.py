"""Tests for repro.utils.validation."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive_values(self):
        assert check_positive("x", 3.5) == 3.5
        assert check_positive("x", 1) == 1

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), "3", None, True])
    def test_rejects_non_finite_and_non_numbers(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -1e-9)


class TestCheckPositiveInt:
    def test_accepts_ints(self):
        assert check_positive_int("n", 5) == 5

    @pytest.mark.parametrize("bad", [0, -2, 1.5, True, "7"])
    def test_rejects_non_positive_ints(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive_int("n", bad)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, math.nan])
    def test_rejects_outside(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability("p", bad)


class TestCheckFraction:
    def test_accepts_interior(self):
        assert check_fraction("f", 0.3) == 0.3

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 2.0])
    def test_rejects_boundary_and_outside(self, bad):
        with pytest.raises(ConfigurationError):
            check_fraction("f", bad)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("r", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("r", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds_reject_endpoints(self):
        with pytest.raises(ConfigurationError):
            check_in_range("r", 1.0, 1.0, 2.0, inclusive=False)

    def test_error_message_names_the_argument(self):
        with pytest.raises(ConfigurationError, match="myarg"):
            check_in_range("myarg", 5.0, 0.0, 1.0)
