"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(5)
        b = make_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passes_through_unchanged(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_a_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_threading_a_generator_advances_state(self):
        gen = make_rng(3)
        first = make_rng(gen).random()
        second = make_rng(gen).random()
        assert first != second


class TestSpawnRngs:
    def test_count_and_types(self):
        children = spawn_rngs(9, 4)
        assert len(children) == 4
        assert all(isinstance(c, np.random.Generator) for c in children)

    def test_children_are_independent_streams(self):
        children = spawn_rngs(9, 3)
        draws = [c.random(8) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_given_seed(self):
        a = [c.random(4) for c in spawn_rngs(11, 2)]
        b = [c.random(4) for c in spawn_rngs(11, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_zero_count_gives_empty_list(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)
