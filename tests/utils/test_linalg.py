"""Tests for repro.utils.linalg."""

import numpy as np
import pytest

from repro.exceptions import WeightMatrixError
from repro.utils.linalg import (
    is_doubly_stochastic,
    is_nonnegative,
    is_symmetric,
    second_largest_eigenvalue,
    smallest_eigenvalue,
    sorted_eigenvalues,
    spectral_gap,
)


class TestPredicates:
    def test_symmetric_detection(self):
        assert is_symmetric(np.array([[1.0, 2.0], [2.0, 1.0]]))
        assert not is_symmetric(np.array([[1.0, 2.0], [3.0, 1.0]]))

    def test_symmetric_rejects_non_square(self):
        assert not is_symmetric(np.ones((2, 3)))
        assert not is_symmetric(np.ones(4))

    def test_nonnegative(self):
        assert is_nonnegative(np.array([[0.0, 1.0], [2.0, 3.0]]))
        assert not is_nonnegative(np.array([[0.0, -1e-3]]))

    def test_doubly_stochastic_accepts_valid(self):
        w = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert is_doubly_stochastic(w)
        assert is_doubly_stochastic(np.eye(4))

    def test_doubly_stochastic_rejects_bad_rows(self):
        assert not is_doubly_stochastic(np.array([[0.9, 0.0], [0.0, 1.0]]))

    def test_doubly_stochastic_rejects_negative_entries(self):
        w = np.array([[1.2, -0.2], [-0.2, 1.2]])
        assert not is_doubly_stochastic(w)

    def test_doubly_stochastic_rejects_non_square(self):
        assert not is_doubly_stochastic(np.full((2, 3), 1 / 3))


class TestSpectrum:
    def test_sorted_descending(self):
        w = np.diag([3.0, -1.0, 2.0])
        np.testing.assert_allclose(sorted_eigenvalues(w), [3.0, 2.0, -1.0])

    def test_sorted_rejects_asymmetric(self):
        with pytest.raises(WeightMatrixError):
            sorted_eigenvalues(np.array([[0.0, 1.0], [0.0, 0.0]]))

    def test_second_largest_skips_unit_eigenvalue(self):
        # 2x2 doubly stochastic: eigenvalues are 1 and 2a-1.
        a = 0.7
        w = np.array([[a, 1 - a], [1 - a, a]])
        assert second_largest_eigenvalue(w) == pytest.approx(2 * a - 1)

    def test_second_largest_skips_repeated_ones(self):
        # Block diagonal of two K2-averaging blocks: eigenvalue 1 twice.
        block = np.full((2, 2), 0.5)
        w = np.block([[block, np.zeros((2, 2))], [np.zeros((2, 2)), block]])
        assert second_largest_eigenvalue(w) == pytest.approx(0.0)

    def test_second_largest_raises_for_identity_like(self):
        with pytest.raises(WeightMatrixError):
            second_largest_eigenvalue(np.eye(3))

    def test_smallest_eigenvalue(self):
        w = np.diag([1.0, -0.25, 0.5])
        assert smallest_eigenvalue(w) == pytest.approx(-0.25)


class TestSpectralGap:
    def test_complete_graph_average_has_gap_one(self):
        n = 5
        w = np.full((n, n), 1.0 / n)
        # second largest = 0, smallest = 0 -> min(1, 1) = 1.
        assert spectral_gap(w) == pytest.approx(1.0)

    def test_identity_has_zero_gap(self):
        assert spectral_gap(np.eye(4)) == 0.0

    def test_gap_uses_the_binding_side(self):
        # Eigenvalues 1, 0.9, -0.5: upper gap 0.1, lower gap 0.5.
        w = np.diag([1.0, 0.9, -0.5])
        assert spectral_gap(w) == pytest.approx(0.1)
