"""Unit tests for byzantine attack plans and their trainer integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.faults.byzantine import (
    ByzantinePlan,
    GaussianNoiseAttack,
    ScaledUpdateAttack,
    SignFlipAttack,
)
from repro.faults.plan import FaultPlan
from repro.topology.graph import Topology


def _ring(n=6):
    return Topology(n, [(i, (i + 1) % n) for i in range(n)])


class TestAttacks:
    def test_sign_flip_negates_and_scales(self):
        params = np.array([1.0, -2.0, 0.5])
        out = SignFlipAttack().transmit(params, 0, 1)
        np.testing.assert_array_equal(out, -params)
        out = SignFlipAttack(scale=3.0).transmit(params, 0, 1)
        np.testing.assert_array_equal(out, -3.0 * params)

    def test_attacks_never_mutate_the_honest_vector(self):
        params = np.array([1.0, 2.0, 3.0])
        keep = params.copy()
        for attack in (
            SignFlipAttack(),
            GaussianNoiseAttack(0.5, seed=1),
            ScaledUpdateAttack(4.0),
        ):
            attack.transmit(params, 2, 5)
            np.testing.assert_array_equal(params, keep)

    def test_gaussian_noise_is_deterministic_per_node_round(self):
        a = GaussianNoiseAttack(0.5, seed=7)
        b = GaussianNoiseAttack(0.5, seed=7)
        params = np.ones(4)
        np.testing.assert_array_equal(
            a.transmit(params, 1, 3), b.transmit(params, 1, 3)
        )
        # Different node or round draws a different noise vector.
        assert not np.array_equal(
            a.transmit(params, 1, 3), a.transmit(params, 2, 3)
        )
        assert not np.array_equal(
            a.transmit(params, 1, 3), a.transmit(params, 1, 4)
        )

    def test_scaled_update_rejects_identity(self):
        with pytest.raises(ConfigurationError):
            ScaledUpdateAttack(1.0)
        with pytest.raises(ConfigurationError):
            GaussianNoiseAttack(0.0)
        with pytest.raises(ConfigurationError):
            SignFlipAttack(scale=0.0)


class TestByzantinePlan:
    def test_explicit_attackers(self):
        plan = ByzantinePlan(SignFlipAttack(), attackers=(1, 4))
        assert plan.attackers(_ring()) == frozenset({1, 4})

    def test_drawn_attackers_are_deterministic_and_stable(self):
        plan_a = ByzantinePlan(SignFlipAttack(), n_attackers=2, seed=5)
        plan_b = ByzantinePlan(SignFlipAttack(), n_attackers=2, seed=5)
        topo = _ring()
        drawn = plan_a.attackers(topo)
        assert drawn == plan_b.attackers(topo)
        assert len(drawn) == 2
        # Re-querying (even through topology churn) keeps the first draw.
        assert plan_a.attackers(_ring()) == drawn

    def test_exactly_one_selection_mode(self):
        with pytest.raises(ConfigurationError):
            ByzantinePlan(SignFlipAttack())
        with pytest.raises(ConfigurationError):
            ByzantinePlan(SignFlipAttack(), attackers=(0,), n_attackers=1)
        with pytest.raises(ConfigurationError):
            ByzantinePlan(SignFlipAttack(), n_attackers=6).attackers(_ring())

    def test_transmit_poisons_only_attackers(self):
        plan = ByzantinePlan(SignFlipAttack(), attackers=(2,))
        topo = _ring()
        params = np.array([1.0, 2.0])
        np.testing.assert_array_equal(
            plan.transmit(params, 2, 1, topo), -params
        )
        honest = plan.transmit(params, 3, 1, topo)
        assert honest is params  # zero-copy for honest nodes

    def test_fault_plan_carries_byzantine(self):
        byz = ByzantinePlan(SignFlipAttack(), attackers=(0,))
        plan = FaultPlan(byzantine=byz)
        assert plan.byzantine is byz
        merged = plan.merged_with(FaultPlan())
        assert merged.byzantine is byz
        with pytest.raises(TypeError):
            FaultPlan(byzantine="not-a-plan")
