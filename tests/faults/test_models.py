"""Unit tests for the chaos-layer fault models."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    CrashRestartSchedule,
    GilbertElliottLinkFailures,
    IndependentCorruption,
    MarkovNodeFailures,
    NoCorruption,
    PartitionSchedule,
    ScheduledCorruption,
)
from repro.topology.generators import complete_topology, ring_topology


class TestGilbertElliott:
    def test_deterministic_given_seed(self, small_topology):
        a = GilbertElliottLinkFailures(0.05, 0.2, seed=7)
        b = GilbertElliottLinkFailures(0.05, 0.2, seed=7)
        for r in range(1, 30):
            assert a.failed_links(small_topology, r) == b.failed_links(
                small_topology, r
            )

    def test_querying_a_round_twice_is_stable(self, small_topology):
        model = GilbertElliottLinkFailures(0.1, 0.3, seed=1)
        tenth = model.failed_links(small_topology, 10)
        model.failed_links(small_topology, 25)  # advance past it
        assert model.failed_links(small_topology, 10) == tenth

    def test_stationary_rate_formula(self):
        model = GilbertElliottLinkFailures(0.05, 0.2, seed=0)
        assert model.stationary_rate == pytest.approx(0.2)

    def test_long_run_down_fraction_matches_stationary_rate(self):
        topo = complete_topology(12)  # 66 links
        model = GilbertElliottLinkFailures(0.05, 0.2, seed=3)
        rounds = 400
        down = sum(
            len(model.failed_links(topo, r)) for r in range(1, rounds + 1)
        )
        fraction = down / (rounds * topo.n_edges)
        assert fraction == pytest.approx(model.stationary_rate, abs=0.03)

    def test_outages_are_bursty(self):
        """Mean burst length is ~1/p_recover, far above the memoryless value."""
        topo = ring_topology(10)
        model = GilbertElliottLinkFailures(0.05, 0.2, seed=9)
        bursts = []
        for edge_index, edge in enumerate(topo.edges):
            run = 0
            for r in range(1, 600):
                if edge in model.failed_links(topo, r):
                    run += 1
                elif run:
                    bursts.append(run)
                    run = 0
        assert np.mean(bursts) == pytest.approx(1 / 0.2, rel=0.35)

    def test_failed_links_are_topology_edges(self, small_topology):
        model = GilbertElliottLinkFailures(0.5, 0.2, seed=2)
        for r in range(1, 20):
            assert model.failed_links(small_topology, r) <= set(
                small_topology.edges
            )

    def test_rebinding_to_a_different_topology_rejected(self):
        model = GilbertElliottLinkFailures(0.1, 0.2, seed=0)
        model.failed_links(ring_topology(6), 1)
        with pytest.raises(ConfigurationError):
            model.failed_links(complete_topology(5), 1)

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottLinkFailures(-0.1, 0.2)
        with pytest.raises(ConfigurationError):
            GilbertElliottLinkFailures(0.1, 1.5)


class TestMarkovNodeFailures:
    def test_deterministic_and_subset_of_nodes(self, small_topology):
        a = MarkovNodeFailures(0.1, 0.4, seed=5)
        b = MarkovNodeFailures(0.1, 0.4, seed=5)
        for r in range(1, 25):
            down = a.failed_nodes(small_topology, r)
            assert down == b.failed_nodes(small_topology, r)
            assert all(0 <= n < small_topology.n_nodes for n in down)

    def test_zero_fail_rate_never_downs_anyone(self, small_topology):
        model = MarkovNodeFailures(0.0, 0.5, seed=1)
        for r in range(1, 10):
            assert model.failed_nodes(small_topology, r) == frozenset()


class TestCrashRestartSchedule:
    def test_spans_are_inclusive(self, ring6):
        model = CrashRestartSchedule({2: [(3, 5)], 4: [(5, 5), (8, 9)]})
        assert model.failed_nodes(ring6, 2) == frozenset()
        assert model.failed_nodes(ring6, 3) == {2}
        assert model.failed_nodes(ring6, 5) == {2, 4}
        assert model.failed_nodes(ring6, 6) == frozenset()
        assert model.failed_nodes(ring6, 8) == {4}
        assert model.failed_nodes(ring6, 10) == frozenset()

    def test_unknown_node_rejected_on_first_use(self, ring6):
        model = CrashRestartSchedule({17: [(1, 2)]})
        with pytest.raises(ConfigurationError, match="17"):
            model.failed_nodes(ring6, 1)

    def test_invalid_span_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            CrashRestartSchedule({0: [(5, 3)]})
        with pytest.raises(ConfigurationError):
            CrashRestartSchedule({0: [(-1, 3)]})


class TestPartitionSchedule:
    def test_cut_links_cross_groups_only(self, ring6):
        model = PartitionSchedule([(2, 4, [[0, 1, 2], [3, 4, 5]])])
        down = model.failed_links(ring6, 3)
        # ring 0-1-2-3-4-5-0: the cut separates {0,1,2} from {3,4,5},
        # severing exactly (2,3) and (0,5).
        assert down == {(2, 3), (0, 5)}
        assert model.failed_links(ring6, 1) == frozenset()
        assert model.failed_links(ring6, 5) == frozenset()

    def test_ungrouped_nodes_keep_their_links(self, ring6):
        model = PartitionSchedule([(1, 1, [[0], [3]])])
        down = model.failed_links(ring6, 1)
        # 0 and 3 are antipodal on the ring: no direct edge, nothing cut.
        assert down == frozenset()

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            PartitionSchedule([(1, 2, [[0, 1], [1, 2]])])

    def test_single_group_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionSchedule([(1, 2, [[0, 1]])])

    def test_unknown_nodes_rejected_on_first_use(self, ring6):
        model = PartitionSchedule([(1, 2, [[0, 1], [99]])])
        with pytest.raises(ConfigurationError, match="99"):
            model.failed_links(ring6, 1)


class TestCorruptionModels:
    def test_no_corruption_default(self, ring6):
        model = NoCorruption()
        assert not model.corrupted(ring6, 0, 1, 5)

    def test_independent_corruption_is_deterministic(self, ring6):
        a = IndependentCorruption(0.3, seed=4)
        b = IndependentCorruption(0.3, seed=4)
        outcomes = [
            a.corrupted(ring6, u, v, r)
            for r in range(1, 20)
            for u, v in ring6.edges
        ]
        again = [
            b.corrupted(ring6, u, v, r)
            for r in range(1, 20)
            for u, v in ring6.edges
        ]
        assert outcomes == again
        assert any(outcomes) and not all(outcomes)

    def test_independent_corruption_is_directional(self, ring6):
        model = IndependentCorruption(0.5, seed=8)
        pairs = [
            (model.corrupted(ring6, u, v, r), model.corrupted(ring6, v, u, r))
            for r in range(1, 40)
            for u, v in ring6.edges
        ]
        assert any(forward != backward for forward, backward in pairs)

    def test_scheduled_corruption_hits_exactly_its_schedule(self, ring6):
        model = ScheduledCorruption({3: [(0, 1)], 5: [(1, 0), (2, 3)]})
        assert model.corrupted(ring6, 0, 1, 3)
        assert not model.corrupted(ring6, 1, 0, 3)  # directional
        assert model.corrupted(ring6, 1, 0, 5)
        assert model.corrupted(ring6, 2, 3, 5)
        assert not model.corrupted(ring6, 0, 1, 4)

    def test_scheduled_corruption_validates_edges(self, ring6):
        model = ScheduledCorruption({1: [(0, 3)]})  # not a ring edge
        with pytest.raises(ConfigurationError):
            model.corrupted(ring6, 0, 1, 1)


class TestClockSkew:
    def test_no_skew_is_identity(self, ring6):
        from repro.faults import NoClockSkew

        model = NoClockSkew()
        assert model.compute_multiplier(ring6, 0, 1) == 1.0

    def test_scheduled_straggler_spans_are_inclusive(self, ring6):
        from repro.faults import ScheduledStragglers

        model = ScheduledStragglers({2: [(3, 5, 10.0)]})
        assert model.compute_multiplier(ring6, 2, 2) == 1.0
        assert model.compute_multiplier(ring6, 2, 3) == 10.0
        assert model.compute_multiplier(ring6, 2, 5) == 10.0
        assert model.compute_multiplier(ring6, 2, 6) == 1.0
        assert model.compute_multiplier(ring6, 1, 4) == 1.0  # other nodes true

    def test_scalar_shorthand_slows_the_whole_run(self, ring6):
        from repro.faults import ScheduledStragglers

        model = ScheduledStragglers({0: 10.0})
        assert model.compute_multiplier(ring6, 0, 0) == 10.0
        assert model.compute_multiplier(ring6, 0, 10_000) == 10.0

    def test_overlapping_spans_multiply(self, ring6):
        from repro.faults import ScheduledStragglers

        model = ScheduledStragglers({1: [(1, 4, 2.0), (3, 6, 3.0)]})
        assert model.compute_multiplier(ring6, 1, 2) == 2.0
        assert model.compute_multiplier(ring6, 1, 3) == 6.0
        assert model.compute_multiplier(ring6, 1, 5) == 3.0

    def test_straggler_validation(self, ring6):
        from repro.faults import ScheduledStragglers

        with pytest.raises(ConfigurationError):
            ScheduledStragglers({0: [(5, 3, 2.0)]})  # end < start
        with pytest.raises(ConfigurationError):
            ScheduledStragglers({0: [(0, 2, 0.0)]})  # non-positive factor
        model = ScheduledStragglers({99: [(0, 1, 2.0)]})  # node not in topology
        with pytest.raises(ConfigurationError):
            model.compute_multiplier(ring6, 0, 1)

    def test_random_skew_is_deterministic_and_positive(self, ring6):
        from repro.faults import RandomClockSkew

        a = RandomClockSkew(0.5, seed=7)
        b = RandomClockSkew(0.5, seed=7)
        samples = [
            a.compute_multiplier(ring6, n, r)
            for n in range(6)
            for r in range(1, 10)
        ]
        again = [
            b.compute_multiplier(ring6, n, r)
            for n in range(6)
            for r in range(1, 10)
        ]
        assert samples == again
        assert all(s > 0 for s in samples)
        assert len(set(samples)) > 1
        quiet = RandomClockSkew(0.0, seed=7)
        assert quiet.compute_multiplier(ring6, 0, 1) == 1.0

    def test_sigma_validation(self):
        from repro.faults import RandomClockSkew

        with pytest.raises(ConfigurationError):
            RandomClockSkew(-0.1)
