"""Tests for FaultPlan composition and its drop-in model interfaces."""

import pytest

from repro.faults import (
    CrashRestartSchedule,
    FaultPlan,
    IndependentCorruption,
    NoCorruption,
    ScheduledCorruption,
)
from repro.topology.failures import (
    ScheduledFailures,
    ScheduledNodeFailures,
)


class TestFaultPlan:
    def test_empty_plan_is_benign(self, ring6):
        plan = FaultPlan()
        assert plan.failed_links(ring6, 1) == frozenset()
        assert plan.failed_nodes(ring6, 1) == frozenset()
        assert plan.link_up(ring6, 0, 1, 1)
        assert not plan.corrupted(ring6, 0, 1, 1)
        assert isinstance(plan.corruption, NoCorruption)

    def test_link_failures_union_over_constituents(self, ring6):
        plan = FaultPlan(
            links=[
                ScheduledFailures({1: [(0, 1)]}),
                ScheduledFailures({1: [(2, 3)], 2: [(4, 5)]}),
            ]
        )
        assert plan.failed_links(ring6, 1) == {(0, 1), (2, 3)}
        assert plan.failed_links(ring6, 2) == {(4, 5)}
        assert not plan.link_up(ring6, 1, 0, 1)  # direction-agnostic
        assert plan.link_up(ring6, 4, 5, 1)

    def test_node_failures_union_over_constituents(self, ring6):
        plan = FaultPlan(
            nodes=[
                CrashRestartSchedule({0: [(1, 2)]}),
                ScheduledNodeFailures({2: [1]}),
            ]
        )
        assert plan.failed_nodes(ring6, 1) == {0}
        assert plan.failed_nodes(ring6, 2) == {0, 1}

    def test_single_model_accepted_without_sequence(self, ring6):
        plan = FaultPlan(links=ScheduledFailures({1: [(0, 1)]}))
        assert plan.failed_links(ring6, 1) == {(0, 1)}

    def test_corruption_routed_through_plan(self, ring6):
        plan = FaultPlan(corruption=ScheduledCorruption({2: [(0, 1)]}))
        assert plan.corrupted(ring6, 0, 1, 2)
        assert not plan.corrupted(ring6, 0, 1, 1)

    def test_merged_with_adds_standalone_models(self, ring6):
        plan = FaultPlan(links=ScheduledFailures({1: [(0, 1)]}))
        merged = plan.merged_with(
            link_model=ScheduledFailures({1: [(2, 3)]}),
            node_model=ScheduledNodeFailures({1: [4]}),
        )
        assert merged.failed_links(ring6, 1) == {(0, 1), (2, 3)}
        assert merged.failed_nodes(ring6, 1) == {4}
        # the original plan is untouched
        assert plan.failed_links(ring6, 1) == {(0, 1)}
        assert plan.failed_nodes(ring6, 1) == frozenset()

    def test_wrong_types_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(links=ScheduledNodeFailures({1: [0]}))
        with pytest.raises(TypeError):
            FaultPlan(nodes=ScheduledFailures({1: [(0, 1)]}))
        with pytest.raises(TypeError):
            FaultPlan(corruption="nope")

    def test_corruption_rate_zero_is_never_corrupt(self, ring6):
        plan = FaultPlan(corruption=IndependentCorruption(0.0, seed=1))
        assert not any(
            plan.corrupted(ring6, u, v, r)
            for r in range(1, 10)
            for u, v in ring6.edges
        )


class TestPlanClocks:
    def test_default_plan_has_true_clocks(self, ring6):
        assert FaultPlan().compute_multiplier(ring6, 0, 1) == 1.0

    def test_clock_models_compose_by_product(self, ring6):
        from repro.faults import ScheduledStragglers

        plan = FaultPlan(
            clocks=[
                ScheduledStragglers({0: [(1, 3, 2.0)]}),
                ScheduledStragglers({0: [(2, 4, 5.0)]}),
            ]
        )
        assert plan.compute_multiplier(ring6, 0, 1) == 2.0
        assert plan.compute_multiplier(ring6, 0, 2) == 10.0
        assert plan.compute_multiplier(ring6, 0, 4) == 5.0

    def test_merged_with_preserves_clocks(self, ring6):
        from repro.faults import ScheduledStragglers

        plan = FaultPlan(clocks=ScheduledStragglers({1: 4.0}))
        merged = plan.merged_with(node_model=ScheduledNodeFailures({1: [2]}))
        assert merged.compute_multiplier(ring6, 1, 7) == 4.0

    def test_wrong_clock_type_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(clocks=ScheduledFailures({1: [(0, 1)]}))
