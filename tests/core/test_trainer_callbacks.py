"""Tests for the trainer's per-round observer hook."""

import numpy as np
import pytest

from repro.core import SNAPConfig, SNAPTrainer
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.models.ridge import RidgeRegression
from repro.results import RoundRecord
from repro.topology.generators import complete_topology


@pytest.fixture
def trainer(rng):
    n, p = 90, 3
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p)
    shards = iid_partition(Dataset(X, y), 3, seed=0)
    model = RidgeRegression(p, regularization=0.1)
    return SNAPTrainer(
        model, shards, complete_topology(3), config=SNAPConfig(seed=0)
    )


class TestOnRound:
    def test_called_once_per_round_with_records(self, trainer):
        seen: list[RoundRecord] = []
        result = trainer.run(
            max_rounds=7, stop_on_convergence=False, on_round=seen.append
        )
        assert [r.round_index for r in seen] == list(range(1, 8))
        assert seen == result.rounds

    def test_callback_sees_live_loss_values(self, trainer):
        losses = []
        trainer.run(
            max_rounds=5,
            stop_on_convergence=False,
            on_round=lambda r: losses.append(r.mean_loss),
        )
        assert all(np.isfinite(losses))
        assert losses[-1] <= losses[0]

    def test_exception_in_callback_aborts_the_run(self, trainer):
        class Stop(Exception):
            pass

        def boom(record):
            if record.round_index == 3:
                raise Stop()

        with pytest.raises(Stop):
            trainer.run(max_rounds=10, stop_on_convergence=False, on_round=boom)
        # three rounds actually executed on the servers
        assert trainer.servers[0].iteration == 3
