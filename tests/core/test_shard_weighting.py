"""Tests for the ShardWeighting extension (sample-weighted federation)."""

import numpy as np
import pytest

from repro.consensus.convergence import ConvergenceDetector
from repro.core import SNAPConfig, SNAPTrainer
from repro.core.config import SelectionPolicy, ShardWeighting
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.models.ridge import RidgeRegression
from repro.topology.generators import complete_topology


@pytest.fixture
def unequal_shards(rng):
    """Three shards of very different sizes from very different regions."""
    p = 2
    model = RidgeRegression(p, regularization=0.1)
    blocks = []
    for size, offset in ((150, -2.0), (30, 0.0), (20, 3.0)):
        X = rng.normal(size=(size, p))
        y = X @ np.array([1.0, -1.0]) + offset
        blocks.append(Dataset(X, y))
    pooled_X = np.concatenate([b.X for b in blocks])
    pooled_y = np.concatenate([b.y for b in blocks])
    return model, blocks, model.solve_exact(pooled_X, pooled_y)


def run_with(weighting, model, shards):
    trainer = SNAPTrainer(
        model,
        shards,
        complete_topology(3),
        config=SNAPConfig(
            selection=SelectionPolicy.CHANGED_ONLY,
            shard_weighting=weighting,
            seed=0,
        ),
    )
    trainer.run(
        max_rounds=3000,
        detector=ConvergenceDetector(
            relative_loss_tolerance=1e-10, consensus_tolerance=1e-8, loss_window=10
        ),
    )
    return trainer


class TestSampleWeighting:
    def test_samples_weighting_finds_the_pooled_optimum(self, unequal_shards):
        model, shards, pooled = unequal_shards
        trainer = run_with(ShardWeighting.SAMPLES, model, shards)
        np.testing.assert_allclose(trainer.mean_params(), pooled, atol=1e-3)

    def test_uniform_weighting_finds_a_different_optimum(self, unequal_shards):
        """The paper's eq. (4) optimum differs once shard sizes are unequal."""
        model, shards, pooled = unequal_shards
        trainer = run_with(ShardWeighting.UNIFORM, model, shards)
        gap = np.linalg.norm(trainer.mean_params() - pooled)
        assert gap > 0.05

    def test_equal_shards_make_the_weightings_equivalent(self, rng):
        p = 2
        model = RidgeRegression(p, regularization=0.1)
        X = rng.normal(size=(90, p))
        y = X @ np.array([0.5, 2.0]) + 0.1 * rng.normal(size=90)
        from repro.data.partition import iid_partition

        shards = iid_partition(Dataset(X, y), 3, seed=0)
        a = run_with(ShardWeighting.UNIFORM, model, shards).mean_params()
        b = run_with(ShardWeighting.SAMPLES, model, shards).mean_params()
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_scales_average_to_one(self, unequal_shards):
        model, shards, _ = unequal_shards
        trainer = SNAPTrainer(
            model,
            shards,
            complete_topology(3),
            config=SNAPConfig(shard_weighting=ShardWeighting.SAMPLES, seed=0),
        )
        assert np.mean(trainer._objective_scales) == pytest.approx(1.0)
        largest_shard = max(range(3), key=lambda i: shards[i].n_samples)
        assert trainer._objective_scales[largest_shard] == max(
            trainer._objective_scales
        )

    def test_bad_weighting_rejected(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(shard_weighting="samples")


class TestServerObjectiveScale:
    def test_scale_multiplies_loss_and_gradient(self, rng):
        from repro.core.server import EdgeServer

        model = RidgeRegression(2, regularization=0.1, fit_intercept=False)
        X = rng.normal(size=(10, 2))
        y = rng.normal(size=10)
        common = dict(
            node_id=0,
            model=model,
            X=X,
            y=y,
            neighbors=(1,),
            weight_row=np.array([0.6, 0.4]),
            alpha=0.1,
            initial_params=np.ones(2),
        )
        plain = EdgeServer(**common)
        scaled = EdgeServer(**common, objective_scale=2.5)
        assert scaled.local_loss() == pytest.approx(2.5 * plain.local_loss())
        np.testing.assert_allclose(
            scaled.local_gradient(np.ones(2)),
            2.5 * plain.local_gradient(np.ones(2)),
        )

    def test_nonpositive_scale_rejected(self, rng):
        from repro.core.server import EdgeServer

        model = RidgeRegression(2, regularization=0.1, fit_intercept=False)
        with pytest.raises(ConfigurationError):
            EdgeServer(
                node_id=0,
                model=model,
                X=rng.normal(size=(5, 2)),
                y=rng.normal(size=5),
                neighbors=(1,),
                weight_row=np.array([0.6, 0.4]),
                alpha=0.1,
                initial_params=np.zeros(2),
                objective_scale=0.0,
            )
