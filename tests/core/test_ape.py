"""Tests for repro.core.ape.APESchedule — Algorithm 1's threshold machinery."""

import pytest

from repro.core.ape import APESchedule


def make_schedule(**overrides):
    defaults = dict(
        initial_threshold=1.0,
        growth=1.01,
        stage_iterations=10,
        decay=0.9,
        epsilon=0.01,
    )
    defaults.update(overrides)
    return APESchedule(**defaults)


class TestSendThreshold:
    def test_matches_algorithm_line_4(self):
        schedule = make_schedule()
        expected = 1.0 / (10 * 1.01**10)
        assert schedule.send_threshold == pytest.approx(expected)

    def test_zero_once_exhausted(self):
        schedule = make_schedule(initial_threshold=0.02, epsilon=0.05)
        assert not schedule.active
        assert schedule.send_threshold == 0.0
        assert schedule.threshold == 0.0

    def test_scales_with_stage_budget(self):
        small = make_schedule(initial_threshold=0.5)
        large = make_schedule(initial_threshold=2.0)
        assert large.send_threshold == pytest.approx(4 * small.send_threshold)


class TestAccumulation:
    def test_matches_closed_form_bound(self):
        """The recursion A <- g (A + m) equals sum_l g^l m_{k-l}."""
        schedule = make_schedule(initial_threshold=100.0)  # never advances
        growth = schedule.growth
        suppressed = [0.3, 0.1, 0.2, 0.05]
        for m in suppressed:
            schedule.record_round(m)
        k = len(suppressed)
        expected = sum(
            growth ** (k - t) * m for t, m in enumerate(suppressed)
        )
        assert schedule.accumulated_error == pytest.approx(expected)

    def test_stage_advances_when_budget_exceeded(self):
        schedule = make_schedule(initial_threshold=1.0)
        # one huge suppressed change blows the budget immediately
        schedule.record_round(2.0)
        assert schedule.stage == 1
        assert schedule.threshold == pytest.approx(0.9)
        assert schedule.accumulated_error == 0.0

    def test_stage_lasts_at_least_stage_iterations_under_the_rule(self):
        """Suppressing at most send_threshold per round cannot end a stage early."""
        schedule = make_schedule(max_stage_iterations=1000)
        limit = schedule.send_threshold
        for _ in range(schedule.stage_iterations):
            schedule.record_round(limit)
        assert schedule.stage == 0  # still within budget after I_k rounds

    def test_time_box_advances_quiet_stages(self):
        """A converged run (nothing suppressed) still steps the threshold down,
        so the schedule marches to epsilon instead of freezing (the paper's
        'restart ... and reduce the APE threshold' loop)."""
        schedule = make_schedule()
        for _ in range(schedule.stage_iterations):
            schedule.record_round(0.0)
        assert schedule.stage == 1
        assert schedule.threshold == pytest.approx(0.9)

    def test_zero_suppression_does_not_advance_before_time_box(self):
        schedule = make_schedule(max_stage_iterations=50)
        for _ in range(49):
            schedule.record_round(0.0)
        assert schedule.stage == 0
        schedule.record_round(0.0)
        assert schedule.stage == 1

    def test_time_box_below_stage_iterations_rejected(self):
        with pytest.raises(ValueError):
            make_schedule(max_stage_iterations=5)

    def test_negative_suppression_rejected(self):
        with pytest.raises(ValueError):
            make_schedule().record_round(-0.1)


class TestTermination:
    def test_decays_to_exhaustion(self):
        schedule = make_schedule(initial_threshold=1.0, epsilon=0.5)
        # each big value forces a stage advance: 1.0 -> 0.9 -> ... -> < 0.5
        advances = 0
        while schedule.active and advances < 100:
            schedule.record_round(10.0)
            advances += 1
        assert not schedule.active
        # 0.9^7 ~ 0.478 < 0.5: seven advances needed
        assert advances == 7

    def test_record_round_is_noop_after_exhaustion(self):
        schedule = make_schedule(initial_threshold=0.1, epsilon=0.2)
        assert not schedule.active
        schedule.record_round(5.0)
        assert schedule.stage == 0

    def test_growth_below_one_rejected(self):
        with pytest.raises(ValueError):
            make_schedule(growth=0.5)

    def test_repr_shows_state(self):
        assert "stage=0" in repr(make_schedule())
