"""Tests for repro.core.trainer.SNAPTrainer."""

import numpy as np
import pytest

from repro.consensus.convergence import ConvergenceDetector
from repro.core.config import SelectionPolicy, SNAPConfig
from repro.core.trainer import SNAPTrainer
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.exceptions import ConfigurationError
from repro.models.ridge import RidgeRegression
from repro.topology.generators import complete_topology, random_topology
from repro.topology.graph import Topology
from repro.weights.construction import metropolis_weights


@pytest.fixture
def ridge_setup(rng):
    """4 servers, ridge shards, known closed-form optimum."""
    n, p = 240, 3
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p) + 0.1 * rng.normal(size=n)
    dataset = Dataset(X, y)
    shards = iid_partition(dataset, 4, seed=1)
    model = RidgeRegression(p, regularization=0.1)
    topo = random_topology(4, 2.5, seed=2)
    exact = model.solve_exact(X, y)
    return model, shards, topo, exact


class TestConstruction:
    def test_shard_count_must_match(self, ridge_setup):
        model, shards, topo, _ = ridge_setup
        with pytest.raises(ConfigurationError):
            SNAPTrainer(model, shards[:2], topo)

    def test_disconnected_topology_rejected(self, ridge_setup):
        model, shards, _, _ = ridge_setup
        disconnected = Topology(4, [(0, 1), (2, 3)])
        with pytest.raises(ConfigurationError):
            SNAPTrainer(model, shards, disconnected)

    def test_explicit_weight_matrix_used(self, ridge_setup):
        model, shards, topo, _ = ridge_setup
        weights = metropolis_weights(topo)
        trainer = SNAPTrainer(model, shards, topo, weight_matrix=weights)
        np.testing.assert_array_equal(trainer.weight_matrix, weights)
        assert trainer._weight_info["weight_problem"] == "explicit"

    def test_metropolis_when_optimization_disabled(self, ridge_setup):
        model, shards, topo, _ = ridge_setup
        config = SNAPConfig(optimize_weights=False)
        trainer = SNAPTrainer(model, shards, topo, config=config)
        np.testing.assert_allclose(
            trainer.weight_matrix, metropolis_weights(topo)
        )

    def test_all_servers_share_initial_params(self, ridge_setup):
        model, shards, topo, _ = ridge_setup
        trainer = SNAPTrainer(model, shards, topo, config=SNAPConfig(seed=3))
        for server in trainer.servers:
            np.testing.assert_array_equal(server.params, trainer.initial_params)

    def test_auto_alpha_positive_and_bounded(self, ridge_setup):
        model, shards, topo, _ = ridge_setup
        trainer = SNAPTrainer(model, shards, topo)
        assert 0 < trainer.alpha < 2.0 / trainer.lipschitz

    def test_ape_schedules_only_for_ape_policy(self, ridge_setup):
        model, shards, topo, _ = ridge_setup
        assert SNAPTrainer(model, shards, topo)._schedules is not None
        assert (
            SNAPTrainer(model, shards, topo, config=SNAPConfig.snap0())._schedules
            is None
        )


class TestTraining:
    def test_snap0_converges_to_global_optimum(self, ridge_setup):
        model, shards, topo, exact = ridge_setup
        trainer = SNAPTrainer(
            model, shards, topo, config=SNAPConfig.snap0(seed=0)
        )
        trainer.run(
            max_rounds=1500,
            detector=ConvergenceDetector(
                relative_loss_tolerance=1e-9, consensus_tolerance=1e-7
            ),
        )
        np.testing.assert_allclose(trainer.mean_params(), exact, atol=1e-3)

    def test_snap_converges_close_to_optimum(self, ridge_setup):
        model, shards, topo, exact = ridge_setup
        trainer = SNAPTrainer(model, shards, topo, config=SNAPConfig(seed=0))
        trainer.run(
            max_rounds=1500,
            detector=ConvergenceDetector(
                relative_loss_tolerance=1e-9, consensus_tolerance=1e-7
            ),
        )
        np.testing.assert_allclose(trainer.mean_params(), exact, atol=2e-2)

    def test_result_records_every_round(self, ridge_setup):
        model, shards, topo, _ = ridge_setup
        trainer = SNAPTrainer(model, shards, topo, config=SNAPConfig(seed=0))
        result = trainer.run(max_rounds=10, stop_on_convergence=False)
        assert result.n_rounds == 10
        assert [r.round_index for r in result.rounds] == list(range(1, 11))
        assert all(r.bytes_sent >= 0 for r in result.rounds)

    def test_stops_on_convergence(self, ridge_setup):
        model, shards, topo, _ = ridge_setup
        trainer = SNAPTrainer(model, shards, topo, config=SNAPConfig.snap0(seed=0))
        result = trainer.run(max_rounds=1000)
        assert result.converged_at is not None
        assert result.n_rounds == result.converged_at

    def test_scheme_names(self, ridge_setup):
        model, shards, topo, _ = ridge_setup
        for config, name in [
            (SNAPConfig(seed=0), "snap"),
            (SNAPConfig.snap0(seed=0), "snap0"),
            (SNAPConfig.sno(seed=0), "sno"),
        ]:
            trainer = SNAPTrainer(model, shards, topo, config=config)
            assert trainer.run(max_rounds=3, stop_on_convergence=False).scheme == name

    def test_bad_max_rounds_rejected(self, ridge_setup):
        model, shards, topo, _ = ridge_setup
        trainer = SNAPTrainer(model, shards, topo)
        with pytest.raises(ConfigurationError):
            trainer.run(max_rounds=0)


class TestCommunicationAccounting:
    def test_sno_sends_everything_every_round(self, ridge_setup):
        model, shards, topo, _ = ridge_setup
        trainer = SNAPTrainer(model, shards, topo, config=SNAPConfig.sno(seed=0))
        result = trainer.run(max_rounds=5, stop_on_convergence=False)
        # 2 * n_edges directed flows per round, each the dense frame size.
        from repro.network.frames import frame_size_bytes, FrameFormat

        dense_bytes = frame_size_bytes(
            model.n_params, 0, FrameFormat.UNCHANGED_INDEX
        )
        expected = 2 * topo.n_edges * dense_bytes
        assert all(r.bytes_sent == expected for r in result.rounds)

    def test_snap_sends_no_more_than_snap0_and_sno(self, ridge_setup):
        model, shards, topo, _ = ridge_setup
        results = {}
        for name, config in [
            ("snap", SNAPConfig(seed=0)),
            ("snap0", SNAPConfig.snap0(seed=0)),
            ("sno", SNAPConfig.sno(seed=0)),
        ]:
            trainer = SNAPTrainer(model, shards, topo, config=config)
            results[name] = trainer.run(
                max_rounds=60, stop_on_convergence=False
            ).total_bytes
        assert results["snap"] <= results["snap0"] <= results["sno"]

    def test_snap_traffic_decays(self, ridge_setup):
        """Fig. 4(b)'s headline shape: SNAP's per-round bytes shrink."""
        model, shards, topo, _ = ridge_setup
        trainer = SNAPTrainer(model, shards, topo, config=SNAPConfig(seed=0))
        result = trainer.run(max_rounds=200, stop_on_convergence=False)
        trace = result.bytes_trace()
        assert trace[-1] < trace[0] / 2

    def test_cost_equals_bytes_for_one_hop_traffic(self, ridge_setup):
        model, shards, topo, _ = ridge_setup
        trainer = SNAPTrainer(model, shards, topo, config=SNAPConfig(seed=0))
        result = trainer.run(max_rounds=5, stop_on_convergence=False)
        assert result.total_cost == result.total_bytes


class TestEvaluation:
    def test_accuracy_evaluated_on_schedule(self, rng):
        # classification setup so accuracy makes sense
        from repro.models.svm import LinearSVM

        n, p = 200, 4
        X = rng.normal(size=(n, p))
        y = np.where(X @ rng.normal(size=p) > 0, 1.0, -1.0)
        dataset = Dataset(X, y)
        shards = iid_partition(dataset, 3, seed=0)
        test_set = Dataset(X[:50], y[:50])
        model = LinearSVM(p, regularization=1e-2)
        trainer = SNAPTrainer(
            model, shards, complete_topology(3), config=SNAPConfig(seed=0)
        )
        result = trainer.run(
            max_rounds=9, test_set=test_set, eval_every=3, stop_on_convergence=False
        )
        evaluated = [r.round_index for r in result.rounds if r.accuracy is not None]
        assert evaluated == [3, 6, 9]
        assert result.final_accuracy is not None
