"""Edge cases of the SNAP trainer: tiny networks, tiny models, odd configs."""

import numpy as np
import pytest

from repro.core import SNAPConfig, SNAPTrainer
from repro.core.config import SelectionPolicy
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.models.ridge import RidgeRegression
from repro.topology.graph import Topology


class TestTwoNodeNetwork:
    """The smallest consensus problem: two servers, one link."""

    @pytest.fixture
    def two_node(self, rng):
        n, p = 80, 2
        X = rng.normal(size=(n, p))
        y = X @ rng.normal(size=p) + 0.05 * rng.normal(size=n)
        shards = iid_partition(Dataset(X, y), 2, seed=0)
        model = RidgeRegression(p, regularization=0.1)
        topo = Topology(2, [(0, 1)])
        exact = model.solve_exact(X, y)
        return model, shards, topo, exact

    def test_converges_to_pooled_optimum(self, two_node):
        model, shards, topo, exact = two_node
        trainer = SNAPTrainer(
            model, shards, topo, config=SNAPConfig.snap0(seed=0)
        )
        trainer.run(max_rounds=2000, stop_on_convergence=False)
        np.testing.assert_allclose(trainer.mean_params(), exact, atol=1e-4)

    def test_each_server_has_one_neighbor(self, two_node):
        model, shards, topo, _ = two_node
        trainer = SNAPTrainer(model, shards, topo, config=SNAPConfig(seed=0))
        assert trainer.servers[0].neighbors == (1,)
        assert trainer.servers[1].neighbors == (0,)


class TestOneParameterModel:
    def test_scalar_model_trains(self, rng):
        n = 60
        X = rng.normal(size=(n, 1))
        y = 3.0 * X[:, 0]
        shards = iid_partition(Dataset(X, y), 3, seed=0)
        model = RidgeRegression(1, regularization=1e-6, fit_intercept=False)
        from repro.topology.generators import complete_topology

        trainer = SNAPTrainer(
            model,
            shards,
            complete_topology(3),
            config=SNAPConfig.snap0(seed=0),
        )
        trainer.run(max_rounds=800, stop_on_convergence=False)
        assert trainer.mean_params()[0] == pytest.approx(3.0, abs=1e-3)


class TestTinyShards:
    def test_single_sample_shards(self, rng):
        """Each server holds exactly one sample — the extreme federated case."""
        p = 2
        X = rng.normal(size=(4, p))
        y = rng.normal(size=4)
        shards = iid_partition(Dataset(X, y), 4, seed=0)
        assert all(s.n_samples == 1 for s in shards)
        model = RidgeRegression(p, regularization=0.5)
        from repro.topology.generators import complete_topology

        trainer = SNAPTrainer(
            model,
            shards,
            complete_topology(4),
            config=SNAPConfig.snap0(seed=0),
        )
        trainer.run(max_rounds=1500, stop_on_convergence=False)
        exact = model.solve_exact(X, y)
        np.testing.assert_allclose(trainer.mean_params(), exact, atol=1e-4)


class TestConfigurationCorners:
    @pytest.fixture
    def basic(self, rng):
        n, p = 90, 2
        X = rng.normal(size=(n, p))
        y = rng.normal(size=n)
        shards = iid_partition(Dataset(X, y), 3, seed=0)
        from repro.topology.generators import complete_topology

        return RidgeRegression(p), shards, complete_topology(3)

    def test_eval_every_beyond_budget_means_only_final_accuracy(self, basic, rng):
        from repro.models.svm import LinearSVM

        p = 2
        X = rng.normal(size=(60, p))
        y = np.where(X @ rng.normal(size=p) > 0, 1.0, -1.0)
        shards = iid_partition(Dataset(X, y), 3, seed=0)
        from repro.topology.generators import complete_topology

        trainer = SNAPTrainer(
            LinearSVM(p), shards, complete_topology(3), config=SNAPConfig(seed=0)
        )
        result = trainer.run(
            max_rounds=4,
            test_set=Dataset(X, y),
            eval_every=100,
            stop_on_convergence=False,
        )
        assert all(r.accuracy is None for r in result.rounds)
        assert result.final_accuracy is not None

    def test_explicit_alpha_bypasses_auto_selection(self, basic):
        model, shards, topo = basic
        trainer = SNAPTrainer(
            model, shards, topo, config=SNAPConfig(alpha=0.0123, seed=0)
        )
        assert trainer.alpha == 0.0123

    def test_round_records_are_internally_consistent(self, basic):
        model, shards, topo = basic
        trainer = SNAPTrainer(model, shards, topo, config=SNAPConfig(seed=0))
        result = trainer.run(max_rounds=6, stop_on_convergence=False)
        for record in result.rounds:
            assert record.bytes_sent >= 0
            assert record.cost >= record.bytes_sent  # hops >= 1
            assert record.params_sent >= 0
            assert np.isfinite(record.mean_loss)
        assert result.total_bytes == sum(r.bytes_sent for r in result.rounds)
        assert result.total_cost == sum(r.cost for r in result.rounds)

    def test_rounds_completed_advances_across_run_calls(self, basic):
        model, shards, topo = basic
        trainer = SNAPTrainer(model, shards, topo, config=SNAPConfig(seed=0))
        trainer.run(max_rounds=3, stop_on_convergence=False)
        assert trainer.rounds_completed == 3
        result = trainer.run(max_rounds=2, stop_on_convergence=False)
        assert trainer.rounds_completed == 5
        assert [r.round_index for r in result.rounds] == [4, 5]
