"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import EXIT_USAGE, build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "snap"
        assert args.workload == "credit"
        assert args.rounds == 300

    def test_compare_scheme_list(self):
        args = build_parser().parse_args(["compare", "--schemes", "snap,ps"])
        assert args.schemes == "snap,ps"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_unknown_scheme_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "sgd"])


class TestRunCommand:
    def test_small_run_prints_summary(self, capsys):
        code = main(
            [
                "run",
                "--scheme",
                "snap0",
                "--n-servers",
                "4",
                "--degree",
                "2",
                "--n-train",
                "200",
                "--n-test",
                "60",
                "--rounds",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "snap0" in out
        assert "total traffic" in out

    def test_output_file_written(self, tmp_path, capsys):
        output = tmp_path / "result.json"
        code = main(
            [
                "run",
                "--scheme",
                "centralized",
                "--n-servers",
                "3",
                "--degree",
                "2",
                "--n-train",
                "150",
                "--n-test",
                "50",
                "--rounds",
                "5",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["scheme"] == "centralized"
        assert len(payload["rounds"]) <= 5

    def test_node_failure_rate_accepted(self, capsys):
        code = main(
            [
                "run",
                "--scheme",
                "snap0",
                "--n-servers",
                "4",
                "--degree",
                "2",
                "--n-train",
                "200",
                "--n-test",
                "60",
                "--rounds",
                "5",
                "--node-failure-rate",
                "0.3",
            ]
        )
        assert code == 0
        assert "snap0" in capsys.readouterr().out

    def test_straggler_strategy_option(self, capsys):
        code = main(
            [
                "run",
                "--scheme",
                "snap",
                "--n-servers",
                "4",
                "--degree",
                "2",
                "--n-train",
                "200",
                "--n-test",
                "60",
                "--rounds",
                "5",
                "--failure-rate",
                "0.2",
                "--straggler-strategy",
                "reweight",
            ]
        )
        assert code == 0

    def test_failure_rate_threads_through(self, capsys):
        code = main(
            [
                "run",
                "--scheme",
                "snap",
                "--n-servers",
                "4",
                "--degree",
                "2",
                "--n-train",
                "200",
                "--n-test",
                "60",
                "--rounds",
                "5",
                "--failure-rate",
                "1.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # all links always down -> zero traffic
        assert "0 B" in out


class TestCompareCommand:
    def test_prints_table_for_each_scheme(self, capsys):
        code = main(
            [
                "compare",
                "--schemes",
                "centralized,snap0",
                "--n-servers",
                "4",
                "--degree",
                "2",
                "--n-train",
                "200",
                "--n-test",
                "60",
                "--rounds",
                "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "centralized" in out
        assert "snap0" in out
        assert "target loss" in out

    def test_unknown_scheme_fails_cleanly(self, capsys):
        code = main(
            ["compare", "--schemes", "snap,sgd", "--n-train", "100"]
        )
        assert code == EXIT_USAGE
        assert "unknown scheme" in capsys.readouterr().err


class TestPlanCommand:
    def test_prints_neighbor_table(self, capsys):
        code = main(
            ["plan", "--n-servers", "6", "--threshold", "0.0", "--iterations", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kept 15 links" in out
        assert "neighbors" in out
