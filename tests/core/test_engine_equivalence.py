"""Bit-for-bit equivalence: vectorized engine vs the reference oracle.

The vectorized engine (`repro.core.engine.VectorizedEngine`) promises the
*same trajectories* as the per-object reference implementation — not merely
close, but identical floating point values, identical byte accounting, and
identical post-run server state — across every selection policy, both
straggler strategies, and active fault plans. These tests pin that contract.
"""

import numpy as np
import pytest

from repro.core.config import (
    SelectionPolicy,
    ShardWeighting,
    SNAPConfig,
    StragglerStrategy,
)
from repro.core.engine import ReferenceEngine, VectorizedEngine
from repro.core.trainer import SNAPTrainer
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.faults.models import (
    GilbertElliottLinkFailures,
    IndependentCorruption,
    MarkovNodeFailures,
)
from repro.faults.plan import FaultPlan
from repro.models.logistic import LogisticRegression
from repro.models.mlp import MLPClassifier
from repro.models.softmax import SoftmaxRegression
from repro.testing import RunDigest
from repro.topology.graph import Topology

N_NODES = 6
EDGES = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]


def _binary_shards(seed=0, n_samples=40, n_features=5, sizes=None):
    rng = np.random.default_rng(seed)
    shards = []
    counts = sizes if sizes is not None else [n_samples] * N_NODES
    for count in counts:
        X = rng.normal(size=(count, n_features))
        w = rng.normal(size=n_features)
        y = (X @ w + 0.3 * rng.normal(size=count) > 0).astype(float)
        shards.append(Dataset(X, y))
    return shards


def _multiclass_shards(seed=0, n_samples=30, n_features=4, n_classes=3):
    rng = np.random.default_rng(seed)
    shards = []
    for _ in range(N_NODES):
        X = rng.normal(size=(n_samples, n_features))
        y = rng.integers(0, n_classes, size=n_samples)
        shards.append(Dataset(X, y))
    return shards


def _fault_plan():
    return FaultPlan(
        links=GilbertElliottLinkFailures(0.25, 0.5, seed=11),
        nodes=MarkovNodeFailures(0.12, 0.6, seed=12),
        corruption=IndependentCorruption(0.08, seed=13),
    )


def _run(engine, model, shards, *, fault_plan=None, rounds=30, **config_overrides):
    config_overrides.setdefault("optimize_weights", False)
    config = SNAPConfig(engine=engine, max_rounds=rounds, seed=7, **config_overrides)
    trainer = SNAPTrainer(
        model,
        shards,
        Topology(N_NODES, EDGES),
        config,
        fault_plan=_fault_plan() if fault_plan else None,
    )
    result = trainer.run(stop_on_convergence=False)
    return trainer, result


def _assert_identical(ref_pair, vec_pair):
    ref_trainer, ref_result = ref_pair
    vec_trainer, vec_result = vec_pair
    # One RunDigest covers the whole equivalence surface: the round-record
    # trajectory, the flow ledger, the final mean parameters, and the
    # post-run per-server state (params, iterations, views, last_sent,
    # freshness, schedule state machines, EF residuals).
    ref_digest = RunDigest.capture(ref_trainer, ref_result)
    vec_digest = RunDigest.capture(vec_trainer, vec_result)
    assert ref_digest == vec_digest, ref_digest.diff(vec_digest)
    # Accuracy is evaluation-side and deliberately outside the digest's
    # frozen recipe; pin it separately.
    accuracies = lambda result: [r.accuracy for r in result.rounds]  # noqa: E731
    assert accuracies(ref_result) == accuracies(vec_result)
    assert ref_result.final_accuracy == vec_result.final_accuracy


class TestEngineSelection:
    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(engine="warp-drive")

    def test_trainer_builds_requested_engine(self):
        shards = _binary_shards()
        model = LogisticRegression(5)
        ref, _ = _run("reference", model, shards, rounds=1)
        vec, _ = _run("vectorized", model, shards, rounds=1)
        assert isinstance(ref.engine, ReferenceEngine)
        assert isinstance(vec.engine, VectorizedEngine)


@pytest.mark.parametrize("selection", list(SelectionPolicy))
@pytest.mark.parametrize("straggler", list(StragglerStrategy))
class TestPolicyMatrix:
    """Every policy × straggler combination, clean and faulty networks."""

    def test_clean_network(self, selection, straggler):
        shards = _binary_shards()
        model = LogisticRegression(5)
        kwargs = dict(selection=selection, straggler_strategy=straggler)
        _assert_identical(
            _run("reference", model, shards, **kwargs),
            _run("vectorized", model, shards, **kwargs),
        )

    def test_gilbert_elliott_fault_plan(self, selection, straggler):
        """GE link bursts + Markov node crashes + frame corruption."""
        shards = _binary_shards(seed=1)
        model = LogisticRegression(5)
        kwargs = dict(selection=selection, straggler_strategy=straggler)
        _assert_identical(
            _run("reference", model, shards, fault_plan=True, **kwargs),
            _run("vectorized", model, shards, fault_plan=True, **kwargs),
        )


class TestModelCoverage:
    def test_softmax_model(self):
        shards = _multiclass_shards()
        model = SoftmaxRegression(4, 3)
        _assert_identical(
            _run("reference", model, shards, fault_plan=True, rounds=20),
            _run("vectorized", model, shards, fault_plan=True, rounds=20),
        )

    def test_mlp_model(self):
        shards = _multiclass_shards(seed=2)
        model = MLPClassifier((4, 6, 3))
        _assert_identical(
            _run("reference", model, shards, fault_plan=True, rounds=15),
            _run("vectorized", model, shards, fault_plan=True, rounds=15),
        )

    def test_unequal_shards_sample_weighting(self):
        """Ragged shard sizes exercise the non-uniform batched fallback."""
        shards = _binary_shards(seed=3, sizes=[20, 35, 28, 41, 22, 30])
        model = LogisticRegression(5)
        kwargs = dict(shard_weighting=ShardWeighting.SAMPLES)
        _assert_identical(
            _run("reference", model, shards, fault_plan=True, **kwargs),
            _run("vectorized", model, shards, fault_plan=True, **kwargs),
        )


class TestObservability:
    def test_accuracy_evaluation_matches(self):
        shards = _binary_shards(seed=4)
        test_set = _binary_shards(seed=5, n_samples=60)[0]
        model = LogisticRegression(5)

        def run(engine):
            config = SNAPConfig(
                engine=engine, max_rounds=20, seed=7, optimize_weights=False
            )
            trainer = SNAPTrainer(model, shards, Topology(N_NODES, EDGES), config)
            result = trainer.run(
                stop_on_convergence=False, test_set=test_set, eval_every=5
            )
            return trainer, result

        ref = run("reference")
        vec = run("vectorized")
        _assert_identical(ref, vec)
        evaluated = [r.accuracy for r in ref[1].rounds if r.accuracy is not None]
        assert len(evaluated) == 4  # eval_every=5 over 20 rounds

    def test_callbacks_observe_synced_servers(self):
        """on_round sees up-to-date EdgeServer state under the fast path."""
        shards = _binary_shards(seed=6)
        model = LogisticRegression(5)
        config = SNAPConfig(
            engine="vectorized", max_rounds=5, seed=7, optimize_weights=False
        )
        trainer = SNAPTrainer(model, shards, Topology(N_NODES, EDGES), config)
        observed = []

        def on_round(record):
            observed.append(trainer.servers[0].iteration)

        trainer.run(stop_on_convergence=False, on_round=on_round)
        assert observed == [1, 2, 3, 4, 5]

    def test_second_run_continues_identically(self):
        """Engine state round-trips through the server objects between runs."""
        shards = _binary_shards(seed=8)
        model = LogisticRegression(5)

        def run_split(engine):
            config = SNAPConfig(
                engine=engine, max_rounds=30, seed=7, optimize_weights=False
            )
            trainer = SNAPTrainer(
                model,
                shards,
                Topology(N_NODES, EDGES),
                config,
                fault_plan=_fault_plan(),
            )
            first = trainer.run(max_rounds=12, stop_on_convergence=False)
            second = trainer.run(max_rounds=13, stop_on_convergence=False)
            return trainer, first, second

        ref_trainer, ref_a, ref_b = run_split("reference")
        vec_trainer, vec_a, vec_b = run_split("vectorized")
        assert ref_a.rounds == vec_a.rounds
        assert ref_b.rounds == vec_b.rounds
        assert np.array_equal(ref_b.final_params, vec_b.final_params)
        for ref, vec in zip(ref_trainer.servers, vec_trainer.servers):
            assert np.array_equal(ref.params, vec.params)
