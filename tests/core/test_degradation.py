"""Graceful-degradation tests: training survives chaos, and says so.

Covers the simulator half of the fault-tolerance story: corruption through
the channel, per-round staleness/connectivity observability, the partition
warn/abort guard, the straggler-rule algebra under total link loss, and the
headline chaos claim — bursty outages plus crash/restart servers cost
almost no accuracy.
"""

import warnings

import numpy as np
import pytest

from repro.core import SNAPConfig, SNAPTrainer
from repro.core.config import SelectionPolicy, StragglerStrategy
from repro.exceptions import NetworkPartitionError
from repro.faults import (
    CrashRestartSchedule,
    FaultPlan,
    GilbertElliottLinkFailures,
    ScheduledCorruption,
)
from repro.network.channel import Channel
from repro.network.cost import CommunicationCostTracker
from repro.network.messages import ParameterUpdate
from repro.simulation.experiments import credit_svm_workload
from repro.topology.failures import IndependentLinkFailures, ScheduledFailures
from repro.topology.generators import ring_topology
from repro.topology.graph import Topology
from repro.weights.construction import metropolis_weights


class TestChannelCorruption:
    def test_corrupted_frame_charged_but_not_delivered(self):
        ring = ring_topology(5)
        tracker = CommunicationCostTracker()
        channel = Channel(
            ring,
            tracker,
            corruption_model=ScheduledCorruption({1: [(0, 1)]}),
        )
        msg = ParameterUpdate.dense(0, 1, np.arange(10.0))
        report = channel.send(0, 1, msg)
        assert not report.delivered
        assert report.corrupted
        # The bits crossed the wire: corruption costs bytes, unlike a
        # failed link.
        assert tracker.total_bytes == msg.size_bytes

    def test_corruption_is_directional(self):
        ring = ring_topology(5)
        channel = Channel(
            ring,
            CommunicationCostTracker(),
            corruption_model=ScheduledCorruption({1: [(0, 1)]}),
        )
        reverse = channel.send(
            1, 0, ParameterUpdate.dense(1, 1, np.arange(10.0))
        )
        assert reverse.delivered and not reverse.corrupted


class TestObservability:
    @pytest.fixture
    def setup(self, rng):
        topo = ring_topology(4)
        n, p = 80, 3
        X = rng.normal(size=(n, p))
        y = X @ rng.normal(size=p)
        from repro.data.dataset import Dataset
        from repro.data.partition import iid_partition
        from repro.models.ridge import RidgeRegression

        shards = iid_partition(Dataset(X, y), 4, seed=0)
        model = RidgeRegression(p, regularization=0.1)
        return model, shards, topo

    def test_clean_rounds_report_no_staleness(self, setup):
        model, shards, topo = setup
        trainer = SNAPTrainer(
            model, shards, topo, config=SNAPConfig(alpha=0.05, seed=0)
        )
        result = trainer.run(max_rounds=5, stop_on_convergence=False)
        for record in result.rounds:
            assert record.stale_links == 0
            assert record.max_staleness == 0
            assert record.connected

    def test_outage_raises_staleness_then_recovery_clears_it(self, setup):
        model, shards, topo = setup
        plan = FaultPlan(
            links=ScheduledFailures({2: [(0, 1)], 3: [(0, 1)]})
        )
        trainer = SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig(alpha=0.05, seed=0),
            fault_plan=plan,
        )
        result = trainer.run(max_rounds=5, stop_on_convergence=False)
        by_round = {r.round_index: r for r in result.rounds}
        assert by_round[1].stale_links == 0
        # Both directions of the downed link go stale for rounds 2-3.
        assert by_round[2].stale_links == 2
        assert by_round[2].max_staleness == 1
        assert by_round[3].stale_links == 2
        assert by_round[3].max_staleness == 2
        # Link restored: the next delivery resets the age.
        assert by_round[4].stale_links == 0
        assert by_round[4].max_staleness == 0
        # A single downed ring link never partitions the ring.
        assert all(r.connected for r in result.rounds)
        assert trainer.link_staleness[(0, 1)] == 0

    def test_corrupted_frames_count_as_stale_links(self, setup):
        model, shards, topo = setup
        plan = FaultPlan(corruption=ScheduledCorruption({2: [(0, 1)]}))
        trainer = SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig(alpha=0.05, seed=0),
            fault_plan=plan,
        )
        result = trainer.run(max_rounds=3, stop_on_convergence=False)
        by_round = {r.round_index: r for r in result.rounds}
        assert by_round[2].stale_links == 1  # only the damaged direction
        assert by_round[3].stale_links == 0


class TestPartitionGuard:
    @pytest.fixture
    def setup(self, rng):
        from repro.data.dataset import Dataset
        from repro.data.partition import iid_partition
        from repro.models.ridge import RidgeRegression

        topo = ring_topology(4)
        X = rng.normal(size=(80, 3))
        y = X @ rng.normal(size=3)
        shards = iid_partition(Dataset(X, y), 4, seed=0)
        return RidgeRegression(3, regularization=0.1), shards, topo

    def _partition_plan(self, first_round, last_round):
        # Cut the 4-ring into {0,1} | {2,3}: severs (1,2) and (0,3).
        from repro.faults import PartitionSchedule

        return FaultPlan(
            links=PartitionSchedule(
                [(first_round, last_round, [[0, 1], [2, 3]])]
            )
        )

    def test_sustained_partition_warns(self, setup):
        model, shards, topo = setup
        trainer = SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig(alpha=0.05, seed=0),
            fault_plan=self._partition_plan(1, 15),
        )
        with pytest.warns(RuntimeWarning, match="partitioned"):
            result = trainer.run(max_rounds=12, stop_on_convergence=False)
        assert not any(r.connected for r in result.rounds)

    def test_short_partition_does_not_warn(self, setup):
        model, shards, topo = setup
        trainer = SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig(alpha=0.05, seed=0),
            fault_plan=self._partition_plan(2, 4),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result = trainer.run(max_rounds=8, stop_on_convergence=False)
        flags = [r.connected for r in result.rounds]
        assert flags == [True, False, False, False, True, True, True, True]

    def test_max_partitioned_rounds_aborts(self, setup):
        model, shards, topo = setup
        trainer = SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig(
                alpha=0.05, seed=0, max_partitioned_rounds=5
            ),
            fault_plan=self._partition_plan(1, 50),
        )
        with pytest.raises(NetworkPartitionError, match="5 consecutive"):
            trainer.run(max_rounds=50, stop_on_convergence=False)


class TestTotalLinkLossProperty:
    @pytest.mark.chaos
    def test_reweight_under_total_link_loss_equals_independent_runs(self, rng):
        """With every link down and the REWEIGHT straggler rule, each server
        collapses to an independent single-node EXTRA run: the round's
        effective mixing matrix is the identity, so the network must produce
        exactly what N isolated trainers produce."""
        from repro.data.dataset import Dataset
        from repro.data.partition import iid_partition
        from repro.models.ridge import RidgeRegression

        n_servers, p = 4, 3
        X = rng.normal(size=(120, p))
        y = X @ rng.normal(size=p) + 0.05 * rng.normal(size=120)
        shards = iid_partition(Dataset(X, y), n_servers, seed=1)
        model = RidgeRegression(p, regularization=0.1)
        topo = ring_topology(n_servers)
        init = model.init_params(seed=3)
        rounds = 8  # below the partition-warning streak

        config = SNAPConfig(
            alpha=0.05,
            seed=0,
            selection=SelectionPolicy.CHANGED_ONLY,
            straggler_strategy=StragglerStrategy.REWEIGHT,
        )
        networked = SNAPTrainer(
            model,
            shards,
            topo,
            config=config,
            failure_model=IndependentLinkFailures(1.0, seed=0),
            weight_matrix=metropolis_weights(topo),
            initial_params=init,
        )
        networked.run(max_rounds=rounds, stop_on_convergence=False)

        for node in range(n_servers):
            solo = SNAPTrainer(
                model,
                [shards[node]],
                Topology(1, []),
                config=SNAPConfig(
                    alpha=0.05,
                    seed=0,
                    selection=SelectionPolicy.CHANGED_ONLY,
                ),
                weight_matrix=np.array([[1.0]]),
                initial_params=init,
            )
            solo.run(max_rounds=rounds, stop_on_convergence=False)
            np.testing.assert_allclose(
                networked.servers[node].params,
                solo.servers[0].params,
                rtol=1e-9,
                atol=1e-12,
            )


class TestChaosAccuracy:
    @pytest.mark.chaos
    @pytest.mark.timeout(300)
    def test_bursty_outages_and_crashes_cost_under_two_accuracy_points(self):
        """The acceptance bar: Gilbert–Elliott outages at a stationary 20%
        down-rate plus two servers crash/restarting for 10-round spans leave
        final accuracy within 2 points of the fault-free run (same seed)."""
        workload = credit_svm_workload(
            n_servers=8, average_degree=3, n_train=1200, n_test=400, seed=11
        )
        rounds = 150

        def run(fault_plan):
            trainer = SNAPTrainer(
                workload.model,
                workload.shards,
                workload.topology,
                config=SNAPConfig(seed=0),
                fault_plan=fault_plan,
            )
            with warnings.catch_warnings():
                # A long burst can transiently partition the delivered
                # graph; that is the scenario under test, not a failure.
                warnings.simplefilter("ignore", RuntimeWarning)
                return trainer.run(
                    max_rounds=rounds,
                    test_set=workload.test_set,
                    stop_on_convergence=False,
                )

        clean = run(None)
        plan = FaultPlan(
            links=GilbertElliottLinkFailures(
                p_fail=0.05, p_recover=0.2, seed=7  # stationary 20% down
            ),
            nodes=CrashRestartSchedule({1: [(20, 29)], 3: [(60, 69)]}),
        )
        faulty = run(plan)

        # The chaos actually bit: links went stale somewhere along the way.
        assert any(r.stale_links > 0 for r in faulty.rounds)
        assert faulty.final_accuracy == pytest.approx(
            clean.final_accuracy, abs=0.02
        )
