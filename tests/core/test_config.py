"""Tests for repro.core.config.SNAPConfig."""

import pytest

from repro.core.config import SelectionPolicy, SNAPConfig
from repro.exceptions import ConfigurationError


class TestDefaults:
    def test_paper_defaults(self):
        config = SNAPConfig()
        assert config.selection is SelectionPolicy.APE
        assert config.ape_initial_fraction == pytest.approx(0.10)
        assert config.ape_stage_iterations == 10
        assert config.ape_decay == pytest.approx(0.9)
        assert config.optimize_weights is True

    def test_auto_alpha_by_default(self):
        assert SNAPConfig().alpha is None


class TestValidation:
    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(alpha=0.0)

    def test_bad_selection_rejected(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(selection="ape")

    def test_bad_decay_rejected(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(ape_decay=1.0)

    def test_bad_growth_rejected(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(ape_growth=0.99)

    def test_bad_stage_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(ape_stage_iterations=0)

    def test_bad_step_safety_rejected(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(step_safety=1.5)


class TestConvenienceConstructors:
    def test_snap0(self):
        config = SNAPConfig.snap0(max_rounds=50)
        assert config.selection is SelectionPolicy.CHANGED_ONLY
        assert config.max_rounds == 50

    def test_sno(self):
        config = SNAPConfig.sno()
        assert config.selection is SelectionPolicy.DENSE

    def test_explicit_selection_wins(self):
        config = SNAPConfig.snap0(selection=SelectionPolicy.DENSE)
        assert config.selection is SelectionPolicy.DENSE


class TestScenarioAxes:
    """Validation of the byzantine / drift / hierarchy scenario knobs."""

    def test_robust_aggregation_string_normalizes(self):
        from repro.core.robust import RobustAggregationSpec

        config = SNAPConfig(robust_aggregation="trimmed_mean:f=2")
        assert isinstance(config.robust_aggregation, RobustAggregationSpec)
        assert config.robust_aggregation.kind == "trimmed_mean"
        assert config.robust_aggregation.f == 2
        assert SNAPConfig(robust_aggregation="median").robust_aggregation.f == 1

    def test_robust_aggregation_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(robust_aggregation="mean-of-means")
        with pytest.raises(ConfigurationError):
            SNAPConfig(robust_aggregation="krum:k=2")
        with pytest.raises(ConfigurationError):
            SNAPConfig(robust_aggregation=42)

    def test_drift_requires_a_schedule(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(drift="label_shift")

    def test_drift_forbids_workers_and_staleness(self):
        from repro.data.drift import StreamingArrival

        drift = StreamingArrival(period=3)
        SNAPConfig(drift=drift)  # workers=1, staleness_bound=0: fine
        with pytest.raises(ConfigurationError):
            SNAPConfig(drift=drift, workers=2)
        with pytest.raises(ConfigurationError):
            SNAPConfig(drift=drift, staleness_bound=1)

    def test_drift_forbids_sample_count_weighting(self):
        from repro.core.config import ShardWeighting
        from repro.data.drift import StreamingArrival

        with pytest.raises(ConfigurationError):
            SNAPConfig(
                drift=StreamingArrival(period=3),
                shard_weighting=ShardWeighting.SAMPLES,
            )

    def test_tier_damping_range_and_optimizer_conflict(self):
        config = SNAPConfig(tier_damping=0.5, optimize_weights=False)
        assert config.tier_damping == pytest.approx(0.5)
        with pytest.raises(ConfigurationError):
            SNAPConfig(tier_damping=0.0, optimize_weights=False)
        with pytest.raises(ConfigurationError):
            SNAPConfig(tier_damping=1.5, optimize_weights=False)
        with pytest.raises(ConfigurationError):
            SNAPConfig(tier_damping=0.5, optimize_weights=True)
