"""Tests for repro.core.config.SNAPConfig."""

import pytest

from repro.core.config import SelectionPolicy, SNAPConfig
from repro.exceptions import ConfigurationError


class TestDefaults:
    def test_paper_defaults(self):
        config = SNAPConfig()
        assert config.selection is SelectionPolicy.APE
        assert config.ape_initial_fraction == pytest.approx(0.10)
        assert config.ape_stage_iterations == 10
        assert config.ape_decay == pytest.approx(0.9)
        assert config.optimize_weights is True

    def test_auto_alpha_by_default(self):
        assert SNAPConfig().alpha is None


class TestValidation:
    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(alpha=0.0)

    def test_bad_selection_rejected(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(selection="ape")

    def test_bad_decay_rejected(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(ape_decay=1.0)

    def test_bad_growth_rejected(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(ape_growth=0.99)

    def test_bad_stage_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(ape_stage_iterations=0)

    def test_bad_step_safety_rejected(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(step_safety=1.5)


class TestConvenienceConstructors:
    def test_snap0(self):
        config = SNAPConfig.snap0(max_rounds=50)
        assert config.selection is SelectionPolicy.CHANGED_ONLY
        assert config.max_rounds == 50

    def test_sno(self):
        config = SNAPConfig.sno()
        assert config.selection is SelectionPolicy.DENSE

    def test_explicit_selection_wins(self):
        config = SNAPConfig.snap0(selection=SelectionPolicy.DENSE)
        assert config.selection is SelectionPolicy.DENSE
