"""Server-outage behaviour of the SNAP trainer (Section IV-D, "server shut down")."""

import numpy as np
import pytest

from repro.core import SNAPConfig, SNAPTrainer
from repro.core.config import SelectionPolicy
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.models.ridge import RidgeRegression
from repro.topology.failures import (
    IndependentNodeFailures,
    NoNodeFailures,
    ScheduledNodeFailures,
)
from repro.topology.generators import random_topology


@pytest.fixture
def setup(rng):
    n, p = 200, 3
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p) + 0.1 * rng.normal(size=n)
    shards = iid_partition(Dataset(X, y), 6, seed=0)
    model = RidgeRegression(p, regularization=0.1)
    topo = random_topology(6, 3.0, seed=1)
    return model, shards, topo


def build(setup, node_failure_model=None):
    model, shards, topo = setup
    return SNAPTrainer(
        model,
        shards,
        topo,
        config=SNAPConfig(selection=SelectionPolicy.CHANGED_ONLY, seed=0),
        node_failure_model=node_failure_model,
    )


class TestModels:
    def test_no_failures_default(self, setup):
        trainer = build(setup)
        assert isinstance(trainer.node_failure_model, NoNodeFailures)

    def test_independent_model_is_seeded_and_rate_calibrated(self, setup):
        _, _, topo = setup
        model = IndependentNodeFailures(0.25, seed=3)
        total = sum(len(model.failed_nodes(topo, r)) for r in range(400))
        assert total / (400 * topo.n_nodes) == pytest.approx(0.25, abs=0.03)
        assert model.failed_nodes(topo, 7) == model.failed_nodes(topo, 7)


class TestDownedServerSemantics:
    def test_downed_server_does_not_step(self, setup):
        trainer = build(setup, ScheduledNodeFailures({2: [0]}))
        trainer.run(max_rounds=3, stop_on_convergence=False)
        # server 0 missed round 2: 2 local iterations instead of 3
        assert trainer.servers[0].iteration == 2
        assert trainer.servers[1].iteration == 3

    def test_downed_server_sends_and_receives_nothing(self, setup):
        model, shards, topo = setup
        victim = 0
        trainer = build(setup, ScheduledNodeFailures({2: [victim]}))
        trainer.run(max_rounds=3, stop_on_convergence=False)
        for record in trainer.tracker.records():
            if record.round_index == 2:
                assert record.source != victim
                assert record.destination != victim

    def test_blackout_round_of_all_servers_costs_nothing(self, setup):
        _, _, topo = setup
        trainer = build(setup, ScheduledNodeFailures({2: list(range(6))}))
        result = trainer.run(max_rounds=4, stop_on_convergence=False)
        assert result.rounds[1].bytes_sent == 0
        assert result.rounds[0].bytes_sent > 0

    def test_recovered_server_heals_and_training_converges(self, setup):
        model, shards, _ = setup
        trainer = build(
            setup, ScheduledNodeFailures({3: [1], 4: [1], 5: [1]})
        )
        trainer.run(max_rounds=800, stop_on_convergence=False)
        exact = model.solve_exact(
            np.concatenate([s.X for s in shards]),
            np.concatenate([s.y for s in shards]),
        )
        gap = np.linalg.norm(trainer.mean_params() - exact)
        assert gap < 0.1 * np.linalg.norm(exact)

    def test_random_outages_do_not_crash_and_stay_finite(self, setup):
        trainer = build(setup, IndependentNodeFailures(0.3, seed=9))
        result = trainer.run(max_rounds=40, stop_on_convergence=False)
        assert result.n_rounds == 40
        assert np.all(np.isfinite(trainer.stacked_params()))

    def test_outages_slow_but_do_not_stop_learning(self, setup):
        healthy = build(setup).run(max_rounds=60, stop_on_convergence=False)
        flaky = build(setup, IndependentNodeFailures(0.2, seed=5)).run(
            max_rounds=60, stop_on_convergence=False
        )
        # both learn (loss decreases a lot) ...
        assert flaky.loss_trace()[-1] < 0.7 * flaky.loss_trace()[0]
        # ... and the healthy run is at least as far along
        assert healthy.loss_trace()[-1] <= flaky.loss_trace()[-1] + 1e-9
