"""Columnar round-trace and delivered-edge containers behave like the
object collections they replaced."""

import numpy as np
import pytest

from repro.core.engine import DeliveredEdges
from repro.results import RoundRecord, RoundTrace


def _record(i, accuracy=None):
    return RoundRecord(
        round_index=i,
        mean_loss=0.5 / i,
        consensus_error=0.1 / i,
        bytes_sent=100 * i,
        cost=100 * i,
        params_sent=10 * i,
        accuracy=accuracy,
        stale_links=i % 3,
        max_staleness=i % 2,
        connected=(i % 2 == 0),
    )


class TestRoundTrace:
    def test_appends_and_materializes_python_types(self):
        trace = RoundTrace()
        trace.append(_record(1, accuracy=0.75))
        trace.append(_record(2))
        assert len(trace) == 2
        first = trace[0]
        assert first == _record(1, accuracy=0.75)
        assert type(first.round_index) is int
        assert type(first.mean_loss) is float
        assert first.accuracy == 0.75
        assert trace[1].accuracy is None

    def test_negative_index_and_slice(self):
        trace = RoundTrace([_record(i) for i in range(1, 6)])
        assert trace[-1] == _record(5)
        assert trace[1:3] == [_record(2), _record(3)]

    def test_equality_against_lists_both_ways(self):
        records = [_record(i) for i in range(1, 4)]
        trace = RoundTrace(records)
        assert trace == records
        assert records == trace
        assert trace != records[:-1]

    def test_growth_beyond_initial_capacity(self):
        count = 300
        trace = RoundTrace()
        for i in range(1, count + 1):
            trace.append(_record(i))
        assert len(trace) == count
        assert trace[count - 1].round_index == count
        assert list(trace)[0] == _record(1)

    def test_columnar_views(self):
        trace = RoundTrace([_record(i) for i in range(1, 5)])
        assert np.array_equal(trace.bytes_array(), [100, 200, 300, 400])
        assert trace.loss_array().shape == (4,)


class TestDeliveredEdges:
    def test_quacks_like_the_set_it_replaced(self):
        delivered = DeliveredEdges(
            np.asarray([0, 1, 2], dtype=np.int64),
            np.asarray([1, 2, 0], dtype=np.int64),
        )
        assert len(delivered) == 3
        assert (0, 1) in delivered
        assert (1, 0) not in delivered
        assert set(delivered) == {(0, 1), (1, 2), (2, 0)}
        assert delivered == {(0, 1), (1, 2), (2, 0)}

    def test_empty(self):
        empty = DeliveredEdges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert len(empty) == 0
        assert empty == set()
        assert (0, 1) not in empty
