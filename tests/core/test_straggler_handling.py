"""Straggler behaviour of the SNAP trainer (Section IV-D, Fig. 9)."""

import numpy as np
import pytest

from repro.consensus.convergence import ConvergenceDetector
from repro.core.config import SNAPConfig
from repro.core.trainer import SNAPTrainer
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.models.ridge import RidgeRegression
from repro.topology.failures import IndependentLinkFailures, ScheduledFailures
from repro.topology.generators import random_topology


@pytest.fixture
def setup(rng):
    n, p = 200, 3
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p) + 0.1 * rng.normal(size=n)
    dataset = Dataset(X, y)
    topo = random_topology(6, 3.0, seed=4)
    shards = iid_partition(dataset, 6, seed=5)
    model = RidgeRegression(p, regularization=0.1)
    return model, shards, topo


class TestScheduledOutages:
    def test_one_failed_round_is_survived(self, setup):
        """A full blackout under the paper's stale rule leaves a small bias.

        The stale values leak mass out of the doubly-stochastic mixing, so
        exact convergence is lost — but the run stays close to the optimum
        (the bias is proportional to the one missed round's deltas).
        """
        model, shards, topo = setup
        failures = ScheduledFailures({3: list(topo.edges)})  # total blackout round 3
        trainer = SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig.snap0(seed=0),
            failure_model=failures,
        )
        trainer.run(max_rounds=800, stop_on_convergence=False)
        exact = model.solve_exact(
            np.concatenate([s.X for s in shards]),
            np.concatenate([s.y for s in shards]),
        )
        gap = np.linalg.norm(trainer.mean_params() - exact)
        assert gap < 0.5 * np.linalg.norm(exact)

    def test_reweight_strategy_removes_blackout_bias(self, setup):
        """The REWEIGHT ablation keeps every round doubly stochastic."""
        from repro.core.config import SelectionPolicy, StragglerStrategy

        model, shards, topo = setup
        failures = ScheduledFailures({3: list(topo.edges)})
        gaps = {}
        exact = model.solve_exact(
            np.concatenate([s.X for s in shards]),
            np.concatenate([s.y for s in shards]),
        )
        for strategy in (StragglerStrategy.STALE, StragglerStrategy.REWEIGHT):
            trainer = SNAPTrainer(
                model,
                shards,
                topo,
                config=SNAPConfig(
                    selection=SelectionPolicy.CHANGED_ONLY,
                    straggler_strategy=strategy,
                    seed=0,
                ),
                failure_model=ScheduledFailures({3: list(topo.edges)}),
            )
            trainer.run(max_rounds=800, stop_on_convergence=False)
            gaps[strategy] = np.linalg.norm(trainer.mean_params() - exact)
        assert gaps[StragglerStrategy.REWEIGHT] < 1e-3
        assert gaps[StragglerStrategy.REWEIGHT] < gaps[StragglerStrategy.STALE] / 10

    def test_blackout_round_costs_nothing(self, setup):
        model, shards, topo = setup
        failures = ScheduledFailures({2: list(topo.edges)})
        trainer = SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig.snap0(seed=0),
            failure_model=failures,
        )
        result = trainer.run(max_rounds=5, stop_on_convergence=False)
        assert result.rounds[1].bytes_sent == 0  # round 2 blacked out
        assert result.rounds[0].bytes_sent > 0

    def test_missed_update_is_retransmitted(self, setup):
        """After a failed round, the next successful send heals the neighbor."""
        model, shards, topo = setup
        u, v = topo.edges[0]
        failures = ScheduledFailures({1: [(u, v)], 2: [], 3: []})
        trainer = SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig.snap0(seed=0),
            failure_model=failures,
        )
        trainer.run(max_rounds=3, stop_on_convergence=False)
        # After round 3 with no failures, v's view of u equals u's params.
        np.testing.assert_allclose(
            trainer.servers[v].views[u], trainer.servers[u].params, atol=1e-12
        )


class TestRandomOutages:
    def test_low_failure_rate_still_converges_near_optimum(self, setup):
        model, shards, topo = setup
        trainer = SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig.snap0(seed=0),
            failure_model=IndependentLinkFailures(0.01, seed=1),
        )
        trainer.run(max_rounds=800, stop_on_convergence=False)
        exact = model.solve_exact(
            np.concatenate([s.X for s in shards]),
            np.concatenate([s.y for s in shards]),
        )
        gap = np.linalg.norm(trainer.mean_params() - exact)
        assert gap < 0.05

    def test_failures_slow_progress_to_a_loss_target(self, setup):
        model, shards, topo = setup

        def rounds_to_target(rate):
            failure_model = (
                IndependentLinkFailures(rate, seed=2) if rate > 0 else None
            )
            trainer = SNAPTrainer(
                model,
                shards,
                topo,
                config=SNAPConfig.snap0(seed=0),
                failure_model=failure_model,
            )
            # target: 5% above the no-failure long-run loss
            exact = model.solve_exact(
                np.concatenate([s.X for s in shards]),
                np.concatenate([s.y for s in shards]),
            )
            target = 1.05 * np.mean(
                [model.loss(exact, s.X, s.y) for s in shards]
            )
            result = trainer.run(
                max_rounds=600,
                detector=ConvergenceDetector(target_loss=target),
            )
            return result.iterations_to_converge

        assert rounds_to_target(0.0) <= rounds_to_target(0.10)

    def test_heavy_failures_do_not_crash(self, setup):
        model, shards, topo = setup
        trainer = SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig(seed=0),
            failure_model=IndependentLinkFailures(0.5, seed=3),
        )
        result = trainer.run(max_rounds=30, stop_on_convergence=False)
        assert result.n_rounds == 30
        assert np.all(np.isfinite(trainer.mean_params()))
