"""Sharded worker pool: ``workers=k`` must be bit-identical to ``workers=1``.

The pool forks k processes that each run the row-independent model batch
kernels over a contiguous node-range slice of the shared (N, d) stack, so
the joined result is exactly the single-process result — certified here by
full-run digest equality, not tolerance comparisons.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import SNAPConfig
from repro.core.parallel import ShardedModelPool
from repro.core.trainer import SNAPTrainer
from repro.exceptions import ConfigurationError
from repro.models.logistic import LogisticRegression
from repro.testing.digest import capture_run
from repro.testing.scenarios import ScenarioGen


def _trainer(scenario, workers: int) -> SNAPTrainer:
    config = dataclasses.replace(scenario.config("vectorized"), workers=workers)
    return SNAPTrainer(
        scenario.model(),
        scenario.shards(),
        scenario.topology(),
        config,
        fault_plan=scenario.fault_plan(),
    )


class TestWorkersDigestEquality:
    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_workers_2_matches_workers_1(self, index):
        scenario = ScenarioGen(master_seed=3).scenario(index)
        baseline = capture_run(_trainer(scenario, workers=1))
        sharded_trainer = _trainer(scenario, workers=2)
        sharded = capture_run(sharded_trainer)
        sharded_trainer.engine.close()
        assert sharded == baseline, baseline.diff(sharded)

    def test_workers_beyond_node_count_clamp(self):
        scenario = ScenarioGen(master_seed=3).scenario(0)
        baseline = capture_run(_trainer(scenario, workers=1))
        trainer = _trainer(scenario, workers=scenario.n_nodes + 5)
        assert trainer.engine._pool.workers == scenario.n_nodes
        sharded = capture_run(trainer)
        trainer.engine.close()
        assert sharded == baseline


class TestPoolMechanics:
    def _pool(self, n=6, d=4, workers=2):
        rng = np.random.default_rng(0)
        model = LogisticRegression(d)
        shards = []
        for _ in range(n):
            X = rng.normal(size=(5, d))
            shards.append((X, (X @ rng.normal(size=d) > 0).astype(float)))
        return model, shards, ShardedModelPool(model, shards, workers)

    def test_gradients_and_losses_match_in_process(self):
        model, shards, pool = self._pool()
        try:
            prepared = model.prepare_shards(shards)
            stack = np.vstack([model.init_params(seed=i) for i in range(6)])
            assert np.array_equal(
                pool.batch_gradients(stack),
                model.batch_gradients(stack, prepared),
            )
            assert np.array_equal(
                pool.batch_losses(stack),
                model.batch_losses(stack, prepared),
            )
        finally:
            pool.close()

    def test_close_is_idempotent_and_rejects_further_use(self):
        _model, _shards, pool = self._pool()
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.batch_gradients(np.zeros((6, 4)))

    def test_rejects_single_worker(self):
        model, shards, pool = self._pool()
        pool.close()
        with pytest.raises(ConfigurationError):
            ShardedModelPool(model, shards, 1)


class TestConfigValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(workers=0)

    def test_workers_require_vectorized_engine(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(engine="reference", workers=2)

    def test_sparse_weights_exclude_weight_optimization(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(sparse_weights=True, optimize_weights=True)
