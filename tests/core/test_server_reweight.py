"""Unit semantics of the REWEIGHT straggler strategy at the server level."""

import numpy as np
import pytest

from repro.core.config import StragglerStrategy
from repro.core.server import EdgeServer
from repro.models.ridge import RidgeRegression


@pytest.fixture
def model():
    return RidgeRegression(n_features=2, regularization=0.0, fit_intercept=False)


def make_server(model, rng, strategy):
    X = rng.normal(size=(12, 2))
    y = rng.normal(size=12)
    weights = np.array([0.6, 0.4])
    return EdgeServer(
        node_id=0,
        model=model,
        X=X,
        y=y,
        neighbors=(1,),
        weight_row=weights,
        alpha=0.1,
        initial_params=np.zeros(2),
        straggler_strategy=strategy,
    )


class TestNeighborValueSubstitution:
    def test_fresh_view_used_under_both_strategies(self, model, rng):
        for strategy in StragglerStrategy:
            server = make_server(model, rng, strategy)
            server.views[1] = np.array([5.0, 5.0])
            server.fresh[1] = True
            value = server._neighbor_value(1, current_layer=True)
            np.testing.assert_array_equal(value, [5.0, 5.0])

    def test_stale_strategy_keeps_the_cached_view(self, model, rng):
        server = make_server(model, rng, StragglerStrategy.STALE)
        server.views[1] = np.array([5.0, 5.0])
        server.fresh[1] = False
        np.testing.assert_array_equal(
            server._neighbor_value(1, current_layer=True), [5.0, 5.0]
        )

    def test_reweight_substitutes_own_params_on_current_layer(self, model, rng):
        server = make_server(model, rng, StragglerStrategy.REWEIGHT)
        server.params = np.array([7.0, -7.0])
        server.views[1] = np.array([5.0, 5.0])
        server.fresh[1] = False
        np.testing.assert_array_equal(
            server._neighbor_value(1, current_layer=True), [7.0, -7.0]
        )

    def test_reweight_substitutes_previous_params_on_previous_layer(
        self, model, rng
    ):
        server = make_server(model, rng, StragglerStrategy.REWEIGHT)
        server.step()
        server.advance_views()
        server.previous_fresh[1] = False
        np.testing.assert_array_equal(
            server._neighbor_value(1, current_layer=False),
            server.previous_params,
        )

    def test_freshness_resets_on_advance_and_sets_on_receive(self, model, rng):
        from repro.network.messages import ParameterUpdate

        server = make_server(model, rng, StragglerStrategy.REWEIGHT)
        assert server.fresh[1]  # shared x^0: views start exact
        server.advance_views()
        assert not server.fresh[1]
        assert server.previous_fresh[1]
        server.receive_update(ParameterUpdate.dense(1, 1, np.ones(2)))
        assert server.fresh[1]


class TestReweightMixingEquivalence:
    def test_missing_neighbor_acts_as_diagonal_weight(self, model, rng):
        """With REWEIGHT, a failed first-round neighbor contributes own params:
        the mix equals (w_ii + w_ij) * x_i, i.e. the link weight folded onto
        the diagonal."""
        server = make_server(model, rng, StragglerStrategy.REWEIGHT)
        server.params = np.array([2.0, 4.0])
        server.views[1] = np.array([100.0, 100.0])  # stale garbage
        server.fresh[1] = False
        gradient = server.local_gradient(server.params)
        new = server.step()
        expected = (0.6 + 0.4) * np.array([2.0, 4.0]) - 0.1 * gradient
        np.testing.assert_allclose(new, expected)
