"""Tests for repro.core.server.EdgeServer."""

import numpy as np
import pytest

from repro.core.server import EdgeServer
from repro.exceptions import ConfigurationError, ProtocolError
from repro.models.ridge import RidgeRegression
from repro.network.messages import ParameterUpdate


@pytest.fixture
def model():
    return RidgeRegression(n_features=2, regularization=0.1, fit_intercept=False)


@pytest.fixture
def data(rng):
    X = rng.normal(size=(20, 2))
    y = rng.normal(size=20)
    return X, y


def make_server(model, data, node_id=0, neighbors=(1, 2), weights=None, alpha=0.1):
    X, y = data
    n = max([node_id, *neighbors]) + 1
    if weights is None:
        weights = np.zeros(n)
        share = 0.2
        for j in neighbors:
            weights[j] = share
        weights[node_id] = 1.0 - share * len(neighbors)
    return EdgeServer(
        node_id=node_id,
        model=model,
        X=X,
        y=y,
        neighbors=tuple(neighbors),
        weight_row=weights,
        alpha=alpha,
        initial_params=np.zeros(model.n_params),
    )


class TestConstruction:
    def test_initial_state(self, model, data):
        server = make_server(model, data)
        np.testing.assert_array_equal(server.params, np.zeros(2))
        assert server.previous_params is None
        assert set(server.views) == {1, 2}
        assert set(server.last_sent) == {1, 2}
        assert server.iteration == 0

    def test_weight_mass_outside_neighbors_rejected(self, model, data):
        weights = np.array([0.5, 0.2, 0.2, 0.1])  # mass on node 3, not a neighbor
        with pytest.raises(ConfigurationError):
            make_server(model, data, neighbors=(1, 2), weights=weights)

    def test_bad_alpha_rejected(self, model, data):
        with pytest.raises(ConfigurationError):
            make_server(model, data, alpha=0.0)


class TestFirstStep:
    def test_matches_equation_8_first_line(self, model, data):
        server = make_server(model, data)
        # All parties start at zero: mix = 0, so x^1 = -alpha * grad(0).
        gradient = server.local_gradient(np.zeros(2))
        new = server.step()
        np.testing.assert_allclose(new, -0.1 * gradient)
        assert server.iteration == 1
        np.testing.assert_array_equal(server.previous_params, np.zeros(2))

    def test_first_step_uses_neighbor_views(self, model, data):
        server = make_server(model, data)
        server.views[1] = np.array([1.0, 0.0])
        server.views[2] = np.array([0.0, 2.0])
        gradient = server.local_gradient(np.zeros(2))
        new = server.step()
        expected = 0.2 * np.array([1.0, 0.0]) + 0.2 * np.array([0.0, 2.0]) - 0.1 * gradient
        np.testing.assert_allclose(new, expected)


class TestSecondStep:
    def test_requires_advanced_views(self, model, data):
        server = make_server(model, data)
        server.step()
        with pytest.raises(ProtocolError):
            server.step()  # previous_views never populated

    def test_matches_equation_8_second_line(self, model, data):
        server = make_server(model, data)
        w_self = server.weight_row[0]
        x0 = server.params.copy()
        g0 = server.local_gradient(x0)
        x1 = server.step()
        server.advance_views()  # views (still x0) become the previous layer
        g1 = server.local_gradient(x1)
        x2 = server.step()
        # Views never updated: neighbor terms use x0 in both layers.
        mixed_current = w_self * x1 + 0.2 * server.views[1] + 0.2 * server.views[2]
        mixed_previous = (
            0.5 * (w_self + 1.0) * x0
            + 0.1 * server.previous_views[1]
            + 0.1 * server.previous_views[2]
        )
        expected = x1 + mixed_current - mixed_previous - 0.1 * (g1 - g0)
        np.testing.assert_allclose(x2, expected)


class TestCommunication:
    def test_build_update_selects_against_neighbor_state(self, model, data):
        server = make_server(model, data)
        server.params = np.array([1.0, 0.001])
        message, selection = server.build_update(1, round_index=1, send_threshold=0.01)
        np.testing.assert_array_equal(message.indices, [0])
        assert selection.suppressed_max == pytest.approx(0.001)

    def test_last_sent_advances_only_on_delivery(self, model, data):
        server = make_server(model, data)
        server.params = np.array([1.0, 2.0])
        message, _ = server.build_update(1, round_index=1, send_threshold=0.0)
        # No mark_delivered: state unchanged, next message repeats everything.
        message2, _ = server.build_update(1, round_index=2, send_threshold=0.0)
        np.testing.assert_array_equal(message2.indices, message.indices)
        server.mark_delivered(1, message2)
        message3, _ = server.build_update(1, round_index=3, send_threshold=0.0)
        assert message3.n_sent == 0

    def test_per_neighbor_state_is_independent(self, model, data):
        server = make_server(model, data)
        server.params = np.array([1.0, 2.0])
        message, _ = server.build_update(1, round_index=1, send_threshold=0.0)
        server.mark_delivered(1, message)
        # Neighbor 2 never got anything: still a full update pending.
        message2, _ = server.build_update(2, round_index=1, send_threshold=0.0)
        assert message2.n_sent == 2

    def test_unknown_neighbor_rejected(self, model, data):
        server = make_server(model, data)
        with pytest.raises(ProtocolError):
            server.build_update(9, round_index=1, send_threshold=0.0)
        with pytest.raises(ProtocolError):
            server.mark_delivered(
                9, ParameterUpdate.dense(0, 1, np.zeros(2))
            )

    def test_receive_update_overlays_view(self, model, data):
        server = make_server(model, data)
        update = ParameterUpdate(
            sender=1,
            round_index=1,
            total_params=2,
            indices=np.array([1]),
            values=np.array([7.0]),
        )
        server.receive_update(update)
        np.testing.assert_array_equal(server.views[1], [0.0, 7.0])

    def test_receive_from_non_neighbor_rejected(self, model, data):
        server = make_server(model, data)
        with pytest.raises(ProtocolError):
            server.receive_update(ParameterUpdate.dense(9, 1, np.zeros(2)))

    def test_advance_views_copies(self, model, data):
        server = make_server(model, data)
        server.advance_views()
        server.views[1][0] = 99.0
        assert server.previous_views[1][0] == 0.0
