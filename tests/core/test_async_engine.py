"""The semi-synchronous bounded-staleness engine (`repro.core.async_engine`).

Three contracts pinned here:

* **Synchronous anchor** — `tau=0` with uniform clocks is bit-for-bit
  identical to the `ReferenceEngine` digest, clean or faulty; and because
  staleness manifests in *virtual time* rather than in values, even skewed
  clocks leave the `tau=0` trajectory untouched (only the makespan moves).
* **Bounded staleness** — the observed progress staleness never exceeds
  `tau`, runs are deterministic, and waiting time shrinks as `tau` grows.
* **Straggler tolerance** — with a patience configured, a 10x straggler is
  degraded to reweighted mixing instead of stalling the fleet: the fleet
  makespan decouples from the slowest node (the Fig. 9 story), at a
  bounded accuracy cost.
"""

import json

import numpy as np
import pytest

from repro.core.async_engine import SemiSyncEngine
from repro.core.config import SNAPConfig, StragglerStrategy
from repro.core.trainer import SNAPTrainer
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.faults.models import (
    GilbertElliottLinkFailures,
    IndependentCorruption,
    MarkovNodeFailures,
    ScheduledStragglers,
)
from repro.faults.plan import FaultPlan
from repro.models.logistic import LogisticRegression
from repro.network.timing import LinkTimingModel
from repro.testing import RunDigest
from repro.topology.graph import Topology

N_NODES = 6
EDGES = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]


def _binary_shards(seed=0, n_samples=40, n_features=5, n_nodes=N_NODES):
    rng = np.random.default_rng(seed)
    shards = []
    for _ in range(n_nodes):
        X = rng.normal(size=(n_samples, n_features))
        w = rng.normal(size=n_features)
        y = (X @ w + 0.3 * rng.normal(size=n_samples) > 0).astype(float)
        shards.append(Dataset(X, y))
    return shards


def _fault_plan(clocks=None):
    return FaultPlan(
        links=GilbertElliottLinkFailures(0.25, 0.5, seed=11),
        nodes=MarkovNodeFailures(0.12, 0.6, seed=12),
        corruption=IndependentCorruption(0.08, seed=13),
        clocks=clocks,
    )


def _run(engine, *, rounds=25, fault_plan=None, seed=0, **config_overrides):
    config_overrides.setdefault("optimize_weights", False)
    config = SNAPConfig(engine=engine, max_rounds=rounds, seed=7, **config_overrides)
    trainer = SNAPTrainer(
        LogisticRegression(5),
        _binary_shards(seed=seed),
        Topology(N_NODES, EDGES),
        config,
        fault_plan=fault_plan,
    )
    result = trainer.run(stop_on_convergence=False)
    return trainer, result


def _assert_identical(ref_pair, semi_pair):
    ref_digest = RunDigest.capture(*ref_pair)
    semi_digest = RunDigest.capture(*semi_pair)
    assert ref_digest == semi_digest, ref_digest.diff(semi_digest)


class TestEngineSelection:
    def test_trainer_builds_semisync_engine(self):
        trainer, _ = _run("semisync", rounds=1)
        assert isinstance(trainer.engine, SemiSyncEngine)
        assert trainer.engine.name == "semisync"

    def test_staleness_bound_must_be_non_negative_int(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(staleness_bound=-1)
        with pytest.raises(ConfigurationError):
            SNAPConfig(staleness_bound=1.5)

    def test_patience_must_be_non_negative(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(straggler_patience_s=-0.5)

    def test_timing_must_be_a_link_timing_model(self):
        with pytest.raises(ConfigurationError):
            SNAPConfig(timing="fast please")
        SNAPConfig(timing=LinkTimingModel())  # the real thing is accepted


class TestSynchronousAnchor:
    """tau=0: the event-driven engine collapses to the synchronous digest."""

    def test_clean_network_matches_reference_bit_for_bit(self):
        _assert_identical(_run("reference"), _run("semisync"))

    def test_fault_plan_matches_reference_bit_for_bit(self):
        _assert_identical(
            _run("reference", fault_plan=_fault_plan(), seed=1),
            _run("semisync", fault_plan=_fault_plan(), seed=1),
        )

    def test_reweight_strategy_matches_reference(self):
        kwargs = dict(straggler_strategy=StragglerStrategy.REWEIGHT, seed=2)
        _assert_identical(
            _run("reference", fault_plan=_fault_plan(), **kwargs),
            _run("semisync", fault_plan=_fault_plan(), **kwargs),
        )

    def test_skewed_clocks_change_time_but_not_values(self):
        """Staleness lives in virtual time: with tau=0 and no patience the
        barrier still enforces lockstep *values*, so a 10x straggler only
        stretches the makespan — the digest stays the reference's."""
        skewed = _run(
            "semisync",
            timing=LinkTimingModel(compute_s_per_round=1.0),
            fault_plan=FaultPlan(clocks=ScheduledStragglers({5: 10.0})),
        )
        _assert_identical(_run("reference"), skewed)
        semi = skewed[1].info["semi_sync"]
        # The slow node paces the fleet: 25 rounds at 10 s/round dominate.
        assert semi["makespan_s"] >= 25 * 10.0
        assert semi["left_behind"] == []
        assert semi["degraded_events"] == 0


class TestBoundedStaleness:
    def _straggler_run(self, tau, patience, rounds=20):
        return _run(
            "semisync",
            rounds=rounds,
            staleness_bound=tau,
            straggler_patience_s=patience,
            timing=LinkTimingModel(compute_s_per_round=1.0),
            fault_plan=FaultPlan(clocks=ScheduledStragglers({5: 10.0})),
        )

    def test_progress_staleness_never_exceeds_tau(self):
        for tau in (0, 2, 8):
            _, result = self._straggler_run(tau, patience=None)
            semi = result.info["semi_sync"]
            assert semi["max_progress_staleness"] <= tau
            # A bound > 0 is actually used under a 10x straggler.
            if tau > 0:
                assert semi["max_progress_staleness"] == tau

    def test_waiting_shrinks_as_tau_grows(self):
        blocked = []
        for tau in (0, 2, 8):
            _, result = self._straggler_run(tau, patience=None)
            blocked.append(result.info["semi_sync"]["blocked_time_s"])
        assert blocked[0] > blocked[1] > blocked[2]

    def test_runs_are_deterministic(self):
        first = self._straggler_run(2, patience=4.0)
        second = self._straggler_run(2, patience=4.0)
        _assert_identical(first, second)
        assert first[1].info["semi_sync"] == second[1].info["semi_sync"]

    def test_timing_summary_is_json_safe(self):
        _, result = self._straggler_run(2, patience=4.0)
        encoded = json.loads(json.dumps(result.info["semi_sync"]))
        for key in (
            "makespan_s",
            "fleet_makespan_s",
            "node_clock_s",
            "node_rounds",
            "left_behind",
            "degraded_events",
            "blocked_time_s",
            "max_progress_staleness",
            "stale_view_rounds",
        ):
            assert key in encoded

    def test_conservation_ledgers_balance_after_run(self):
        trainer, _ = self._straggler_run(2, patience=4.0)
        ledgers = trainer.engine.semi_sync_invariants()
        frames, bytes_ = ledgers["frames"], ledgers["bytes"]
        assert (
            frames["wire"] - frames["applied"] - frames["corrupted"]
            == frames["outstanding"]
            == frames["buffered"]
        )
        assert (
            bytes_["wire"] - bytes_["applied"] - bytes_["corrupted"]
            == bytes_["buffered"]
        )
        assert ledgers["monotonic_views"] is True


class TestDegradation:
    def test_patience_degrades_the_straggler_instead_of_stalling(self):
        _, result = _run(
            "semisync",
            staleness_bound=2,
            straggler_patience_s=4.0,
            timing=LinkTimingModel(compute_s_per_round=1.0),
            fault_plan=FaultPlan(clocks=ScheduledStragglers({5: 10.0})),
        )
        semi = result.info["semi_sync"]
        assert semi["degraded_events"] > 0
        assert semi["left_behind"] == [5]
        # The fleet decoupled from the slow node: synchronous execution
        # would be straggler-paced (25 rounds x 10 s), the degraded fleet
        # finishes in a small multiple of the healthy compute time.
        assert semi["fleet_makespan_s"] < (25 * 10.0) / 3
        assert np.all(np.isfinite(result.final_params))

    def test_left_behind_node_keeps_executing(self):
        trainer, result = _run(
            "semisync",
            rounds=15,
            staleness_bound=1,
            straggler_patience_s=2.0,
            timing=LinkTimingModel(compute_s_per_round=1.0),
            fault_plan=FaultPlan(clocks=ScheduledStragglers({5: 10.0})),
        )
        rounds_done = result.info["semi_sync"]["node_rounds"]
        assert rounds_done["5"] >= 1  # slow, not abandoned
        assert all(rounds_done[str(n)] == 15 for n in range(5))


@pytest.mark.chaos
class TestStragglerSpeedup:
    """The ISSUE acceptance bar: N=32, one 10x straggler — semi-sync beats
    the synchronous wall-clock >= 3x, accuracy within 2 points."""

    def _workload_run(self, *, tau, patience):
        from repro.simulation.experiments import credit_svm_workload

        workload = credit_svm_workload(
            n_servers=32, n_train=1_600, n_test=400, seed=3
        )
        config = SNAPConfig(
            engine="semisync",
            max_rounds=60,
            seed=7,
            optimize_weights=False,
            staleness_bound=tau,
            straggler_patience_s=patience,
            timing=LinkTimingModel(compute_s_per_round=1.0),
        )
        trainer = SNAPTrainer(
            workload.model,
            workload.shards,
            workload.topology,
            config,
            fault_plan=FaultPlan(clocks=ScheduledStragglers({31: 10.0})),
        )
        result = trainer.run(
            stop_on_convergence=False, test_set=workload.test_set
        )
        return result

    def test_semisync_beats_synchronous_3x_within_2_accuracy_points(self):
        # tau=0 without patience IS the synchronous barrier under the same
        # skewed clocks (digest-equal to ReferenceEngine), so its makespan
        # is the synchronous wall-clock baseline.
        sync = self._workload_run(tau=0, patience=None)
        semi = self._workload_run(tau=2, patience=4.0)
        sync_makespan = sync.info["semi_sync"]["fleet_makespan_s"]
        semi_makespan = semi.info["semi_sync"]["fleet_makespan_s"]
        assert sync_makespan / semi_makespan >= 3.0
        assert abs(sync.final_accuracy - semi.final_accuracy) <= 0.02
