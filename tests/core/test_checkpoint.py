"""Tests for checkpoint/resume of SNAP training runs."""

import numpy as np
import pytest

from repro.core import SNAPConfig, SNAPTrainer
from repro.core.checkpoint import restore_checkpoint, save_checkpoint
from repro.core.config import SelectionPolicy
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.exceptions import ConfigurationError
from repro.models.ridge import RidgeRegression
from repro.topology.generators import random_topology


@pytest.fixture
def setup(rng):
    n, p = 150, 3
    X = rng.normal(size=(n, p))
    y = X @ rng.normal(size=p) + 0.1 * rng.normal(size=n)
    shards = iid_partition(Dataset(X, y), 4, seed=0)
    model = RidgeRegression(p, regularization=0.1)
    topo = random_topology(4, 2.5, seed=1)
    return model, shards, topo


def build_trainer(setup, selection=SelectionPolicy.APE):
    model, shards, topo = setup
    return SNAPTrainer(
        model,
        shards,
        topo,
        config=SNAPConfig(selection=selection, seed=0),
    )


@pytest.mark.parametrize(
    "selection", [SelectionPolicy.APE, SelectionPolicy.CHANGED_ONLY]
)
def test_resume_is_bit_identical(setup, tmp_path, selection):
    """10 rounds + checkpoint + 10 rounds == 20 uninterrupted rounds."""
    reference = build_trainer(setup, selection)
    reference.run(max_rounds=20, stop_on_convergence=False)

    first_half = build_trainer(setup, selection)
    first_half.run(max_rounds=10, stop_on_convergence=False)
    path = save_checkpoint(first_half, tmp_path / "ckpt.npz")

    resumed = build_trainer(setup, selection)
    restore_checkpoint(resumed, path)
    resumed.run(max_rounds=10, stop_on_convergence=False)

    np.testing.assert_array_equal(
        resumed.stacked_params(), reference.stacked_params()
    )


def test_restore_recovers_all_server_state(setup, tmp_path):
    trainer = build_trainer(setup)
    trainer.run(max_rounds=7, stop_on_convergence=False)
    path = save_checkpoint(trainer, tmp_path / "state.npz")

    other = build_trainer(setup)
    restore_checkpoint(other, path)
    for original, restored in zip(trainer.servers, other.servers):
        np.testing.assert_array_equal(original.params, restored.params)
        np.testing.assert_array_equal(
            original.previous_params, restored.previous_params
        )
        assert original.iteration == restored.iteration
        assert set(original.views) == set(restored.views)
        for neighbor in original.views:
            np.testing.assert_array_equal(
                original.views[neighbor], restored.views[neighbor]
            )
            np.testing.assert_array_equal(
                original.last_sent[neighbor], restored.last_sent[neighbor]
            )
        assert original.fresh == restored.fresh
    for a, b in zip(trainer._schedules, other._schedules):
        assert a.state_dict() == b.state_dict()


def test_resume_is_exact_under_round_indexed_failures(setup, tmp_path):
    """Failure models sample by round index; a resumed run must continue the
    numbering so the outage pattern matches an uninterrupted run exactly."""
    from repro.topology.failures import (
        IndependentLinkFailures,
        IndependentNodeFailures,
    )

    model, shards, topo = setup

    def make():
        return SNAPTrainer(
            model,
            shards,
            topo,
            config=SNAPConfig(seed=0),
            failure_model=IndependentLinkFailures(0.1, seed=3),
            node_failure_model=IndependentNodeFailures(0.05, seed=4),
        )

    reference = make()
    reference.run(max_rounds=24, stop_on_convergence=False)

    first = make()
    first.run(max_rounds=12, stop_on_convergence=False)
    path = save_checkpoint(first, tmp_path / "failures.npz")
    resumed = make()
    restore_checkpoint(resumed, path)
    assert resumed.rounds_completed == 12
    result = resumed.run(max_rounds=12, stop_on_convergence=False)

    np.testing.assert_array_equal(
        resumed.stacked_params(), reference.stacked_params()
    )
    # round records continue the global numbering
    assert [r.round_index for r in result.rounds] == list(range(13, 25))


def test_checkpoint_before_first_round(setup, tmp_path):
    trainer = build_trainer(setup)
    path = save_checkpoint(trainer, tmp_path / "fresh.npz")
    other = build_trainer(setup)
    restore_checkpoint(other, path)
    assert other.servers[0].previous_params is None
    other.run(max_rounds=3, stop_on_convergence=False)


class TestMismatchRejection:
    def test_wrong_server_count(self, setup, tmp_path, rng):
        trainer = build_trainer(setup)
        path = save_checkpoint(trainer, tmp_path / "a.npz")
        model, _, _ = setup
        n, p = 90, 3
        X = rng.normal(size=(n, p))
        y = rng.normal(size=n)
        other = SNAPTrainer(
            model,
            iid_partition(Dataset(X, y), 3, seed=0),
            random_topology(3, 2.0, seed=2),
            config=SNAPConfig(seed=0),
        )
        with pytest.raises(ConfigurationError, match="servers"):
            restore_checkpoint(other, path)

    def test_wrong_model_dimension(self, setup, tmp_path, rng):
        trainer = build_trainer(setup)
        path = save_checkpoint(trainer, tmp_path / "b.npz")
        _, _, topo = setup
        bigger = RidgeRegression(5, regularization=0.1)
        n = 120
        X = rng.normal(size=(n, 5))
        y = rng.normal(size=n)
        other = SNAPTrainer(
            bigger,
            iid_partition(Dataset(X, y), 4, seed=0),
            topo,
            config=SNAPConfig(seed=0),
        )
        with pytest.raises(ConfigurationError, match="dimension"):
            restore_checkpoint(other, path)

    def test_non_checkpoint_file_rejected(self, setup, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ConfigurationError, match="not a SNAP checkpoint"):
            restore_checkpoint(build_trainer(setup), path)

    def test_snap0_checkpoint_into_ape_trainer_rejected(self, setup, tmp_path):
        snap0 = build_trainer(setup, SelectionPolicy.CHANGED_ONLY)
        path = save_checkpoint(snap0, tmp_path / "c.npz")
        ape = build_trainer(setup, SelectionPolicy.APE)
        with pytest.raises(
            ConfigurationError, match="'changed_only' run.*configured for 'ape'"
        ):
            restore_checkpoint(ape, path)


class TestCrashSafety:
    """save_checkpoint must be atomic: a crash mid-write never corrupts."""

    def test_interrupted_save_preserves_previous_checkpoint(
        self, setup, tmp_path, monkeypatch
    ):
        trainer = build_trainer(setup)
        trainer.run(max_rounds=5, stop_on_convergence=False)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        good_bytes = path.read_bytes()

        trainer.run(max_rounds=3, stop_on_convergence=False)

        def dies_mid_write(stream, **arrays):
            stream.write(b"partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", dies_mid_write)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(trainer, path)

        # The old checkpoint survived intact and still restores.
        assert path.read_bytes() == good_bytes
        resumed = build_trainer(setup)
        restore_checkpoint(resumed, path)

    def test_interrupted_save_leaves_no_temp_files(
        self, setup, tmp_path, monkeypatch
    ):
        trainer = build_trainer(setup)
        trainer.run(max_rounds=2, stop_on_convergence=False)

        def dies(stream, **arrays):
            raise OSError("boom")

        monkeypatch.setattr(np, "savez", dies)
        with pytest.raises(OSError):
            save_checkpoint(trainer, tmp_path / "ckpt.npz")
        assert list(tmp_path.iterdir()) == []

    def test_successful_save_leaves_only_the_checkpoint(self, setup, tmp_path):
        trainer = build_trainer(setup)
        trainer.run(max_rounds=2, stop_on_convergence=False)
        final = save_checkpoint(trainer, tmp_path / "ckpt.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt.npz"]
        assert final == tmp_path / "ckpt.npz"

    def test_checkpoint_restart_is_bit_for_bit_after_overwrite(
        self, setup, tmp_path
    ):
        """Overwriting an existing checkpoint (the crash-safe rename path)
        still restores bit-for-bit."""
        reference = build_trainer(setup)
        reference.run(max_rounds=12, stop_on_convergence=False)

        trainer = build_trainer(setup)
        path = tmp_path / "ckpt.npz"
        trainer.run(max_rounds=3, stop_on_convergence=False)
        save_checkpoint(trainer, path)
        trainer.run(max_rounds=3, stop_on_convergence=False)
        save_checkpoint(trainer, path)  # atomic replace of the first

        resumed = build_trainer(setup)
        restore_checkpoint(resumed, path)
        resumed.run(max_rounds=6, stop_on_convergence=False)
        np.testing.assert_array_equal(
            resumed.stacked_params(), reference.stacked_params()
        )
