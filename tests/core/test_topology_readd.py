"""Elastic link re-adds through the trainer stack.

Three layers, bottom up: the server's seeded ``swap_topology`` contract
(a new link must arrive in the round-zero "exact copy" condition), the
trainer's churn-recovery re-add path behind the ``topology_readd`` config
gate, and the gate's default-off protection of the pinned prune-only
differential scenarios.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SNAPConfig
from repro.core.server import EdgeServer
from repro.core.trainer import SNAPTrainer
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError, ProtocolError
from repro.models.logistic import LogisticRegression
from repro.topology.failures import ScheduledNodeFailures
from repro.topology.graph import Topology


def ring_with_chords(n: int, chords) -> Topology:
    edges = [(i, (i + 1) % n) for i in range(n)] + list(chords)
    return Topology(n, edges)


#: Parallel hub chords the optimizer drives to (near) zero weight — the
#: prune pool the churn-recovery re-add draws from (all incident to 0).
HUB_CHORDS = [(0, 2), (0, 4), (0, 6), (0, 8), (0, 10)]


def make_shards(n_nodes: int, n_features: int = 5, n_samples: int = 30):
    rng = np.random.default_rng([13, n_nodes])
    shards = []
    for _ in range(n_nodes):
        X = rng.normal(size=(n_samples, n_features))
        w = rng.normal(size=n_features)
        y = (X @ w + 0.3 * rng.normal(size=n_samples) > 0).astype(float)
        shards.append(Dataset(X, y))
    return shards


def build_trainer(topology, config, **kwargs):
    return SNAPTrainer(
        LogisticRegression(5),
        make_shards(topology.n_nodes),
        topology,
        config,
        **kwargs,
    )


class TestConfigGate:
    def test_readd_requires_the_adaptive_controller(self):
        with pytest.raises(ConfigurationError, match="topology_readd"):
            SNAPConfig(topology_readd=True)

    def test_readd_with_adaptive_topology_is_accepted(self):
        config = SNAPConfig(adaptive_topology=True, topology_readd=True)
        assert config.topology_readd

    def test_default_is_off(self):
        assert SNAPConfig().topology_readd is False


class TestSeededServerSwap:
    def make_server(self, rng):
        X = rng.normal(size=(20, 5))
        w = rng.normal(size=5)
        y = (X @ w > 0).astype(float)
        model = LogisticRegression(5)
        return EdgeServer(
            node_id=0,
            model=model,
            X=X,
            y=y,
            neighbors=(1, 2),
            weight_row=np.array([0.6, 0.2, 0.2, 0.0]),
            alpha=0.1,
            initial_params=np.zeros(model.n_params),
        )

    GROWN_ROW = np.array([0.4, 0.2, 0.2, 0.2])

    def test_new_link_without_a_seed_is_rejected(self, rng):
        server = self.make_server(rng)
        with pytest.raises(ProtocolError, match="without seed views"):
            server.swap_topology((1, 2, 3), self.GROWN_ROW, 0.1)

    def test_seeds_for_surviving_links_are_rejected(self, rng):
        server = self.make_server(rng)
        seeds = {3: np.ones(6), 1: np.ones(6)}
        with pytest.raises(ProtocolError, match="not.*new"):
            server.swap_topology((1, 2, 3), self.GROWN_ROW, 0.1, new_views=seeds)

    def test_seeded_link_starts_in_the_round_zero_condition(self, rng):
        server = self.make_server(rng)
        seed = rng.normal(size=server.params.shape)
        server.swap_topology(
            (1, 2, 3), self.GROWN_ROW, 0.1, new_views={3: seed}
        )
        # views holds the peer's exact parameters, last_sent our own, and
        # the link is fresh — identical to how round zero wires a link.
        np.testing.assert_array_equal(server.views[3], seed)
        assert server.views[3] is not seed  # defensive copy
        np.testing.assert_array_equal(server.last_sent[3], server.params)
        assert server.fresh[3]
        assert set(server.neighbors) == {1, 2, 3}


class TestTrainerReaddPath:
    def churn_config(self, readd: bool) -> SNAPConfig:
        return SNAPConfig(
            engine="reference",
            invariants="strict",
            optimize_weights=True,
            weight_iterations=300,
            adaptive_topology=True,
            topology_readd=readd,
            topology_reoptimize_every=5,
            topology_prune_threshold=0.05,
            max_rounds=9,
            seed=11,
        )

    def run_with_churn(self, readd: bool) -> SNAPTrainer:
        # Periodic prune at round 5 retires near-zero hub chords; node 0
        # goes down at round 7 and recovers at 8, so the churn re-solve
        # fires with node 0's pruned links as re-add candidates.
        trainer = build_trainer(
            ring_with_chords(12, HUB_CHORDS),
            self.churn_config(readd),
            node_failure_model=ScheduledNodeFailures({7: [0]}),
        )
        trainer.run(stop_on_convergence=False)
        return trainer

    @pytest.fixture(scope="class")
    def readd_trainer(self):
        return self.run_with_churn(readd=True)

    def test_churn_recovery_readds_the_hub_links(self, readd_trainer):
        controller = readd_trainer._topology_controller
        churn_swaps = [s for s in controller.swaps if s.reason == "churn"]
        assert churn_swaps
        added = [edge for swap in churn_swaps for edge in swap.added_edges]
        assert added
        assert all(0 in edge for edge in added)
        for edge in added:
            assert edge in readd_trainer.topology.edges

    def test_every_layer_matches_the_regrown_topology(self, readd_trainer):
        topology = readd_trainer.topology
        for server in readd_trainer.servers:
            expected = set(topology.neighbors(server.node_id))
            assert set(server.neighbors) == expected
            assert set(server.views) == expected
            assert set(server.last_sent) == expected

    def test_strict_monitor_revalidated_every_swap(self, readd_trainer):
        controller = readd_trainer._topology_controller
        assert readd_trainer.monitor.checks["topology-swap"] == len(
            controller.swaps
        )

    def test_gate_off_keeps_the_prune_only_behaviour(self):
        # The PR-8 differential scenarios are pinned to prune-only swaps;
        # with the gate at its default the same churn run re-adds nothing.
        trainer = self.run_with_churn(readd=False)
        controller = trainer._topology_controller
        assert all(swap.added_edges == () for swap in controller.swaps)
        assert controller.pruned_ever  # the pool exists, untouched


class TestManualSeededSwap:
    def test_readd_seeds_views_with_the_peers_exact_parameters(self):
        config = SNAPConfig(
            engine="reference",
            optimize_weights=True,
            weight_iterations=120,
            adaptive_topology=True,
            topology_reoptimize_every=10_000,
            topology_prune_threshold=0.0,
            max_rounds=4,
            seed=3,
        )
        trainer = build_trainer(ring_with_chords(8, [(0, 3), (2, 6)]), config)
        trainer.run(stop_on_convergence=False)
        controller = trainer._topology_controller

        drop = controller.propose(
            5, reason="membership", drop_candidates=((0, 3),)
        )
        trainer._apply_topology_swap(drop)
        assert 3 not in trainer.servers[0].views

        grow = controller.propose(
            6, reason="membership", add_candidates=((0, 3),)
        )
        assert grow.added_edges == ((0, 3),)
        trainer._apply_topology_swap(grow)
        np.testing.assert_array_equal(
            trainer.servers[0].views[3], trainer.servers[3].params
        )
        np.testing.assert_array_equal(
            trainer.servers[3].views[0], trainer.servers[0].params
        )
        np.testing.assert_array_equal(
            trainer.servers[0].last_sent[3], trainer.servers[0].params
        )
        assert trainer.servers[0].fresh[3]
        assert trainer.servers[3].fresh[0]
