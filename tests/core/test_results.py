"""Tests for repro.results — records, traces, persistence."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.results import RoundRecord, TrainingResult


@pytest.fixture
def result():
    rounds = [
        RoundRecord(1, 1.0, 0.5, 100, 200, 10, accuracy=None),
        RoundRecord(2, 0.8, 0.3, 90, 180, 9, accuracy=0.7),
        RoundRecord(3, 0.7, 0.1, 50, 100, 5, accuracy=None),
    ]
    return TrainingResult(
        scheme="snap",
        rounds=rounds,
        converged_at=3,
        final_params=np.array([1.0, -2.0, 3.0]),
        total_bytes=240,
        total_cost=480,
        final_accuracy=0.75,
        info={"alpha": np.float64(0.1), "weight_problem": "metropolis"},
    )


class TestTraces:
    def test_counts(self, result):
        assert result.n_rounds == 3
        assert result.iterations_to_converge == 3

    def test_non_converged_counts_rounds(self, result):
        result.converged_at = None
        assert result.iterations_to_converge == 3

    def test_loss_and_bytes_traces(self, result):
        assert result.loss_trace() == [1.0, 0.8, 0.7]
        assert result.bytes_trace() == [100, 90, 50]

    def test_accuracy_trace_filters_unevaluated(self, result):
        assert result.accuracy_trace() == [(2, 0.7)]

    def test_summary_fields(self, result):
        summary = result.summary()
        assert summary["scheme"] == "snap"
        assert summary["iterations_to_converge"] == 3
        assert summary["final_loss"] == 0.7


class TestPersistence:
    def test_round_trip_through_dict(self, result):
        rebuilt = TrainingResult.from_dict(result.to_dict())
        assert rebuilt.scheme == result.scheme
        assert rebuilt.converged_at == result.converged_at
        np.testing.assert_array_equal(rebuilt.final_params, result.final_params)
        assert rebuilt.loss_trace() == result.loss_trace()
        assert rebuilt.accuracy_trace() == result.accuracy_trace()
        assert rebuilt.info["weight_problem"] == "metropolis"

    def test_numpy_scalars_in_info_become_json_safe(self, result):
        import json

        json.dumps(result.to_dict())  # must not raise

    def test_save_and_load(self, result, tmp_path):
        path = result.save(tmp_path / "result.json")
        loaded = TrainingResult.load(path)
        assert loaded.total_bytes == result.total_bytes
        assert loaded.rounds[1].accuracy == 0.7

    def test_malformed_payload_rejected(self):
        with pytest.raises(DataError):
            TrainingResult.from_dict({"scheme": "snap"})

    def test_real_run_round_trips(self, tmp_path):
        """A result produced by an actual trainer survives persistence."""
        from repro.simulation import credit_svm_workload, run_scheme

        workload = credit_svm_workload(
            n_servers=4, average_degree=2.0, n_train=200, n_test=60, seed=0
        )
        result = run_scheme(
            "snap", workload, max_rounds=5, stop_on_convergence=False
        )
        loaded = TrainingResult.load(result.save(tmp_path / "run.json"))
        assert loaded.n_rounds == result.n_rounds
        np.testing.assert_allclose(loaded.final_params, result.final_params)
