"""Tests for repro.core.selection.select_parameters."""

import numpy as np
import pytest

from repro.core.selection import select_parameters
from repro.exceptions import ProtocolError


class TestSelection:
    def test_sends_only_changes_above_threshold(self):
        current = np.array([1.0, 2.0, 3.0, 4.0])
        reference = np.array([1.0, 2.05, 3.5, 4.0])
        selection = select_parameters(current, reference, threshold=0.1)
        np.testing.assert_array_equal(selection.indices, [2])
        np.testing.assert_array_equal(selection.values, [3.0])

    def test_zero_threshold_sends_any_nonzero_change(self):
        current = np.array([1.0, 2.0, 3.0])
        reference = np.array([1.0, 2.0 + 1e-15, 3.0])
        selection = select_parameters(current, reference, threshold=0.0)
        np.testing.assert_array_equal(selection.indices, [1])

    def test_exact_ties_are_suppressed_even_at_zero_threshold(self):
        current = np.array([1.0, 2.0])
        selection = select_parameters(current, current.copy(), threshold=0.0)
        assert selection.indices.size == 0
        assert selection.suppressed_max == 0.0

    def test_suppressed_max_is_largest_suppressed_change(self):
        current = np.array([1.0, 2.0, 3.0])
        reference = np.array([1.02, 2.08, 4.0])
        selection = select_parameters(current, reference, threshold=0.1)
        np.testing.assert_array_equal(selection.indices, [2])
        assert selection.suppressed_max == pytest.approx(0.08)

    def test_threshold_boundary_is_strict(self):
        # 1.5 - 1.25 = 0.25 exactly in binary floating point.
        current = np.array([1.5])
        reference = np.array([1.25])
        at_boundary = select_parameters(current, reference, threshold=0.25)
        assert at_boundary.indices.size == 0  # strictly greater than required

    def test_indices_are_sorted(self):
        rng = np.random.default_rng(0)
        current = rng.normal(size=50)
        reference = rng.normal(size=50)
        selection = select_parameters(current, reference, threshold=0.5)
        assert np.all(np.diff(selection.indices) > 0)

    def test_values_align_with_indices(self):
        current = np.array([10.0, 20.0, 30.0])
        reference = np.zeros(3)
        selection = select_parameters(current, reference, threshold=15.0)
        np.testing.assert_array_equal(selection.indices, [1, 2])
        np.testing.assert_array_equal(selection.values, [20.0, 30.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            select_parameters(np.zeros(3), np.zeros(4), 0.1)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ProtocolError):
            select_parameters(np.zeros(3), np.zeros(3), -0.1)
