"""Result records shared by SNAP and every baseline trainer.

A training run produces one :class:`TrainingResult`: a per-round metric
trace plus the aggregates the paper's figures plot (iterations to converge,
total bytes, total hop-weighted cost, final accuracy). Results serialize to
plain JSON so sweeps can be archived and re-analyzed without rerunning.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import DataError


@dataclass(frozen=True)
class RoundRecord:
    """Metrics observed after one training iteration.

    Attributes
    ----------
    round_index:
        1-based iteration number.
    mean_loss:
        Mean of the servers' local losses at their own parameters (for the
        centralized baseline: the global loss).
    consensus_error:
        RMS deviation of the per-server parameters from their mean
        (0 for schemes with a single parameter copy).
    bytes_sent:
        Raw bytes injected into the network this round.
    cost:
        Hop-weighted communication cost this round.
    params_sent:
        Total parameter values transmitted this round across all flows.
    accuracy:
        Test accuracy of the network-average model, when evaluated this
        round (``None`` otherwise).
    stale_links:
        Directed neighbor links whose update was *not* delivered this round
        (the receiver fell back to its cached view — the straggler rule).
        0 for schemes without per-link delivery.
    max_staleness:
        Worst per-link staleness after this round: the largest number of
        consecutive rounds any receiver has gone without a fresh update from
        some neighbor. 0 when every link delivered.
    connected:
        Whether the delivered-message graph spans the whole network this
        round (effective connectivity). A round that leaves the graph
        partitioned cannot mix information across the cut.
    """

    round_index: int
    mean_loss: float
    consensus_error: float
    bytes_sent: int
    cost: int
    params_sent: int
    accuracy: float | None = None
    stale_links: int = 0
    max_staleness: int = 0
    connected: bool = True


class RoundTrace:
    """Columnar sequence of :class:`RoundRecord`.

    Stores the per-round trace as parallel numpy arrays (grown
    geometrically) instead of one frozen dataclass per round, so a
    N=4096 × hundreds-of-rounds run keeps O(rounds) flat array memory
    rather than millions of Python objects. Reads materialize
    :class:`RoundRecord` on demand, so the trace is a drop-in
    ``Sequence[RoundRecord]`` — iteration, indexing (including negative
    indices and slices), ``len`` and equality against a list of records
    all behave like the list it replaces.
    """

    __slots__ = (
        "_n",
        "_round_index",
        "_mean_loss",
        "_consensus_error",
        "_bytes_sent",
        "_cost",
        "_params_sent",
        "_accuracy",
        "_has_accuracy",
        "_stale_links",
        "_max_staleness",
        "_connected",
    )

    _INITIAL = 64

    def __init__(self, records=()):
        self._n = 0
        self._round_index = np.zeros(self._INITIAL, dtype=np.int64)
        self._mean_loss = np.zeros(self._INITIAL, dtype=np.float64)
        self._consensus_error = np.zeros(self._INITIAL, dtype=np.float64)
        self._bytes_sent = np.zeros(self._INITIAL, dtype=np.int64)
        self._cost = np.zeros(self._INITIAL, dtype=np.int64)
        self._params_sent = np.zeros(self._INITIAL, dtype=np.int64)
        self._accuracy = np.zeros(self._INITIAL, dtype=np.float64)
        self._has_accuracy = np.zeros(self._INITIAL, dtype=bool)
        self._stale_links = np.zeros(self._INITIAL, dtype=np.int64)
        self._max_staleness = np.zeros(self._INITIAL, dtype=np.int64)
        self._connected = np.zeros(self._INITIAL, dtype=bool)
        for record in records:
            self.append(record)

    def _grow(self) -> None:
        new_size = self._round_index.shape[0] * 2
        for name in self.__slots__[1:]:
            old = getattr(self, name)
            grown = np.zeros(new_size, dtype=old.dtype)
            grown[: old.shape[0]] = old
            setattr(self, name, grown)

    def append(self, record: RoundRecord) -> None:
        """Append one record's fields to the columnar store."""
        if self._n == self._round_index.shape[0]:
            self._grow()
        i = self._n
        self._round_index[i] = record.round_index
        self._mean_loss[i] = record.mean_loss
        self._consensus_error[i] = record.consensus_error
        self._bytes_sent[i] = record.bytes_sent
        self._cost[i] = record.cost
        self._params_sent[i] = record.params_sent
        if record.accuracy is not None:
            self._accuracy[i] = record.accuracy
            self._has_accuracy[i] = True
        self._stale_links[i] = record.stale_links
        self._max_staleness[i] = record.max_staleness
        self._connected[i] = record.connected
        self._n += 1

    def _materialize(self, i: int) -> RoundRecord:
        return RoundRecord(
            round_index=int(self._round_index[i]),
            mean_loss=float(self._mean_loss[i]),
            consensus_error=float(self._consensus_error[i]),
            bytes_sent=int(self._bytes_sent[i]),
            cost=int(self._cost[i]),
            params_sent=int(self._params_sent[i]),
            accuracy=float(self._accuracy[i]) if self._has_accuracy[i] else None,
            stale_links=int(self._stale_links[i]),
            max_staleness=int(self._max_staleness[i]),
            connected=bool(self._connected[i]),
        )

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._materialize(i) for i in range(*index.indices(self._n))]
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError("RoundTrace index out of range")
        return self._materialize(index)

    def __iter__(self):
        for i in range(self._n):
            yield self._materialize(i)

    def __eq__(self, other) -> bool:
        if isinstance(other, (RoundTrace, list, tuple)):
            return len(self) == len(other) and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"RoundTrace(n_rounds={self._n})"

    # Columnar views (no materialization) for streaming consumers.

    def loss_array(self) -> np.ndarray:
        """Per-round mean losses as a float64 array view."""
        return self._mean_loss[: self._n]

    def bytes_array(self) -> np.ndarray:
        """Per-round raw bytes as an int64 array view."""
        return self._bytes_sent[: self._n]


@dataclass
class TrainingResult:
    """Complete outcome of one training run.

    Attributes
    ----------
    scheme:
        Scheme label (``"snap"``, ``"snap0"``, ``"sno"``, ``"ps"``,
        ``"terngrad"``, ``"centralized"``).
    rounds:
        Per-round metric records, in order.
    converged_at:
        First round at which the convergence detector fired, or ``None`` if
        the run hit its round cap without converging.
    final_params:
        The network-average parameter vector at the end of the run.
    total_bytes:
        Raw bytes summed over the whole run.
    total_cost:
        Hop-weighted cost summed over the whole run.
    final_accuracy:
        Test accuracy of ``final_params`` (``None`` when no test set given).
    info:
        Free-form extras (step size, weight-matrix report, ...).
    """

    scheme: str
    rounds: list[RoundRecord]
    converged_at: int | None
    final_params: np.ndarray
    total_bytes: int
    total_cost: int
    final_accuracy: float | None = None
    info: dict = field(default_factory=dict)

    @property
    def n_rounds(self) -> int:
        """Number of iterations actually run."""
        return len(self.rounds)

    @property
    def iterations_to_converge(self) -> int:
        """``converged_at`` if converged, else the number of rounds run.

        This is the quantity plotted on the y-axis of Figs. 5, 6 and 9.
        """
        return self.converged_at if self.converged_at is not None else self.n_rounds

    def loss_trace(self) -> list[float]:
        """Per-round mean losses."""
        return [record.mean_loss for record in self.rounds]

    def bytes_trace(self) -> list[int]:
        """Per-round raw bytes (the Fig. 4(b) series)."""
        return [record.bytes_sent for record in self.rounds]

    def accuracy_trace(self) -> list[tuple[int, float]]:
        """``(round, accuracy)`` pairs for rounds where accuracy was evaluated."""
        return [
            (record.round_index, record.accuracy)
            for record in self.rounds
            if record.accuracy is not None
        ]

    def summary(self) -> dict:
        """Flat dictionary of the headline aggregates (for report tables)."""
        return {
            "scheme": self.scheme,
            "rounds": self.n_rounds,
            "converged_at": self.converged_at,
            "iterations_to_converge": self.iterations_to_converge,
            "total_bytes": self.total_bytes,
            "total_cost": self.total_cost,
            "final_accuracy": self.final_accuracy,
            "final_loss": self.rounds[-1].mean_loss if self.rounds else None,
        }

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dictionary with the full per-round trace."""
        payload = {
            "scheme": self.scheme,
            "rounds": [asdict(record) for record in self.rounds],
            "converged_at": self.converged_at,
            "final_params": np.asarray(self.final_params, dtype=float).tolist(),
            "total_bytes": int(self.total_bytes),
            "total_cost": int(self.total_cost),
            "final_accuracy": self.final_accuracy,
            "info": _jsonable(self.info),
        }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainingResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            rounds = [RoundRecord(**record) for record in payload["rounds"]]
            return cls(
                scheme=payload["scheme"],
                rounds=rounds,
                converged_at=payload["converged_at"],
                final_params=np.asarray(payload["final_params"], dtype=float),
                total_bytes=int(payload["total_bytes"]),
                total_cost=int(payload["total_cost"]),
                final_accuracy=payload.get("final_accuracy"),
                info=payload.get("info", {}),
            )
        except (KeyError, TypeError) as error:
            raise DataError(f"malformed TrainingResult payload: {error}") from error

    def save(self, path: str | Path) -> Path:
        """Write the result as JSON; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "TrainingResult":
        """Read a result previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays so ``json.dumps`` accepts them."""
    if isinstance(value, dict):
        return {key: _jsonable(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(inner) for inner in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value
