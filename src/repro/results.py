"""Result records shared by SNAP and every baseline trainer.

A training run produces one :class:`TrainingResult`: a per-round metric
trace plus the aggregates the paper's figures plot (iterations to converge,
total bytes, total hop-weighted cost, final accuracy). Results serialize to
plain JSON so sweeps can be archived and re-analyzed without rerunning.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import DataError


@dataclass(frozen=True)
class RoundRecord:
    """Metrics observed after one training iteration.

    Attributes
    ----------
    round_index:
        1-based iteration number.
    mean_loss:
        Mean of the servers' local losses at their own parameters (for the
        centralized baseline: the global loss).
    consensus_error:
        RMS deviation of the per-server parameters from their mean
        (0 for schemes with a single parameter copy).
    bytes_sent:
        Raw bytes injected into the network this round.
    cost:
        Hop-weighted communication cost this round.
    params_sent:
        Total parameter values transmitted this round across all flows.
    accuracy:
        Test accuracy of the network-average model, when evaluated this
        round (``None`` otherwise).
    stale_links:
        Directed neighbor links whose update was *not* delivered this round
        (the receiver fell back to its cached view — the straggler rule).
        0 for schemes without per-link delivery.
    max_staleness:
        Worst per-link staleness after this round: the largest number of
        consecutive rounds any receiver has gone without a fresh update from
        some neighbor. 0 when every link delivered.
    connected:
        Whether the delivered-message graph spans the whole network this
        round (effective connectivity). A round that leaves the graph
        partitioned cannot mix information across the cut.
    """

    round_index: int
    mean_loss: float
    consensus_error: float
    bytes_sent: int
    cost: int
    params_sent: int
    accuracy: float | None = None
    stale_links: int = 0
    max_staleness: int = 0
    connected: bool = True


@dataclass
class TrainingResult:
    """Complete outcome of one training run.

    Attributes
    ----------
    scheme:
        Scheme label (``"snap"``, ``"snap0"``, ``"sno"``, ``"ps"``,
        ``"terngrad"``, ``"centralized"``).
    rounds:
        Per-round metric records, in order.
    converged_at:
        First round at which the convergence detector fired, or ``None`` if
        the run hit its round cap without converging.
    final_params:
        The network-average parameter vector at the end of the run.
    total_bytes:
        Raw bytes summed over the whole run.
    total_cost:
        Hop-weighted cost summed over the whole run.
    final_accuracy:
        Test accuracy of ``final_params`` (``None`` when no test set given).
    info:
        Free-form extras (step size, weight-matrix report, ...).
    """

    scheme: str
    rounds: list[RoundRecord]
    converged_at: int | None
    final_params: np.ndarray
    total_bytes: int
    total_cost: int
    final_accuracy: float | None = None
    info: dict = field(default_factory=dict)

    @property
    def n_rounds(self) -> int:
        """Number of iterations actually run."""
        return len(self.rounds)

    @property
    def iterations_to_converge(self) -> int:
        """``converged_at`` if converged, else the number of rounds run.

        This is the quantity plotted on the y-axis of Figs. 5, 6 and 9.
        """
        return self.converged_at if self.converged_at is not None else self.n_rounds

    def loss_trace(self) -> list[float]:
        """Per-round mean losses."""
        return [record.mean_loss for record in self.rounds]

    def bytes_trace(self) -> list[int]:
        """Per-round raw bytes (the Fig. 4(b) series)."""
        return [record.bytes_sent for record in self.rounds]

    def accuracy_trace(self) -> list[tuple[int, float]]:
        """``(round, accuracy)`` pairs for rounds where accuracy was evaluated."""
        return [
            (record.round_index, record.accuracy)
            for record in self.rounds
            if record.accuracy is not None
        ]

    def summary(self) -> dict:
        """Flat dictionary of the headline aggregates (for report tables)."""
        return {
            "scheme": self.scheme,
            "rounds": self.n_rounds,
            "converged_at": self.converged_at,
            "iterations_to_converge": self.iterations_to_converge,
            "total_bytes": self.total_bytes,
            "total_cost": self.total_cost,
            "final_accuracy": self.final_accuracy,
            "final_loss": self.rounds[-1].mean_loss if self.rounds else None,
        }

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dictionary with the full per-round trace."""
        payload = {
            "scheme": self.scheme,
            "rounds": [asdict(record) for record in self.rounds],
            "converged_at": self.converged_at,
            "final_params": np.asarray(self.final_params, dtype=float).tolist(),
            "total_bytes": int(self.total_bytes),
            "total_cost": int(self.total_cost),
            "final_accuracy": self.final_accuracy,
            "info": _jsonable(self.info),
        }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainingResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            rounds = [RoundRecord(**record) for record in payload["rounds"]]
            return cls(
                scheme=payload["scheme"],
                rounds=rounds,
                converged_at=payload["converged_at"],
                final_params=np.asarray(payload["final_params"], dtype=float),
                total_bytes=int(payload["total_bytes"]),
                total_cost=int(payload["total_cost"]),
                final_accuracy=payload.get("final_accuracy"),
                info=payload.get("info", {}),
            )
        except (KeyError, TypeError) as error:
            raise DataError(f"malformed TrainingResult payload: {error}") from error

    def save(self, path: str | Path) -> Path:
        """Write the result as JSON; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "TrainingResult":
        """Read a result previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays so ``json.dumps`` accepts them."""
    if isinstance(value, dict):
        return {key: _jsonable(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(inner) for inner in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value
