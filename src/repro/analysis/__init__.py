"""Analysis utilities: CDFs, parameter-evolution statistics, report tables.

These back the paper's Fig. 2 (how parameters evolve during EXTRA
iterations) and the plain-text tables the benchmark harness prints for every
reproduced figure.
"""

from repro.analysis.cdf import empirical_cdf, fraction_below, quantile_points
from repro.analysis.estimates import (
    mlp_parameter_count,
    neighbor_exchange_traffic,
    parameter_server_traffic,
)
from repro.analysis.evolution import EvolutionSnapshot, ParameterEvolutionRecorder
from repro.analysis.plots import sparkline, trace_panel
from repro.analysis.reporting import ascii_table, format_bytes

__all__ = [
    "empirical_cdf",
    "fraction_below",
    "quantile_points",
    "mlp_parameter_count",
    "neighbor_exchange_traffic",
    "parameter_server_traffic",
    "EvolutionSnapshot",
    "ParameterEvolutionRecorder",
    "sparkline",
    "trace_panel",
    "ascii_table",
    "format_bytes",
]
