"""Plain-text report formatting used by the benchmark harness."""

from __future__ import annotations

from typing import Sequence


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple aligned table.

    Floats are shown with four significant digits; everything else via
    ``str``. The benchmark modules print these tables so each figure's
    series can be eyeballed against the paper.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, bool) or cell is None:
            return str(cell)
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    rendered = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def format_bytes(n_bytes: float) -> str:
    """Human-readable byte count (binary units)."""
    if n_bytes < 0:
        raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
    value = float(n_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
