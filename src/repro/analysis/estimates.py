"""Back-of-envelope traffic estimates (the paper's introduction math).

The introduction motivates SNAP with: a 3-layer network with hundreds of
inputs, hundreds of hidden perceptrons and tens of outputs has ~1e5
parameters; with 8-byte values and tens of edge servers, "there would be
~1e10 bytes injected into the network within tens of iterations". These
helpers make that arithmetic executable (and testable), and generalize it so
users can size their own deployments before simulating them.
"""

from __future__ import annotations

from repro.network.frames import FLOAT_BYTES
from repro.utils.validation import check_positive_int


def mlp_parameter_count(inputs: int, hidden: int, outputs: int) -> int:
    """Parameters of a 3-layer fully connected network (weights + biases)."""
    check_positive_int("inputs", inputs)
    check_positive_int("hidden", hidden)
    check_positive_int("outputs", outputs)
    return inputs * hidden + hidden + hidden * outputs + outputs


def parameter_server_traffic(
    n_params: int,
    n_workers: int,
    n_iterations: int,
    bytes_per_value: int = FLOAT_BYTES,
) -> int:
    """Bytes a PS deployment injects: gradients up + parameters down, per round.

    ``2 * n_workers * n_params * bytes_per_value`` per iteration — the
    quantity the introduction extrapolates to ~1e10 bytes.
    """
    check_positive_int("n_params", n_params)
    check_positive_int("n_workers", n_workers)
    check_positive_int("n_iterations", n_iterations)
    check_positive_int("bytes_per_value", bytes_per_value)
    return 2 * n_workers * n_params * bytes_per_value * n_iterations


def neighbor_exchange_traffic(
    n_params: int,
    n_servers: int,
    average_degree: float,
    n_iterations: int,
    sent_fraction: float = 1.0,
    bytes_per_value: int = FLOAT_BYTES,
) -> float:
    """Bytes a SNAP-style neighbor exchange injects.

    Every server sends to each of its ``average_degree`` neighbors the
    ``sent_fraction`` of parameters that exceeded the threshold
    (``sent_fraction=1`` is SNO; index overhead is ignored at this
    back-of-envelope level).
    """
    check_positive_int("n_params", n_params)
    check_positive_int("n_servers", n_servers)
    check_positive_int("n_iterations", n_iterations)
    if average_degree <= 0:
        raise ValueError(f"average_degree must be > 0, got {average_degree}")
    if not 0.0 <= sent_fraction <= 1.0:
        raise ValueError(f"sent_fraction must be in [0, 1], got {sent_fraction}")
    return (
        n_servers
        * average_degree
        * n_params
        * sent_fraction
        * bytes_per_value
        * n_iterations
    )
