"""Parameter-evolution statistics — the Fig. 2 study.

Section IV-C.1 instruments the EXTRA iteration and records, per iteration:

1. the number of parameters that have not changed at all;
2. the parameter difference ``D(x^k) = |x^{k+1} - x^k|``;
3. the parameter change ratio ``R(x^k) = |x^{k+1} - x^k| / |x|``.

:class:`ParameterEvolutionRecorder` plugs into
:meth:`repro.consensus.ExtraIteration.run` as a callback and accumulates
exactly those three criteria for every server and iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.consensus.extra import ExtraState
from repro.exceptions import DataError


@dataclass(frozen=True)
class EvolutionSnapshot:
    """One iteration's Fig. 2 criteria, pooled across all servers.

    Attributes
    ----------
    iteration:
        1-based iteration index.
    unchanged_fraction:
        Fraction of parameters with exactly zero change (criterion 1,
        evaluated with tolerance ``zero_tol``).
    differences:
        Flat array of ``|x^{k+1} - x^k|`` over all servers and parameters
        (criterion 2).
    change_ratios:
        Flat array of ``|x^{k+1} - x^k| / |x^k|`` over parameters with
        nonzero ``x^k`` (criterion 3).
    """

    iteration: int
    unchanged_fraction: float
    differences: np.ndarray
    change_ratios: np.ndarray


class ParameterEvolutionRecorder:
    """Callback recording the Fig. 2 criteria during an EXTRA run.

    Parameters
    ----------
    zero_tol:
        Changes with absolute value at or below this count as "unchanged".
        The paper's MNIST study observes >30% of parameters unchanged per
        iteration even early on; with float64 arithmetic truly-exact zeros
        are rarer, so a tiny tolerance stands in for the paper's
        fixed-precision setting.
    """

    def __init__(self, zero_tol: float = 1e-12):
        if zero_tol < 0:
            raise DataError(f"zero_tol must be >= 0, got {zero_tol}")
        self.zero_tol = float(zero_tol)
        self.snapshots: list[EvolutionSnapshot] = []

    def __call__(self, state: ExtraState) -> None:
        """Record the transition ``state.previous -> state.current``."""
        if state.previous is None:
            return
        previous = np.asarray(state.previous, dtype=float)
        current = np.asarray(state.current, dtype=float)
        differences = np.abs(current - previous).ravel()
        unchanged = float(np.mean(differences <= self.zero_tol))
        magnitudes = np.abs(previous).ravel()
        nonzero = magnitudes > 0
        ratios = differences[nonzero] / magnitudes[nonzero]
        self.snapshots.append(
            EvolutionSnapshot(
                iteration=state.iteration,
                unchanged_fraction=unchanged,
                differences=differences,
                change_ratios=ratios,
            )
        )

    def snapshot_at(self, iteration: int) -> EvolutionSnapshot:
        """The snapshot of a given 1-based iteration."""
        for snapshot in self.snapshots:
            if snapshot.iteration == iteration:
                return snapshot
        raise DataError(f"no snapshot recorded for iteration {iteration}")

    def unchanged_trace(self) -> list[tuple[int, float]]:
        """``(iteration, unchanged_fraction)`` pairs — the Fig. 2(a) series."""
        return [(s.iteration, s.unchanged_fraction) for s in self.snapshots]
