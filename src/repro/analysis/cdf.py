"""Empirical CDF helpers for the Fig. 2 log-CDF plots."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError


def empirical_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cdf)`` with ``cdf[k] = (k+1)/n``.

    Plotting ``sorted_values`` on a log x-axis against ``cdf`` reproduces the
    paper's "Log-CDF" panels (Figs. 2(b), 2(c)).
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise DataError("cannot build a CDF from an empty array")
    sorted_values = np.sort(values)
    cdf = np.arange(1, values.size + 1, dtype=float) / values.size
    return sorted_values, cdf


def fraction_below(values: np.ndarray, threshold: float) -> float:
    """Fraction of entries ``<= threshold`` — one point of the CDF.

    This is how the paper reads its plots: "more than 90% of the parameter
    differences are less than 1e-3" is ``fraction_below(diffs, 1e-3) > 0.9``.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise DataError("cannot evaluate a CDF on an empty array")
    return float(np.mean(values <= threshold))


def quantile_points(
    values: np.ndarray, quantiles: tuple[float, ...] = (0.5, 0.9, 0.94, 0.98, 0.99)
) -> dict[float, float]:
    """Selected quantiles of ``values`` (the numbers quoted in Section IV-C)."""
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise DataError("cannot take quantiles of an empty array")
    return {q: float(np.quantile(values, q)) for q in quantiles}
