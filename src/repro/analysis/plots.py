"""Terminal plotting: unicode sparklines and simple line charts.

The environment is headless (no matplotlib); these helpers render the
byte/loss/accuracy traces directly in the terminal so examples and the CLI
can show trends, not just endpoints.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.exceptions import DataError

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Render a sequence as a one-line unicode sparkline.

    Values are min-max scaled into eight block heights. ``width`` (when
    given) downsamples long sequences by bucket-averaging so the line fits.
    Non-finite values render as spaces.
    """
    data = [float(v) for v in values]
    if not data:
        raise DataError("cannot render an empty sparkline")
    if width is not None:
        if width <= 0:
            raise DataError(f"width must be > 0, got {width}")
        data = _downsample(data, width)
    finite = [v for v in data if math.isfinite(v)]
    if not finite:
        return " " * len(data)
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in data:
        if not math.isfinite(value):
            chars.append(" ")
        elif span == 0:
            chars.append(_BLOCKS[0])
        else:
            level = int((value - low) / span * (len(_BLOCKS) - 1))
            chars.append(_BLOCKS[level])
    return "".join(chars)


def trace_panel(
    title: str, values: Sequence[float], width: int = 60
) -> str:
    """A labelled sparkline with endpoint annotations.

    Example output::

        loss   1.234 ▇▆▅▄▃▂▁▁▁ 0.412
    """
    data = [float(v) for v in values]
    if not data:
        raise DataError("cannot render an empty trace")
    line = sparkline(data, width=width)
    return f"{title}  {data[0]:.4g} {line} {data[-1]:.4g}"


def _downsample(data: list[float], width: int) -> list[float]:
    """Bucket-average ``data`` down to at most ``width`` points."""
    if len(data) <= width:
        return data
    out = []
    for bucket in range(width):
        start = bucket * len(data) // width
        end = max((bucket + 1) * len(data) // width, start + 1)
        chunk = data[start:end]
        finite = [v for v in chunk if math.isfinite(v)]
        out.append(sum(finite) / len(finite) if finite else math.nan)
    return out
