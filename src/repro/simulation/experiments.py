"""The paper's two standard workloads, packaged for reuse.

* **Credit-SVM** — the Section V-B simulation workload: a linear SVM with 24
  features on (synthetic) credit-default data, random IID sample allocation,
  random connected topology with a target average node degree (defaults: 60
  servers, degree 3 — the paper's stated defaults).
* **MNIST-MLP** — the Section V-A testbed workload: a 784-30-10 MLP on
  (synthetic) MNIST, three fully connected servers with ~equal shards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.credit import SyntheticCreditDefault
from repro.data.dataset import Dataset
from repro.data.mnist import SyntheticMNIST
from repro.data.partition import iid_partition
from repro.models.base import Model
from repro.models.mlp import MLPClassifier
from repro.models.svm import LinearSVM
from repro.topology.generators import complete_topology, random_topology
from repro.topology.graph import Topology
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class Workload:
    """Everything a scheme needs to train: model, shards, topology, test set."""

    name: str
    model: Model
    shards: list[Dataset]
    topology: Topology
    test_set: Dataset
    seed: int

    @property
    def n_servers(self) -> int:
        """Number of edge servers."""
        return self.topology.n_nodes


def credit_svm_workload(
    n_servers: int = 60,
    average_degree: float = 3.0,
    n_train: int = 6_000,
    n_test: int = 1_500,
    regularization: float = 1e-2,
    seed: int = 0,
) -> Workload:
    """The Section V-B simulation workload (SVM on credit-default data).

    The paper's full scale is 30 000 samples and up to 100 servers; the
    defaults here are sized for fast benchmark runs — pass
    ``n_train=24_000, n_test=6_000`` for the paper-scale version.
    """
    check_positive_int("n_servers", n_servers)
    rng = make_rng(seed)
    generator = SyntheticCreditDefault(seed=rng)
    train, test = generator.train_test(n_train=n_train, n_test=n_test, seed=rng)
    topology = random_topology(n_servers, average_degree, seed=rng)
    shards = iid_partition(train, n_servers, seed=rng)
    model = LinearSVM(
        n_features=generator.n_features, regularization=regularization
    )
    return Workload(
        name=f"credit_svm_n{n_servers}_d{average_degree:g}",
        model=model,
        shards=shards,
        topology=topology,
        test_set=test,
        seed=seed,
    )


def mnist_mlp_workload(
    n_servers: int = 3,
    hidden_units: int = 30,
    n_train: int = 3_000,
    n_test: int = 1_000,
    regularization: float = 1e-4,
    noise_std: float = 0.5,
    seed: int = 0,
) -> Workload:
    """The Section V-A testbed workload (784-30-10 MLP on MNIST-like data).

    The paper's testbed has 3 fully connected servers with ~17 000 samples
    each; the default sizes here keep CI fast — pass ``n_train=50_000,
    n_test=10_000`` for the paper-scale version. ``noise_std=0.5`` makes the
    task hard enough (centralized accuracy ~0.93 rather than 1.0) that the
    accuracy gaps between schemes — TernGrad's lag in particular — are
    visible, mirroring real MNIST's difficulty for a 30-hidden-unit MLP.
    """
    check_positive_int("n_servers", n_servers)
    check_positive_int("hidden_units", hidden_units)
    rng = make_rng(seed)
    generator = SyntheticMNIST(seed=rng, noise_std=noise_std)
    train, test = generator.train_test(n_train=n_train, n_test=n_test, seed=rng)
    topology = complete_topology(n_servers)
    shards = iid_partition(train, n_servers, seed=rng)
    model = MLPClassifier(
        layer_sizes=(784, hidden_units, 10), regularization=regularization
    )
    return Workload(
        name=f"mnist_mlp_n{n_servers}_h{hidden_units}",
        model=model,
        shards=shards,
        topology=topology,
        test_set=test,
        seed=seed,
    )
