"""Uniform entry point for running any scheme on any workload.

All schemes share the same initial parameters (derived from the workload's
seed) and the same convergence-detector settings, so cross-scheme numbers —
iterations to converge, total bytes, final accuracy — are apples-to-apples,
matching how the paper's comparison figures are produced.
"""

from __future__ import annotations

from repro.baselines.centralized import CentralizedTrainer
from repro.baselines.parameter_server import ParameterServerTrainer
from repro.baselines.terngrad import TernGradTrainer
from repro.consensus.convergence import ConvergenceDetector
from repro.core.config import SelectionPolicy, SNAPConfig
from repro.core.trainer import SNAPTrainer
from repro.exceptions import ConfigurationError
from repro.results import TrainingResult
from repro.simulation.experiments import Workload
from repro.topology.failures import LinkFailureModel, NodeFailureModel

#: All scheme labels understood by :func:`run_scheme`, in the paper's order.
SCHEMES = ("centralized", "ps", "terngrad", "snap", "snap0", "sno")


def run_scheme(
    scheme: str,
    workload: Workload,
    max_rounds: int = 300,
    optimize_weights: bool = True,
    failure_model: LinkFailureModel | None = None,
    detector_kwargs: dict | None = None,
    eval_every: int = 0,
    snap_config: SNAPConfig | None = None,
    stop_on_convergence: bool = True,
    alpha: float | None = None,
    node_failure_model: NodeFailureModel | None = None,
) -> TrainingResult:
    """Build and run one scheme on ``workload``.

    Parameters
    ----------
    scheme:
        One of :data:`SCHEMES`.
    workload:
        The model/shards/topology/test-set bundle.
    max_rounds:
        Iteration cap for the run.
    optimize_weights:
        Whether SNAP-family schemes use the Section IV-B optimized weight
        matrix (``False`` = the eq. 24 Metropolis baseline of Fig. 5).
    failure_model:
        Link-outage injector for SNAP-family schemes (Fig. 9). Ignored by
        the server-based and centralized schemes, which the paper evaluates
        without failures.
    detector_kwargs:
        Overrides for the :class:`ConvergenceDetector` shared by all schemes.
    eval_every:
        Test-accuracy evaluation period (0 = only at the end).
    snap_config:
        Full config override for SNAP-family schemes; when given, its
        ``selection`` is forced to match ``scheme``.
    stop_on_convergence:
        Stop at the detector's first fire (the paper's iteration counting).
    alpha:
        Explicit step size applied to *every* scheme, overriding each
        trainer's automatic choice. Use this for workloads (like the MLP
        testbed) where the automatic Lipschitz heuristic is overly
        conservative, keeping the step size identical across schemes so
        iteration counts stay comparable.
    """
    if scheme not in SCHEMES:
        raise ConfigurationError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
    detector = ConvergenceDetector(**(detector_kwargs or {}))
    initial_params = workload.model.init_params(workload.seed)
    common = dict(
        max_rounds=max_rounds,
        detector=detector,
        test_set=workload.test_set,
        eval_every=eval_every,
        stop_on_convergence=stop_on_convergence,
    )

    if scheme == "centralized":
        trainer = CentralizedTrainer(
            workload.model,
            workload.shards,
            alpha=alpha,
            initial_params=initial_params,
            seed=workload.seed,
        )
        return trainer.run(**common)
    if scheme == "ps":
        trainer = ParameterServerTrainer(
            workload.model,
            workload.shards,
            workload.topology,
            alpha=alpha,
            initial_params=initial_params,
            seed=workload.seed,
        )
        return trainer.run(**common)
    if scheme == "terngrad":
        trainer = TernGradTrainer(
            workload.model,
            workload.shards,
            workload.topology,
            alpha=alpha,
            initial_params=initial_params,
            seed=workload.seed,
        )
        return trainer.run(**common)

    selection = {
        "snap": SelectionPolicy.APE,
        "snap0": SelectionPolicy.CHANGED_ONLY,
        "sno": SelectionPolicy.DENSE,
    }[scheme]
    if snap_config is None:
        config = SNAPConfig(
            selection=selection,
            optimize_weights=optimize_weights,
            max_rounds=max_rounds,
            alpha=alpha,
            seed=workload.seed,
        )
    else:
        overrides = {
            **snap_config.__dict__,
            "selection": selection,
            "optimize_weights": optimize_weights,
        }
        if alpha is not None:
            overrides["alpha"] = alpha
        config = SNAPConfig(**overrides)
    trainer = SNAPTrainer(
        workload.model,
        workload.shards,
        workload.topology,
        config=config,
        failure_model=failure_model,
        node_failure_model=node_failure_model,
        initial_params=initial_params,
    )
    return trainer.run(**common)


def run_comparison(
    workload: Workload,
    schemes: tuple[str, ...] = SCHEMES,
    **kwargs,
) -> dict[str, TrainingResult]:
    """Run several schemes on the same workload; returns ``{scheme: result}``."""
    return {scheme: run_scheme(scheme, workload, **kwargs) for scheme in schemes}


def reference_target_loss(
    workload: Workload,
    margin: float = 0.02,
    max_rounds: int = 1000,
    alpha: float | None = None,
) -> float:
    """A cross-scheme convergence target from a centralized reference run.

    Trains the centralized baseline to a tight plateau and returns its final
    loss inflated by ``margin``. Feeding the value into
    ``ConvergenceDetector(target_loss=...)`` makes "iterations to converge"
    mean the same thing for every scheme: first iteration whose mean loss
    reaches within ``margin`` of the centrally attainable optimum. Schemes
    that stall above the target (e.g. TernGrad under heavy quantization
    noise) simply never converge within their round budget — which is the
    honest reading of the paper's Fig. 6.
    """
    if margin < 0:
        raise ConfigurationError(f"margin must be >= 0, got {margin}")
    result = run_scheme(
        "centralized",
        workload,
        max_rounds=max_rounds,
        alpha=alpha,
        detector_kwargs={"relative_loss_tolerance": 1e-6, "loss_window": 10},
    )
    return result.rounds[-1].mean_loss * (1.0 + margin)
