"""Parameter sweeps over network scale and node degree (Figs. 5–8).

Each sweep builds a fresh credit-SVM workload per point (new topology, new
IID allocation — the paper regenerates its random networks per setting),
derives a common convergence target from a centralized reference run, and
runs the requested schemes, returning one flat row per (point, scheme) with
the aggregates the figures plot.
"""

from __future__ import annotations

from typing import Sequence

from repro.simulation.experiments import Workload, credit_svm_workload
from repro.simulation.runner import reference_target_loss, run_scheme


def _run_point(
    workload: Workload,
    schemes: Sequence[str],
    max_rounds: int,
    optimize_weights: bool,
    target_margin: float,
    extra_detector_kwargs: dict | None,
    alpha: float | None = None,
) -> list[dict]:
    """Run all schemes on one workload against a shared loss target."""
    target = reference_target_loss(workload, margin=target_margin)
    detector_kwargs = {"target_loss": target, **(extra_detector_kwargs or {})}
    rows = []
    for scheme in schemes:
        result = run_scheme(
            scheme,
            workload,
            max_rounds=max_rounds,
            optimize_weights=optimize_weights,
            detector_kwargs=detector_kwargs,
            alpha=alpha,
        )
        rows.append(
            {
                "n_servers": workload.topology.n_nodes,
                "average_degree": workload.topology.average_degree(),
                "target_loss": target,
                **result.summary(),
            }
        )
    return rows


def sweep_network_scale(
    schemes: Sequence[str],
    n_servers_values: Sequence[int],
    average_degree: float = 3.0,
    max_rounds: int = 300,
    seed: int = 0,
    n_train: int = 6_000,
    n_test: int = 1_500,
    optimize_weights: bool = True,
    target_margin: float = 0.02,
    detector_kwargs: dict | None = None,
    alpha: float | None = None,
) -> list[dict]:
    """Vary the number of edge servers at fixed average degree (Figs. 5a/6a/7a/8a)."""
    rows = []
    for n_servers in n_servers_values:
        workload = credit_svm_workload(
            n_servers=n_servers,
            average_degree=average_degree,
            n_train=n_train,
            n_test=n_test,
            seed=seed,
        )
        rows.extend(
            _run_point(
                workload,
                schemes,
                max_rounds=max_rounds,
                optimize_weights=optimize_weights,
                target_margin=target_margin,
                extra_detector_kwargs=detector_kwargs,
                alpha=alpha,
            )
        )
    return rows


def sweep_node_degree(
    schemes: Sequence[str],
    degree_values: Sequence[float],
    n_servers: int = 60,
    max_rounds: int = 300,
    seed: int = 0,
    n_train: int = 6_000,
    n_test: int = 1_500,
    optimize_weights: bool = True,
    target_margin: float = 0.02,
    detector_kwargs: dict | None = None,
    alpha: float | None = None,
) -> list[dict]:
    """Vary the average node degree at fixed network size (Figs. 5b/6b/7b/8b/8c)."""
    rows = []
    for degree in degree_values:
        workload = credit_svm_workload(
            n_servers=n_servers,
            average_degree=degree,
            n_train=n_train,
            n_test=n_test,
            seed=seed,
        )
        rows.extend(
            _run_point(
                workload,
                schemes,
                max_rounds=max_rounds,
                optimize_weights=optimize_weights,
                target_margin=target_margin,
                extra_detector_kwargs=detector_kwargs,
                alpha=alpha,
            )
        )
    return rows
