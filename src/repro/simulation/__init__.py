"""Experiment driver: one entry point per scheme, per-figure workloads, sweeps.

:func:`~repro.simulation.runner.run_scheme` builds and runs any of the six
schemes the paper compares (snap, snap0, sno, ps, terngrad, centralized) on a
common workload with a shared initialization, so that differences in the
results come from the algorithms and not from setup noise.
:mod:`~repro.simulation.experiments` packages the paper's two workloads
(credit-SVM for the large-scale simulations, MNIST-MLP for the testbed);
:mod:`~repro.simulation.sweep` runs the network-scale and node-degree sweeps
behind Figs. 5–8.
"""

from repro.simulation.export import read_rows_csv, write_rows_csv, write_trace_csv
from repro.simulation.runner import (
    SCHEMES,
    reference_target_loss,
    run_comparison,
    run_scheme,
)
from repro.simulation.experiments import (
    Workload,
    credit_svm_workload,
    mnist_mlp_workload,
)
from repro.simulation.sweep import sweep_node_degree, sweep_network_scale

__all__ = [
    "SCHEMES",
    "reference_target_loss",
    "run_scheme",
    "run_comparison",
    "read_rows_csv",
    "write_rows_csv",
    "write_trace_csv",
    "Workload",
    "credit_svm_workload",
    "mnist_mlp_workload",
    "sweep_network_scale",
    "sweep_node_degree",
]
