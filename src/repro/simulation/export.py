"""Exporting sweep rows and result traces to CSV.

Sweeps return lists of flat dictionaries; results carry per-round traces.
These helpers write them as CSV so figures can be re-plotted from archived
runs without rerunning experiments (the standard library ``csv`` module —
no pandas dependency).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.exceptions import DataError
from repro.results import TrainingResult


def write_rows_csv(rows: Sequence[dict], path: str | Path) -> Path:
    """Write a list of flat dictionaries (e.g. sweep output) as CSV.

    The header is the union of all keys, in first-appearance order; rows
    missing a key get an empty cell.
    """
    if not rows:
        raise DataError("no rows to write")
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
        writer.writeheader()
        writer.writerows(rows)
    return path


def read_rows_csv(path: str | Path) -> list[dict]:
    """Read back a CSV written by :func:`write_rows_csv`.

    Values come back as strings (CSV is untyped); numeric-looking cells are
    converted to ``int``/``float``, empty cells to ``None``.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        return [
            {key: _convert(value) for key, value in row.items()}
            for row in reader
        ]


def write_trace_csv(result: TrainingResult, path: str | Path) -> Path:
    """Write one result's per-round trace (the Fig. 4-style series) as CSV."""
    rows = [
        {
            "round": record.round_index,
            "mean_loss": record.mean_loss,
            "consensus_error": record.consensus_error,
            "bytes_sent": record.bytes_sent,
            "cost": record.cost,
            "params_sent": record.params_sent,
            "accuracy": record.accuracy,
        }
        for record in result.rounds
    ]
    if not rows:
        raise DataError("result has no rounds to export")
    return write_rows_csv(rows, path)


def _convert(value: str | None):
    if value is None or value == "":
        return None
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    if value == "True":
        return True
    if value == "False":
        return False
    return value
