"""Cross-cutting utilities: RNG handling, validation, linear algebra predicates."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.utils.linalg import (
    is_doubly_stochastic,
    is_nonnegative,
    is_symmetric,
    second_largest_eigenvalue,
    smallest_eigenvalue,
    sorted_eigenvalues,
    spectral_gap,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "check_fraction",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "is_doubly_stochastic",
    "is_nonnegative",
    "is_symmetric",
    "second_largest_eigenvalue",
    "smallest_eigenvalue",
    "sorted_eigenvalues",
    "spectral_gap",
]
