"""Linear-algebra predicates and spectral helpers for weight matrices.

The notation follows Section III-A of the paper: for a symmetric matrix ``W``
we care about its sorted eigenvalue spectrum, its largest eigenvalue smaller
than one (written :math:`\\bar\\lambda_{max}`), and its smallest eigenvalue.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import WeightMatrixError

#: Default tolerance for structural checks on weight matrices.
DEFAULT_ATOL = 1e-8


def is_symmetric(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` when ``matrix`` equals its transpose within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return bool(np.allclose(matrix, matrix.T, atol=atol))


def is_nonnegative(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` when every entry is ``>= -atol``."""
    return bool(np.all(np.asarray(matrix) >= -atol))


def is_doubly_stochastic(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` when rows and columns sum to one and entries are nonnegative."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    if not is_nonnegative(matrix, atol=atol):
        return False
    ones = np.ones(matrix.shape[0])
    return bool(
        np.allclose(matrix @ ones, ones, atol=atol)
        and np.allclose(matrix.T @ ones, ones, atol=atol)
    )


def sorted_eigenvalues(matrix: np.ndarray) -> np.ndarray:
    """Eigenvalues of a symmetric matrix, sorted descending.

    Raises :class:`~repro.exceptions.WeightMatrixError` when the matrix is not
    symmetric, because ``eigh`` would silently use only one triangle.
    """
    matrix = np.asarray(matrix, dtype=float)
    if not is_symmetric(matrix, atol=1e-6):
        raise WeightMatrixError("sorted_eigenvalues requires a symmetric matrix")
    return np.linalg.eigvalsh(matrix)[::-1]


def second_largest_eigenvalue(matrix: np.ndarray, one_tol: float = 1e-9) -> float:
    """Largest eigenvalue strictly smaller than ``1`` (:math:`\\bar\\lambda_{max}`).

    For a doubly stochastic ``W`` the top eigenvalue is exactly one; this
    returns the next one down, skipping any further eigenvalues equal to one
    (which occur when the support graph is disconnected).
    """
    eigenvalues = sorted_eigenvalues(matrix)
    below_one = eigenvalues[eigenvalues < 1.0 - one_tol]
    if below_one.size == 0:
        raise WeightMatrixError(
            "matrix has no eigenvalue below 1; it is a projection onto constants "
            "or the identity"
        )
    return float(below_one[0])


def smallest_eigenvalue(matrix: np.ndarray) -> float:
    """Smallest eigenvalue :math:`\\lambda_{min}` of a symmetric matrix."""
    return float(sorted_eigenvalues(matrix)[-1])


def smallest_eigenvalue_sparse(matrix) -> float:
    """λ_min of a symmetric scipy.sparse matrix, without densifying it.

    Uses a deterministically-seeded Lanczos (ARPACK ``which="SA"``) start
    vector, so repeated calls on the same matrix return the same float.
    The value agrees with :func:`smallest_eigenvalue` to solver tolerance —
    not bitwise; pin the step size explicitly when digest-comparing sparse
    against dense runs. Tiny matrices (n < 3, below ARPACK's minimum
    problem size) fall back to the dense path.
    """
    n = matrix.shape[0]
    if n < 3:
        return smallest_eigenvalue(np.asarray(matrix.todense(), dtype=float))
    from scipy.sparse.linalg import eigsh

    v0 = np.random.default_rng(0).standard_normal(n)
    values = eigsh(
        matrix.astype(float), k=1, which="SA", v0=v0, return_eigenvectors=False
    )
    return float(values[0])


def extreme_eigenpairs_sparse(matrix, k: int, which: str):
    """``k`` extreme eigenpairs of a symmetric sparse matrix via seeded Lanczos.

    ``which`` is ARPACK's ``"SA"`` (smallest algebraic) or ``"LA"`` (largest
    algebraic). The start vector is deterministically seeded — the same
    ``default_rng(0)`` draw as :func:`smallest_eigenvalue_sparse` — so
    repeated calls on the same matrix return the same floats. Eigenvalues
    come back ascending with matching eigenvector columns. Agreement with
    the dense path is to solver tolerance, not bitwise. Matrices too small
    for ARPACK (``k >= n - 1``) fall back to dense ``eigh``.
    """
    n = matrix.shape[0]
    if k >= n - 1:
        dense = np.asarray(
            matrix.todense() if hasattr(matrix, "todense") else matrix, dtype=float
        )
        values, vectors = np.linalg.eigh(dense)
        if which == "SA":
            return values[:k], vectors[:, :k]
        return values[n - k :], vectors[:, n - k :]
    from scipy.sparse.linalg import eigsh

    v0 = np.random.default_rng(0).standard_normal(n)
    values, vectors = eigsh(matrix.astype(float), k=k, which=which, v0=v0)
    order = np.argsort(values)
    return values[order], vectors[:, order]


def spectral_gap(matrix: np.ndarray) -> float:
    """Convergence-rate score ``min(1 - second_largest, 1 + smallest)``.

    EXTRA's linear rate improves when both the second largest eigenvalue of
    ``W`` decreases (problem (23) in the paper) and the smallest eigenvalue
    increases (problem (22)). The minimum of the two one-sided gaps is the
    scalar SNAP uses to pick between the two optimized matrices.
    """
    eigenvalues = sorted_eigenvalues(matrix)
    below_one = eigenvalues[eigenvalues < 1.0 - 1e-9]
    if below_one.size == 0:
        # Identity-like matrix: no mixing at all through the off-diagonal.
        return 0.0
    second = float(below_one[0])
    smallest = float(eigenvalues[-1])
    return min(1.0 - second, 1.0 + smallest)
