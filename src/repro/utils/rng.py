"""Deterministic random-number handling.

Everything stochastic in the library (data generation, topology sampling,
partitioning, link failures, TernGrad quantization) flows through a
:class:`numpy.random.Generator` created here, so a single integer seed makes
an entire experiment reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.types import SeedLike


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an ``int`` seed, an existing generator (returned unchanged so
    callers can thread one generator through a pipeline), or ``None`` for an
    OS-entropy-seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Used to give each simulated edge server its own RNG stream so per-server
    randomness does not depend on the order in which servers are stepped.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    root = make_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
