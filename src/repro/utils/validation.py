"""Small argument validators raising :class:`~repro.exceptions.ConfigurationError`.

Each validator returns its input so it can be used inline::

    self.alpha = check_positive("alpha", alpha)
"""

from __future__ import annotations

import math
from typing import TypeVar

from repro.exceptions import ConfigurationError

_Num = TypeVar("_Num", int, float)


def _check_finite(name: str, value: float) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")


def check_positive(name: str, value: _Num) -> _Num:
    """Require ``value > 0``."""
    _check_finite(name, value)
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: _Num) -> _Num:
    """Require ``value >= 0``."""
    _check_finite(name, value)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_positive_int(name: str, value: int) -> int:
    """Require an ``int`` strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    _check_finite(name, value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 < value < 1`` (an open-interval fraction)."""
    _check_finite(name, value)
    if not 0.0 < value < 1.0:
        raise ConfigurationError(f"{name} must be in (0, 1), got {value!r}")
    return value


def check_in_range(
    name: str, value: float, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Require ``value`` to lie in ``[low, high]`` (or ``(low, high)``)."""
    _check_finite(name, value)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ConfigurationError(f"{name} must be in {bounds}, got {value!r}")
    return value
