"""Step-size selection for EXTRA.

Section IV-A: EXTRA's residual is monotone whenever
``0 <= alpha < 2 λ_min(W̃) / L_f`` with ``W̃ = (W + I)/2``. These helpers
compute that cap from the weight matrix's spectrum and a Lipschitz bound on
the local gradients, and back a conservative default off it.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import identity, issparse

from repro.exceptions import ConfigurationError
from repro.types import WeightMatrix
from repro.utils.linalg import smallest_eigenvalue, smallest_eigenvalue_sparse
from repro.utils.validation import check_fraction, check_positive


def extra_max_step_size(
    weight_matrix: WeightMatrix,
    lipschitz: float,
    lam_min_tilde: float | None = None,
) -> float:
    """The theoretical cap ``2 λ_min(W̃) / L_f``.

    Raises when ``λ_min(W̃) <= 0`` — that happens only if ``W`` has an
    eigenvalue at or below -1, which a doubly stochastic matrix cannot, so in
    practice it flags a malformed matrix.

    ``lam_min_tilde`` short-circuits the eigendecomposition with an already
    computed ``λ_min(W̃)`` — the weight optimizer analyzes the lazy variant
    ``(W + I)/2`` of every candidate it considers and caches the spectrum as
    ``WeightOptimizationResult.lazy_report``, whose ``smallest`` is this
    exact value (bitwise: same matrix expression, same ``eigvalsh``). Passing
    it avoids recomputing a full dense spectrum per trainer construction.
    """
    check_positive("lipschitz", lipschitz)
    if lam_min_tilde is not None:
        lam_min = float(lam_min_tilde)
    elif issparse(weight_matrix):
        n = weight_matrix.shape[0]
        w_tilde = (weight_matrix + identity(n, format="csr")) / 2.0
        lam_min = smallest_eigenvalue_sparse(w_tilde)
    else:
        weight_matrix = np.asarray(weight_matrix, dtype=float)
        n = weight_matrix.shape[0]
        w_tilde = (weight_matrix + np.eye(n)) / 2.0
        lam_min = smallest_eigenvalue(w_tilde)
    if lam_min <= 0.0:
        raise ConfigurationError(
            f"λ_min(W̃) = {lam_min:.3e} <= 0; the weight matrix is not a valid "
            "mixing matrix (needs eigenvalues in (-1, 1])"
        )
    return 2.0 * lam_min / lipschitz


def safe_step_size(
    weight_matrix: WeightMatrix,
    lipschitz: float,
    safety: float = 0.5,
    lam_min_tilde: float | None = None,
) -> float:
    """A default step size: ``safety`` times the theoretical cap.

    ``safety=0.5`` converges on every workload in this repository while
    staying well inside the guarantee; increase toward 1 for speed on
    well-conditioned problems. ``lam_min_tilde`` is forwarded to
    :func:`extra_max_step_size` to reuse a cached ``λ_min(W̃)``.
    """
    check_fraction("safety", safety)
    return safety * extra_max_step_size(
        weight_matrix, lipschitz, lam_min_tilde=lam_min_tilde
    )
