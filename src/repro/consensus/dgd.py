"""Decentralized gradient descent (DGD) — the classical inexact baseline.

.. math::

    x^{k+1} = W x^k - \\alpha \\nabla f(x^k)

DGD with a constant step size converges only to a neighborhood of the optimum
(its fixed point is biased); EXTRA's correction term removes that bias. The
engine is included so tests and ablations can demonstrate the gap that
motivated the paper's choice of EXTRA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import GradFn, ParamMatrix, WeightMatrix
from repro.utils.validation import check_positive


@dataclass
class DGDState:
    """Rolling state of the DGD recursion."""

    current: ParamMatrix
    iteration: int = 0


class DGDIteration:
    """Decentralized gradient descent over explicit local gradients."""

    def __init__(
        self,
        weight_matrix: WeightMatrix,
        local_gradients: Sequence[GradFn],
        alpha: float,
    ):
        self.weight_matrix = np.asarray(weight_matrix, dtype=float)
        n = self.weight_matrix.shape[0]
        if self.weight_matrix.shape != (n, n):
            raise ConfigurationError(
                f"weight matrix must be square, got shape {self.weight_matrix.shape}"
            )
        if len(local_gradients) != n:
            raise ConfigurationError(
                f"need {n} local gradient functions, got {len(local_gradients)}"
            )
        self.local_gradients = list(local_gradients)
        self.alpha = check_positive("alpha", alpha)

    @property
    def n_nodes(self) -> int:
        """Number of edge servers."""
        return self.weight_matrix.shape[0]

    def step(self, state: DGDState) -> DGDState:
        """One DGD update (in place, returns ``state``)."""
        gradient = np.stack(
            [grad(state.current[i]) for i, grad in enumerate(self.local_gradients)]
        )
        state.current = self.weight_matrix @ state.current - self.alpha * gradient
        state.iteration += 1
        return state

    def run(
        self,
        initial: ParamMatrix,
        n_iterations: int,
        callback: Callable[[DGDState], None] | None = None,
    ) -> DGDState:
        """Run ``n_iterations`` steps from ``initial``."""
        if n_iterations < 0:
            raise ConfigurationError(f"n_iterations must be >= 0, got {n_iterations}")
        initial = np.asarray(initial, dtype=float)
        if initial.ndim != 2 or initial.shape[0] != self.n_nodes:
            raise ConfigurationError(
                f"initial parameters must have shape ({self.n_nodes}, P), "
                f"got {initial.shape}"
            )
        state = DGDState(current=initial.copy())
        for _ in range(n_iterations):
            state = self.step(state)
            if callback is not None:
                callback(state)
        return state
