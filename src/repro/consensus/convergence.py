"""Convergence detection and consensus metrics.

The paper's figures report "iterations required to converge". We detect
convergence from two observable signals:

* **consensus error** — how far the per-server parameter rows are from their
  mean (constraint (3) requires all rows identical at the limit);
* **loss plateau** — the mean local loss has stopped improving over a
  trailing window.

Both must hold simultaneously. Schemes without a consensus dimension
(centralized, parameter server) feed a zero consensus error and the detector
reduces to the plateau test, keeping iteration counts comparable across
schemes — which is exactly how the paper compares them in Figs. 5/6/9.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.types import ParamMatrix
from repro.utils.validation import check_non_negative, check_positive_int


def mean_parameters(stacked: ParamMatrix) -> np.ndarray:
    """Column mean of the stacked parameters — the network-average model."""
    return np.asarray(stacked, dtype=float).mean(axis=0)


def consensus_error(stacked: ParamMatrix) -> float:
    """Root-mean-square distance of the rows from their mean.

    Zero iff all servers hold identical parameters (constraint (3)).
    Normalized by ``sqrt(N * P)`` so the value is comparable across network
    sizes and model dimensions.
    """
    stacked = np.asarray(stacked, dtype=float)
    deviation = stacked - stacked.mean(axis=0, keepdims=True)
    return float(np.sqrt(np.mean(deviation**2)))


class ConvergenceDetector:
    """Streaming convergence test over (loss, consensus-error) observations.

    Parameters
    ----------
    loss_window:
        Number of trailing iterations over which the loss must be flat.
    relative_loss_tolerance:
        Convergence requires the loss range within the window to be at most
        this fraction of the window's mean absolute loss.
    consensus_tolerance:
        Maximum admissible consensus error.
    min_iterations:
        Never declare convergence before this many observations (EXTRA's
        first iterations move fast and can look momentarily flat).
    target_loss:
        When set, the plateau test is replaced by a target test: converged
        as soon as the observed loss is at or below this value (and the
        consensus tolerance holds). Target-based counting is what the
        cross-scheme comparison figures use — a scheme stalled by noise or
        stale views plateaus *above* the target and is correctly reported
        as slow, where a plateau test would be fooled into declaring early
        convergence at a worse loss.
    """

    def __init__(
        self,
        loss_window: int = 5,
        relative_loss_tolerance: float = 1e-3,
        consensus_tolerance: float = 1e-2,
        min_iterations: int = 5,
        target_loss: float | None = None,
    ):
        self.loss_window = check_positive_int("loss_window", loss_window)
        self.relative_loss_tolerance = check_non_negative(
            "relative_loss_tolerance", relative_loss_tolerance
        )
        self.consensus_tolerance = check_non_negative(
            "consensus_tolerance", consensus_tolerance
        )
        self.min_iterations = check_positive_int("min_iterations", min_iterations)
        self.target_loss = None if target_loss is None else float(target_loss)
        self._losses: deque[float] = deque(maxlen=self.loss_window)
        self._count = 0
        self._converged_at: int | None = None

    def observe(self, loss: float, consensus: float = 0.0) -> bool:
        """Feed one iteration's (mean loss, consensus error); return convergence.

        Once convergence is declared it stays declared; ``converged_at``
        records the first converged iteration (1-based).
        """
        self._count += 1
        self._losses.append(float(loss))
        if self._converged_at is not None:
            return True
        if consensus > self.consensus_tolerance:
            return False
        if self.target_loss is not None:
            if loss <= self.target_loss:
                self._converged_at = self._count
                return True
            return False
        if self._count < self.min_iterations:
            return False
        if len(self._losses) < self.loss_window:
            return False
        window = np.array(self._losses)
        scale = max(float(np.mean(np.abs(window))), 1e-12)
        if float(window.max() - window.min()) <= self.relative_loss_tolerance * scale:
            self._converged_at = self._count
            return True
        return False

    @property
    def converged(self) -> bool:
        """Whether convergence has been declared."""
        return self._converged_at is not None

    @property
    def converged_at(self) -> int | None:
        """1-based iteration index at which convergence was first declared."""
        return self._converged_at

    def reset(self) -> None:
        """Clear all state for reuse."""
        self._losses.clear()
        self._count = 0
        self._converged_at = None
