"""Gradient tracking (DIGing) — an alternative exact consensus engine.

The paper builds SNAP on EXTRA; gradient tracking (Nedic et al.'s DIGing) is
the other classical *exact* decentralized first-order method:

.. math::

    x^{k+1} &= W x^k - \\alpha y^k \\\\
    y^{k+1} &= W y^k + \\nabla f(x^{k+1}) - \\nabla f(x^k),
    \\qquad y^0 = \\nabla f(x^0)

The auxiliary variable ``y`` tracks the network-average gradient (its column
mean always equals the mean of the local gradients), which removes DGD's
constant-step bias just like EXTRA's correction term does. Included as an
engine-level ablation: it answers "how much of SNAP's behaviour is EXTRA-
specific?" — and it doubles the per-round traffic, since both ``x`` and
``y`` must be exchanged, which is one practical reason the paper's choice of
EXTRA is sensible for a communication-minimizing system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import GradFn, ParamMatrix, WeightMatrix
from repro.utils.validation import check_positive


@dataclass
class GradientTrackingState:
    """Rolling state of the DIGing recursion.

    Attributes
    ----------
    current:
        Stacked iterates ``x^k``, shape ``(N, P)``.
    tracker:
        Stacked gradient trackers ``y^k``; its column mean equals the mean
        local gradient at every iteration (the tracking invariant).
    previous_gradient:
        Cached :math:`\\nabla f(x^k)` rows.
    iteration:
        Completed steps.
    """

    current: ParamMatrix
    tracker: ParamMatrix
    previous_gradient: ParamMatrix
    iteration: int = 0


class GradientTrackingIteration:
    """DIGing over explicit local gradient functions (same API as EXTRA/DGD)."""

    def __init__(
        self,
        weight_matrix: WeightMatrix,
        local_gradients: Sequence[GradFn],
        alpha: float,
    ):
        self.weight_matrix = np.asarray(weight_matrix, dtype=float)
        n = self.weight_matrix.shape[0]
        if self.weight_matrix.shape != (n, n):
            raise ConfigurationError(
                f"weight matrix must be square, got shape {self.weight_matrix.shape}"
            )
        if len(local_gradients) != n:
            raise ConfigurationError(
                f"need {n} local gradient functions, got {len(local_gradients)}"
            )
        self.local_gradients = list(local_gradients)
        self.alpha = check_positive("alpha", alpha)

    @property
    def n_nodes(self) -> int:
        """Number of edge servers."""
        return self.weight_matrix.shape[0]

    def gradients(self, stacked: ParamMatrix) -> ParamMatrix:
        """Stack per-server local gradients."""
        return np.stack(
            [grad(stacked[i]) for i, grad in enumerate(self.local_gradients)]
        )

    def initialize(self, initial: ParamMatrix) -> GradientTrackingState:
        """Start the recursion: ``y^0 = grad f(x^0)``."""
        initial = np.asarray(initial, dtype=float)
        if initial.ndim != 2 or initial.shape[0] != self.n_nodes:
            raise ConfigurationError(
                f"initial parameters must have shape ({self.n_nodes}, P), "
                f"got {initial.shape}"
            )
        gradient = self.gradients(initial)
        return GradientTrackingState(
            current=initial.copy(),
            tracker=gradient.copy(),
            previous_gradient=gradient,
        )

    def step(self, state: GradientTrackingState) -> GradientTrackingState:
        """One DIGing update (in place, returns ``state``)."""
        new_x = self.weight_matrix @ state.current - self.alpha * state.tracker
        new_gradient = self.gradients(new_x)
        state.tracker = (
            self.weight_matrix @ state.tracker
            + new_gradient
            - state.previous_gradient
        )
        state.current = new_x
        state.previous_gradient = new_gradient
        state.iteration += 1
        return state

    def run(
        self,
        initial: ParamMatrix,
        n_iterations: int,
        callback: Callable[[GradientTrackingState], None] | None = None,
    ) -> GradientTrackingState:
        """Run ``n_iterations`` steps from ``initial``."""
        if n_iterations < 0:
            raise ConfigurationError(f"n_iterations must be >= 0, got {n_iterations}")
        state = self.initialize(initial)
        for _ in range(n_iterations):
            state = self.step(state)
            if callback is not None:
                callback(state)
        return state
