"""Executable Section IV-B theory: the simplified linear-rate bound (17).

The paper derives, from EXTRA's equation (3.38), that when

.. math::

    g(x) = f(x) + \\tfrac{1}{4\\alpha}\\|x\\|^2_{\\widetilde W - W}

is strongly convex with constant :math:`\\mu_g > 0` and the step size obeys
:math:`\\alpha < 2\\mu_g \\lambda_{min}(\\widetilde W)/L_f^2`, the iteration
converges linearly at rate :math:`O((1+\\delta)^{-k})` with δ bounded by
(17):

.. math::

    \\delta \\le \\min\\Big\\{
      \\frac{\\alpha(2\\mu_g - \\eta)\\,\\bar\\lambda_{min}(I - W)}
           {2\\theta\\alpha^2 L_f^2 + \\bar\\lambda_{min}(I - W)},\\;
      \\frac{(\\theta - 1)(\\eta + \\eta\\lambda_{min}(W) - 2\\alpha L_f^2)
            \\,\\bar\\lambda_{min}(I - W)}
           {4\\theta\\eta(1 + \\alpha L_f)^2}
    \\Big\\}

for any :math:`\\theta > 1` and :math:`\\eta \\in (0, 2\\mu_g)`. The
simplification from the general bound (11) uses the identities (12)-(16),
which :func:`verify_simplifications` checks numerically for any feasible
weight matrix. Maximizing (17) over W is what motivates problems (22)/(23),
and :func:`delta_bound` is the quantitative version of the qualitative
rate score used by the weight-matrix selection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import WeightMatrix
from repro.utils.linalg import (
    second_largest_eigenvalue,
    smallest_eigenvalue,
    sorted_eigenvalues,
)
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SimplificationReport:
    """Numerical check of the identities (12)-(16) for a weight matrix.

    Attributes map one-to-one to the paper's equations:

    * ``lambda_max_is_one`` — (12): :math:`\\lambda_{max}(W) = 1`;
    * ``lambda_max_tilde_is_one`` — (13): :math:`\\lambda_{max}(\\widetilde W) = 1`;
    * ``correction_vanishes`` — (14): :math:`I + W - 2\\widetilde W = 0`;
    * ``difference_is_half_gap`` — (15): :math:`\\widetilde W - W = (I - W)/2`;
    * ``sigma_max_tilde_is_one`` — (16): :math:`\\sigma_{max}(\\widetilde W) = 1`.
    """

    lambda_max_is_one: bool
    lambda_max_tilde_is_one: bool
    correction_vanishes: bool
    difference_is_half_gap: bool
    sigma_max_tilde_is_one: bool

    @property
    def all_hold(self) -> bool:
        """Whether every identity holds (they must, for any feasible W)."""
        return (
            self.lambda_max_is_one
            and self.lambda_max_tilde_is_one
            and self.correction_vanishes
            and self.difference_is_half_gap
            and self.sigma_max_tilde_is_one
        )


def verify_simplifications(
    weight_matrix: WeightMatrix, atol: float = 1e-8
) -> SimplificationReport:
    """Check the identities (12)-(16) numerically for ``weight_matrix``."""
    W = np.asarray(weight_matrix, dtype=float)
    n = W.shape[0]
    identity = np.eye(n)
    w_tilde = (W + identity) / 2.0
    eigenvalues = sorted_eigenvalues(W)
    tilde_eigenvalues = sorted_eigenvalues(w_tilde)
    singular_values = np.linalg.svd(w_tilde, compute_uv=False)
    return SimplificationReport(
        lambda_max_is_one=bool(abs(eigenvalues[0] - 1.0) <= atol),
        lambda_max_tilde_is_one=bool(abs(tilde_eigenvalues[0] - 1.0) <= atol),
        correction_vanishes=bool(
            np.allclose(identity + W - 2.0 * w_tilde, 0.0, atol=atol)
        ),
        difference_is_half_gap=bool(
            np.allclose(w_tilde - W, (identity - W) / 2.0, atol=atol)
        ),
        sigma_max_tilde_is_one=bool(abs(singular_values[0] - 1.0) <= atol),
    )


def max_step_size_for_linear_rate(
    weight_matrix: WeightMatrix, mu_g: float, lipschitz: float
) -> float:
    """The linear-rate step cap :math:`2\\mu_g\\lambda_{min}(\\widetilde W)/L_f^2`.

    Stricter than the plain-convergence cap
    :func:`repro.consensus.step_size.extra_max_step_size`; satisfying it buys
    the geometric rate of eq. (17).
    """
    check_positive("mu_g", mu_g)
    check_positive("lipschitz", lipschitz)
    W = np.asarray(weight_matrix, dtype=float)
    w_tilde = (W + np.eye(W.shape[0])) / 2.0
    lam_min = smallest_eigenvalue(w_tilde)
    if lam_min <= 0:
        raise ConfigurationError(
            f"λ_min(W̃) = {lam_min:.3e} <= 0; not a valid mixing matrix"
        )
    return 2.0 * mu_g * lam_min / lipschitz**2


def delta_bound(
    weight_matrix: WeightMatrix,
    alpha: float,
    mu_g: float,
    lipschitz: float,
    theta: float = 2.0,
    eta: float | None = None,
) -> float:
    """Evaluate the simplified rate bound (17) for one (W, α) pair.

    Parameters
    ----------
    weight_matrix:
        A feasible symmetric doubly stochastic mixing matrix.
    alpha:
        Step size; must satisfy the linear-rate cap for a positive bound.
    mu_g:
        Strong-convexity constant of ``g``.
    lipschitz:
        Gradient Lipschitz constant ``L_f`` of the aggregate objective.
    theta:
        Free parameter, ``theta > 1``.
    eta:
        Free parameter in ``(0, 2 mu_g)``; defaults to ``mu_g``.

    Returns
    -------
    float
        The bound's value. May be nonpositive when the step size violates
        the second term's condition (meaning the bound certifies nothing);
        callers can maximize over ``theta``/``eta`` for a sharper value.
    """
    check_positive("alpha", alpha)
    check_positive("mu_g", mu_g)
    check_positive("lipschitz", lipschitz)
    if theta <= 1.0:
        raise ConfigurationError(f"theta must be > 1, got {theta}")
    if eta is None:
        eta = mu_g
    if not 0.0 < eta < 2.0 * mu_g:
        raise ConfigurationError(
            f"eta must lie in (0, 2 mu_g) = (0, {2 * mu_g}), got {eta}"
        )
    W = np.asarray(weight_matrix, dtype=float)
    # \bar\lambda_min(I - W) = 1 - \bar\lambda_max(W): the smallest *positive*
    # eigenvalue of I - W.
    gap = 1.0 - second_largest_eigenvalue(W)
    lam_min = smallest_eigenvalue(W)

    first = (
        alpha * (2.0 * mu_g - eta) * gap
        / (2.0 * theta * alpha**2 * lipschitz**2 + gap)
    )
    second = (
        (theta - 1.0)
        * (eta + eta * lam_min - 2.0 * alpha * lipschitz**2)
        * gap
        / (4.0 * theta * eta * (1.0 + alpha * lipschitz) ** 2)
    )
    return float(min(first, second))


def best_delta_bound(
    weight_matrix: WeightMatrix,
    alpha: float,
    mu_g: float,
    lipschitz: float,
    theta_grid: tuple[float, ...] = (1.1, 1.5, 2.0, 4.0, 8.0),
    eta_fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.5),
) -> float:
    """Maximize :func:`delta_bound` over a small (θ, η) grid.

    θ and η are free analysis parameters; the tightest certificate is their
    maximum. Returns the best (largest) bound found.
    """
    best = -np.inf
    for theta in theta_grid:
        for fraction in eta_fractions:
            eta = fraction * mu_g
            if not 0.0 < eta < 2.0 * mu_g:
                continue
            best = max(
                best,
                delta_bound(
                    weight_matrix, alpha, mu_g, lipschitz, theta=theta, eta=eta
                ),
            )
    return float(best)
