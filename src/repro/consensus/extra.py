"""Matrix-form EXTRA iteration — equation (6) of the paper.

.. math::

    x^1 &= W x^0 - \\alpha \\nabla f(x^0) \\\\
    x^{k+2} &= (I + W) x^{k+1} - \\widetilde{W} x^k
               - \\alpha (\\nabla f(x^{k+1}) - \\nabla f(x^k)),
    \\qquad \\widetilde W = \\tfrac{W + I}{2}

This engine operates on the stacked parameter matrix ``x`` (one row per edge
server, Section III-A) with exact communication — every server sees its
neighbors' true current rows. It is the reference implementation against
which the message-level SNAP servers are tested, and the engine behind the
parameter-evolution study of Fig. 2 (which the paper also ran with exact
communication before designing the APE scheme).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import GradFn, ParamMatrix, WeightMatrix
from repro.utils.validation import check_positive


@dataclass
class ExtraState:
    """Rolling state of the EXTRA recursion.

    Attributes
    ----------
    current:
        :math:`x^{k+1}` — the latest stacked parameters, shape ``(N, P)``.
    previous:
        :math:`x^k`, or ``None`` before the first step.
    previous_gradient:
        :math:`\\nabla f(x^k)` cached from the previous step (each gradient
        is evaluated exactly once even though it appears in two updates).
    iteration:
        Number of completed steps ``k``.
    """

    current: ParamMatrix
    previous: ParamMatrix | None = None
    previous_gradient: ParamMatrix | None = None
    iteration: int = 0


class ExtraIteration:
    """EXTRA over explicit local gradient functions.

    Parameters
    ----------
    weight_matrix:
        Symmetric doubly stochastic mixing matrix ``W`` supported on the
        topology (validated by the caller; see
        :func:`repro.weights.check_weight_matrix`).
    local_gradients:
        One gradient callable per edge server; entry ``i`` evaluates
        :math:`\\nabla f_i` on server ``i``'s local data.
    alpha:
        Step size; EXTRA converges for
        ``0 < alpha < 2 λ_min(W̃) / L_f`` (Section IV-A).
    """

    def __init__(
        self,
        weight_matrix: WeightMatrix,
        local_gradients: Sequence[GradFn],
        alpha: float,
    ):
        self.weight_matrix = np.asarray(weight_matrix, dtype=float)
        n = self.weight_matrix.shape[0]
        if self.weight_matrix.shape != (n, n):
            raise ConfigurationError(
                f"weight matrix must be square, got shape {self.weight_matrix.shape}"
            )
        if len(local_gradients) != n:
            raise ConfigurationError(
                f"need {n} local gradient functions, got {len(local_gradients)}"
            )
        self.local_gradients = list(local_gradients)
        self.alpha = check_positive("alpha", alpha)
        self.w_tilde = (self.weight_matrix + np.eye(n)) / 2.0

    @property
    def n_nodes(self) -> int:
        """Number of edge servers."""
        return self.weight_matrix.shape[0]

    def initialize(self, initial: ParamMatrix) -> ExtraState:
        """Wrap the stacked initial parameters ``x^0`` into a fresh state."""
        initial = np.asarray(initial, dtype=float)
        if initial.ndim != 2 or initial.shape[0] != self.n_nodes:
            raise ConfigurationError(
                f"initial parameters must have shape ({self.n_nodes}, P), "
                f"got {initial.shape}"
            )
        return ExtraState(current=initial.copy())

    def gradients(self, stacked: ParamMatrix) -> ParamMatrix:
        """Stack per-server local gradients: row ``i`` is ``∇f_i(x_(i))``."""
        return np.stack(
            [grad(stacked[i]) for i, grad in enumerate(self.local_gradients)]
        )

    def step(self, state: ExtraState) -> ExtraState:
        """Advance the recursion by one iteration (in place, returns ``state``)."""
        if state.previous is None:
            # First step: x^1 = W x^0 - alpha * grad(x^0).
            gradient = self.gradients(state.current)
            new = self.weight_matrix @ state.current - self.alpha * gradient
            state.previous = state.current
            state.previous_gradient = gradient
            state.current = new
        else:
            gradient = self.gradients(state.current)
            new = (
                (np.eye(self.n_nodes) + self.weight_matrix) @ state.current
                - self.w_tilde @ state.previous
                - self.alpha * (gradient - state.previous_gradient)
            )
            state.previous = state.current
            state.previous_gradient = gradient
            state.current = new
        state.iteration += 1
        return state

    def run(
        self,
        initial: ParamMatrix,
        n_iterations: int,
        callback: Callable[[ExtraState], None] | None = None,
    ) -> ExtraState:
        """Run ``n_iterations`` steps from ``initial``, invoking ``callback`` after each."""
        if n_iterations < 0:
            raise ConfigurationError(f"n_iterations must be >= 0, got {n_iterations}")
        state = self.initialize(initial)
        for _ in range(n_iterations):
            state = self.step(state)
            if callback is not None:
                callback(state)
        return state
