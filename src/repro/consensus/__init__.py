"""Consensus-optimization engines (Section IV-A of the paper).

SNAP inherits the EXTRA iteration of Shi et al.: every edge server updates
its parameters from a weighted average of neighbor parameters at the last two
iterations plus a gradient-correction term (equations (6)/(8)).
:class:`~repro.consensus.extra.ExtraIteration` implements the exact
matrix-form recursion used for theory-facing tests and the Fig. 2 analysis;
the message-level, stale-tolerant per-node form lives in
:mod:`repro.core.server`. Decentralized gradient descent (DGD) is included as
the classical inexact baseline EXTRA improves on.
"""

from repro.consensus.extra import ExtraIteration, ExtraState
from repro.consensus.dgd import DGDIteration
from repro.consensus.gradient_tracking import (
    GradientTrackingIteration,
    GradientTrackingState,
)
from repro.consensus.convergence import (
    ConvergenceDetector,
    consensus_error,
    mean_parameters,
)
from repro.consensus.step_size import extra_max_step_size, safe_step_size
from repro.consensus.theory import (
    SimplificationReport,
    best_delta_bound,
    delta_bound,
    max_step_size_for_linear_rate,
    verify_simplifications,
)

__all__ = [
    "SimplificationReport",
    "best_delta_bound",
    "delta_bound",
    "max_step_size_for_linear_rate",
    "verify_simplifications",
    "ExtraIteration",
    "ExtraState",
    "DGDIteration",
    "GradientTrackingIteration",
    "GradientTrackingState",
    "ConvergenceDetector",
    "consensus_error",
    "mean_parameters",
    "extra_max_step_size",
    "safe_step_size",
]
