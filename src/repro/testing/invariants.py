"""Runtime invariant monitors: the paper's contracts, asserted live.

SNAP's headline guarantees are machine-checkable, and this module checks
them *during* a run instead of post-hoc:

``weight-stochasticity``
    The mixing matrix ``W`` of problems (22)/(23) must be symmetric,
    doubly stochastic, and supported on the topology (and then
    ``W̃ = (I + W)/2`` inherits all three) — the structural precondition
    of the EXTRA recursion (8).
``weight-spectrum``
    EXTRA's convergence class needs ``λ_max(W) = 1`` simple (a spectral
    gap below one) and ``W̃ ≻ 0``, i.e. ``λ_min(W) > -1``.
``ape-budget``
    Algorithm 1: each server's accumulated parameter error estimate must
    stay within the stage budget ``T_k``, the budget must decay
    monotonically from its initial value, and the per-iteration send
    threshold must equal ``T_k / (I_k (1 + αG)^{I_k})`` exactly.
``byte-ledger``
    Every recorded flow's byte count must be one of the analytic Fig. 3
    frame sizes — ``4 + 8N - 4M`` (UNCHANGED_INDEX), ``12 (N - M)``
    (INDEX_VALUE), or the QUANTIZED size when the scheme quantizes — at
    one hop, and the per-round ledger aggregates must conserve (round
    record == tracker == sum of the round's flows).
``error-feedback``
    The protocol backbone: ``sender.last_sent[j] == receiver.views[i]``
    bitwise on every directed edge (both advance only on confirmed
    delivery), and any materialized error-feedback residual must equal
    ``params - last_sent`` exactly.
``semi-sync``
    Only when the semi-synchronous engine runs: per-edge progress
    staleness observed at any step start must stay within the configured
    bound τ, applied view versions must be strictly monotone per directed
    edge, and the deferred-delivery ledger must conserve — every frame
    (and its bytes) put on the wire is accounted as applied, corrupted,
    or in flight, and the in-flight count equals the frames actually
    sitting in the engine's reorder buffers at the round boundary.
``consensus-envelope``
    The EXTRA consensus residual may oscillate under suppression and
    faults but must stay finite and inside a constant multiple of its
    opening envelope — divergence (NaN/∞/explosion) is flagged at the
    round it happens.
``byzantine-bound``
    Only when a byzantine plan runs under a robust aggregator: no honest
    server may face more attacker neighbors than the configured
    tolerance ``f`` — beyond it the trimmed-mean/median/Krum guarantee
    is void and the run's robustness claim is a lie.
``drift-schedule``
    Only under a drift schedule: the epoch must be non-decreasing in the
    round index, and the shards the trainer holds must belong to exactly
    the epoch the schedule assigns to the completed round.
``hierarchy-ledger``
    Only on tiered topologies: every flow must connect adjacent tiers
    (edge <-> aggregator <-> cloud, never skipping a level), and the
    per-tier-pair byte decomposition must sum exactly to the round
    record's byte total — conservation across the hierarchy.

Enable with ``SNAPConfig(invariants="strict")``; the trainer then runs
every check each round on both engines (the vectorized engine's state is
synced back to the server objects before inspection). Violations raise
:class:`~repro.exceptions.InvariantViolation` naming the invariant and the
round. Custom checks plug in via :meth:`InvariantMonitor.add_check`.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable

import numpy as np
from scipy.sparse import issparse

from repro.exceptions import InvariantViolation
from repro.network.frames import encoded_update_bytes

#: Floor under the consensus envelope so an all-but-converged opening
#: (consensus ~ 1e-16) does not turn numeric noise into violations.
_CONSENSUS_FLOOR = 1e-9

#: Rounds used to establish the consensus envelope's opening level.
_ENVELOPE_WARMUP_ROUNDS = 3


def quantization_bits(spec) -> int | None:
    """The wire bit-width a compressor spec's frames may use (None = never)."""
    if spec.kind == "uniform":
        return spec.params_dict().get("bits")
    if spec.kind == "terngrad":
        return 2
    return None


def feasible_frame_sizes(total_params: int, bits: int | None) -> frozenset:
    """Every byte count a sender can legally put on the wire for ``d`` params.

    The cheapest-format rule means a flow of a ``d``-parameter model is
    always ``encoded_update_bytes(d, M)`` for some suppressed count ``M`` —
    with the quantized variant joining the comparison when the scheme
    carries quantization metadata. Anything outside this set is a corrupted
    ledger entry.
    """
    sizes = {encoded_update_bytes(total_params, m) for m in range(total_params + 1)}
    if bits is not None:
        sizes |= {
            encoded_update_bytes(total_params, m, bits)
            for m in range(total_params + 1)
        }
    return frozenset(sizes)


class InvariantMonitor:
    """Per-round invariant checks over one :class:`SNAPTrainer`.

    Parameters
    ----------
    trainer:
        The trainer to observe. The monitor reads the synced server
        objects, the cost tracker, the APE schedules, and the weight
        matrix; it never mutates anything.
    atol:
        Absolute tolerance for the structural weight-matrix checks
        (stochasticity sums, symmetry, spectrum endpoints).
    consensus_slack:
        Multiple of the opening consensus envelope the residual may reach
        before the run is declared divergent. Generous by design: the
        invariant targets blow-ups, not the bounded oscillation faults and
        suppression legitimately cause.
    """

    def __init__(
        self,
        trainer,
        *,
        atol: float = 1e-8,
        consensus_slack: float = 1e3,
    ):
        self.trainer = trainer
        self.atol = float(atol)
        self.consensus_slack = float(consensus_slack)
        #: How many times each named invariant was checked (for reports).
        self.checks: Counter = Counter()
        self._extra_checks: list[tuple[str, Callable]] = []
        #: Flow batches accumulated since the last byte-ledger check, fed by
        #: the tracker's observer hook. This is how the ledger invariant sees
        #: every flow without the tracker retaining per-flow records — it
        #: works identically under ``retain_records=False``. The monitor is
        #: constructed in ``SNAPTrainer.__init__`` before any flow can be
        #: recorded, so no traffic predates the subscription.
        self._pending_flows: list[tuple] = []
        trainer.tracker.add_observer(self._observe_flows)
        self._feasible_size_array: np.ndarray | None = None
        self._threshold_watermarks: list[float] | None = None
        self._consensus_envelope: float | None = None
        self._envelope_rounds_seen = 0
        self._drift_watermark = 0

    # -- plumbing ----------------------------------------------------------------

    def add_check(self, name: str, check: Callable) -> None:
        """Register a custom per-round check.

        ``check(monitor, record, down)`` runs after the built-in checks each
        round and reports failures via :meth:`violate`.
        """
        self._extra_checks.append((str(name), check))

    def violate(self, invariant: str, detail: str, round_index: int | None = None):
        """Raise the canonical diagnostic for a violated invariant."""
        where = "" if round_index is None else f" at round {round_index}"
        raise InvariantViolation(
            f"invariant '{invariant}' violated{where}: {detail}",
            invariant=invariant,
            round_index=round_index,
        )

    def summary(self) -> dict:
        """Check counts per invariant (all zero means the monitor never ran)."""
        return dict(self.checks)

    # -- run-start checks --------------------------------------------------------

    def on_run_start(self) -> None:
        """Validate the structural weight-matrix contracts before round one."""
        self._check_weight_stochasticity()
        self._check_weight_spectrum()
        if self._threshold_watermarks is None and self.trainer._schedules:
            self._threshold_watermarks = [
                schedule.state_dict()["threshold"]
                for schedule in self.trainer._schedules
            ]

    def on_topology_swap(self, swap) -> None:
        """Re-validate the mixing contracts after an adaptive topology swap.

        The trainer calls this with the swap already applied, so the checks
        read the *new* ``trainer.weight_matrix`` / ``trainer.topology`` pair
        live — a re-optimized W that lost symmetry, leaked mass onto pruned
        links, or broke the spectral-gap contract is caught by name at the
        swap boundary, not rounds later. A joint swap may also change the
        compressor's byte knob, which changes the analytic feasible frame
        sizes; the cached size table is invalidated so the byte-ledger check
        rebuilds it for the new spec on its next round.
        """
        self.checks["topology-swap"] += 1
        self._check_weight_stochasticity()
        self._check_weight_spectrum()
        self._feasible_size_array = None

    def _check_weight_stochasticity(self) -> None:
        self.checks["weight-stochasticity"] += 1
        if issparse(self.trainer.weight_matrix):
            return self._check_weight_stochasticity_sparse()
        W = np.asarray(self.trainer.weight_matrix, dtype=float)
        n = self.trainer.topology.n_nodes
        if W.shape != (n, n):
            self.violate(
                "weight-stochasticity",
                f"W has shape {W.shape}, topology has {n} nodes",
            )
        asymmetry = float(np.abs(W - W.T).max())
        if asymmetry > self.atol:
            self.violate(
                "weight-stochasticity",
                f"W is not symmetric (max |W - W^T| = {asymmetry:.3e})",
            )
        row_err = float(np.abs(W.sum(axis=1) - 1.0).max())
        if row_err > self.atol:
            worst = int(np.abs(W.sum(axis=1) - 1.0).argmax())
            self.violate(
                "weight-stochasticity",
                f"row {worst} of W sums to {W.sum(axis=1)[worst]:.12f}, "
                f"not 1 (problems (22)/(23) require W 1 = 1)",
            )
        col_err = float(np.abs(W.sum(axis=0) - 1.0).max())
        if col_err > self.atol:
            self.violate(
                "weight-stochasticity",
                f"columns of W do not sum to 1 (max error {col_err:.3e})",
            )
        allowed = np.eye(n, dtype=bool)
        for u, v in self.trainer.topology.edges:
            allowed[u, v] = allowed[v, u] = True
        off_support = np.abs(np.where(allowed, 0.0, W))
        if off_support.size and float(off_support.max()) > self.atol:
            u, v = np.unravel_index(int(off_support.argmax()), W.shape)
            self.violate(
                "weight-stochasticity",
                f"W[{u}, {v}] = {W[u, v]:.3e} but ({u}, {v}) is not an edge "
                "(weights must be supported on the neighbor sets)",
            )

    def _check_weight_stochasticity_sparse(self) -> None:
        """Sparse-W variant: same contracts, no dense (N, N) materialization."""
        W = self.trainer.weight_matrix.tocsr()
        n = self.trainer.topology.n_nodes
        if W.shape != (n, n):
            self.violate(
                "weight-stochasticity",
                f"W has shape {W.shape}, topology has {n} nodes",
            )
        gap = (W - W.T).tocoo()
        asymmetry = float(np.abs(gap.data).max()) if gap.nnz else 0.0
        if asymmetry > self.atol:
            self.violate(
                "weight-stochasticity",
                f"W is not symmetric (max |W - W^T| = {asymmetry:.3e})",
            )
        ones = np.ones(n)
        row_sums = W @ ones
        row_err = float(np.abs(row_sums - 1.0).max())
        if row_err > self.atol:
            worst = int(np.abs(row_sums - 1.0).argmax())
            self.violate(
                "weight-stochasticity",
                f"row {worst} of W sums to {row_sums[worst]:.12f}, "
                f"not 1 (problems (22)/(23) require W 1 = 1)",
            )
        col_err = float(np.abs(W.T @ ones - 1.0).max())
        if col_err > self.atol:
            self.violate(
                "weight-stochasticity",
                f"columns of W do not sum to 1 (max error {col_err:.3e})",
            )
        allowed = {(u, v) for u, v in self.trainer.topology.edges}
        allowed |= {(v, u) for u, v in self.trainer.topology.edges}
        coo = W.tocoo()
        for u, v, value in zip(coo.row, coo.col, coo.data):
            u, v = int(u), int(v)
            if u != v and (u, v) not in allowed and abs(value) > self.atol:
                self.violate(
                    "weight-stochasticity",
                    f"W[{u}, {v}] = {value:.3e} but ({u}, {v}) is not an edge "
                    "(weights must be supported on the neighbor sets)",
                )

    def _check_weight_spectrum(self) -> None:
        self.checks["weight-spectrum"] += 1
        W = self.trainer.weight_matrix
        if issparse(W):
            n = W.shape[0]
            if n >= 3:
                return self._check_weight_spectrum_sparse(W)
            W = W.toarray()
        W = np.asarray(W, dtype=float)
        eigenvalues = np.sort(np.linalg.eigvalsh(0.5 * (W + W.T)))
        lam_min, lam_max = float(eigenvalues[0]), float(eigenvalues[-1])
        if abs(lam_max - 1.0) > 10 * self.atol:
            self.violate(
                "weight-spectrum",
                f"λ_max(W) = {lam_max:.12f}; a doubly stochastic W must have "
                "λ_max = 1 (the consensus eigenvector)",
            )
        if lam_min <= -1.0 + 10 * self.atol:
            self.violate(
                "weight-spectrum",
                f"λ_min(W) = {lam_min:.12f} ≤ -1; EXTRA needs "
                "W̃ = (I + W)/2 ≻ 0",
            )
        if len(eigenvalues) > 1:
            second = float(eigenvalues[-2])
            if second >= 1.0 - 10 * self.atol:
                self.violate(
                    "weight-spectrum",
                    f"second-largest eigenvalue {second:.12f} touches 1: no "
                    "spectral gap, so consensus cannot contract "
                    "(disconnected or degenerate mixing)",
                )

    def _check_weight_spectrum_sparse(self, W) -> None:
        """Spectrum endpoints via Lanczos instead of a dense O(N^3) eigvalsh."""
        from scipy.sparse.linalg import eigsh

        from repro.utils.linalg import smallest_eigenvalue_sparse

        symmetric = ((W + W.T) * 0.5).astype(float)
        n = symmetric.shape[0]
        v0 = np.random.default_rng(0).standard_normal(n)
        top = np.sort(
            eigsh(
                symmetric,
                k=min(2, n - 1),
                which="LA",
                v0=v0,
                return_eigenvectors=False,
            )
        )
        lam_max = float(top[-1])
        lam_min = smallest_eigenvalue_sparse(symmetric)
        if abs(lam_max - 1.0) > 10 * self.atol:
            self.violate(
                "weight-spectrum",
                f"λ_max(W) = {lam_max:.12f}; a doubly stochastic W must have "
                "λ_max = 1 (the consensus eigenvector)",
            )
        if lam_min <= -1.0 + 10 * self.atol:
            self.violate(
                "weight-spectrum",
                f"λ_min(W) = {lam_min:.12f} ≤ -1; EXTRA needs "
                "W̃ = (I + W)/2 ≻ 0",
            )
        if top.size > 1:
            second = float(top[0])
            if second >= 1.0 - 10 * self.atol:
                self.violate(
                    "weight-spectrum",
                    f"second-largest eigenvalue {second:.12f} touches 1: no "
                    "spectral gap, so consensus cannot contract "
                    "(disconnected or degenerate mixing)",
                )

    # -- per-round checks --------------------------------------------------------

    def on_round(self, record, down: frozenset = frozenset()) -> None:
        """Run every per-round invariant after one completed round.

        The caller must have synced engine state back onto the server
        objects (``SNAPTrainer.run`` does this before invoking the monitor).
        """
        self._check_ape_budget(record)
        # Pop the accumulated flow batches once: both ledger checks (global
        # and tiered) read the same per-flow evidence for this round.
        batches, self._pending_flows = self._pending_flows, []
        self._check_byte_ledger(record, batches)
        self._check_hierarchy_ledger(record, batches)
        self._check_byzantine_bound(record)
        self._check_drift_schedule(record)
        self._check_error_feedback(record, down)
        self._check_consensus_envelope(record)
        self._check_semi_sync(record)
        for name, check in self._extra_checks:
            self.checks[name] += 1
            check(self, record, down)

    def _check_ape_budget(self, record) -> None:
        schedules = self.trainer._schedules
        if not schedules:
            return
        self.checks["ape-budget"] += 1
        if self._threshold_watermarks is None:
            self._threshold_watermarks = [
                schedule.state_dict()["threshold"] for schedule in schedules
            ]
        for node, schedule in enumerate(schedules):
            state = schedule.state_dict()
            threshold = state["threshold"]
            accumulated = state["accumulated"]
            if accumulated < 0:
                self.violate(
                    "ape-budget",
                    f"server {node}: accumulated APE estimate is negative "
                    f"({accumulated:.3e})",
                    record.round_index,
                )
            if schedule.active and accumulated > threshold:
                self.violate(
                    "ape-budget",
                    f"server {node}: accumulated APE estimate "
                    f"{accumulated:.6e} exceeds the stage budget T_k = "
                    f"{threshold:.6e} without a stage advance (Algorithm 1, "
                    "lines 5-6)",
                    record.round_index,
                )
            watermark = self._threshold_watermarks[node]
            if threshold > watermark * (1.0 + 1e-12):
                self.violate(
                    "ape-budget",
                    f"server {node}: stage budget grew from {watermark:.6e} "
                    f"to {threshold:.6e}; T_k must decay monotonically",
                    record.round_index,
                )
            self._threshold_watermarks[node] = threshold
            expected_send = (
                threshold / schedule._send_denominator if schedule.active else 0.0
            )
            if schedule.send_threshold != expected_send:
                self.violate(
                    "ape-budget",
                    f"server {node}: send threshold {schedule.send_threshold!r}"
                    f" != T_k / (I_k (1+αG)^I_k) = {expected_send!r} "
                    "(Algorithm 1, line 4)",
                    record.round_index,
                )

    def _observe_flows(self, round_index, sources, destinations, sizes, hops):
        """Tracker observer: stash each validated flow batch until the round check."""
        self._pending_flows.append((int(round_index), sources, destinations, sizes, hops))

    def _check_byte_ledger(self, record, batches) -> None:
        self.checks["byte-ledger"] += 1
        tracker = self.trainer.tracker
        round_index = record.round_index
        tracked_bytes = tracker.round_bytes(round_index)
        if record.bytes_sent != tracked_bytes:
            self.violate(
                "byte-ledger",
                f"round record reports {record.bytes_sent} bytes but the "
                f"tracker aggregated {tracked_bytes}",
                round_index,
            )
        tracked_cost = tracker.round_cost(round_index)
        if record.cost != tracked_cost:
            self.violate(
                "byte-ledger",
                f"round record reports cost {record.cost} but the tracker "
                f"aggregated {tracked_cost}",
                round_index,
            )
        if self._feasible_size_array is None:
            self._feasible_size_array = np.asarray(
                sorted(
                    feasible_frame_sizes(
                        self.trainer.model.n_params,
                        quantization_bits(self.trainer.compressor_spec),
                    )
                ),
                dtype=np.int64,
            )
        # Under the semi-synchronous engine a server left behind the fleet
        # still executes old rounds on its own clock, so its flows flush
        # late, tagged with the *earlier* round they belong to. Those late
        # flows are legal in deferred mode; flows tagged with a future round
        # never are (run-ahead past the trainer's target is forbidden).
        deferred = (
            getattr(self.trainer.engine, "semi_sync_invariants", None) is not None
        )
        flow_bytes = 0
        flow_cost = 0
        for flow_round, sources, destinations, sizes, hops in batches:
            late = deferred and flow_round < round_index
            if flow_round != round_index and not late:
                self.violate(
                    "byte-ledger",
                    f"flows {sources.tolist()}->{destinations.tolist()} "
                    f"recorded under round {flow_round} during round "
                    f"{round_index}",
                    round_index,
                )
            if sizes.size == 0:
                continue
            if np.any(hops != 1):
                bad = int(np.argmax(hops != 1))
                self.violate(
                    "byte-ledger",
                    f"mesh flow {int(sources[bad])}->{int(destinations[bad])} "
                    f"claims {int(hops[bad])} hops; neighbor traffic is "
                    "single-hop",
                    round_index,
                )
            feasible = np.isin(sizes, self._feasible_size_array)
            if not feasible.all():
                bad = int(np.argmin(feasible))
                d = self.trainer.model.n_params
                self.violate(
                    "byte-ledger",
                    f"flow {int(sources[bad])}->{int(destinations[bad])} "
                    f"carries {int(sizes[bad])} bytes, which is not an "
                    f"analytic frame size for d = {d} parameters (Fig. 3: "
                    "4 + 8N - 4M, 12 (N - M), or the QUANTIZED size)",
                    round_index,
                )
            if not late:
                flow_bytes += int(sizes.sum())
                flow_cost += int((sizes * hops).sum())
        if flow_bytes != record.bytes_sent:
            self.violate(
                "byte-ledger",
                f"the round's flows sum to {flow_bytes} bytes but the round "
                f"record reports {record.bytes_sent}",
                round_index,
            )
        if flow_cost != record.cost:
            self.violate(
                "byte-ledger",
                f"the round's flows sum to cost {flow_cost} but the round "
                f"record reports {record.cost}",
                round_index,
            )

    def _check_hierarchy_ledger(self, record, batches) -> None:
        tiers = getattr(self.trainer.topology, "tiers", None)
        if tiers is None:
            return
        self.checks["hierarchy-ledger"] += 1
        deferred = (
            getattr(self.trainer.engine, "semi_sync_invariants", None) is not None
        )
        per_pair: Counter = Counter()
        for flow_round, sources, destinations, sizes, hops in batches:
            late = deferred and flow_round < record.round_index
            for source, destination, size in zip(
                sources.tolist(), destinations.tolist(), sizes.tolist()
            ):
                t_src, t_dst = tiers[source], tiers[destination]
                if abs(t_src - t_dst) > 1:
                    self.violate(
                        "hierarchy-ledger",
                        f"flow {source}->{destination} spans tiers "
                        f"{t_src}->{t_dst}; hierarchical traffic must stay "
                        "within adjacent tiers (edge <-> aggregator <-> "
                        "cloud, never skipping a level)",
                        record.round_index,
                    )
                if not late:
                    per_pair[(min(t_src, t_dst), max(t_src, t_dst))] += int(size)
        decomposed = sum(per_pair.values())
        if decomposed != record.bytes_sent:
            self.violate(
                "hierarchy-ledger",
                f"the per-tier-pair byte decomposition {dict(per_pair)!r} "
                f"sums to {decomposed} but the round record reports "
                f"{record.bytes_sent}: bytes leaked across the tier ledger",
                record.round_index,
            )

    def _check_byzantine_bound(self, record) -> None:
        plan = getattr(self.trainer, "byzantine_plan", None)
        spec = self.trainer.config.robust_aggregation
        if plan is None or spec is None:
            return
        self.checks["byzantine-bound"] += 1
        attackers = self.trainer.byzantine_nodes
        topology = self.trainer.topology
        for node in range(topology.n_nodes):
            if node in attackers:
                continue
            hostile = sum(
                1 for neighbor in topology.neighbors(node) if neighbor in attackers
            )
            if hostile > spec.f:
                self.violate(
                    "byzantine-bound",
                    f"honest server {node} has {hostile} byzantine neighbors "
                    f"but the {spec.kind} aggregator only tolerates f = "
                    f"{spec.f} per neighborhood: the robustness guarantee "
                    "is void for this node",
                    record.round_index,
                )

    def _check_drift_schedule(self, record) -> None:
        schedule = self.trainer.config.drift
        if schedule is None:
            return
        self.checks["drift-schedule"] += 1
        epoch = schedule.epoch(record.round_index)
        if epoch < self._drift_watermark:
            self.violate(
                "drift-schedule",
                f"the drift schedule reports epoch {epoch} at round "
                f"{record.round_index} after already reaching epoch "
                f"{self._drift_watermark}: epochs must be non-decreasing "
                "in the round index",
                record.round_index,
            )
        applied = getattr(self.trainer, "_drift_epoch", None)
        if applied is not None and applied != epoch:
            self.violate(
                "drift-schedule",
                f"the trainer holds shards for drift epoch {applied} but the "
                f"schedule places round {record.round_index} in epoch "
                f"{epoch}: a shard swap was missed or applied early",
                record.round_index,
            )
        self._drift_watermark = epoch

    def _check_error_feedback(self, record, down: frozenset) -> None:
        self.checks["error-feedback"] += 1
        servers = self.trainer.servers
        engine = self.trainer.engine
        # Semi-synchronous runs legitimately defer the identity on edges
        # whose delivered frames are still in the reorder buffers of a
        # receiver running behind the fleet: ``last_sent`` advanced at send
        # time, the receiver's view catches up when it reaches the sender's
        # round. Conservation of those frames is asserted by ``semi-sync``.
        in_flight_edges = getattr(engine, "in_flight_edges", None)
        in_flight = in_flight_edges() if in_flight_edges is not None else frozenset()
        lagging_nodes = getattr(engine, "lagging_nodes", None)
        lagging = lagging_nodes() if lagging_nodes is not None else frozenset()
        for server in servers:
            for neighbor in server.neighbors:
                if (server.node_id, neighbor) in in_flight:
                    continue
                if not np.array_equal(
                    server.last_sent[neighbor], servers[neighbor].views[server.node_id]
                ):
                    self.violate(
                        "error-feedback",
                        f"last_sent[{server.node_id}->{neighbor}] != "
                        f"views held by {neighbor}: the confirmed-delivery "
                        "reference-tracking identity broke",
                        record.round_index,
                    )
        byzantine = getattr(self.trainer, "byzantine_nodes", frozenset())
        for (source, destination), state in self.trainer._edge_states.items():
            if state.residual is None:
                continue
            if source in down or destination in down:
                continue  # the edge skipped this round; its residual is stale
            if source in byzantine:
                # An attacker compresses its *poisoned* transmit vector, so
                # its residual tracks tx - last_sent, not params - last_sent;
                # the honest-params identity intentionally does not hold.
                continue
            if source in lagging or destination in lagging:
                # A server behind the fleet last compressed in an older
                # round under that round's own outage pattern; its residual
                # is checked against the fleet's round here, so skip it.
                continue
            if not np.all(np.isfinite(state.residual)):
                self.violate(
                    "error-feedback",
                    f"edge {source}->{destination} holds a non-finite "
                    "error-feedback residual",
                    record.round_index,
                )
            expected = servers[source].params - servers[source].last_sent[destination]
            if not np.array_equal(state.residual, expected):
                gap = float(np.abs(state.residual - expected).max())
                self.violate(
                    "error-feedback",
                    f"edge {source}->{destination}: materialized residual != "
                    f"params - last_sent (max gap {gap:.3e}); the EF "
                    "accumulator drifted from the reference-tracking truth",
                    record.round_index,
                )

    def _check_semi_sync(self, record) -> None:
        probe = getattr(self.trainer.engine, "semi_sync_invariants", None)
        if probe is None:
            return
        self.checks["semi-sync"] += 1
        inv = probe()
        if inv["max_progress_staleness"] > inv["tau"]:
            self.violate(
                "semi-sync",
                f"a server started a round with a neighbor "
                f"{inv['max_progress_staleness']} rounds behind, beyond the "
                f"staleness bound tau = {inv['tau']}",
                record.round_index,
            )
        if not inv["monotonic_views"]:
            self.violate(
                "semi-sync",
                "a neighbor view was applied out of order: per-edge view "
                "versions must be strictly monotone (FIFO links + one frame "
                "per round make regressions impossible)",
                record.round_index,
            )
        frames, byte_ledger = inv["frames"], inv["bytes"]
        in_flight = frames["wire"] - frames["applied"] - frames["corrupted"]
        if in_flight < 0 or in_flight != frames["outstanding"]:
            self.violate(
                "semi-sync",
                f"frame conservation broke: {frames['wire']} on the wire != "
                f"{frames['applied']} applied + {frames['corrupted']} "
                f"corrupted + {frames['outstanding']} outstanding",
                record.round_index,
            )
        if in_flight != frames["buffered"]:
            self.violate(
                "semi-sync",
                f"deferred-delivery conservation broke at the round "
                f"boundary: {in_flight} frames unaccounted but "
                f"{frames['buffered']} sitting in reorder buffers (every "
                "scheduled arrival must be settled or buffered)",
                record.round_index,
            )
        bytes_in_flight = (
            byte_ledger["wire"] - byte_ledger["applied"] - byte_ledger["corrupted"]
        )
        if bytes_in_flight < 0 or bytes_in_flight != byte_ledger["buffered"]:
            self.violate(
                "semi-sync",
                f"byte conservation broke under deferred delivery: "
                f"{byte_ledger['wire']} sent != {byte_ledger['applied']} "
                f"applied + {byte_ledger['corrupted']} corrupted + "
                f"{byte_ledger['buffered']} buffered",
                record.round_index,
            )

    def _check_consensus_envelope(self, record) -> None:
        self.checks["consensus-envelope"] += 1
        consensus = record.consensus_error
        if not np.isfinite(record.mean_loss):
            self.violate(
                "consensus-envelope",
                f"mean loss is non-finite ({record.mean_loss!r}): the "
                "trajectory diverged",
                record.round_index,
            )
        if not np.isfinite(consensus) or consensus < 0:
            self.violate(
                "consensus-envelope",
                f"consensus residual is invalid ({consensus!r})",
                record.round_index,
            )
        self._envelope_rounds_seen += 1
        if self._envelope_rounds_seen <= _ENVELOPE_WARMUP_ROUNDS:
            opening = max(consensus, _CONSENSUS_FLOOR)
            if self._consensus_envelope is None:
                self._consensus_envelope = opening
            else:
                self._consensus_envelope = max(self._consensus_envelope, opening)
            return
        ceiling = self.consensus_slack * self._consensus_envelope
        if consensus > ceiling:
            self.violate(
                "consensus-envelope",
                f"consensus residual {consensus:.6e} left its monotone "
                f"envelope (opening level {self._consensus_envelope:.6e} × "
                f"slack {self.consensus_slack:g} = {ceiling:.6e}): EXTRA is "
                "diverging instead of contracting",
                record.round_index,
            )
