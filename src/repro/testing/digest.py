"""Canonical run digests: one versioned fingerprint per training run.

A :class:`RunDigest` condenses everything the bit-for-bit contracts pin —
the :class:`~repro.results.RoundRecord` stream, the flow ledger, the final
mean parameters, and the post-run per-server state — into a small set of
SHA-256 hex digests plus the exact byte totals. Two runs are *the same run*
iff their digests are equal; the regression pins in
``tests/compression/test_regression_pin.py`` and the differential harness
(:mod:`repro.testing.differential`) both compare runs this way.

The hashing recipe is **frozen**: the ``rounds_sha`` / ``ledger_sha`` /
``final_params_sha`` fields reproduce, byte for byte, the golden digests
captured before this module existed (when the recipe lived copy-pasted in
the compression test suite). Changing any canonical trace entry therefore
requires bumping :data:`DIGEST_VERSION` and re-capturing every pin —
digests of different versions never compare equal and refuse to load.

On top of the legacy recipe the digest adds ``server_state_sha``, covering
the post-run :class:`~repro.core.server.EdgeServer` state (parameters,
iteration counters, views, link state, freshness), the APE schedule state
machines, and any materialized error-feedback residuals — exactly the
surface the engine-equivalence suite asserts field by field.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError

#: Version of the canonical serialization below. Bump when any trace entry
#: changes shape; digests only compare equal within one version.
DIGEST_VERSION = 1

#: The fields a pre-``repro.testing`` golden pin recorded (and the exact
#: keys :meth:`RunDigest.pinned` still emits).
LEGACY_PIN_KEYS = (
    "rounds_sha",
    "ledger_sha",
    "final_params_sha",
    "total_bytes",
    "total_cost",
    "final_loss",
)


def round_trace_entry(record) -> tuple:
    """The canonical, hash-stable tuple for one :class:`RoundRecord`.

    Floats travel as ``float.hex()`` so the entry is exact (no repr rounding
    ambiguity) and the hash is platform independent.
    """
    return (
        record.round_index,
        record.mean_loss.hex(),
        record.consensus_error.hex(),
        record.bytes_sent,
        record.cost,
        record.params_sent,
        record.stale_links,
        record.max_staleness,
        record.connected,
    )


def flow_trace_entry(flow) -> tuple:
    """The canonical tuple for one :class:`~repro.network.cost.FlowRecord`."""
    return (flow.round_index, flow.source, flow.destination, flow.size_bytes, flow.hops)


def _sha_of_entries(entries) -> str:
    digest = hashlib.sha256()
    for entry in entries:
        digest.update(repr(entry).encode())
    return digest.hexdigest()


def _hash_array(digest: "hashlib._Hash", label: str, array) -> None:
    digest.update(label.encode())
    if array is None:
        digest.update(b"<none>")
    else:
        digest.update(np.ascontiguousarray(array).tobytes())


def server_state_sha(trainer) -> str:
    """SHA-256 over the post-run per-server state of a trainer.

    Covers exactly the surface the engine-equivalence contract compares:
    per-server parameters, iteration counter, previous-iterate layer,
    per-neighbor views / ``last_sent`` / freshness, the APE schedule state
    dicts, and any materialized error-feedback residuals on the edge
    states. (The previous-*views* layer is engine bookkeeping that the
    contract does not pin and is deliberately excluded.)

    Callers must ensure the engine state has been written back to the
    server objects (``trainer.run`` always leaves them synced).
    """
    digest = hashlib.sha256()
    for server in trainer.servers:
        digest.update(repr((server.node_id, server.iteration)).encode())
        _hash_array(digest, "params", server.params)
        _hash_array(digest, "previous", server.previous_params)
        for neighbor in server.neighbors:
            digest.update(repr(("edge", neighbor, server.fresh[neighbor])).encode())
            _hash_array(digest, "view", server.views[neighbor])
            _hash_array(digest, "last_sent", server.last_sent[neighbor])
    if trainer._schedules is not None:
        for schedule in trainer._schedules:
            digest.update(repr(sorted(schedule.state_dict().items())).encode())
    for key in sorted(trainer._edge_states):
        state = trainer._edge_states[key]
        if state.residual is not None:
            digest.update(repr(("residual", key)).encode())
            _hash_array(digest, "residual", state.residual)
    return digest.hexdigest()


@dataclass(frozen=True)
class RunDigest:
    """A versioned fingerprint of one completed training run.

    Equality compares the hashes and totals only; the raw traces ride along
    (``compare=False``) so :meth:`diff` can point at the first diverging
    round or flow instead of just saying "hashes differ".
    """

    version: int
    rounds_sha: str
    ledger_sha: str
    final_params_sha: str
    server_state_sha: str
    total_bytes: int
    total_cost: int
    final_loss: str
    rounds_trace: tuple = field(default=(), compare=False, repr=False)
    ledger_trace: tuple = field(default=(), compare=False, repr=False)

    @classmethod
    def capture(cls, trainer, result) -> "RunDigest":
        """Digest a finished run: the trainer's state plus its result.

        ``result`` is the :class:`~repro.results.TrainingResult` returned by
        the ``trainer.run`` call being digested. The flow ledger is hashed
        from the tracker's retained records when available; with
        ``retain_flow_records=False`` the ledger trace is empty and
        ``ledger_sha`` hashes nothing (the byte/cost totals still pin the
        aggregate).
        """
        rounds_trace = tuple(round_trace_entry(r) for r in result.rounds)
        if trainer.tracker.retain_records:
            ledger_trace = tuple(
                flow_trace_entry(f) for f in trainer.tracker.records()
            )
        else:
            ledger_trace = ()
        return cls(
            version=DIGEST_VERSION,
            rounds_sha=_sha_of_entries(rounds_trace),
            ledger_sha=_sha_of_entries(ledger_trace),
            final_params_sha=hashlib.sha256(
                np.ascontiguousarray(result.final_params).tobytes()
            ).hexdigest(),
            server_state_sha=server_state_sha(trainer),
            total_bytes=trainer.tracker.total_bytes,
            total_cost=trainer.tracker.total_cost,
            final_loss=result.rounds[-1].mean_loss.hex() if result.rounds else "",
            rounds_trace=rounds_trace,
            ledger_trace=ledger_trace,
        )

    # -- legacy pins -------------------------------------------------------------

    def pinned(self) -> dict:
        """The pre-``repro.testing`` golden-pin dict (exact legacy keys).

        The values are byte-identical to what the duplicated hashing code in
        the old test harness produced, so golden digests captured before the
        extraction keep matching without re-pinning.
        """
        return {key: getattr(self, key) for key in LEGACY_PIN_KEYS}

    def matches_pin(self, pin: dict) -> bool:
        """Whether this digest matches a legacy golden-pin dict."""
        return self.pinned() == dict(pin)

    # -- serialization -----------------------------------------------------------

    def to_json(self) -> str:
        """Stable JSON form (without the raw traces)."""
        payload = asdict(self)
        payload.pop("rounds_trace")
        payload.pop("ledger_trace")
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunDigest":
        """Load a digest; rejects serializations of a different version."""
        payload = json.loads(text)
        version = payload.get("version")
        if version != DIGEST_VERSION:
            raise ConfigurationError(
                f"run digest version {version!r} does not match this "
                f"implementation's version {DIGEST_VERSION}; digests are only "
                "comparable within one version (re-capture the pin)"
            )
        return cls(**payload)

    # -- diffing -----------------------------------------------------------------

    def diff(self, other: "RunDigest") -> str:
        """Human-readable description of how two digests differ.

        Empty string when equal. When the raw traces were captured, the
        first diverging round record / flow record is printed entry by
        entry; otherwise only the mismatching hash fields are named.
        """
        if not isinstance(other, RunDigest):
            return f"not a RunDigest: {other!r}"
        if self.version != other.version:
            return f"digest version differs: {self.version} != {other.version}"
        lines: list[str] = []
        for name in ("total_bytes", "total_cost", "final_loss"):
            a, b = getattr(self, name), getattr(other, name)
            if a != b:
                lines.append(f"{name}: {a!r} != {b!r}")
        if self.rounds_sha != other.rounds_sha:
            lines.append("rounds_sha differs")
            lines.extend(
                _first_trace_divergence(
                    "round", self.rounds_trace, other.rounds_trace
                )
            )
        if self.ledger_sha != other.ledger_sha:
            lines.append("ledger_sha differs")
            lines.extend(
                _first_trace_divergence(
                    "flow", self.ledger_trace, other.ledger_trace
                )
            )
        if self.final_params_sha != other.final_params_sha:
            lines.append("final_params_sha differs (final mean parameters)")
        if self.server_state_sha != other.server_state_sha:
            lines.append("server_state_sha differs (post-run per-server state)")
        return "\n".join(lines)


def _first_trace_divergence(label: str, left: tuple, right: tuple) -> list[str]:
    if not left or not right:
        return [f"  (raw {label} traces not captured on both sides)"]
    if len(left) != len(right):
        return [f"  {label} count differs: {len(left)} != {len(right)}"]
    for position, (a, b) in enumerate(zip(left, right)):
        if a != b:
            return [
                f"  first diverging {label} at position {position}:",
                f"    left:  {a!r}",
                f"    right: {b!r}",
            ]
    return [f"  (identical {label} traces — hash recipe mismatch?)"]


class DigestStream:
    """Incremental :class:`RunDigest` accumulation during a live run.

    Subscribes to the trainer's round observers and the cost tracker's flow
    observers, folding every round record and every flow into the running
    ``rounds_sha`` / ``ledger_sha`` digests **as they happen** — the exact
    ``DIGEST_VERSION`` canonical bytes the retained-trace path hashes, so
    :meth:`finalize` returns a digest equal to :meth:`RunDigest.capture` on
    the same run, without the trainer retaining any per-round or per-flow
    objects. This is what lets the differential harness certify N=4096-class
    runs with ``retain_flow_records=False`` against golden pins captured
    from fully-retained traces.
    """

    def __init__(self, trainer):
        self._trainer = trainer
        self._rounds_digest = hashlib.sha256()
        self._ledger_digest = hashlib.sha256()
        self._n_rounds = 0
        self._n_flows = 0
        trainer.tracker.add_observer(self._observe_flows)
        trainer.add_round_observer(self.observe_round)

    def _observe_flows(self, round_index, sources, destinations, sizes, hops):
        # One canonical flow entry per flow, in insertion order — identical
        # bytes to hashing flow_trace_entry over retained FlowRecords.
        # .tolist() is load-bearing: numpy 2.x scalar reprs ("np.int64(5)")
        # would corrupt the frozen recipe.
        round_index = int(round_index)
        update = self._ledger_digest.update
        for entry in zip(
            sources.tolist(), destinations.tolist(), sizes.tolist(), hops.tolist()
        ):
            update(repr((round_index, *entry)).encode())
            self._n_flows += 1

    def observe_round(self, record) -> None:
        """Fold one fresh :class:`~repro.results.RoundRecord` into the digest."""
        self._rounds_digest.update(repr(round_trace_entry(record)).encode())
        self._n_rounds += 1

    def finalize(self, result) -> "RunDigest":
        """Seal the stream into a :class:`RunDigest` for the finished run.

        ``result`` is the :class:`~repro.results.TrainingResult` the observed
        ``trainer.run`` call returned (the run loop leaves the servers
        synced, so the server-state hash is current). The raw traces are
        empty — equality only compares the hashes and totals, and
        :meth:`RunDigest.diff` falls back to naming the mismatching fields.
        """
        trainer = self._trainer
        return RunDigest(
            version=DIGEST_VERSION,
            rounds_sha=self._rounds_digest.hexdigest(),
            ledger_sha=self._ledger_digest.hexdigest(),
            final_params_sha=hashlib.sha256(
                np.ascontiguousarray(result.final_params).tobytes()
            ).hexdigest(),
            server_state_sha=server_state_sha(trainer),
            total_bytes=trainer.tracker.total_bytes,
            total_cost=trainer.tracker.total_cost,
            final_loss=result.rounds[-1].mean_loss.hex() if result.rounds else "",
        )


def capture_run(trainer, streaming: bool = False, **run_kwargs) -> RunDigest:
    """Run a freshly-built trainer to completion and digest it.

    Convenience for regression pins: ``stop_on_convergence`` defaults to
    ``False`` so the digest always covers the configured round budget.

    With ``streaming=True`` the digest is accumulated incrementally by a
    :class:`DigestStream` during the run instead of from retained traces
    afterwards — byte-identical hashes, and the only mode that works when
    the trainer was built with ``retain_flow_records=False``.
    """
    run_kwargs.setdefault("stop_on_convergence", False)
    if streaming:
        stream = DigestStream(trainer)
        result = trainer.run(**run_kwargs)
        return stream.finalize(result)
    result = trainer.run(**run_kwargs)
    return RunDigest.capture(trainer, result)
