"""Seeded scenario generation for differential testing.

A :class:`Scenario` is a fully self-contained description of one training
run — topology, model, data shards, compression scheme, straggler strategy,
fault plan, round budget — every field derived deterministically from
``(master_seed, index)``. The same pair always rebuilds the identical
scenario on any machine, so a failing differential case is reproduced from
two integers (see ``docs/TESTING.md``).

:class:`ScenarioGen` samples scenarios across the whole configuration
lattice the engines must agree on:

* topology: ring of 4–8 servers plus 0–3 random chords (always connected);
* model: logistic regression or linear SVM on synthetic shards;
* compression: the three paper presets (``ape`` / ``changed_only`` /
  ``dense``) plus top-k, random-k, uniform quantization, and TernGrad —
  with and without the explicit error-feedback wrapper;
* stragglers: the paper's stale rule or the reweight-to-self ablation;
* faults: clean, or a Gilbert–Elliott + Markov-node + corruption plan;
* weights: Metropolis (fast default) or the Section IV-B optimizer;
* adaptive topology: optimizer-backed scenarios may arm the online
  pruning/re-optimization controller with a drawn period and threshold, so
  mid-run topology swaps are part of the engine-equivalence lattice.

``Scenario.build_trainer`` always constructs *fresh* objects — fault models
and per-edge RNG streams hold state, so a trainer must never be reused
between the reference and vectorized runs of one comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import SelectionPolicy, SNAPConfig, StragglerStrategy
from repro.core.trainer import SNAPTrainer
from repro.data.dataset import Dataset
from repro.data.drift import LabelShiftDrift, StreamingArrival
from repro.faults.byzantine import (
    ByzantinePlan,
    GaussianNoiseAttack,
    ScaledUpdateAttack,
    SignFlipAttack,
)
from repro.faults.models import (
    GilbertElliottLinkFailures,
    IndependentCorruption,
    MarkovNodeFailures,
)
from repro.faults.plan import FaultPlan
from repro.models.logistic import LogisticRegression
from repro.models.svm import LinearSVM
from repro.topology.generators import hierarchical_topology
from repro.topology.graph import Topology

#: The compression schemes a generated scenario may draw. ``None`` entries
#: mean "use the selection preset"; strings go through the spec grammar.
_COMPRESSOR_MENU = (
    None,  # selection preset (ape / changed_only / dense below)
    "topk:k={k}",
    "randomk:k={k}",
    "uniform:bits={bits}",
    "terngrad",
    "ef:topk:k={k}",
    "ef:randomk:k={k}",
    "ef:uniform:bits={bits}",
    "ef:terngrad",
)

_SELECTIONS = (
    SelectionPolicy.APE,
    SelectionPolicy.CHANGED_ONLY,
    SelectionPolicy.DENSE,
)


@dataclass(frozen=True)
class Scenario:
    """One deterministic training configuration for differential testing.

    Every field is a plain value (no live objects), so scenarios are
    hashable, printable, and trivially reconstructable from their seed.
    """

    master_seed: int
    index: int
    n_nodes: int
    chords: tuple  # extra (u, v) edges on top of the ring
    model_kind: str  # "logistic" | "svm"
    n_features: int
    n_samples: int
    data_seed: int
    selection: str  # SelectionPolicy value
    compressor: str | None  # spec string, or None for the selection preset
    straggler: str  # StragglerStrategy value
    optimize_weights: bool
    faulty: bool
    fault_seed: int
    link_p_fail: float
    link_p_recover: float
    node_p_fail: float
    node_p_recover: float
    corruption_rate: float
    max_rounds: int
    run_seed: int
    # Adaptive-topology axis (defaults keep pre-axis scenarios identical).
    adaptive: bool = False
    reoptimize_every: int = 5
    prune_threshold: float = 0.02
    # Workload axis (byzantine / drifting / hierarchical); defaults = plain
    # honest static-data ring scenarios, so pre-axis pins are untouched.
    byzantine: str | None = None  # "sign_flip" | "gaussian" | "scaled"
    byzantine_nodes: tuple = ()  # explicit attacker ids
    attack_scale: float = 1.0  # flip scale / noise sigma / blow-up factor
    byzantine_seed: int = 0  # gaussian attack noise stream
    robust: str | None = None  # robust-aggregation spec string
    drift_kind: str | None = None  # "label_shift" | "streaming"
    drift_period: int = 4
    drift_seed: int = 0
    hierarchy: tuple = ()  # branching per tier; () = ring + chords
    tier_damping: float = 0.5  # only used when hierarchy is set

    @classmethod
    def from_index(cls, master_seed: int, index: int) -> "Scenario":
        """Rebuild scenario ``index`` of the ``master_seed`` stream."""
        return ScenarioGen(master_seed).scenario(index)

    # -- construction ------------------------------------------------------------

    def topology(self) -> Topology:
        if self.hierarchy:
            return hierarchical_topology(list(self.hierarchy))
        ring = [(i, (i + 1) % self.n_nodes) for i in range(self.n_nodes)]
        return Topology(self.n_nodes, ring + [tuple(c) for c in self.chords])

    def model(self):
        if self.model_kind == "logistic":
            return LogisticRegression(self.n_features)
        if self.model_kind == "svm":
            return LinearSVM(self.n_features)
        raise ValueError(f"unknown model kind {self.model_kind!r}")

    def shards(self) -> list[Dataset]:
        """Synthetic linearly-separable-ish binary shards, one per server."""
        rng = np.random.default_rng([self.data_seed, self.n_nodes])
        out = []
        for _ in range(self.n_nodes):
            X = rng.normal(size=(self.n_samples, self.n_features))
            w = rng.normal(size=self.n_features)
            noise = 0.3 * rng.normal(size=self.n_samples)
            y = (X @ w + noise > 0).astype(float)
            out.append(Dataset(X, y))
        return out

    def byzantine_plan(self) -> ByzantinePlan | None:
        """A fresh byzantine plan for this scenario's attack axis."""
        if self.byzantine is None:
            return None
        if self.byzantine == "sign_flip":
            attack = SignFlipAttack(scale=self.attack_scale)
        elif self.byzantine == "gaussian":
            attack = GaussianNoiseAttack(
                sigma=self.attack_scale, seed=self.byzantine_seed
            )
        elif self.byzantine == "scaled":
            attack = ScaledUpdateAttack(factor=self.attack_scale)
        else:
            raise ValueError(f"unknown byzantine attack {self.byzantine!r}")
        return ByzantinePlan(attack, attackers=self.byzantine_nodes)

    def drift_schedule(self):
        """A fresh drift schedule for this scenario's data axis."""
        if self.drift_kind is None:
            return None
        if self.drift_kind == "label_shift":
            return LabelShiftDrift(self.drift_period, seed=self.drift_seed)
        if self.drift_kind == "streaming":
            return StreamingArrival(self.drift_period)
        raise ValueError(f"unknown drift kind {self.drift_kind!r}")

    def fault_plan(self) -> FaultPlan | None:
        """A fresh fault plan (fault models hold RNG state — never share)."""
        byzantine = self.byzantine_plan()
        if not self.faulty:
            if byzantine is None:
                return None
            return FaultPlan(byzantine=byzantine)
        return FaultPlan(
            links=GilbertElliottLinkFailures(
                self.link_p_fail, self.link_p_recover, seed=self.fault_seed
            ),
            nodes=MarkovNodeFailures(
                self.node_p_fail, self.node_p_recover, seed=self.fault_seed + 1
            ),
            corruption=(
                IndependentCorruption(
                    self.corruption_rate, seed=self.fault_seed + 2
                )
                if self.corruption_rate > 0
                else None
            ),
            byzantine=byzantine,
        )

    def config(self, engine: str, invariants: str = "off") -> SNAPConfig:
        return SNAPConfig(
            engine=engine,
            invariants=invariants,
            seed=self.run_seed,
            selection=SelectionPolicy(self.selection),
            compressor=self.compressor,
            straggler_strategy=StragglerStrategy(self.straggler),
            optimize_weights=self.optimize_weights,
            weight_iterations=30 if self.optimize_weights else 150,
            max_rounds=self.max_rounds,
            adaptive_topology=self.adaptive,
            topology_reoptimize_every=self.reoptimize_every,
            topology_prune_threshold=self.prune_threshold,
            robust_aggregation=self.robust,
            drift=self.drift_schedule(),
            tier_damping=self.tier_damping if self.hierarchy else None,
        )

    def build_trainer(self, engine: str, invariants: str = "off") -> SNAPTrainer:
        """A fresh trainer for this scenario on the requested engine."""
        return SNAPTrainer(
            self.model(),
            self.shards(),
            self.topology(),
            self.config(engine, invariants),
            fault_plan=self.fault_plan(),
        )

    def with_overrides(self, **changes) -> "Scenario":
        """A copy with some fields replaced (for shrinking / probing)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line label for logs and failure reports."""
        scheme = self.compressor if self.compressor else f"preset:{self.selection}"
        faults = "faulty" if self.faulty else "clean"
        weights = "optW" if self.optimize_weights else "metropolis"
        if self.adaptive:
            weights += f"+adapt/{self.reoptimize_every}"
        workload = ""
        if self.byzantine:
            workload += f" byz:{self.byzantine}x{len(self.byzantine_nodes)}"
        if self.robust:
            workload += f" robust:{self.robust}"
        if self.drift_kind:
            workload += f" drift:{self.drift_kind}/{self.drift_period}"
        if self.hierarchy:
            workload += f" hier:{'x'.join(map(str, self.hierarchy))}"
        shape = (
            f"hier{self.hierarchy}"
            if self.hierarchy
            else f"N={self.n_nodes}+{len(self.chords)}ch"
        )
        return (
            f"scenario[{self.master_seed}/{self.index}] "
            f"{shape} {self.model_kind} "
            f"d={self.n_features} {scheme} {self.straggler} {weights} "
            f"{faults} rounds={self.max_rounds}{workload}"
        )


#: First index at which the generator draws the workload axis (byzantine /
#: drifting / hierarchical). Earlier indices keep their historical field
#: values bit for bit, so the committed 25-scenario pins never move.
WORKLOAD_AXIS_START = 25


class ScenarioGen:
    """Deterministic scenario stream: ``scenario(i)`` is a pure function.

    Sampling uses ``np.random.default_rng([master_seed, index])`` — the
    SeedSequence spawn convention used throughout the repo — so scenario
    ``i`` never depends on whether scenarios ``0..i-1`` were generated.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)

    def scenario(self, index: int) -> Scenario:
        rng = np.random.default_rng([self.master_seed, int(index)])
        n_nodes = int(rng.integers(4, 9))

        # Chords over the ring: sample from the non-ring pairs.
        non_ring = [
            (u, v)
            for u in range(n_nodes)
            for v in range(u + 1, n_nodes)
            if not (v - u == 1 or (u == 0 and v == n_nodes - 1))
        ]
        n_chords = int(rng.integers(0, min(3, len(non_ring)) + 1))
        chord_idx = rng.choice(len(non_ring), size=n_chords, replace=False)
        chords = tuple(sorted(non_ring[int(i)] for i in chord_idx))

        model_kind = "svm" if rng.random() < 0.3 else "logistic"
        n_features = int(rng.integers(3, 9))
        n_samples = int(rng.integers(20, 46))

        compressor_template = _COMPRESSOR_MENU[
            int(rng.integers(0, len(_COMPRESSOR_MENU)))
        ]
        n_params = n_features + 1  # both model kinds fit an intercept
        if compressor_template is None:
            compressor = None
            selection = _SELECTIONS[int(rng.integers(0, len(_SELECTIONS)))]
        else:
            compressor = compressor_template.format(
                k=int(rng.integers(1, n_params + 1)),
                bits=int(rng.integers(2, 9)),
            )
            selection = SelectionPolicy.APE  # ignored: compressor wins

        straggler = (
            StragglerStrategy.REWEIGHT
            if rng.random() < 0.3
            else StragglerStrategy.STALE
        )
        optimize_weights = rng.random() < 0.2
        faulty = rng.random() < 0.5

        scenario = Scenario(
            master_seed=self.master_seed,
            index=int(index),
            n_nodes=n_nodes,
            chords=chords,
            model_kind=model_kind,
            n_features=n_features,
            n_samples=n_samples,
            data_seed=int(rng.integers(0, 2**31)),
            selection=selection.value,
            compressor=compressor,
            straggler=straggler.value,
            optimize_weights=optimize_weights,
            faulty=faulty,
            fault_seed=int(rng.integers(0, 2**31)),
            link_p_fail=float(rng.uniform(0.05, 0.3)),
            link_p_recover=float(rng.uniform(0.3, 0.7)),
            node_p_fail=float(rng.uniform(0.02, 0.15)),
            node_p_recover=float(rng.uniform(0.4, 0.8)),
            corruption_rate=float(rng.uniform(0.0, 0.1)),
            max_rounds=int(rng.integers(6, 15)),
            run_seed=int(rng.integers(0, 2**31)),
            # Drawn after run_seed so every pre-axis field keeps its
            # historical value for a given (master_seed, index).
            adaptive=bool(optimize_weights and rng.random() < 0.35),
            reoptimize_every=int(rng.integers(3, 8)),
            prune_threshold=float(rng.uniform(0.01, 0.1)),
        )
        if index >= WORKLOAD_AXIS_START:
            scenario = self._draw_workload_axis(scenario, rng)
        return scenario

    def _draw_workload_axis(self, scenario: Scenario, rng) -> Scenario:
        """Widen a drawn scenario with one workload axis (or none).

        All draws happen *after* every historical field, from the same
        per-index stream, so the pre-axis fields above are untouched.
        """
        axis = int(rng.integers(0, 4))  # 0 = plain, 1 = byz, 2 = drift, 3 = hier
        if axis == 1:
            attack = ("sign_flip", "gaussian", "scaled")[int(rng.integers(0, 3))]
            n_attackers = 1 + int(rng.random() < 0.3)
            drawn = rng.choice(scenario.n_nodes, size=n_attackers, replace=False)
            attackers = tuple(sorted(int(a) for a in drawn))
            scale = {
                "sign_flip": 1.0,
                "gaussian": float(rng.uniform(0.1, 1.0)),
                "scaled": float(rng.uniform(2.0, 10.0)),
            }[attack]
            kind = ("trimmed_mean", "median", "krum")[int(rng.integers(0, 3))]
            # Tolerance sized to the worst honest neighborhood, so the
            # byzantine-bound invariant holds by construction.
            topology = scenario.topology()
            hostile = max(
                (
                    sum(1 for j in topology.neighbors(i) if j in attackers)
                    for i in range(topology.n_nodes)
                    if i not in attackers
                ),
                default=0,
            )
            return scenario.with_overrides(
                byzantine=attack,
                byzantine_nodes=attackers,
                attack_scale=scale,
                byzantine_seed=int(rng.integers(0, 2**31)),
                robust=f"{kind}:f={max(1, hostile)}",
            )
        if axis == 2:
            return scenario.with_overrides(
                drift_kind="label_shift" if rng.random() < 0.6 else "streaming",
                drift_period=int(rng.integers(2, 6)),
                drift_seed=int(rng.integers(0, 2**31)),
            )
        if axis == 3:
            branching = tuple(int(b) for b in rng.integers(2, 4, size=2))
            n_nodes = 1 + branching[0] + branching[0] * branching[1]
            # Tiered Metropolis is a fixed baseline: it excludes the weight
            # optimizer and (transitively) the adaptive controller.
            return scenario.with_overrides(
                hierarchy=branching,
                n_nodes=n_nodes,
                tier_damping=float(rng.uniform(0.3, 0.9)),
                optimize_weights=False,
                adaptive=False,
            )
        return scenario

    def scenarios(self, count: int, start: int = 0) -> list[Scenario]:
        """The first ``count`` scenarios from ``start`` (pure per index)."""
        return [self.scenario(index) for index in range(start, start + count)]


def workload_scenarios(master_seed: int = 0) -> list[Scenario]:
    """The curated workload pack: every new axis, differentially pinned.

    Hand-written (not drawn) so each scenario names exactly the surface it
    certifies: the three byzantine attacks each under a different robust
    aggregator, both drift schedules, and hierarchical tiers — plus one
    combined hierarchy-under-attack case. Negative indices keep them
    disjoint from every generated stream; golden digests are committed in
    ``tests/differential/test_workload_differential.py``.
    """
    base = dict(
        master_seed=master_seed,
        n_nodes=6,
        chords=((0, 3),),
        model_kind="logistic",
        n_features=5,
        n_samples=32,
        data_seed=421,
        selection="ape",
        compressor=None,
        straggler="stale",
        optimize_weights=False,
        faulty=False,
        fault_seed=0,
        link_p_fail=0.0,
        link_p_recover=1.0,
        node_p_fail=0.0,
        node_p_recover=1.0,
        corruption_rate=0.0,
        max_rounds=10,
        run_seed=93,
    )

    def make(index: int, **over) -> Scenario:
        return Scenario(**{**base, "index": index, **over})

    return [
        make(
            -101,
            byzantine="sign_flip",
            byzantine_nodes=(1, 4),
            robust="trimmed_mean:f=2",
        ),
        make(
            -102,
            byzantine="gaussian",
            byzantine_nodes=(2,),
            attack_scale=0.5,
            byzantine_seed=7,
            robust="median:f=1",
            faulty=True,
            fault_seed=31,
            link_p_fail=0.15,
            link_p_recover=0.5,
            node_p_fail=0.05,
            node_p_recover=0.6,
            corruption_rate=0.05,
        ),
        make(
            -103,
            byzantine="scaled",
            byzantine_nodes=(0,),
            attack_scale=8.0,
            robust="krum:f=2",
            compressor="topk:k=3",
        ),
        make(-104, drift_kind="label_shift", drift_period=3, drift_seed=11),
        make(-105, drift_kind="streaming", drift_period=4, compressor="ef:topk:k=3"),
        make(
            -106,
            hierarchy=(2, 3),
            n_nodes=9,
            tier_damping=0.5,
            selection="changed_only",
        ),
        make(
            -107,
            hierarchy=(3, 2),
            n_nodes=10,
            tier_damping=0.7,
            byzantine="sign_flip",
            byzantine_nodes=(5,),
            robust="trimmed_mean:f=1",
        ),
    ]
