"""Seeded scenario generation for differential testing.

A :class:`Scenario` is a fully self-contained description of one training
run — topology, model, data shards, compression scheme, straggler strategy,
fault plan, round budget — every field derived deterministically from
``(master_seed, index)``. The same pair always rebuilds the identical
scenario on any machine, so a failing differential case is reproduced from
two integers (see ``docs/TESTING.md``).

:class:`ScenarioGen` samples scenarios across the whole configuration
lattice the engines must agree on:

* topology: ring of 4–8 servers plus 0–3 random chords (always connected);
* model: logistic regression or linear SVM on synthetic shards;
* compression: the three paper presets (``ape`` / ``changed_only`` /
  ``dense``) plus top-k, random-k, uniform quantization, and TernGrad —
  with and without the explicit error-feedback wrapper;
* stragglers: the paper's stale rule or the reweight-to-self ablation;
* faults: clean, or a Gilbert–Elliott + Markov-node + corruption plan;
* weights: Metropolis (fast default) or the Section IV-B optimizer;
* adaptive topology: optimizer-backed scenarios may arm the online
  pruning/re-optimization controller with a drawn period and threshold, so
  mid-run topology swaps are part of the engine-equivalence lattice.

``Scenario.build_trainer`` always constructs *fresh* objects — fault models
and per-edge RNG streams hold state, so a trainer must never be reused
between the reference and vectorized runs of one comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import SelectionPolicy, SNAPConfig, StragglerStrategy
from repro.core.trainer import SNAPTrainer
from repro.data.dataset import Dataset
from repro.faults.models import (
    GilbertElliottLinkFailures,
    IndependentCorruption,
    MarkovNodeFailures,
)
from repro.faults.plan import FaultPlan
from repro.models.logistic import LogisticRegression
from repro.models.svm import LinearSVM
from repro.topology.graph import Topology

#: The compression schemes a generated scenario may draw. ``None`` entries
#: mean "use the selection preset"; strings go through the spec grammar.
_COMPRESSOR_MENU = (
    None,  # selection preset (ape / changed_only / dense below)
    "topk:k={k}",
    "randomk:k={k}",
    "uniform:bits={bits}",
    "terngrad",
    "ef:topk:k={k}",
    "ef:randomk:k={k}",
    "ef:uniform:bits={bits}",
    "ef:terngrad",
)

_SELECTIONS = (
    SelectionPolicy.APE,
    SelectionPolicy.CHANGED_ONLY,
    SelectionPolicy.DENSE,
)


@dataclass(frozen=True)
class Scenario:
    """One deterministic training configuration for differential testing.

    Every field is a plain value (no live objects), so scenarios are
    hashable, printable, and trivially reconstructable from their seed.
    """

    master_seed: int
    index: int
    n_nodes: int
    chords: tuple  # extra (u, v) edges on top of the ring
    model_kind: str  # "logistic" | "svm"
    n_features: int
    n_samples: int
    data_seed: int
    selection: str  # SelectionPolicy value
    compressor: str | None  # spec string, or None for the selection preset
    straggler: str  # StragglerStrategy value
    optimize_weights: bool
    faulty: bool
    fault_seed: int
    link_p_fail: float
    link_p_recover: float
    node_p_fail: float
    node_p_recover: float
    corruption_rate: float
    max_rounds: int
    run_seed: int
    # Adaptive-topology axis (defaults keep pre-axis scenarios identical).
    adaptive: bool = False
    reoptimize_every: int = 5
    prune_threshold: float = 0.02

    @classmethod
    def from_index(cls, master_seed: int, index: int) -> "Scenario":
        """Rebuild scenario ``index`` of the ``master_seed`` stream."""
        return ScenarioGen(master_seed).scenario(index)

    # -- construction ------------------------------------------------------------

    def topology(self) -> Topology:
        ring = [(i, (i + 1) % self.n_nodes) for i in range(self.n_nodes)]
        return Topology(self.n_nodes, ring + [tuple(c) for c in self.chords])

    def model(self):
        if self.model_kind == "logistic":
            return LogisticRegression(self.n_features)
        if self.model_kind == "svm":
            return LinearSVM(self.n_features)
        raise ValueError(f"unknown model kind {self.model_kind!r}")

    def shards(self) -> list[Dataset]:
        """Synthetic linearly-separable-ish binary shards, one per server."""
        rng = np.random.default_rng([self.data_seed, self.n_nodes])
        out = []
        for _ in range(self.n_nodes):
            X = rng.normal(size=(self.n_samples, self.n_features))
            w = rng.normal(size=self.n_features)
            noise = 0.3 * rng.normal(size=self.n_samples)
            y = (X @ w + noise > 0).astype(float)
            out.append(Dataset(X, y))
        return out

    def fault_plan(self) -> FaultPlan | None:
        """A fresh fault plan (fault models hold RNG state — never share)."""
        if not self.faulty:
            return None
        return FaultPlan(
            links=GilbertElliottLinkFailures(
                self.link_p_fail, self.link_p_recover, seed=self.fault_seed
            ),
            nodes=MarkovNodeFailures(
                self.node_p_fail, self.node_p_recover, seed=self.fault_seed + 1
            ),
            corruption=(
                IndependentCorruption(
                    self.corruption_rate, seed=self.fault_seed + 2
                )
                if self.corruption_rate > 0
                else None
            ),
        )

    def config(self, engine: str, invariants: str = "off") -> SNAPConfig:
        return SNAPConfig(
            engine=engine,
            invariants=invariants,
            seed=self.run_seed,
            selection=SelectionPolicy(self.selection),
            compressor=self.compressor,
            straggler_strategy=StragglerStrategy(self.straggler),
            optimize_weights=self.optimize_weights,
            weight_iterations=30 if self.optimize_weights else 150,
            max_rounds=self.max_rounds,
            adaptive_topology=self.adaptive,
            topology_reoptimize_every=self.reoptimize_every,
            topology_prune_threshold=self.prune_threshold,
        )

    def build_trainer(self, engine: str, invariants: str = "off") -> SNAPTrainer:
        """A fresh trainer for this scenario on the requested engine."""
        return SNAPTrainer(
            self.model(),
            self.shards(),
            self.topology(),
            self.config(engine, invariants),
            fault_plan=self.fault_plan(),
        )

    def with_overrides(self, **changes) -> "Scenario":
        """A copy with some fields replaced (for shrinking / probing)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line label for logs and failure reports."""
        scheme = self.compressor if self.compressor else f"preset:{self.selection}"
        faults = "faulty" if self.faulty else "clean"
        weights = "optW" if self.optimize_weights else "metropolis"
        if self.adaptive:
            weights += f"+adapt/{self.reoptimize_every}"
        return (
            f"scenario[{self.master_seed}/{self.index}] "
            f"N={self.n_nodes}+{len(self.chords)}ch {self.model_kind} "
            f"d={self.n_features} {scheme} {self.straggler} {weights} "
            f"{faults} rounds={self.max_rounds}"
        )


class ScenarioGen:
    """Deterministic scenario stream: ``scenario(i)`` is a pure function.

    Sampling uses ``np.random.default_rng([master_seed, index])`` — the
    SeedSequence spawn convention used throughout the repo — so scenario
    ``i`` never depends on whether scenarios ``0..i-1`` were generated.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)

    def scenario(self, index: int) -> Scenario:
        rng = np.random.default_rng([self.master_seed, int(index)])
        n_nodes = int(rng.integers(4, 9))

        # Chords over the ring: sample from the non-ring pairs.
        non_ring = [
            (u, v)
            for u in range(n_nodes)
            for v in range(u + 1, n_nodes)
            if not (v - u == 1 or (u == 0 and v == n_nodes - 1))
        ]
        n_chords = int(rng.integers(0, min(3, len(non_ring)) + 1))
        chord_idx = rng.choice(len(non_ring), size=n_chords, replace=False)
        chords = tuple(sorted(non_ring[int(i)] for i in chord_idx))

        model_kind = "svm" if rng.random() < 0.3 else "logistic"
        n_features = int(rng.integers(3, 9))
        n_samples = int(rng.integers(20, 46))

        compressor_template = _COMPRESSOR_MENU[
            int(rng.integers(0, len(_COMPRESSOR_MENU)))
        ]
        n_params = n_features + 1  # both model kinds fit an intercept
        if compressor_template is None:
            compressor = None
            selection = _SELECTIONS[int(rng.integers(0, len(_SELECTIONS)))]
        else:
            compressor = compressor_template.format(
                k=int(rng.integers(1, n_params + 1)),
                bits=int(rng.integers(2, 9)),
            )
            selection = SelectionPolicy.APE  # ignored: compressor wins

        straggler = (
            StragglerStrategy.REWEIGHT
            if rng.random() < 0.3
            else StragglerStrategy.STALE
        )
        optimize_weights = rng.random() < 0.2
        faulty = rng.random() < 0.5

        return Scenario(
            master_seed=self.master_seed,
            index=int(index),
            n_nodes=n_nodes,
            chords=chords,
            model_kind=model_kind,
            n_features=n_features,
            n_samples=n_samples,
            data_seed=int(rng.integers(0, 2**31)),
            selection=selection.value,
            compressor=compressor,
            straggler=straggler.value,
            optimize_weights=optimize_weights,
            faulty=faulty,
            fault_seed=int(rng.integers(0, 2**31)),
            link_p_fail=float(rng.uniform(0.05, 0.3)),
            link_p_recover=float(rng.uniform(0.3, 0.7)),
            node_p_fail=float(rng.uniform(0.02, 0.15)),
            node_p_recover=float(rng.uniform(0.4, 0.8)),
            corruption_rate=float(rng.uniform(0.0, 0.1)),
            max_rounds=int(rng.integers(6, 15)),
            run_seed=int(rng.integers(0, 2**31)),
            # Drawn after run_seed so every pre-axis field keeps its
            # historical value for a given (master_seed, index).
            adaptive=bool(optimize_weights and rng.random() < 0.35),
            reoptimize_every=int(rng.integers(3, 8)),
            prune_threshold=float(rng.uniform(0.01, 0.1)),
        )

    def scenarios(self, count: int, start: int = 0) -> list[Scenario]:
        """The first ``count`` scenarios from ``start`` (pure per index)."""
        return [self.scenario(index) for index in range(start, start + count)]
