"""Differential-testing and runtime-invariant harness.

Three pillars, built so every future change inherits bit-for-bit safety:

* :class:`RunDigest` — one canonical, versioned fingerprint per training
  run (round records, flow ledger, final params, per-server state), with
  stable JSON serialization and a human-readable :meth:`RunDigest.diff`.
* :class:`InvariantMonitor` — live per-round assertions of the paper's
  machine-checkable contracts, armed via ``SNAPConfig(invariants="strict")``
  or the ``snap verify`` CLI; violations raise
  :class:`~repro.exceptions.InvariantViolation`.
* :class:`ScenarioGen` + the differential runner — seeded generated
  scenarios run on both engines, asserting digest equality plus clean
  monitors (``make verify-invariants`` / ``tests/differential/``).

See ``docs/TESTING.md`` for the full catalog and reproduction workflow.
"""

from repro.testing.digest import (
    DIGEST_VERSION,
    LEGACY_PIN_KEYS,
    RunDigest,
    capture_run,
    flow_trace_entry,
    round_trace_entry,
    server_state_sha,
)
from repro.testing.invariants import (
    InvariantMonitor,
    feasible_frame_sizes,
    quantization_bits,
)
from repro.testing.scenarios import Scenario, ScenarioGen, workload_scenarios
from repro.testing.differential import (
    DifferentialReport,
    run_scenario,
    run_semisync_smoke,
    run_suite,
    run_workload_suite,
    summarize,
)
from repro.testing.selftest import (
    INJECTIONS,
    SelfTestResult,
    run_injection,
    run_selftest,
)

__all__ = [
    "DIGEST_VERSION",
    "DifferentialReport",
    "INJECTIONS",
    "InvariantMonitor",
    "LEGACY_PIN_KEYS",
    "RunDigest",
    "Scenario",
    "ScenarioGen",
    "SelfTestResult",
    "capture_run",
    "feasible_frame_sizes",
    "flow_trace_entry",
    "quantization_bits",
    "round_trace_entry",
    "run_injection",
    "run_scenario",
    "run_selftest",
    "run_semisync_smoke",
    "run_suite",
    "run_workload_suite",
    "server_state_sha",
    "summarize",
    "workload_scenarios",
]
