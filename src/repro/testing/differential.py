"""Differential runner: reference vs. vectorized engines on generated scenarios.

The strongest correctness oracle the repo has is *engine equivalence*: the
per-object reference implementation and the batched vectorized fast path
must produce bit-for-bit identical runs on every configuration. This module
turns that oracle into a push-button sweep — each generated
:class:`~repro.testing.scenarios.Scenario` is run once per engine with the
invariant monitors armed, and the two :class:`~repro.testing.digest.RunDigest`
fingerprints must be equal with zero violations on either side.

``make verify-invariants`` and ``snap verify`` both drive
:func:`run_suite`; a failing scenario is reproduced from its
``(master_seed, index)`` pair via ``Scenario.from_index``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import InvariantViolation
from repro.testing.digest import RunDigest, capture_run
from repro.testing.scenarios import Scenario, ScenarioGen

#: Engines every scenario must agree across.
ENGINES = ("reference", "vectorized")


@dataclass
class DifferentialReport:
    """Outcome of one scenario's reference-vs-vectorized comparison."""

    scenario: Scenario
    ok: bool
    detail: str = ""
    digests: dict = field(default_factory=dict)  # engine -> RunDigest
    monitor_checks: dict = field(default_factory=dict)  # engine -> {name: count}

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        line = f"[{status}] {self.scenario.describe()}"
        return line if self.ok else f"{line}\n{self.detail}"


def run_scenario(
    scenario: Scenario, *, invariants: str = "strict"
) -> DifferentialReport:
    """Run one scenario on both engines; compare digests and monitors.

    Each engine gets a freshly built trainer (fault models and edge RNG
    streams are stateful). An :class:`InvariantViolation` on either engine
    fails the scenario with a diagnostic naming the invariant and round; a
    digest mismatch fails it with the first diverging trace entry.
    """
    digests: dict[str, RunDigest] = {}
    checks: dict[str, dict] = {}
    for engine in ENGINES:
        trainer = scenario.build_trainer(engine, invariants=invariants)
        try:
            digests[engine] = capture_run(trainer)
        except InvariantViolation as violation:
            return DifferentialReport(
                scenario=scenario,
                ok=False,
                detail=(
                    f"{engine} engine violated invariant "
                    f"{violation.invariant!r}: {violation}"
                ),
                digests=digests,
            )
        if trainer.monitor is not None:
            checks[engine] = trainer.monitor.summary()
    reference, vectorized = digests["reference"], digests["vectorized"]
    if reference != vectorized:
        return DifferentialReport(
            scenario=scenario,
            ok=False,
            detail=(
                "reference and vectorized digests differ:\n"
                + reference.diff(vectorized)
            ),
            digests=digests,
            monitor_checks=checks,
        )
    return DifferentialReport(
        scenario=scenario, ok=True, digests=digests, monitor_checks=checks
    )


def run_suite(
    count: int,
    master_seed: int = 0,
    *,
    start: int = 0,
    invariants: str = "strict",
    fail_fast: bool = False,
    progress=None,
) -> list[DifferentialReport]:
    """Differentially test ``count`` scenarios of the ``master_seed`` stream.

    ``progress`` (if given) is called with each finished
    :class:`DifferentialReport` — the CLI uses it for live per-scenario
    lines. With ``fail_fast`` the sweep stops at the first failure.
    """
    reports = []
    for scenario in ScenarioGen(master_seed).scenarios(count, start=start):
        report = run_scenario(scenario, invariants=invariants)
        reports.append(report)
        if progress is not None:
            progress(report)
        if fail_fast and not report.ok:
            break
    return reports


def summarize(reports: list[DifferentialReport]) -> str:
    """Human-readable sweep summary (failures first, then the tally)."""
    failures = [report for report in reports if not report.ok]
    lines = [str(report) for report in failures]
    checked = sum(
        sum(engine_checks.values())
        for report in reports
        for engine_checks in report.monitor_checks.values()
    )
    lines.append(
        f"{len(reports) - len(failures)}/{len(reports)} scenarios passed "
        f"({checked} invariant checks across both engines)"
    )
    if failures:
        seeds = ", ".join(
            f"({r.scenario.master_seed}, {r.scenario.index})" for r in failures
        )
        lines.append(
            f"reproduce failures with Scenario.from_index(master_seed, index) "
            f"for: {seeds}"
        )
    return "\n".join(lines)
