"""Differential runner: reference vs. vectorized engines on generated scenarios.

The strongest correctness oracle the repo has is *engine equivalence*: the
per-object reference implementation and the batched vectorized fast path
must produce bit-for-bit identical runs on every configuration. This module
turns that oracle into a push-button sweep — each generated
:class:`~repro.testing.scenarios.Scenario` is run once per engine with the
invariant monitors armed, and the two :class:`~repro.testing.digest.RunDigest`
fingerprints must be equal with zero violations on either side.

``make verify-invariants`` and ``snap verify`` both drive
:func:`run_suite`; a failing scenario is reproduced from its
``(master_seed, index)`` pair via ``Scenario.from_index``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.trainer import SNAPTrainer
from repro.exceptions import InvariantViolation
from repro.faults.plan import FaultPlan
from repro.testing.digest import RunDigest, capture_run
from repro.testing.scenarios import Scenario, ScenarioGen

#: Engines every scenario must agree across. The semi-synchronous engine
#: joins the equivalence class because generated scenarios leave
#: ``staleness_bound`` at 0 with uniform clocks — its synchronous anchor
#: (see ``docs/ASYNC.md``); run_semisync_smoke covers the τ > 0 regime.
ENGINES = ("reference", "vectorized", "semisync")


@dataclass
class DifferentialReport:
    """Outcome of one scenario's cross-engine comparison."""

    scenario: Scenario
    ok: bool
    detail: str = ""
    digests: dict = field(default_factory=dict)  # engine -> RunDigest
    monitor_checks: dict = field(default_factory=dict)  # engine -> {name: count}

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        line = f"[{status}] {self.scenario.describe()}"
        return line if self.ok else f"{line}\n{self.detail}"


def run_scenario(
    scenario: Scenario, *, invariants: str = "strict", engines=ENGINES
) -> DifferentialReport:
    """Run one scenario on every engine; compare digests and monitors.

    Each engine gets a freshly built trainer (fault models and edge RNG
    streams are stateful). An :class:`InvariantViolation` on any engine
    fails the scenario with a diagnostic naming the invariant and round; a
    digest mismatch against the first engine (the per-object reference
    oracle) fails it with the first diverging trace entry.

    Runs execute on the streaming telemetry path — per-flow record
    retention off, digests folded incrementally per round — so the sweep
    certifies the same pipeline large-N runs use. The streamed hashes are
    byte-identical to the retained-trace recipe (same ``DIGEST_VERSION``),
    so golden pins predating the streaming layer hold unchanged.
    """
    import dataclasses

    digests: dict[str, RunDigest] = {}
    checks: dict[str, dict] = {}
    for engine in engines:
        config = dataclasses.replace(
            scenario.config(engine, invariants=invariants),
            retain_flow_records=False,
        )
        trainer = SNAPTrainer(
            scenario.model(),
            scenario.shards(),
            scenario.topology(),
            config,
            fault_plan=scenario.fault_plan(),
        )
        try:
            digests[engine] = capture_run(trainer, streaming=True)
        except InvariantViolation as violation:
            return DifferentialReport(
                scenario=scenario,
                ok=False,
                detail=(
                    f"{engine} engine violated invariant "
                    f"{violation.invariant!r}: {violation}"
                ),
                digests=digests,
            )
        if trainer.monitor is not None:
            checks[engine] = trainer.monitor.summary()
    oracle = digests[engines[0]]
    for engine in engines[1:]:
        if oracle != digests[engine]:
            return DifferentialReport(
                scenario=scenario,
                ok=False,
                detail=(
                    f"{engines[0]} and {engine} digests differ:\n"
                    + oracle.diff(digests[engine])
                ),
                digests=digests,
                monitor_checks=checks,
            )
    return DifferentialReport(
        scenario=scenario, ok=True, digests=digests, monitor_checks=checks
    )


def run_suite(
    count: int,
    master_seed: int = 0,
    *,
    start: int = 0,
    invariants: str = "strict",
    fail_fast: bool = False,
    progress=None,
) -> list[DifferentialReport]:
    """Differentially test ``count`` scenarios of the ``master_seed`` stream.

    ``progress`` (if given) is called with each finished
    :class:`DifferentialReport` — the CLI uses it for live per-scenario
    lines. With ``fail_fast`` the sweep stops at the first failure.
    """
    reports = []
    for scenario in ScenarioGen(master_seed).scenarios(count, start=start):
        report = run_scenario(scenario, invariants=invariants)
        reports.append(report)
        if progress is not None:
            progress(report)
        if fail_fast and not report.ok:
            break
    return reports


def run_workload_suite(
    master_seed: int = 0,
    *,
    invariants: str = "strict",
    fail_fast: bool = False,
    progress=None,
) -> list[DifferentialReport]:
    """Differentially test the curated workload pack (byz/drift/hierarchy).

    Same contract as :func:`run_suite`, over
    :func:`repro.testing.scenarios.workload_scenarios` instead of the
    generated stream: all three engines must agree bit for bit with strict
    monitors armed on every attack/defense, drift, and tiered scenario.
    """
    from repro.testing.scenarios import workload_scenarios

    reports = []
    for scenario in workload_scenarios(master_seed):
        report = run_scenario(scenario, invariants=invariants)
        reports.append(report)
        if progress is not None:
            progress(report)
        if fail_fast and not report.ok:
            break
    return reports


def run_semisync_smoke(
    count: int,
    master_seed: int = 0,
    *,
    taus=(0, 2, 8),
    straggler_factor: float = 10.0,
    progress=None,
) -> list[DifferentialReport]:
    """Chaos sweep of the semi-synchronous engine across staleness regimes.

    Each generated scenario (keeping its own fault plan: GE link bursts,
    Markov node crashes, corruption on the faulty ones) is re-run on the
    ``semisync`` engine with a heterogeneous clock — the highest-numbered
    server slowed by ``straggler_factor`` — once per τ in ``taus``, with
    strict invariant monitors armed. τ = 0 runs without patience (the pure
    synchronous barrier under skewed clocks); τ > 0 runs add a patience so
    the degradation path is exercised. A run passes when no invariant
    trips, the observed progress staleness stays within τ, and the
    trajectory stays finite.
    """
    import dataclasses

    from repro.faults.models import ScheduledStragglers
    from repro.network.timing import LinkTimingModel

    timing = LinkTimingModel(compute_s_per_round=1.0)
    reports = []
    for scenario in ScenarioGen(master_seed).scenarios(count):
        straggler = scenario.n_nodes - 1
        for tau in taus:
            tau = int(tau)
            config = dataclasses.replace(
                scenario.config("semisync", invariants="strict"),
                staleness_bound=tau,
                straggler_patience_s=None if tau == 0 else 4.0,
                timing=timing,
            )
            base = scenario.fault_plan()
            plan = FaultPlan(
                links=base.link_models if base is not None else None,
                nodes=base.node_models if base is not None else None,
                corruption=base.corruption if base is not None else None,
                clocks=ScheduledStragglers({straggler: float(straggler_factor)}),
            )
            trainer = SNAPTrainer(
                scenario.model(),
                scenario.shards(),
                scenario.topology(),
                config,
                fault_plan=plan,
            )
            label = f"tau={tau} straggler={straggler}@{straggler_factor:g}x"
            try:
                result = trainer.run()
            except InvariantViolation as violation:
                report = DifferentialReport(
                    scenario=scenario,
                    ok=False,
                    detail=(
                        f"[{label}] semisync engine violated invariant "
                        f"{violation.invariant!r}: {violation}"
                    ),
                )
            else:
                semi = result.info["semi_sync"]
                problems = []
                if semi["max_progress_staleness"] > tau:
                    problems.append(
                        f"progress staleness {semi['max_progress_staleness']} "
                        f"exceeds tau={tau}"
                    )
                if not all(
                    np.isfinite(record.mean_loss) for record in result.rounds
                ):
                    problems.append("trajectory diverged (non-finite loss)")
                report = DifferentialReport(
                    scenario=scenario,
                    ok=not problems,
                    detail=f"[{label}] " + "; ".join(problems) if problems else "",
                    monitor_checks=(
                        {label: trainer.monitor.summary()}
                        if trainer.monitor is not None
                        else {}
                    ),
                )
            reports.append(report)
            if progress is not None:
                progress(report)
    return reports


def summarize(reports: list[DifferentialReport]) -> str:
    """Human-readable sweep summary (failures first, then the tally)."""
    failures = [report for report in reports if not report.ok]
    lines = [str(report) for report in failures]
    checked = sum(
        sum(engine_checks.values())
        for report in reports
        for engine_checks in report.monitor_checks.values()
    )
    lines.append(
        f"{len(reports) - len(failures)}/{len(reports)} scenarios passed "
        f"({checked} invariant checks across all engines)"
    )
    if failures:
        seeds = ", ".join(
            f"({r.scenario.master_seed}, {r.scenario.index})" for r in failures
        )
        lines.append(
            f"reproduce failures with Scenario.from_index(master_seed, index) "
            f"for: {seeds}"
        )
    return "\n".join(lines)
