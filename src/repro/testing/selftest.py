"""Monitor self-test: deliberately broken runs the monitors must catch.

A monitoring layer that never fires is indistinguishable from one that
works, so this module injects known contract violations into otherwise
healthy trainers and asserts each one is caught with a diagnostic naming
the violated invariant:

``weight``
    One off-diagonal entry of the validated mixing matrix is perturbed
    after construction (bypassing the constructor's
    :func:`~repro.weights.validation.check_weight_matrix`), breaking
    symmetry and double stochasticity → ``weight-stochasticity``.
``ledger``
    The cost tracker's ``record`` is wrapped to inflate every flow by one
    byte, pushing sizes off the analytic Fig. 3 frame-size lattice →
    ``byte-ledger``.
``ape``
    One server's APE schedule is patched to accumulate past its stage
    budget without ever advancing the stage (Algorithm 1 lines 5-6 skipped)
    → ``ape-budget``.
``swap``
    The adaptive topology controller is wrapped so the re-optimized mixing
    matrix it hands the trainer has one off-diagonal entry perturbed — a
    corrupt online re-solve. The swap-boundary re-validation must refuse it
    by name → ``weight-stochasticity`` (checked under ``topology-swap``).
``byzantine``
    A trimmed-mean defense with tolerance f = 1 faces two attackers that
    are both neighbors of one honest server — the robustness claim is void
    for that neighborhood → ``byzantine-bound``.
``drift``
    The drift schedule is wrapped so its epoch runs *backwards* after the
    first boundary — shards revert to an earlier epoch mid-run →
    ``drift-schedule``.
``hierarchy``
    A tiered run has its topology's tier labels corrupted so one live edge
    spans two levels (edge server wired straight to the cloud) →
    ``hierarchy-ledger``.

``make verify-invariants`` runs this after the differential sweep: the
sweep proves zero false positives on healthy runs, the self-test proves
non-zero true positives on broken ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvariantViolation
from repro.testing.scenarios import Scenario


def _base_scenario(master_seed: int = 0) -> Scenario:
    """A small, clean, APE-preset scenario the injections build on."""
    return Scenario(
        master_seed=master_seed,
        index=-1,  # not part of any generated stream
        n_nodes=5,
        chords=((0, 2),),
        model_kind="logistic",
        n_features=4,
        n_samples=30,
        data_seed=101,
        selection="ape",
        compressor=None,
        straggler="stale",
        optimize_weights=False,
        faulty=False,
        fault_seed=0,
        link_p_fail=0.0,
        link_p_recover=1.0,
        node_p_fail=0.0,
        node_p_recover=1.0,
        corruption_rate=0.0,
        max_rounds=8,
        run_seed=17,
    )


def _inject_weight(trainer) -> None:
    # Past the constructor's validation gate: break symmetry and both
    # stochasticity sums in one entry.
    trainer.weight_matrix[0, 1] += 0.05


def _inject_ledger(trainer) -> None:
    tracker = trainer.tracker
    true_record = tracker.record

    def inflated_record(round_index, source, destination, size_bytes, **kwargs):
        return true_record(round_index, source, destination, size_bytes + 1, **kwargs)

    tracker.record = inflated_record


def _inject_ape(trainer) -> None:
    schedule = trainer._schedules[0]

    def stuck_record_round(suppressed_max: float) -> bool:
        # Accumulate far past the budget but never advance the stage —
        # exactly the Algorithm 1 bookkeeping bug the monitor exists for.
        schedule._accumulated = schedule.state_dict()["threshold"] * 2.0 + 1.0
        return False

    schedule.record_round = stuck_record_round


def _adaptive_scenario(master_seed: int = 0) -> Scenario:
    """The base scenario with the online topology controller armed."""
    return _base_scenario(master_seed).with_overrides(
        optimize_weights=True,
        adaptive=True,
        reoptimize_every=2,
        prune_threshold=0.02,
    )


def _inject_swap(trainer) -> None:
    controller = trainer._topology_controller
    true_propose = controller.propose

    def corrupt_propose(round_index, **kwargs):
        swap = true_propose(round_index, **kwargs)
        if swap is None:
            # Force a swap so the injection fires even when nothing pruned:
            # same topology, same result — only the matrix is corrupted.
            from repro.weights.adaptive import TopologySwap

            swap = TopologySwap(
                round_index=round_index,
                reason=kwargs.get("reason", "periodic"),
                topology=controller.topology,
                matrix=controller.result.matrix,
                result=controller.result,
                pruned_edges=(),
                compressor_spec=None,
                solver_steps=0,
            )
        # (0, 1) is a ring edge of every base topology, so support stays
        # legal — the corruption breaks symmetry and both stochastic sums,
        # which only the swap-boundary re-validation can notice.
        matrix = swap.matrix.copy()
        matrix[0, 1] += 0.05
        from dataclasses import replace

        return replace(swap, matrix=matrix)

    controller.propose = corrupt_propose


def _byzantine_scenario(master_seed: int = 0) -> Scenario:
    """The base scenario defended by trimmed-mean against one attacker."""
    return _base_scenario(master_seed).with_overrides(
        byzantine="sign_flip",
        byzantine_nodes=(1,),
        robust="trimmed_mean:f=1",
    )


def _inject_byzantine(trainer) -> None:
    # A second attacker joins a fleet whose defense was sized for one:
    # honest server 2 (neighbors 1, 3, and chord 0) now faces two hostile
    # neighbors while trimmed-mean only tolerates f = 1.
    trainer.byzantine_nodes = frozenset(trainer.byzantine_nodes | {3})


def _drift_scenario(master_seed: int = 0) -> Scenario:
    """The base scenario on a three-round label-shift drift schedule."""
    return _base_scenario(master_seed).with_overrides(
        drift_kind="label_shift", drift_period=3, drift_seed=5
    )


def _inject_drift(trainer) -> None:
    schedule = trainer.config.drift
    true_epoch = schedule.epoch

    def regressing_epoch(round_index: int) -> int:
        # The schedule collapses back to epoch 0 after advancing — shards
        # revert to data the fleet already trained past.
        epoch = true_epoch(round_index)
        return 0 if epoch >= 2 else epoch

    schedule.epoch = regressing_epoch


def _hierarchy_scenario(master_seed: int = 0) -> Scenario:
    """The base scenario on a 7-server cloud/aggregator/edge tree."""
    return _base_scenario(master_seed).with_overrides(
        hierarchy=(2, 2), n_nodes=7, tier_damping=0.5
    )


def _inject_hierarchy(trainer) -> None:
    # Relabel aggregator 1 as an edge server: its live uplink to the cloud
    # (edge 0-1) now spans two levels, which tiered traffic never may.
    tiers = list(trainer.topology.tiers)
    tiers[1] = 2
    trainer.topology._tiers = tuple(tiers)


#: name -> (injector, invariant the monitor must report)
INJECTIONS = {
    "weight": (_inject_weight, "weight-stochasticity"),
    "ledger": (_inject_ledger, "byte-ledger"),
    "ape": (_inject_ape, "ape-budget"),
    "swap": (_inject_swap, "weight-stochasticity"),
    "byzantine": (_inject_byzantine, "byzantine-bound"),
    "drift": (_inject_drift, "drift-schedule"),
    "hierarchy": (_inject_hierarchy, "hierarchy-ledger"),
}


@dataclass(frozen=True)
class SelfTestResult:
    """Outcome of one injection: what was expected vs. what fired."""

    injection: str
    expected_invariant: str
    caught: bool
    diagnostic: str

    def __str__(self) -> str:
        status = "caught" if self.caught else "MISSED"
        return f"[{status}] {self.injection}: {self.diagnostic}"


def run_injection(name: str, master_seed: int = 0) -> SelfTestResult:
    """Run one named injection against a fresh monitored trainer."""
    injector, expected = INJECTIONS[name]
    scenario_builders = {
        "swap": _adaptive_scenario,
        "byzantine": _byzantine_scenario,
        "drift": _drift_scenario,
        "hierarchy": _hierarchy_scenario,
    }
    scenario = scenario_builders.get(name, _base_scenario)(master_seed)
    trainer = scenario.build_trainer("reference", invariants="strict")
    injector(trainer)
    try:
        trainer.run(stop_on_convergence=False)
    except InvariantViolation as violation:
        return SelfTestResult(
            injection=name,
            expected_invariant=expected,
            caught=violation.invariant == expected,
            diagnostic=str(violation),
        )
    return SelfTestResult(
        injection=name,
        expected_invariant=expected,
        caught=False,
        diagnostic=(
            f"run completed cleanly; expected the {expected!r} monitor to fire"
        ),
    )


def run_selftest(master_seed: int = 0) -> list[SelfTestResult]:
    """Run every injection; each must be caught by its named invariant."""
    return [run_injection(name, master_seed) for name in INJECTIONS]
