"""Explicit error-feedback wrapper around any compressor.

The subsystem's reference tracking already *is* error feedback: the
reference only advances to what the receiver confirmed holding, so the
residual ``current - reference`` — everything suppressed, quantized away,
or dropped by the network — is exactly what the next round's compressor
sees as drift. Wrapping a compressor in :class:`ErrorFeedback` therefore
does not change a single transmitted byte or parameter trajectory
(asserted by ``tests/compression/test_error_feedback.py``); what it adds is
the *materialized* accumulator on each edge state, maintained under the
classic EF recurrence

    e_{t+1} = (x_t + e_t ... ) - sent_t        ≡   current - reference

so telemetry, debugging, and the APE↔EF correspondence described in
``docs/COMPRESSION.md`` can read the residual directly instead of
re-deriving it from link state.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, EdgeState, Payload


class ErrorFeedback(Compressor):
    """Decorates ``inner`` with an explicit per-edge residual accumulator."""

    name = "ef"

    def __init__(self, inner: Compressor):
        self.inner = inner

    @property
    def uses_rng(self) -> bool:  # type: ignore[override]
        return self.inner.uses_rng

    @property
    def batched(self) -> bool:  # type: ignore[override]
        return self.inner.batched

    def make_edge_state(
        self,
        n_params: int,
        source: int,
        destination: int,
        seed: int | None,
    ) -> EdgeState:
        state = self.inner.make_edge_state(n_params, source, destination, seed)
        state.residual = np.zeros(n_params)
        return state

    def begin_round(self, params: np.ndarray, round_index: int) -> dict:
        return self.inner.begin_round(params, round_index)

    def compress(
        self, current: np.ndarray, state: EdgeState, ctx: dict
    ) -> Payload:
        payload = self.inner.compress(current, state, ctx)
        state.pending["ef_current"] = np.asarray(current, dtype=float).copy()
        return payload

    def compress_batch(
        self,
        currents: np.ndarray,
        references: np.ndarray,
        states: list[EdgeState],
        ctxs: list[dict],
    ) -> list[Payload]:
        payloads = self.inner.compress_batch(currents, references, states, ctxs)
        for row, state in enumerate(states):
            state.pending["ef_current"] = np.asarray(
                currents[row], dtype=float
            ).copy()
        return payloads

    def decompress(self, payload: Payload, reference: np.ndarray) -> np.ndarray:
        return self.inner.decompress(payload, reference)

    def bytes_on_wire(self, payload: Payload, total_params: int) -> int:
        return self.inner.bytes_on_wire(payload, total_params)

    def _settle(self, state: EdgeState) -> None:
        # By the time either hook runs, state.reference reflects the round's
        # outcome (advanced in place on delivery, untouched on a drop), so
        # one expression covers both branches of the EF recurrence.
        current = state.pending.pop("ef_current", None)
        if current is not None and state.reference is not None:
            state.residual = current - state.reference

    def payload_delivered(self, payload: Payload, state: EdgeState) -> None:
        self._settle(state)
        self.inner.payload_delivered(payload, state)

    def payload_dropped(self, payload: Payload, state: EdgeState) -> None:
        self._settle(state)
        self.inner.payload_dropped(payload, state)

    def end_round(self, ctx: dict) -> bool:
        return self.inner.end_round(ctx)

    def __repr__(self) -> str:
        return f"ErrorFeedback({self.inner!r})"
