"""SNAP's own selection policies expressed as compressors.

One class covers all three of the paper's schemes — they differ only in the
threshold fed to :func:`repro.core.selection.select_parameters`:

* **APE** (``kind="ape"``) — the threshold follows one
  :class:`~repro.core.ape.APESchedule` per node, in relative units of the
  node's mean absolute parameter value; stage boundaries restart the EXTRA
  recursion (Algorithm 1).
* **SNAP-0** (``kind="changed_only"``) — threshold 0: every changed
  coordinate is sent, exact ties are suppressed.
* **SNO** (``kind="dense"``) — no selection at all; the full vector goes out
  every round.

The arithmetic here reproduces the pre-subsystem trainer expressions
operation for operation: the same scale (``max(mean|x|, 1e-8)``), the same product order
(``relative_threshold * scale``), the same relative suppressed statistic
(``suppressed_max / scale``) — which is what keeps default runs bit-for-bit
identical to the historical implementation (pinned by
``tests/compression/test_regression_pin.py``).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, EdgeState, Payload
from repro.core.ape import APESchedule
from repro.core.selection import select_parameters


class APECompressor(Compressor):
    """Threshold selection against the per-edge reference (SNAP / SNAP-0 / SNO).

    Parameters
    ----------
    schedule:
        The node's :class:`~repro.core.ape.APESchedule`, or ``None`` for a
        permanent zero threshold (SNAP-0).
    dense:
        Skip selection entirely and always emit the full vector (SNO).
    """

    name = "ape"

    def __init__(self, schedule: APESchedule | None = None, dense: bool = False):
        if dense and schedule is not None:
            raise ValueError("dense selection does not take a schedule")
        self.schedule = schedule
        self.dense = bool(dense)

    def begin_round(self, params: np.ndarray, round_index: int) -> dict:
        if self.dense:
            return {}
        scale = max(float(np.mean(np.abs(params))), 1e-8)
        relative = self.schedule.send_threshold if self.schedule is not None else 0.0
        return {
            "scale": scale,
            "threshold": relative * scale,
            "suppressed_max": 0.0,
        }

    def compress(
        self, current: np.ndarray, state: EdgeState, ctx: dict
    ) -> Payload:
        if self.dense:
            values = np.asarray(current, dtype=float)
            return Payload(
                indices=np.arange(values.size, dtype=np.int64),
                values=values,
                meta={},
            )
        selection = select_parameters(current, state.reference, ctx["threshold"])
        ctx["suppressed_max"] = max(ctx["suppressed_max"], selection.suppressed_max)
        return Payload(
            indices=selection.indices, values=selection.values, meta={}
        )

    def end_round(self, ctx: dict) -> bool:
        if self.schedule is None:
            return False
        stage_before = self.schedule.stage
        self.schedule.record_round(ctx["suppressed_max"] / ctx["scale"])
        return self.schedule.stage != stage_before

    def state_dict(self) -> dict:
        """Schedule state for checkpointing (empty outside the APE policy)."""
        if self.schedule is None:
            return {}
        return self.schedule.state_dict()

    def load_state_dict(self, state: dict) -> None:
        if self.schedule is not None and state:
            self.schedule.load_state_dict(state)
