"""Magnitude- and random-sparsification compressors.

Both compress the drift ``current - reference`` down to at most ``k``
coordinates per edge per round; reference tracking feeds everything they
suppress back into the next round's drift, so neither needs an explicit
error accumulator to avoid losing mass (see the package docstring).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, EdgeState, Payload
from repro.exceptions import ConfigurationError


def _check_k(k) -> int:
    if isinstance(k, bool) or int(k) != k or int(k) < 1:
        raise ConfigurationError(f"k must be a positive integer, got {k!r}")
    return int(k)


class TopKCompressor(Compressor):
    """Send the ``k`` coordinates with the largest absolute drift.

    Zero-drift coordinates are never sent even when fewer than ``k``
    coordinates have drifted — transmitting a value the receiver already
    holds would waste bytes without changing any state. Ties beyond rank
    ``k`` break by ascending index (stable sort), which is deterministic and
    identical between the per-edge and batched paths.
    """

    name = "topk"
    batched = True

    def __init__(self, k: int = 16):
        self.k = _check_k(k)

    def _select(self, magnitude: np.ndarray) -> np.ndarray:
        ranked = np.argsort(-magnitude, kind="stable")[: self.k]
        chosen = ranked[magnitude[ranked] > 0.0]
        return np.sort(chosen)

    def compress(
        self, current: np.ndarray, state: EdgeState, ctx: dict
    ) -> Payload:
        current = np.asarray(current, dtype=float)
        indices = self._select(np.abs(current - state.reference))
        return Payload(indices=indices, values=current[indices], meta={})

    def compress_batch(
        self,
        currents: np.ndarray,
        references: np.ndarray,
        states: list[EdgeState],
        ctxs: list[dict],
    ) -> list[Payload]:
        magnitudes = np.abs(currents - references)
        # Batched stable argsort along axis 1 equals the per-row call on
        # C-contiguous data, so the payloads match compress() bitwise.
        ranked = np.argsort(-magnitudes, kind="stable")[:, : self.k]
        payloads = []
        for row in range(len(states)):
            chosen = ranked[row][magnitudes[row][ranked[row]] > 0.0]
            indices = np.sort(chosen)
            payloads.append(
                Payload(indices=indices, values=currents[row][indices], meta={})
            )
        return payloads


class RandomKCompressor(Compressor):
    """Send ``k`` uniformly random coordinates per edge per round.

    Draws come from the edge's keyed generator
    (:func:`repro.compression.base.edge_rng`), one ``choice`` call per
    compress, so the sequence depends only on ``(seed, edge, round order)``
    and both engines replay it identically. Selected coordinates are sent
    even when their drift is zero: the draw *is* the protocol, and skipping
    coordinates would desynchronize the count the byte accounting is built
    on.
    """

    name = "randomk"
    uses_rng = True

    def __init__(self, k: int = 16):
        self.k = _check_k(k)

    def compress(
        self, current: np.ndarray, state: EdgeState, ctx: dict
    ) -> Payload:
        current = np.asarray(current, dtype=float)
        count = min(self.k, current.size)
        indices = np.sort(
            state.rng.choice(current.size, size=count, replace=False)
        ).astype(np.int64)
        return Payload(indices=indices, values=current[indices], meta={})
