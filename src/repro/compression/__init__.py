"""Pluggable update compression for the SNAP round loop.

One protocol (:class:`~repro.compression.base.Compressor`) unifies the
paper's APE-thresholded selection with the broader gradient-compression
family — Top-k / Random-k sparsification, b-bit uniform quantization,
TernGrad — behind exact per-frame byte accounting, so any of them can run
through the trainer, both simulation engines, and the TCP testbed
unchanged. See ``docs/COMPRESSION.md`` for the protocol contract and each
scheme's wire arithmetic.
"""

# Import order is load-bearing: importing .ape pulls in repro.core, whose
# trainer imports EdgeState/build_compressor/payload_to_update back from this
# package — those names must already be bound when that happens.
from repro.compression.base import (
    Compressor,
    EdgeState,
    Payload,
    edge_rng,
    payload_to_update,
)
from repro.compression.spec import PRESET_KINDS, CompressorSpec, build_compressor
from repro.compression.ape import APECompressor
from repro.compression.error_feedback import ErrorFeedback
from repro.compression.quantize import (
    TernGradCompressor,
    UniformQuantizer,
    ternarize,
)
from repro.compression.sparsify import RandomKCompressor, TopKCompressor

__all__ = [
    "APECompressor",
    "Compressor",
    "CompressorSpec",
    "EdgeState",
    "ErrorFeedback",
    "PRESET_KINDS",
    "Payload",
    "RandomKCompressor",
    "TernGradCompressor",
    "TopKCompressor",
    "UniformQuantizer",
    "build_compressor",
    "edge_rng",
    "payload_to_update",
    "ternarize",
]
