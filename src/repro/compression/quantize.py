"""Quantizing compressors: uniform b-bit levels and stochastic ternary.

Both quantize the drift ``current - reference`` and ship signed integer
levels plus one scale factor; the network layer's QUANTIZED frame carries
them at ``bits`` bits per level when that beats the Fig. 3 formats. The
payload's ``values`` are nevertheless *absolute* parameters —
``reference + dequantized_level`` — computed with the exact expression the
receiving codec uses (:func:`repro.network.frames.dequantize_levels`), so
the simulator's overwrite semantics and the wire's additive decode agree
bit for bit.

Reconstruction error (the gap between the drift and its dequantized level)
is never lost: the reference only advances to the *reconstructed* values,
so the residual error stays in the next round's drift. That is error
feedback by construction — no separate accumulator needed.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, EdgeState, Payload
from repro.network.frames import (
    check_quant_bits,
    dequantize_levels,
    quantization_levels,
)
from repro.network.messages import QuantizationInfo


def ternarize(gradient: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Stochastic ternary quantization of a gradient vector.

    Returns a vector whose entries are in ``{-s, 0, +s}`` with
    ``s = max|gradient|`` and ``P[keep component k] = |g_k| / s`` — an
    unbiased estimator of ``gradient``. The zero vector passes through
    unchanged.
    """
    gradient = np.asarray(gradient, dtype=float)
    scale = float(np.max(np.abs(gradient))) if gradient.size else 0.0
    if scale == 0.0:
        return gradient.copy()
    keep_probability = np.abs(gradient) / scale
    kept = rng.random(gradient.shape) < keep_probability
    return scale * np.sign(gradient) * kept


class UniformQuantizer(Compressor):
    """Deterministic b-bit uniform quantization of the drift.

    ``level = rint(drift / scale * L)`` with ``scale = max|drift|`` and
    ``L = 2**(bits-1) - 1``; zero levels are dropped from the payload (the
    receiver's value would not change). A zero-drift edge sends an empty
    frame.
    """

    name = "uniform"
    batched = True

    def __init__(self, bits: int = 4):
        self.bits = check_quant_bits(bits)

    def compress(
        self, current: np.ndarray, state: EdgeState, ctx: dict
    ) -> Payload:
        current = np.asarray(current, dtype=float)
        reference = np.asarray(state.reference, dtype=float)
        drift = current - reference
        scale = float(np.abs(drift).max()) if drift.size else 0.0
        if scale == 0.0:
            return _empty_payload()
        cap = quantization_levels(self.bits)
        levels = np.rint(drift / scale * cap).astype(np.int64)
        return _quantized_payload(reference, levels, scale, self.bits)

    def compress_batch(
        self,
        currents: np.ndarray,
        references: np.ndarray,
        states: list[EdgeState],
        ctxs: list[dict],
    ) -> list[Payload]:
        drifts = currents - references
        scales = np.abs(drifts).max(axis=1) if drifts.size else np.zeros(len(states))
        # Guard the zero rows out of the division; their levels are all zero
        # anyway, and the expression for live rows matches compress() term
        # for term (same operand order), so payloads are bitwise identical.
        safe = np.where(scales > 0.0, scales, 1.0)
        cap = quantization_levels(self.bits)
        levels = np.rint(drifts / safe[:, None] * cap).astype(np.int64)
        payloads = []
        for row in range(len(states)):
            if scales[row] == 0.0:
                payloads.append(_empty_payload())
            else:
                payloads.append(
                    _quantized_payload(
                        references[row], levels[row], float(scales[row]), self.bits
                    )
                )
        return payloads


class TernGradCompressor(Compressor):
    """TernGrad's stochastic ternary encoding applied to the drift.

    The canonical :func:`ternarize` implementation lives here (as
    :meth:`TernGradCompressor.ternarize`); the parameter-server baseline in
    :mod:`repro.baselines.terngrad` imports it rather than keeping its own
    copy. As a mesh compressor it ships levels in ``{-1, +1}`` at the kept
    coordinates under the 2-bit QUANTIZED frame; the baseline keeps its own
    whole-vector byte accounting (``terngrad_vector_bytes``) because the
    parameter-server push is never sparse.
    """

    name = "terngrad"
    uses_rng = True
    #: Ternary levels occupy 2 bits on the wire; ``L = 2**(2-1) - 1 = 1``
    #: makes ``dequantize_levels(level, scale, 2) = level * scale`` — exactly
    #: the ``±scale`` values TernGrad transmits.
    bits = 2

    ternarize = staticmethod(ternarize)

    def compress(
        self, current: np.ndarray, state: EdgeState, ctx: dict
    ) -> Payload:
        current = np.asarray(current, dtype=float)
        reference = np.asarray(state.reference, dtype=float)
        drift = current - reference
        encoded = ternarize(drift, state.rng)
        nonzero = np.flatnonzero(encoded)
        if not nonzero.size:
            return _empty_payload()
        scale = float(np.abs(drift).max())
        levels = np.sign(encoded[nonzero]).astype(np.int64)
        return Payload(
            indices=nonzero.astype(np.int64),
            values=reference[nonzero] + encoded[nonzero],
            meta={
                "quantization": QuantizationInfo(
                    bits=self.bits, scale=scale, levels=levels
                )
            },
        )


def _empty_payload() -> Payload:
    return Payload(
        indices=np.empty(0, dtype=np.int64),
        values=np.empty(0, dtype=float),
        meta={},
    )


def _quantized_payload(
    reference: np.ndarray, levels: np.ndarray, scale: float, bits: int
) -> Payload:
    """Payload carrying the nonzero levels as absolute reconstructed values."""
    nonzero = np.flatnonzero(levels)
    if not nonzero.size:
        return _empty_payload()
    kept = levels[nonzero]
    return Payload(
        indices=nonzero.astype(np.int64),
        values=reference[nonzero] + dequantize_levels(kept, scale, bits),
        meta={
            "quantization": QuantizationInfo(bits=bits, scale=scale, levels=kept)
        },
    )
