"""The compressor protocol: how an update is shrunk before it hits the wire.

Every scheme in this package — APE thresholding, Top-k/Random-k
sparsification, b-bit uniform quantization, TernGrad — is expressed as one
interface so the trainer, both simulation engines, and the TCP testbed can
run any of them through a single code path with honest byte accounting:

* :meth:`Compressor.begin_round` computes per-round, per-node context (the
  APE threshold, for example) from the node's current parameters;
* :meth:`Compressor.compress` turns ``(current, reference)`` for one
  directed edge into a sparse :class:`Payload` of (indices, values, meta);
* :meth:`Compressor.payload_delivered` / :meth:`Compressor.payload_dropped`
  observe the channel's verdict (residual bookkeeping lives here);
* :meth:`Compressor.end_round` folds round statistics back into persistent
  state and reports whether the optimizer should restart its recursion
  (Algorithm 1's stage boundary).

**Reference tracking is the protocol's backbone.** Every edge carries a
reference vector — the receiver's current view of the sender, which by
protocol invariant equals the sender's ``last_sent`` record. Compressors
always compress the drift ``current - reference``, and the reference only
advances on *confirmed delivery*. Anything not transmitted this round
(suppressed, dropped by the link, or lost to quantization) therefore stays
in the drift and is re-offered next round — which is precisely error
feedback: the residual ``current - reference`` IS the error-feedback
accumulator. SNAP's APE machinery is the special case that additionally
tracks a scalar budget on the suppressed drift (see
``docs/COMPRESSION.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.exceptions import ProtocolError
from repro.network.frames import encoded_update_bytes
from repro.network.messages import ParameterUpdate, QuantizationInfo


@dataclass
class EdgeState:
    """Persistent per-directed-edge compressor state.

    Attributes
    ----------
    source, destination:
        The directed edge this state belongs to.
    reference:
        What the destination currently holds for the source (set by the
        engine before every :meth:`Compressor.compress` call; points at the
        live link-state array so delivery hooks observe its post-outcome
        value).
    residual:
        Explicit error-feedback accumulator (``ErrorFeedback`` wrapper only;
        ``None`` otherwise — plain reference tracking carries the residual
        implicitly).
    rng:
        Per-edge random generator for stochastic compressors, keyed by
        ``(seed, source, destination)`` so results are independent of the
        order edges are processed in — the property that keeps the
        reference engine, the vectorized engine, and the threaded testbed
        bit-for-bit identical.
    """

    source: int
    destination: int
    reference: np.ndarray | None = None
    residual: np.ndarray | None = None
    rng: np.random.Generator | None = None
    #: Scratch for data produced at compress time and consumed by the
    #: delivered/dropped hook of the same round (e.g. the uncompressed drift).
    pending: dict = field(default_factory=dict)


class Payload(NamedTuple):
    """One compressed update: what :meth:`Compressor.compress` returns.

    ``indices`` are sorted flat parameter indices; ``values`` are the
    *absolute* parameter values the receiver should hold at those indices
    (reference tracking makes absolute values and deltas interchangeable;
    absolute is what the Fig. 3 frames carry). ``meta`` optionally carries
    ``"quantization"`` (:class:`~repro.network.messages.QuantizationInfo`)
    plus compressor telemetry.
    """

    indices: np.ndarray
    values: np.ndarray
    meta: dict

    @property
    def n_sent(self) -> int:
        return int(self.indices.size)


def payload_to_update(
    payload: Payload, sender: int, round_index: int, total_params: int
) -> ParameterUpdate:
    """Wrap a payload in the message type the channel/transport ships."""
    quantization = payload.meta.get("quantization")
    return ParameterUpdate(
        sender=sender,
        round_index=round_index,
        total_params=total_params,
        indices=payload.indices,
        values=payload.values,
        quantization=quantization,
    )


class Compressor:
    """Base class of every compression scheme (see the module docstring).

    Subclasses must implement :meth:`compress`; everything else has
    behavior-preserving defaults. Class attributes advertise capabilities:

    * ``uses_rng`` — the scheme is stochastic; edge states get a keyed
      per-edge generator.
    * ``batched`` — :meth:`compress_batch` has a vectorized implementation
      that is bit-for-bit identical to per-edge :meth:`compress` calls
      (asserted by the engine-parity tests). Batched compressors must not
      keep per-edge state outside :class:`EdgeState`, because the
      vectorized engine routes all edges through one instance.
    """

    #: Human-readable label; the builder overrides it with the full spec
    #: label (e.g. ``"topk(k=32)"``), which is also the cost tracker's
    #: stage-attribution key.
    name: str = "compressor"
    uses_rng: bool = False
    batched: bool = False

    # -- state ------------------------------------------------------------------

    def make_edge_state(
        self,
        n_params: int,
        source: int,
        destination: int,
        seed: int | None,
    ) -> EdgeState:
        """Create the persistent state for one directed edge."""
        state = EdgeState(source=int(source), destination=int(destination))
        if self.uses_rng:
            state.rng = edge_rng(seed, source, destination)
        return state

    # -- the round protocol ------------------------------------------------------

    def begin_round(self, params: np.ndarray, round_index: int) -> dict:
        """Per-node round context, computed once before the edge fan-out."""
        return {}

    def compress(
        self, current: np.ndarray, state: EdgeState, ctx: dict
    ) -> Payload:
        """Compress ``current`` against ``state.reference`` for one edge."""
        raise NotImplementedError

    def compress_batch(
        self,
        currents: np.ndarray,
        references: np.ndarray,
        states: list[EdgeState],
        ctxs: list[dict],
    ) -> list[Payload]:
        """Compress many edges at once; rows of the two matrices align.

        The default delegates to per-edge :meth:`compress`; ``batched``
        subclasses override it with vectorized kernels that produce
        bitwise-identical payloads.
        """
        out = []
        for row in range(len(states)):
            states[row].reference = references[row]
            out.append(self.compress(currents[row], states[row], ctxs[row]))
        return out

    def decompress(self, payload: Payload, reference: np.ndarray) -> np.ndarray:
        """The receiver's reconstruction: overlay the payload onto a view."""
        reference = np.asarray(reference, dtype=float)
        if payload.indices.size and (
            int(payload.indices.max()) >= reference.size
        ):
            raise ProtocolError(
                f"payload indices exceed the reference dimension {reference.size}"
            )
        updated = reference.copy()
        updated[payload.indices] = payload.values
        return updated

    def bytes_on_wire(self, payload: Payload, total_params: int) -> int:
        """Exact wire bytes of this payload in its cheapest frame format."""
        quantization = payload.meta.get("quantization")
        bits = quantization.bits if quantization is not None else None
        return encoded_update_bytes(
            total_params, total_params - payload.n_sent, bits
        )

    def payload_delivered(self, payload: Payload, state: EdgeState) -> None:
        """Hook: the channel confirmed delivery (reference already advanced)."""

    def payload_dropped(self, payload: Payload, state: EdgeState) -> None:
        """Hook: the payload never reached the receiver (link down/corrupt)."""

    def end_round(self, ctx: dict) -> bool:
        """Fold round statistics into state; ``True`` requests an optimizer
        recursion restart (Algorithm 1's stage boundary)."""
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def edge_rng(
    seed: int | None, source: int, destination: int
) -> np.random.Generator:
    """The keyed per-edge generator stochastic compressors draw from.

    Seeding by ``(seed, source, destination)`` (through numpy's
    ``SeedSequence`` entropy spawning) makes each edge's stream independent
    of every other edge's and of the order edges are compressed in.
    """
    base = 0 if seed is None else int(seed)
    return np.random.default_rng([base, int(source), int(destination)])


__all__ = [
    "Compressor",
    "EdgeState",
    "Payload",
    "QuantizationInfo",
    "edge_rng",
    "payload_to_update",
]
