"""Declarative compressor specification: parse, validate, build.

A spec names one compression scheme plus its parameters, in a form that is
hashable (lives inside the frozen ``SNAPConfig``), printable (the ``label``
doubles as the cost tracker's stage key and the checkpoint compatibility
tag), and parseable from one CLI token::

    ape                    changed_only              dense
    topk:k=32              randomk:k=8               uniform:bits=6
    terngrad               ef:topk:k=32              ef:uniform

Grammar: ``[ef:]kind[:key=value,...]``. The three *preset* kinds (``ape``,
``changed_only``, ``dense``) are the paper's SNAP / SNAP-0 / SNO policies
and take no parameters; wrapping them in ``ef:`` is rejected because their
reference tracking already performs error feedback (the wrapper would be a
misleading no-op — see ``docs/COMPRESSION.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError

#: The paper's own selection policies; ``SNAPConfig.selection`` maps onto
#: these kinds one to one (``SelectionPolicy.value`` == the kind string).
PRESET_KINDS = ("ape", "changed_only", "dense")

#: Parameter schema per kind: name -> (default, validator).
_SCHEMAS: dict[str, dict] = {
    "ape": {},
    "changed_only": {},
    "dense": {},
    "topk": {"k": 16},
    "randomk": {"k": 16},
    "uniform": {"bits": 4},
    "terngrad": {},
}


def _coerce(text: str):
    """CLI value coercion: int, then float, then bool, else reject later."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


@dataclass(frozen=True)
class CompressorSpec:
    """One validated compressor choice.

    Attributes
    ----------
    kind:
        Scheme name; one of ``ape``, ``changed_only``, ``dense``, ``topk``,
        ``randomk``, ``uniform``, ``terngrad``.
    params:
        Canonicalized ``(name, value)`` pairs — every schema parameter
        present, in schema order, defaults filled in.
    error_feedback:
        Wrap the scheme in :class:`~repro.compression.ErrorFeedback`.
    """

    kind: str
    params: tuple = field(default=())
    error_feedback: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _SCHEMAS:
            raise ConfigurationError(
                f"unknown compressor kind {self.kind!r}; known kinds: "
                f"{', '.join(sorted(_SCHEMAS))}"
            )
        schema = _SCHEMAS[self.kind]
        given = dict(self.params)
        unknown = set(given) - set(schema)
        if unknown:
            raise ConfigurationError(
                f"compressor {self.kind!r} does not take parameter(s) "
                f"{', '.join(sorted(unknown))}; it takes "
                f"{', '.join(sorted(schema)) or 'no parameters'}"
            )
        canonical = tuple(
            (name, given.get(name, default)) for name, default in schema.items()
        )
        object.__setattr__(self, "params", canonical)
        if self.error_feedback and self.is_preset:
            raise ConfigurationError(
                f"error feedback cannot wrap the {self.kind!r} preset: its "
                "reference tracking already performs error feedback (the "
                "residual current - last_sent is re-offered every round)"
            )

    # -- derived views -----------------------------------------------------------

    @property
    def is_preset(self) -> bool:
        """Whether this spec is one of the paper's own selection policies."""
        return self.kind in PRESET_KINDS

    @property
    def label(self) -> str:
        """Canonical printable form; also the stage/checkpoint identity."""
        if self.params:
            rendered = ",".join(f"{name}={value}" for name, value in self.params)
            base = f"{self.kind}({rendered})"
        else:
            base = self.kind
        return f"ef({base})" if self.error_feedback else base

    @property
    def spec_string(self) -> str:
        """This spec back in the parse grammar: ``[ef:]kind[:key=value,...]``.

        The exact inverse of :meth:`parse` on canonical specs:
        ``CompressorSpec.parse(spec.spec_string) == spec`` always holds
        (unlike :attr:`label`, whose ``kind(k=v)`` rendering is for display
        and stage keys, not re-parsing).
        """
        text = self.kind
        if self.params:
            text += ":" + ",".join(f"{name}={value}" for name, value in self.params)
        return f"ef:{text}" if self.error_feedback else text

    def params_dict(self) -> dict:
        return dict(self.params)

    def with_param(self, name: str, value) -> "CompressorSpec":
        """A copy with one parameter overridden (validation re-runs).

        String values go through the same CLI coercion as :meth:`parse`, so
        ``--compressor-arg k=8`` yields an integer ``k``.
        """
        if isinstance(value, str):
            value = _coerce(value)
        merged = {**dict(self.params), name: value}
        return CompressorSpec(
            kind=self.kind,
            params=tuple(merged.items()),
            error_feedback=self.error_feedback,
        )

    # -- construction ------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "CompressorSpec":
        """Parse the CLI grammar ``[ef:]kind[:key=value,...]``."""
        if not isinstance(text, str) or not text.strip():
            raise ConfigurationError(
                f"compressor spec must be a non-empty string, got {text!r}"
            )
        pieces = text.strip().split(":")
        error_feedback = False
        if pieces and pieces[0] == "ef":
            error_feedback = True
            pieces = pieces[1:]
        if not pieces or not pieces[0]:
            raise ConfigurationError(
                f"compressor spec {text!r} names no kind (grammar: "
                "[ef:]kind[:key=value,...])"
            )
        kind, *arg_groups = pieces
        params: dict = {}
        for group in arg_groups:
            for item in group.split(","):
                if not item:
                    continue
                if "=" not in item:
                    raise ConfigurationError(
                        f"malformed compressor argument {item!r} in {text!r} "
                        "(expected key=value)"
                    )
                name, _, raw = item.partition("=")
                params[name.strip()] = _coerce(raw.strip())
        return cls(
            kind=kind, params=tuple(params.items()), error_feedback=error_feedback
        )

    @staticmethod
    def normalize(value) -> "CompressorSpec | None":
        """Accept ``None`` / spec string / :class:`CompressorSpec` uniformly."""
        if value is None or isinstance(value, CompressorSpec):
            return value
        if isinstance(value, str):
            return CompressorSpec.parse(value)
        raise ConfigurationError(
            f"compressor must be None, a spec string, or a CompressorSpec; "
            f"got {value!r}"
        )


def build_compressor(spec: CompressorSpec, schedule=None):
    """Instantiate the compressor a spec describes.

    ``schedule`` is the node's :class:`~repro.core.ape.APESchedule` and is
    only consumed by the ``ape`` preset. The instance's ``name`` is set to
    the spec's label so cost-tracker stage attribution and checkpoints
    carry the full parameterization.
    """
    from repro.compression.ape import APECompressor
    from repro.compression.error_feedback import ErrorFeedback
    from repro.compression.quantize import TernGradCompressor, UniformQuantizer
    from repro.compression.sparsify import RandomKCompressor, TopKCompressor

    params = spec.params_dict()
    if spec.kind == "ape":
        compressor = APECompressor(schedule=schedule)
    elif spec.kind == "changed_only":
        compressor = APECompressor()
    elif spec.kind == "dense":
        compressor = APECompressor(dense=True)
    elif spec.kind == "topk":
        compressor = TopKCompressor(**params)
    elif spec.kind == "randomk":
        compressor = RandomKCompressor(**params)
    elif spec.kind == "uniform":
        compressor = UniformQuantizer(**params)
    else:
        compressor = TernGradCompressor()
    if spec.error_feedback:
        compressor = ErrorFeedback(compressor)
    compressor.name = spec.label
    return compressor
