"""Node-side orchestrator client (stdlib ``urllib``; no dependencies).

What an edge device runs: register into the fleet (optionally enrolling
into a job in the same call), publish its bound listener port, heartbeat
on a timer, and leave gracefully. Also the admin/test surface for reading
job status and /metrics.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

from repro.exceptions import OrchestratorError


class OrchestratorClient:
    """Talk to an :class:`~repro.orchestrator.OrchestratorService`.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8737"`` (no trailing slash needed).
    timeout_s:
        Per-request socket timeout.
    """

    def __init__(self, base_url: str, timeout_s: float = 5.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    # -- plumbing ----------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                payload = resp.read().decode("utf-8")
                content_type = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise OrchestratorError(
                f"{method} {path} failed ({error.code}): {detail}"
            ) from error
        except urllib.error.URLError as error:
            raise OrchestratorError(
                f"{method} {path} failed: {error.reason}"
            ) from error
        if content_type.startswith("application/json"):
            return json.loads(payload)
        return payload

    # -- device lifecycle --------------------------------------------------

    def register(
        self,
        name: str,
        capabilities: dict | None = None,
        job: str | None = None,
        port: int | None = None,
    ) -> dict:
        body: dict = {"name": name}
        if capabilities is not None:
            body["capabilities"] = capabilities
        if job is not None:
            body["job"] = job
        if port is not None:
            body["port"] = int(port)
        return self._request("POST", "/register", body)

    def heartbeat(self, device_id: str) -> dict:
        return self._request("POST", "/heartbeat", {"device_id": device_id})

    def leave(self, device_id: str) -> dict:
        return self._request("POST", "/leave", {"device_id": device_id})

    def publish_port(self, device_id: str, port: int) -> dict:
        return self._request(
            "POST", "/port", {"device_id": device_id, "port": int(port)}
        )

    # -- observability -----------------------------------------------------

    def jobs(self) -> dict:
        return self._request("GET", "/jobs")

    def job_status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def fleet(self) -> dict:
        return self._request("GET", "/fleet")

    def metrics(self) -> str:
        return self._request("GET", "/metrics")


class HeartbeatSender:
    """Background heartbeats for one device (daemon thread).

    Beats immediately on :meth:`start` and then every ``interval_s``;
    transport hiccups are swallowed (a missed beat is exactly the failure
    mode the monitor exists to notice). Stops silently once the registry
    reports the device is no longer live.
    """

    def __init__(
        self, client: OrchestratorClient, device_id: str, interval_s: float
    ):
        if interval_s <= 0:
            raise OrchestratorError(
                f"heartbeat interval_s must be > 0, got {interval_s}"
            )
        self.client = client
        self.device_id = device_id
        self.interval_s = float(interval_s)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.beats = 0

    def start(self) -> "HeartbeatSender":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(target=self._loop, daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5 * self.interval_s)
            self._thread = None

    def _loop(self) -> None:
        while True:
            try:
                response = self.client.heartbeat(self.device_id)
                self.beats += 1
                if response.get("state") not in ("active", "suspect"):
                    return  # evicted or left: nothing to prove anymore
            except OrchestratorError:
                pass  # missed beat; the monitor will judge
            if self._stop.wait(self.interval_s):
                return
