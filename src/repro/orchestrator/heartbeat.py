"""Heartbeat monitoring: miss-threshold eviction at fleet level.

The same rule the testbed applies per link (``dead_after_misses``
consecutive missed round deadlines write a peer off) applied per device:
a device that has stayed silent for ``interval_s`` is one miss, for
``2 * interval_s`` two misses, and at ``evict_after_misses`` misses it is
evicted from the registry. Listeners (training jobs) are told about every
eviction so elastic membership can drop the device's slot at the next
round boundary instead of aborting.

The monitor can run as a background sweeper thread (service mode) or be
swept manually with an injected clock (tests).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.exceptions import OrchestratorError
from repro.orchestrator.registry import DeviceRegistry

#: Default seconds between expected heartbeats.
DEFAULT_HEARTBEAT_S = 1.0

#: Default consecutive missed heartbeats before eviction — the fleet-level
#: mirror of the testbed's ``DEFAULT_DEAD_AFTER_MISSES``.
DEFAULT_EVICT_AFTER_MISSES = 3


class HeartbeatMonitor:
    """Sweeps the registry and evicts devices that stopped heartbeating.

    Parameters
    ----------
    registry:
        The fleet registry to police.
    interval_s:
        Expected heartbeat period. A device is charged one miss per full
        period elapsed since its last heartbeat.
    evict_after_misses:
        Misses at which a device is evicted (below that it is SUSPECT).
    clock:
        Injectable monotonic time source (tests drive it manually).
    """

    def __init__(
        self,
        registry: DeviceRegistry,
        interval_s: float = DEFAULT_HEARTBEAT_S,
        evict_after_misses: int = DEFAULT_EVICT_AFTER_MISSES,
        clock=time.monotonic,
    ):
        if interval_s <= 0:
            raise OrchestratorError(
                f"heartbeat interval_s must be > 0, got {interval_s}"
            )
        if evict_after_misses <= 0:
            raise OrchestratorError(
                f"evict_after_misses must be > 0, got {evict_after_misses}"
            )
        self.registry = registry
        self.interval_s = float(interval_s)
        self.evict_after_misses = int(evict_after_misses)
        self._clock = clock
        self._listeners: list[Callable[[tuple[str, ...]], None]] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.sweeps = 0
        self.evictions_total = 0

    def add_listener(self, listener: Callable[[tuple[str, ...]], None]) -> None:
        """Subscribe to evictions: called with the ids evicted per sweep."""
        self._listeners.append(listener)

    def sweep(self, now: float | None = None) -> tuple[str, ...]:
        """One monitoring pass; returns the device ids evicted by it."""
        now = self._clock() if now is None else now
        evicted: list[str] = []
        for record in self.registry.live_devices():
            silent_for = now - record.last_heartbeat
            misses = int(silent_for // self.interval_s)
            if misses <= 0:
                continue
            if misses >= self.evict_after_misses:
                self.registry.evict(record.device_id, misses=misses)
                evicted.append(record.device_id)
            else:
                self.registry.suspect(record.device_id, misses=misses)
        self.sweeps += 1
        if evicted:
            self.evictions_total += len(evicted)
            for listener in self._listeners:
                listener(tuple(evicted))
        return tuple(evicted)

    # -- background mode ---------------------------------------------------

    def start(self) -> None:
        """Run sweeps on a daemon thread, one per heartbeat interval."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5 * self.interval_s)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sweep()
