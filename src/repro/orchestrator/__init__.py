"""The fleet control plane: orchestrated elastic membership over the testbed.

The SNAP paper's edge fleets are dynamic — devices come and go — but a
hand-wired :class:`~repro.runtime.testbed.TestbedRuntime` is a fixed peer
list. This package is the coordinator that makes membership elastic
without giving up the paper's decentralized training loop:

* :class:`DeviceRegistry` — devices register with capabilities, get ids,
  publish their bound (ephemeral) listener ports, and prove liveness;
* :class:`HeartbeatMonitor` — miss-threshold eviction, the fleet-level
  mirror of the testbed's ``dead_after_misses`` link rule;
* :class:`SlotScheduler` — enrollment → slot → data shard + neighbor set,
  inside a fixed slot universe so the consensus dimension never changes;
* :class:`TrainingJob` / :class:`JobManager` — multi-job tenancy: many
  concurrent jobs share one fleet with isolated enrollment, shard maps,
  topology controllers, and bytes budgets;
* :class:`OrchestratedMembership` — the per-round bridge: joins and
  leaves become warm-started (22)/(23) topology re-solves applied at
  round boundaries (never an abort);
* :class:`OrchestratorService` / :class:`OrchestratorClient` — the stdlib
  HTTP API (register/heartbeat/leave/port/jobs) with a ``/metrics``
  endpoint exporting the columnar cost tracker and staleness counters;
* :func:`run_elastic_fleet` — one-call end-to-end localhost fleet (the
  CLI's ``orchestrate`` command and the CI smoke).

See ``docs/ORCHESTRATOR.md`` for the architecture and an elastic-membership
walkthrough.
"""

from repro.orchestrator.client import HeartbeatSender, OrchestratorClient
from repro.orchestrator.fleet import (
    ElasticFleetReport,
    active_mean_accuracy,
    bind_job,
    default_fleet_config,
    run_elastic_fleet,
    run_static_baseline,
)
from repro.orchestrator.heartbeat import (
    DEFAULT_EVICT_AFTER_MISSES,
    DEFAULT_HEARTBEAT_S,
    HeartbeatMonitor,
)
from repro.orchestrator.jobs import JobManager, JobState, TrainingJob
from repro.orchestrator.membership import (
    MembershipDecision,
    OrchestratedMembership,
)
from repro.orchestrator.metrics import parse_metrics, render_metrics
from repro.orchestrator.registry import (
    DeviceRecord,
    DeviceRegistry,
    DeviceState,
)
from repro.orchestrator.scheduler import SlotScheduler
from repro.orchestrator.service import OrchestratorService

__all__ = [
    "DeviceRecord",
    "DeviceRegistry",
    "DeviceState",
    "DEFAULT_EVICT_AFTER_MISSES",
    "DEFAULT_HEARTBEAT_S",
    "HeartbeatMonitor",
    "HeartbeatSender",
    "SlotScheduler",
    "MembershipDecision",
    "OrchestratedMembership",
    "TrainingJob",
    "JobManager",
    "JobState",
    "OrchestratorService",
    "OrchestratorClient",
    "render_metrics",
    "parse_metrics",
    "ElasticFleetReport",
    "run_elastic_fleet",
    "run_static_baseline",
    "default_fleet_config",
    "active_mean_accuracy",
    "bind_job",
]
