"""The orchestrator's HTTP API (stdlib ``http.server``, JSON bodies).

Endpoints::

    POST /register   {"name", "capabilities"?, "job"?, "port"?}
                     → device id (+ slot/shard/neighbors when enrolling)
    POST /heartbeat  {"device_id"}            → current state
    POST /leave      {"device_id"}            → terminal state + freed slots
    POST /port       {"device_id", "port"}    → publish a bound listener port
    GET  /jobs                                → every job's status snapshot
    GET  /jobs/<id>                           → one job's status snapshot
    GET  /fleet                               → registry + heartbeat snapshot
    GET  /metrics                             → text exposition (cost tracker,
                                                staleness, fleet counters)

The server is a ``ThreadingHTTPServer`` bound to an ephemeral port by
default (``port=0`` — the same bind-then-publish discipline the testbed
listeners use), so any number of fleets can coexist on one host. Handlers
are a thin JSON veneer over :class:`~repro.orchestrator.jobs.JobManager`;
all state and locking live there.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import OrchestratorError, ReproError
from repro.orchestrator.jobs import JobManager
from repro.orchestrator.metrics import render_metrics


class OrchestratorService:
    """Run a :class:`JobManager` behind an HTTP API.

    Parameters
    ----------
    manager:
        The fleet to expose (created if omitted).
    host, port:
        Bind address; ``port=0`` (default) lets the kernel choose and the
        bound port is published on :attr:`port` / :attr:`url`.
    start_monitor:
        Also run the heartbeat monitor's background sweeper for the
        service's lifetime.
    """

    def __init__(
        self,
        manager: JobManager | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        start_monitor: bool = True,
    ):
        self.manager = manager if manager is not None else JobManager()
        self._start_monitor = bool(start_monitor)
        handler = _build_handler(self.manager)
        self._server = ThreadingHTTPServer((host, int(port)), handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = int(self._server.server_address[1])
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "OrchestratorService":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": 0.05},
                daemon=True,
            )
            self._thread.start()
            if self._start_monitor:
                self.manager.monitor.start()
        return self

    def stop(self) -> None:
        if self._start_monitor:
            self.manager.monitor.stop()
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "OrchestratorService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _build_handler(manager: JobManager):
    """Bind a request-handler class to one manager instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # -- plumbing ------------------------------------------------------

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # the control plane's telemetry is /metrics, not stderr

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                return {}
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise OrchestratorError(f"invalid JSON body: {error}") from error
            if not isinstance(body, dict):
                raise OrchestratorError("request body must be a JSON object")
            return body

        def _send(self, status: int, payload, content_type="application/json"):
            body = (
                payload.encode("utf-8")
                if isinstance(payload, str)
                else json.dumps(payload).encode("utf-8")
            )
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _dispatch(self, handler) -> None:
            try:
                status, payload = handler()
            except OrchestratorError as error:
                status, payload = 400, {"error": str(error)}
            except ReproError as error:
                status, payload = 409, {"error": str(error)}
            except Exception as error:  # noqa: BLE001 - wire boundary
                status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
            if isinstance(payload, str):
                self._send(status, payload, content_type="text/plain; charset=utf-8")
            else:
                self._send(status, payload)

        def _require(self, body: dict, key: str):
            value = body.get(key)
            if value is None:
                raise OrchestratorError(f"missing required field {key!r}")
            return value

        # -- routes --------------------------------------------------------

        def do_POST(self):  # noqa: N802 - stdlib naming
            routes = {
                "/register": self._register,
                "/heartbeat": self._heartbeat,
                "/leave": self._leave,
                "/port": self._port,
            }
            handler = routes.get(self.path)
            if handler is None:
                self._send(404, {"error": f"no such endpoint: {self.path}"})
                return
            self._dispatch(handler)

        def do_GET(self):  # noqa: N802 - stdlib naming
            if self.path == "/metrics":
                self._dispatch(self._metrics)
            elif self.path == "/fleet":
                self._dispatch(self._fleet)
            elif self.path == "/jobs":
                self._dispatch(self._jobs)
            elif self.path.startswith("/jobs/"):
                self._dispatch(self._job_status)
            else:
                self._send(404, {"error": f"no such endpoint: {self.path}"})

        def _register(self):
            body = self._read_json()
            response = manager.register_device(
                self._require(body, "name"),
                capabilities=body.get("capabilities"),
                job_id=body.get("job"),
                port=body.get("port"),
            )
            return 200, response

        def _heartbeat(self):
            body = self._read_json()
            record = manager.registry.heartbeat(self._require(body, "device_id"))
            return 200, {
                "device_id": record.device_id,
                "state": record.state.value,
                "missed_heartbeats": record.missed_heartbeats,
            }

        def _leave(self):
            body = self._read_json()
            return 200, manager.leave_device(self._require(body, "device_id"))

        def _port(self):
            body = self._read_json()
            record = manager.registry.publish_port(
                self._require(body, "device_id"),
                int(self._require(body, "port")),
            )
            return 200, {"device_id": record.device_id, "port": record.port}

        def _jobs(self):
            return 200, {"jobs": [job.snapshot() for job in manager.jobs()]}

        def _job_status(self):
            job_id = self.path[len("/jobs/"):]
            return 200, manager.get_job(job_id).snapshot()

        def _fleet(self):
            return 200, {
                "fleet": manager.registry.snapshot(),
                "heartbeat": {
                    "interval_s": manager.monitor.interval_s,
                    "evict_after_misses": manager.monitor.evict_after_misses,
                    "sweeps": manager.monitor.sweeps,
                    "evictions_total": manager.monitor.evictions_total,
                },
            }

        def _metrics(self):
            return 200, render_metrics(manager)

    return Handler
