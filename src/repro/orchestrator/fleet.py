"""End-to-end localhost fleets: bring-up, elastic churn, teardown.

:func:`run_elastic_fleet` is the one-call demonstration of the whole
control plane — and the engine behind ``python -m repro orchestrate``,
``make orchestrate-smoke``, and the chaos acceptance test:

1. start an :class:`OrchestratorService` on an ephemeral port;
2. create a training job with a slot universe sized to the workload;
3. register the initial devices over real HTTP (each enrolls, gets a
   slot + shard + neighbor set, and optionally heartbeats on a timer);
4. run a :class:`~repro.runtime.testbed.TestbedRuntime` whose membership
   is orchestrator-issued — scheduled joins and leaves arrive over the
   API mid-run, trigger warm-started topology re-solves, and never abort
   the run;
5. report the result next to a static-fleet baseline accuracy and the
   live /metrics payload for cross-checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SNAPConfig, StragglerStrategy
from repro.models.metrics import accuracy_score
from repro.orchestrator.client import HeartbeatSender, OrchestratorClient
from repro.orchestrator.jobs import JobManager, TrainingJob
from repro.orchestrator.membership import OrchestratedMembership
from repro.orchestrator.service import OrchestratorService
from repro.runtime.testbed import TestbedResult, TestbedRuntime
from repro.simulation.experiments import Workload, credit_svm_workload


@dataclass
class ElasticFleetReport:
    """Everything an elastic run produced, for assertions and display."""

    result: TestbedResult
    job_id: str
    device_ids: list[str]
    active_slots: tuple[int, ...]
    final_accuracy: float
    static_accuracy: float | None
    job_status: dict
    metrics_text: str
    swaps: int
    readded_edges: int
    pruned_edges: int
    decisions: list = field(default_factory=list)
    #: The live control-plane objects, for post-run invariant assertions
    #: (the service itself is already torn down by the time this exists).
    job: object | None = None
    runtime: object | None = None

    def summary_lines(self) -> list[str]:
        """Human-readable digest for the CLI."""
        status = self.job_status
        byte_stats = status.get("bytes", {})
        lines = [
            f"job {self.job_id}: {status.get('state')} after "
            f"{self.result.n_rounds} rounds",
            f"  active slots: {sorted(self.active_slots)} "
            f"of {status.get('capacity')}",
            f"  topology swaps: {self.swaps} "
            f"(pruned {self.pruned_edges}, re-added {self.readded_edges})",
            f"  payload bytes: {byte_stats.get('total', 0)}",
            f"  final accuracy: {self.final_accuracy:.4f}",
        ]
        if self.static_accuracy is not None:
            lines.append(f"  static baseline: {self.static_accuracy:.4f}")
        if status.get("stop_reason"):
            lines.append(f"  stop reason: {status['stop_reason']}")
        return lines


def default_fleet_config(seed: int = 0, invariants: str = "strict") -> SNAPConfig:
    """The recommended elastic-run configuration.

    ``REWEIGHT`` is the right straggler strategy for elastic fleets: an
    inactive neighbor's weight folds onto the diagonal instead of mixing
    in an ever-staler cached view, so long absences do not bias the
    consensus (see docs/ORCHESTRATOR.md).
    """
    return SNAPConfig(
        optimize_weights=True,
        straggler_strategy=StragglerStrategy.REWEIGHT,
        invariants=invariants,
        seed=seed,
    )


def active_mean_accuracy(runtime: TestbedRuntime, active, workload: Workload) -> float:
    """Test accuracy of the mean model over the active slots."""
    active = sorted(active)
    if not active:
        return 0.0
    stack = np.stack([runtime.nodes[slot].server.params for slot in active])
    mean_params = stack.mean(axis=0)
    predictions = workload.model.predict(mean_params, workload.test_set.X)
    return float(accuracy_score(workload.test_set.y, predictions))


def run_elastic_fleet(
    n_slots: int = 6,
    initial_devices: int = 5,
    rounds: int = 30,
    join_at: int | None = None,
    leave_at: int | None = None,
    heartbeat_s: float = 0.25,
    evict_after_misses: int = 3,
    bytes_budget: int | None = None,
    seed: int = 0,
    n_train: int = 900,
    n_test: int = 450,
    average_degree: float = 3.0,
    round_deadline_s: float = 2.0,
    workload: Workload | None = None,
    config: SNAPConfig | None = None,
    heartbeats: bool = True,
    static_baseline: bool = True,
    n_jobs: int = 1,
    port: int = 0,
) -> ElasticFleetReport:
    """Run one orchestrated localhost fleet end to end; see module docstring.

    ``join_at`` / ``leave_at`` schedule one device joining (into the first
    free slot) and one leaving (the highest occupied slot) at those round
    boundaries, over the real HTTP API. ``n_jobs > 1`` creates additional
    concurrent jobs on the same fleet (they share the registry but keep
    isolated schedulers and budgets; only the first is run here — tenancy
    isolation of *running* jobs is exercised by the test suite, which runs
    two fleets side by side).
    """
    if not 0 < initial_devices <= n_slots:
        raise ValueError(
            f"initial_devices must be in (0, {n_slots}], got {initial_devices}"
        )
    if workload is None:
        workload = credit_svm_workload(
            n_servers=n_slots,
            average_degree=average_degree,
            n_train=n_train,
            n_test=n_test,
            seed=seed,
        )
    if config is None:
        config = default_fleet_config(seed=seed)

    manager = JobManager(
        heartbeat_s=heartbeat_s, evict_after_misses=evict_after_misses
    )
    service = OrchestratorService(
        manager, port=port, start_monitor=heartbeats
    ).start()
    senders: list[HeartbeatSender] = []
    try:
        client = OrchestratorClient(service.url)
        job = manager.create_job(
            "elastic", capacity=n_slots, bytes_budget=bytes_budget
        )
        for extra in range(1, int(n_jobs)):
            manager.create_job(f"tenant-{extra}", capacity=n_slots)

        device_ids: list[str] = []
        for i in range(initial_devices):
            response = client.register(
                f"edge-{i:02d}",
                capabilities={"cpu_cores": 2, "mem_mb": 512},
                job=job.job_id,
            )
            device_ids.append(response["device_id"])
            if heartbeats:
                senders.append(
                    HeartbeatSender(
                        client, response["device_id"], heartbeat_s
                    ).start()
                )

        if leave_at is not None:
            leaver = device_ids[initial_devices - 1]
            job.schedule(int(leave_at), lambda: client.leave(leaver))
        if join_at is not None:
            def _join():
                response = client.register(
                    "edge-join",
                    capabilities={"cpu_cores": 2, "mem_mb": 512},
                    job=job.job_id,
                )
                device_ids.append(response["device_id"])
                if heartbeats:
                    senders.append(
                        HeartbeatSender(
                            client, response["device_id"], heartbeat_s
                        ).start()
                    )
            job.schedule(int(join_at), _join)

        runtime = TestbedRuntime(
            workload.model,
            workload.shards,
            workload.topology,
            config=config,
            membership=OrchestratedMembership(job),
            round_deadline_s=round_deadline_s,
        )
        result = runtime.run(rounds)

        active = tuple(sorted(job.active_slots()))
        final_accuracy = active_mean_accuracy(runtime, active, workload)
        job_status = client.job_status(job.job_id)
        metrics_text = client.metrics()
    finally:
        for sender in senders:
            sender.stop()
        service.stop()

    static_accuracy = None
    if static_baseline:
        static_accuracy = run_static_baseline(workload, config, rounds)

    controller = job.controller
    return ElasticFleetReport(
        result=result,
        job_id=job.job_id,
        device_ids=device_ids,
        active_slots=active,
        final_accuracy=final_accuracy,
        static_accuracy=static_accuracy,
        job_status=job_status,
        metrics_text=metrics_text,
        swaps=len(controller.swaps) if controller is not None else 0,
        readded_edges=(
            sum(len(s.added_edges) for s in controller.swaps)
            if controller is not None
            else 0
        ),
        pruned_edges=(
            sum(len(s.pruned_edges) for s in controller.swaps)
            if controller is not None
            else 0
        ),
        decisions=list(job.decisions),
        job=job,
        runtime=runtime,
    )


def run_static_baseline(
    workload: Workload, config: SNAPConfig, rounds: int
) -> float:
    """Accuracy of the same workload on a static full fleet (simulator).

    A static testbed run is bit-for-bit a simulated run on the same
    inputs (the long-standing integration contract), so the cheap
    simulator is the honest baseline for the elastic-vs-static
    accuracy-gap acceptance check.
    """
    from repro.core.trainer import SNAPTrainer

    trainer = SNAPTrainer(
        workload.model, workload.shards, workload.topology, config=config
    )
    result = trainer.run(
        max_rounds=rounds, test_set=workload.test_set, stop_on_convergence=False
    )
    return float(result.final_accuracy)


def bind_job(job: TrainingJob, runtime: TestbedRuntime) -> OrchestratedMembership:
    """Convenience for tests: bridge a job onto an already-built runtime."""
    bridge = OrchestratedMembership(job)
    runtime.membership = bridge
    bridge.bind(runtime)
    return bridge
