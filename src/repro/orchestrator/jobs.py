"""Training jobs and multi-job tenancy.

A :class:`TrainingJob` is one training run's control-plane state: its own
slot scheduler (enrollment → slot → shard/neighbors), its own topology
controller (so joins and leaves trigger warm-started (22)/(23) re-solves
scoped to this job), its own bytes budget, and a binding to the
:class:`~repro.runtime.testbed.TestbedRuntime` executing it. A
:class:`JobManager` owns the fleet-level singletons — one device registry,
one heartbeat monitor — and any number of concurrent jobs sharing that
fleet: a device registers once, then enrolls per job, and each job's
registry view, shard assignment, and byte accounting are fully isolated.

Membership changes never abort a run. They queue on the job and are
drained at the next round boundary by :meth:`TrainingJob.decide`, which
the runtime calls exactly once per round through the
:class:`~repro.orchestrator.membership.OrchestratedMembership` bridge:

* a **leave** (graceful ``/leave`` or heartbeat eviction) frees the slot
  and forces its algorithmic links into the prune step (connectivity
  guarded — the slot keeps one link and is reweighted away at mixing);
* a **join** occupies a free slot and offers that slot's previously
  pruned base-topology links as re-add candidates, with both link ends
  re-seeded so the swap is exact;
* the **bytes budget** stops the run cleanly once the job's recorded
  traffic crosses it.
"""

from __future__ import annotations

import threading
import time
from enum import Enum

from repro.exceptions import ConfigurationError, OrchestratorError
from repro.orchestrator.heartbeat import (
    DEFAULT_EVICT_AFTER_MISSES,
    DEFAULT_HEARTBEAT_S,
    HeartbeatMonitor,
)
from repro.orchestrator.membership import MembershipDecision
from repro.orchestrator.registry import DeviceRegistry
from repro.orchestrator.scheduler import SlotScheduler
from repro.weights.adaptive import TopologyController


class JobState(Enum):
    CREATED = "created"
    BOUND = "bound"
    STOPPED = "stopped"


class TrainingJob:
    """Control-plane state of one training run over the shared fleet.

    Parameters
    ----------
    job_id, name:
        Identity (ids are manager-assigned, names are caller-chosen).
    capacity:
        Slot-universe size — must match the bound runtime's topology.
    registry:
        The *shared* fleet registry (enrollment validates against it).
    bytes_budget:
        Optional cap on this job's recorded payload bytes; crossing it
        stops the run at the next round boundary.
    """

    def __init__(
        self,
        job_id: str,
        name: str,
        capacity: int,
        registry: DeviceRegistry,
        bytes_budget: int | None = None,
    ):
        if bytes_budget is not None and bytes_budget <= 0:
            raise OrchestratorError(
                f"bytes_budget must be > 0, got {bytes_budget}"
            )
        self.job_id = job_id
        self.name = str(name)
        self.registry = registry
        self.scheduler = SlotScheduler(capacity)
        self.bytes_budget = bytes_budget
        self.state = JobState.CREATED
        self._lock = threading.Lock()
        self._runtime = None
        self._controller: TopologyController | None = None
        #: Slots decided into the fleet (post-``decide`` view).
        self._active: set[int] = set()
        #: Slots enrolled/withdrawn since the last decision.
        self._pending_joins: set[int] = set()
        self._pending_leaves: set[int] = set()
        self._decided_rounds = 0
        self._stop_reason: str | None = None
        #: ``{round_index: [callbacks]}`` — deterministic mid-run events
        #: (the chaos tests and the smoke CLI schedule joins/leaves here).
        self._scheduled: dict[int, list] = {}
        self.decisions: list[MembershipDecision] = []

    # -- enrollment --------------------------------------------------------

    def enroll(self, device_id: str) -> dict:
        """Admit a registered device into this job; returns its assignment.

        The returned dict is what the HTTP API hands back on register:
        the slot, the shard index, and the slot's physical neighbor set.
        The activation itself happens at the next round boundary.
        """
        record = self.registry.get(device_id)
        if not record.live:
            raise OrchestratorError(
                f"device {device_id!r} is {record.state.value}; re-register "
                "before enrolling"
            )
        if self.state is JobState.STOPPED:
            raise OrchestratorError(f"job {self.job_id} is stopped")
        slot = self.scheduler.assign(device_id)
        with self._lock:
            self._pending_joins.add(slot)
            self._pending_leaves.discard(slot)
        port = None
        if self._runtime is not None:
            port = self._runtime.ports.get(slot)
            if port is not None:
                self.registry.publish_port(device_id, port)
        return {
            "job_id": self.job_id,
            "device_id": device_id,
            "slot": slot,
            "shard": self.scheduler.shard_for(slot),
            "neighbors": list(self.scheduler.neighbor_set(slot)),
            "port": port,
        }

    def withdraw(self, device_id: str) -> int:
        """Remove a device from this job (leave or eviction); returns slot."""
        slot = self.scheduler.release(device_id)
        with self._lock:
            if slot in self._pending_joins and slot not in self._active:
                # Enrolled and gone again between two rounds: never joined.
                self._pending_joins.discard(slot)
            else:
                self._pending_joins.discard(slot)
                self._pending_leaves.add(slot)
        return slot

    def on_evictions(self, device_ids: tuple) -> tuple:
        """Heartbeat-monitor hook: withdraw any enrolled evicted devices."""
        withdrawn = []
        assignments = self.scheduler.assignments()
        for device_id in device_ids:
            if device_id in assignments:
                self.withdraw(device_id)
                withdrawn.append(device_id)
        return tuple(withdrawn)

    def enrolled_devices(self) -> dict:
        """``{device_id: slot}`` snapshot of this job's enrollment."""
        return self.scheduler.assignments()

    # -- runtime binding ---------------------------------------------------

    def bind_runtime(self, runtime) -> None:
        """Attach the executing testbed runtime (called by its constructor).

        Builds this job's topology controller from the trainer's optimized
        weight solution, republishes every enrolled device's bound
        ephemeral port through the registry, and arms membership decisions.
        """
        trainer = runtime.trainer
        if trainer.topology.n_nodes != self.scheduler.capacity:
            raise ConfigurationError(
                f"job {self.job_id} has capacity {self.scheduler.capacity} "
                f"but the runtime topology has {trainer.topology.n_nodes} nodes"
            )
        if trainer._weight_result is None:
            raise ConfigurationError(
                "orchestrated membership requires optimize_weights=True: "
                "elastic joins/leaves re-solve the Section IV-B problem online"
            )
        with self._lock:
            if self._runtime is not None:
                raise OrchestratorError(
                    f"job {self.job_id} is already bound to a runtime"
                )
            self._runtime = runtime
            self.scheduler.base_topology = trainer.topology
            controller = trainer._topology_controller
            if controller is None:
                config = trainer.config
                controller = TopologyController(
                    trainer.topology,
                    trainer._weight_result,
                    reoptimize_every=config.topology_reoptimize_every,
                    prune_threshold=config.topology_prune_threshold,
                    cost_weight=config.topology_cost_weight,
                    timing=config.timing,
                    iterations=config.weight_iterations,
                )
            self._controller = controller
            self.state = JobState.BOUND
        for device_id, slot in self.scheduler.assignments().items():
            port = runtime.ports.get(slot)
            if port is not None:
                self.registry.publish_port(device_id, port)

    @property
    def controller(self) -> TopologyController | None:
        return self._controller

    @property
    def runtime(self):
        return self._runtime

    # -- mid-run orchestration --------------------------------------------

    def schedule(self, round_index: int, callback) -> None:
        """Run ``callback()`` right before deciding ``round_index``.

        The deterministic way to script mid-run churn: callbacks run on
        the deciding node thread *outside* the job lock, so they are free
        to go through the HTTP API (register/enroll/leave) like any
        external device would.
        """
        with self._lock:
            self._scheduled.setdefault(int(round_index), []).append(callback)

    def stop(self, reason: str = "stopped via API") -> None:
        """Stop the run at the next round boundary."""
        with self._lock:
            self._stop_reason = reason
            self.state = JobState.STOPPED

    # -- the per-round decision -------------------------------------------

    def decide(self, round_index: int) -> MembershipDecision:
        """Resolve this round's membership (runtime calls this once/round)."""
        with self._lock:
            due = self._scheduled.pop(round_index, [])
        for callback in due:
            callback()

        runtime = self._runtime
        if runtime is None:
            raise OrchestratorError(
                f"job {self.job_id} is not bound to a runtime"
            )
        with self._lock:
            controller = self._controller
            first = self._decided_rounds == 0
            joined = frozenset(self._pending_joins)
            left = frozenset(self._pending_leaves)
            self._pending_joins.clear()
            self._pending_leaves.clear()

            active = (self._active | joined) - left
            reason = "steady"
            drop_candidates: tuple = ()
            add_candidates: tuple = ()
            if first:
                # Bring-up: the base topology spans every slot; slots with
                # no device yet are idled and their links force-pruned.
                idle = frozenset(range(self.scheduler.capacity)) - active
                drop_candidates = self.scheduler.drop_candidates(
                    controller.topology, idle
                )
                reason = "bring-up"
            elif joined or left:
                drop_candidates = self.scheduler.drop_candidates(
                    controller.topology, left
                )
                add_candidates = controller.readd_candidates(joined)
                reason = "membership"

            swap = None
            if drop_candidates or add_candidates:
                swap = controller.propose(
                    round_index,
                    bytes_spent=runtime.trainer.tracker.total_bytes,
                    rounds_done=self._decided_rounds,
                    reason="membership",
                    drop_candidates=drop_candidates,
                    add_candidates=add_candidates,
                )

            stop = False
            if self._stop_reason is not None:
                stop, reason = True, self._stop_reason
            elif (
                self.bytes_budget is not None
                and runtime.trainer.tracker.total_bytes >= self.bytes_budget
            ):
                stop, reason = True, "bytes budget exhausted"
                self._stop_reason = reason
                self.state = JobState.STOPPED

            self._active = set(active)
            self._decided_rounds += 1
            decision = MembershipDecision(
                round_index=round_index,
                active=active,
                swap=swap,
                stop=stop,
                reason=reason,
            )
            self.decisions.append(decision)
            return decision

    # -- observability -----------------------------------------------------

    def active_slots(self) -> frozenset:
        with self._lock:
            return frozenset(self._active)

    def snapshot(self) -> dict:
        """JSON-safe job status for the HTTP API and /metrics."""
        runtime = self._runtime
        controller = self._controller
        with self._lock:
            status = {
                "job_id": self.job_id,
                "name": self.name,
                "state": self.state.value,
                "capacity": self.scheduler.capacity,
                "active_slots": sorted(self._active),
                "assignments": self.scheduler.assignments(),
                "rounds_decided": self._decided_rounds,
                "bytes_budget": self.bytes_budget,
                "stop_reason": self._stop_reason,
            }
        if controller is not None:
            status["topology"] = controller.summary()
        if runtime is not None:
            tracker = runtime.trainer.tracker
            status["bytes"] = {
                "total": int(tracker.total_bytes),
                "cost": int(tracker.total_cost),
                "stages": {
                    k: int(v) for k, v in tracker.stage_bytes().items()
                },
            }
            status["staleness"] = {
                "link_staleness_total": int(
                    sum(
                        sum(node.staleness.values())
                        for node in runtime.nodes
                    )
                ),
                "stale_view_rounds_total": int(
                    sum(
                        sum(node.stale_view_rounds.values())
                        for node in runtime.nodes
                    )
                ),
            }
            status["ports"] = runtime.ports
        return status


class JobManager:
    """The fleet: one registry, one heartbeat monitor, many jobs.

    Parameters
    ----------
    heartbeat_s / evict_after_misses:
        Fleet-wide heartbeat policy (see :class:`HeartbeatMonitor`).
    clock:
        Injectable time source shared by the registry and the monitor.
    """

    def __init__(
        self,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        evict_after_misses: int = DEFAULT_EVICT_AFTER_MISSES,
        clock=time.monotonic,
    ):
        self.registry = DeviceRegistry(clock=clock)
        self.monitor = HeartbeatMonitor(
            self.registry,
            interval_s=heartbeat_s,
            evict_after_misses=evict_after_misses,
            clock=clock,
        )
        self.monitor.add_listener(self._on_evictions)
        self._lock = threading.Lock()
        self._jobs: dict[str, TrainingJob] = {}
        self._counter = 0

    def create_job(
        self,
        name: str,
        capacity: int,
        bytes_budget: int | None = None,
    ) -> TrainingJob:
        with self._lock:
            self._counter += 1
            job_id = f"job-{self._counter:04d}"
            job = TrainingJob(
                job_id,
                name,
                capacity,
                registry=self.registry,
                bytes_budget=bytes_budget,
            )
            self._jobs[job_id] = job
            return job

    def get_job(self, job_id: str) -> TrainingJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise OrchestratorError(f"unknown job: {job_id!r}")
        return job

    def jobs(self) -> tuple[TrainingJob, ...]:
        with self._lock:
            return tuple(self._jobs.values())

    def register_device(
        self,
        name: str,
        capabilities: dict | None = None,
        job_id: str | None = None,
        port: int | None = None,
    ) -> dict:
        """Fleet registration, optionally enrolling into a job in one call."""
        record = self.registry.register(name, capabilities=capabilities, port=port)
        response = {
            "device_id": record.device_id,
            "state": record.state.value,
            "heartbeat_s": self.monitor.interval_s,
            "evict_after_misses": self.monitor.evict_after_misses,
        }
        if job_id is not None:
            response["assignment"] = self.get_job(job_id).enroll(
                record.device_id
            )
        return response

    def leave_device(self, device_id: str) -> dict:
        """Graceful fleet departure: withdraw from every enrolled job."""
        record = self.registry.leave(device_id)
        withdrawn = {}
        for job in self.jobs():
            if device_id in job.enrolled_devices():
                withdrawn[job.job_id] = job.withdraw(device_id)
        return {"device_id": device_id, "state": record.state.value,
                "withdrawn_slots": withdrawn}

    def _on_evictions(self, device_ids: tuple) -> None:
        for job in self.jobs():
            job.on_evictions(device_ids)

    def snapshot(self) -> dict:
        return {
            "fleet": self.registry.snapshot(),
            "heartbeat": {
                "interval_s": self.monitor.interval_s,
                "evict_after_misses": self.monitor.evict_after_misses,
                "sweeps": self.monitor.sweeps,
                "evictions_total": self.monitor.evictions_total,
            },
            "jobs": [job.snapshot() for job in self.jobs()],
        }
