"""The fleet device registry: who is in the fleet, and in what state.

Edge devices register with a name and a capability dict, receive a stable
device id, and from then on prove liveness by heartbeating. The registry is
the single source of truth the control plane reads: the heartbeat monitor
sweeps it for silent devices, the scheduler assigns slots out of it, and
the HTTP API is a thin JSON veneer over it.

State machine (per device)::

    register ──► ACTIVE ──(missed heartbeats)──► SUSPECT ──(more)──► EVICTED
                   │  ▲                             │
                   │  └────(heartbeat arrives)──────┘
                   └──(leave)──► LEFT

``EVICTED`` and ``LEFT`` are terminal: a returning device registers again
and gets a fresh id (its old slot has long been re-assignable). This is the
same miss-threshold semantics as the testbed's ``dead_after_misses`` peer
eviction, lifted from per-link to fleet level.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import OrchestratorError


class DeviceState(Enum):
    """Lifecycle state of a registered device."""

    ACTIVE = "active"
    SUSPECT = "suspect"
    EVICTED = "evicted"
    LEFT = "left"


#: States in which a device counts as a fleet member.
LIVE_STATES = frozenset({DeviceState.ACTIVE, DeviceState.SUSPECT})


@dataclass
class DeviceRecord:
    """One registered device."""

    device_id: str
    name: str
    capabilities: dict = field(default_factory=dict)
    state: DeviceState = DeviceState.ACTIVE
    registered_at: float = 0.0
    last_heartbeat: float = 0.0
    missed_heartbeats: int = 0
    #: The device's bound testbed listener port, published after the
    #: ephemeral (port-0) bind resolves — peers read it from here instead
    #: of a hand-maintained port map.
    port: int | None = None

    @property
    def live(self) -> bool:
        return self.state in LIVE_STATES

    def snapshot(self) -> dict:
        """JSON-safe view of this record."""
        return {
            "device_id": self.device_id,
            "name": self.name,
            "capabilities": dict(self.capabilities),
            "state": self.state.value,
            "registered_at": self.registered_at,
            "last_heartbeat": self.last_heartbeat,
            "missed_heartbeats": self.missed_heartbeats,
            "port": self.port,
        }


class DeviceRegistry:
    """Thread-safe registry of fleet devices.

    Parameters
    ----------
    clock:
        Monotonic time source. Injectable so heartbeat/eviction tests can
        drive time deterministically instead of sleeping.
    """

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._devices: dict[str, DeviceRecord] = {}
        self._counter = 0

    # -- lifecycle ---------------------------------------------------------

    def register(
        self,
        name: str,
        capabilities: dict | None = None,
        port: int | None = None,
    ) -> DeviceRecord:
        """Admit a device to the fleet and hand it a fresh id."""
        if not name:
            raise OrchestratorError("device name must be non-empty")
        now = self._clock()
        with self._lock:
            self._counter += 1
            device_id = f"dev-{self._counter:04d}"
            record = DeviceRecord(
                device_id=device_id,
                name=str(name),
                capabilities=dict(capabilities or {}),
                state=DeviceState.ACTIVE,
                registered_at=now,
                last_heartbeat=now,
                port=None if port is None else int(port),
            )
            self._devices[device_id] = record
            return record

    def heartbeat(self, device_id: str) -> DeviceRecord:
        """Record a liveness proof; revives a SUSPECT device.

        A heartbeat from an ``EVICTED`` or ``LEFT`` device does *not*
        resurrect it — the record is returned unchanged so the caller can
        tell the device to re-register (its slot may be gone).
        """
        now = self._clock()
        with self._lock:
            record = self._get(device_id)
            if record.live:
                record.last_heartbeat = now
                record.missed_heartbeats = 0
                record.state = DeviceState.ACTIVE
            return record

    def leave(self, device_id: str) -> DeviceRecord:
        """Graceful departure: the device announces it is going away."""
        with self._lock:
            record = self._get(device_id)
            if record.live:
                record.state = DeviceState.LEFT
            return record

    def evict(self, device_id: str, misses: int | None = None) -> DeviceRecord:
        """Forcibly remove a silent device (heartbeat-monitor verdict)."""
        with self._lock:
            record = self._get(device_id)
            if record.live:
                record.state = DeviceState.EVICTED
                if misses is not None:
                    record.missed_heartbeats = int(misses)
            return record

    def suspect(self, device_id: str, misses: int) -> DeviceRecord:
        """Mark a device as missing heartbeats but not yet evicted."""
        with self._lock:
            record = self._get(device_id)
            if record.state is DeviceState.ACTIVE:
                record.state = DeviceState.SUSPECT
            if record.live:
                record.missed_heartbeats = int(misses)
            return record

    def publish_port(self, device_id: str, port: int) -> DeviceRecord:
        """Publish the bound (ephemeral) listener port of a device."""
        if not 0 < int(port) < 65536:
            raise OrchestratorError(f"invalid port: {port}")
        with self._lock:
            record = self._get(device_id)
            record.port = int(port)
            return record

    # -- queries -----------------------------------------------------------

    def get(self, device_id: str) -> DeviceRecord:
        with self._lock:
            return self._get(device_id)

    def _get(self, device_id: str) -> DeviceRecord:
        record = self._devices.get(device_id)
        if record is None:
            raise OrchestratorError(f"unknown device: {device_id!r}")
        return record

    def devices(self) -> tuple[DeviceRecord, ...]:
        """All records, in registration order."""
        with self._lock:
            return tuple(self._devices.values())

    def live_devices(self) -> tuple[DeviceRecord, ...]:
        """Records of current fleet members (ACTIVE or SUSPECT)."""
        with self._lock:
            return tuple(r for r in self._devices.values() if r.live)

    def __len__(self) -> int:
        with self._lock:
            return len(self._devices)

    def state_counts(self) -> dict[str, int]:
        """``{state: count}`` over every registered device."""
        counts = {state.value: 0 for state in DeviceState}
        with self._lock:
            for record in self._devices.values():
                counts[record.state.value] += 1
        return counts

    def snapshot(self) -> dict:
        """JSON-safe view of the whole registry."""
        with self._lock:
            return {
                "devices": [r.snapshot() for r in self._devices.values()],
                "registered_total": self._counter,
            }
