"""Slot scheduling: devices → shards and neighbor sets.

The fleet runs a *slot universe*: a job is provisioned with a fixed
capacity of ``N`` slots, a base topology over those slots, and one data
shard per slot. Enrolling a device binds it to the lowest free slot —
which fixes both its shard (shard ``i`` belongs to slot ``i``) and its
physical neighbor set (the base topology's row). Elastic membership then
moves *inside* this universe: a leave frees the slot and prunes its
algorithmic links, a join re-occupies a slot and re-adds them — so the
consensus problem keeps a fixed dimension and the (22)/(23) re-solves stay
warm-startable while devices come and go.
"""

from __future__ import annotations

import heapq
import threading

from repro.exceptions import OrchestratorError
from repro.topology.graph import Topology


class SlotScheduler:
    """Assigns fleet slots (= shard + neighbor set) to enrolled devices.

    Parameters
    ----------
    capacity:
        Number of slots in the job's universe (= shards = topology nodes).
    base_topology:
        The physical topology the fleet is wired on. Neighbor sets handed
        to devices at enrollment come from here; the *algorithmic* subset
        active at any moment is the topology controller's business.
    """

    def __init__(self, capacity: int, base_topology: Topology | None = None):
        if capacity <= 0:
            raise OrchestratorError(f"capacity must be > 0, got {capacity}")
        if base_topology is not None and base_topology.n_nodes != capacity:
            raise OrchestratorError(
                f"base topology has {base_topology.n_nodes} nodes, "
                f"capacity is {capacity}"
            )
        self.capacity = int(capacity)
        self.base_topology = base_topology
        self._lock = threading.Lock()
        self._free: list[int] = list(range(capacity))
        heapq.heapify(self._free)
        self._slot_of: dict[str, int] = {}
        self._device_of: dict[int, str] = {}

    # -- assignment --------------------------------------------------------

    def assign(self, device_id: str) -> int:
        """Bind ``device_id`` to the lowest free slot."""
        with self._lock:
            if device_id in self._slot_of:
                raise OrchestratorError(
                    f"device {device_id!r} already holds slot "
                    f"{self._slot_of[device_id]}"
                )
            if not self._free:
                raise OrchestratorError(
                    f"fleet is full: all {self.capacity} slots assigned"
                )
            slot = heapq.heappop(self._free)
            self._slot_of[device_id] = slot
            self._device_of[slot] = device_id
            return slot

    def release(self, device_id: str) -> int:
        """Free the device's slot (on leave/eviction); returns the slot."""
        with self._lock:
            slot = self._slot_of.pop(device_id, None)
            if slot is None:
                raise OrchestratorError(
                    f"device {device_id!r} holds no slot"
                )
            del self._device_of[slot]
            heapq.heappush(self._free, slot)
            return slot

    # -- queries -----------------------------------------------------------

    def slot_of(self, device_id: str) -> int:
        with self._lock:
            slot = self._slot_of.get(device_id)
            if slot is None:
                raise OrchestratorError(f"device {device_id!r} holds no slot")
            return slot

    def device_of(self, slot: int) -> str | None:
        with self._lock:
            return self._device_of.get(int(slot))

    def occupied_slots(self) -> frozenset:
        with self._lock:
            return frozenset(self._device_of)

    def free_slots(self) -> int:
        with self._lock:
            return len(self._free)

    def shard_for(self, slot: int) -> int:
        """Shard index of a slot (identity in the slot universe)."""
        if not 0 <= int(slot) < self.capacity:
            raise OrchestratorError(f"slot {slot} outside capacity {self.capacity}")
        return int(slot)

    def neighbor_set(self, slot: int) -> tuple[int, ...]:
        """The slot's physical neighbor set from the base topology."""
        if self.base_topology is None:
            return ()
        return tuple(self.base_topology.neighbors(int(slot)))

    def assignments(self) -> dict[str, int]:
        """``{device_id: slot}`` snapshot."""
        with self._lock:
            return dict(self._slot_of)

    # -- membership → topology candidates ----------------------------------

    def drop_candidates(
        self, topology: Topology, slots: frozenset | set
    ) -> tuple:
        """Current-topology edges incident to the given (leaving) slots.

        These are handed to the controller as *forced* prune candidates;
        the connectivity guard still applies, so a leaver keeps at least
        one algorithmic link and the full-graph spectral contracts stay
        valid (its weight is reweighted away at mixing time instead).
        """
        wanted = {int(s) for s in slots}
        return tuple(
            sorted(
                edge
                for edge in topology.edges
                if edge[0] in wanted or edge[1] in wanted
            )
        )
