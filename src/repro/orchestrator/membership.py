"""The membership bridge: orchestrator decisions → testbed round boundaries.

:class:`~repro.runtime.testbed.TestbedRuntime` accepts a duck-typed
``membership`` object with two methods — ``bind(runtime)`` at construction
and ``decide(round_index)`` once per round. This module provides the
concrete decision record and the thin bridge that delegates both calls to
a :class:`~repro.orchestrator.jobs.TrainingJob`, keeping the runtime free
of any orchestrator import (the control plane depends on the runtime, not
the other way around).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MembershipDecision:
    """What the fleet looks like for one round.

    Attributes
    ----------
    round_index:
        The round this decision governs.
    active:
        Slot ids participating this round; every other slot idles exactly
        like a plan-downed server (no step, no traffic, NaN loss).
    swap:
        Optional :class:`~repro.weights.adaptive.TopologySwap` to apply at
        the boundary — the warm-started (22)/(23) re-solve triggered by a
        join or leave since the previous round.
    stop:
        End the run cleanly before this round executes (bytes budget
        exhausted, or the job was stopped through the API).
    reason:
        Human-readable trigger, for logs and job status.
    """

    round_index: int
    active: frozenset
    swap: object | None = None
    stop: bool = False
    reason: str = "steady"


class OrchestratedMembership:
    """Adapter a :class:`TrainingJob` hands to ``TestbedRuntime``."""

    def __init__(self, job):
        self.job = job

    def bind(self, runtime) -> None:
        self.job.bind_runtime(runtime)

    def decide(self, round_index: int) -> MembershipDecision:
        return self.job.decide(round_index)
