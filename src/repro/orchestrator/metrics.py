"""/metrics rendering: the columnar cost tracker and staleness counters.

Prometheus-style text exposition (``name{label="value"} number`` lines)
generated straight from live control-plane state: fleet device counts from
the registry, heartbeat sweep/eviction totals from the monitor, and — per
job — the byte/cost totals of the trainer's columnar
:class:`~repro.network.cost.CommunicationCostTracker` (every testbed frame
is recorded there under the ``testbed`` stage), per-stage byte
attribution, topology-swap counters, and the two staleness ledgers the
testbed keeps per directed link. Everything is read in-process from the
same objects the run mutates, so the endpoint is exact, not sampled.
"""

from __future__ import annotations


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(int(value))


def _line(name: str, labels: dict, value) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{val}"' for key, val in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {_fmt(value)}"
    return f"{name} {_fmt(value)}"


def render_metrics(manager) -> str:
    """The /metrics payload for a :class:`~repro.orchestrator.JobManager`."""
    lines: list[str] = []

    lines.append("# fleet registry")
    for state, count in sorted(manager.registry.state_counts().items()):
        lines.append(_line("fleet_devices", {"state": state}, count))

    lines.append("# heartbeat monitor")
    monitor = manager.monitor
    lines.append(_line("heartbeat_interval_seconds", {}, float(monitor.interval_s)))
    lines.append(_line("heartbeat_evict_after_misses", {}, monitor.evict_after_misses))
    lines.append(_line("heartbeat_sweeps_total", {}, monitor.sweeps))
    lines.append(_line("heartbeat_evictions_total", {}, monitor.evictions_total))

    for job in manager.jobs():
        labels = {"job": job.job_id}
        lines.append(f"# job {job.job_id} ({job.name})")
        snapshot = job.snapshot()
        lines.append(_line("job_capacity", labels, snapshot["capacity"]))
        lines.append(
            _line("job_active_slots", labels, len(snapshot["active_slots"]))
        )
        lines.append(
            _line("job_rounds_decided", labels, snapshot["rounds_decided"])
        )
        topology = snapshot.get("topology")
        if topology is not None:
            lines.append(_line("job_topology_swaps", labels, topology["swaps"]))
            lines.append(
                _line("job_edges_pruned_total", labels, topology["pruned_edges"])
            )
            lines.append(
                _line("job_edges_readded_total", labels, topology["added_edges"])
            )
            lines.append(
                _line("job_solver_steps_total", labels, topology["solver_steps"])
            )
        byte_stats = snapshot.get("bytes")
        if byte_stats is not None:
            lines.append(_line("job_bytes_total", labels, byte_stats["total"]))
            lines.append(_line("job_cost_total", labels, byte_stats["cost"]))
            for stage, count in sorted(byte_stats["stages"].items()):
                lines.append(
                    _line(
                        "job_stage_bytes_total",
                        {**labels, "stage": stage},
                        count,
                    )
                )
        staleness = snapshot.get("staleness")
        if staleness is not None:
            lines.append(
                _line(
                    "job_link_staleness_total",
                    labels,
                    staleness["link_staleness_total"],
                )
            )
            lines.append(
                _line(
                    "job_stale_view_rounds_total",
                    labels,
                    staleness["stale_view_rounds_total"],
                )
            )
        if snapshot["bytes_budget"] is not None:
            lines.append(
                _line("job_bytes_budget", labels, snapshot["bytes_budget"])
            )

    return "\n".join(lines) + "\n"


def parse_metrics(text: str) -> dict:
    """Inverse of :func:`render_metrics` (tests assert against live state).

    Returns ``{metric_name: {frozenset(labels.items()): value}}``; comment
    lines are skipped.
    """
    parsed: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, value_part = line.rsplit(" ", 1)
        labels: dict = {}
        if "{" in name_part:
            name, label_blob = name_part.split("{", 1)
            for pair in label_blob.rstrip("}").split(","):
                key, val = pair.split("=", 1)
                labels[key] = val.strip('"')
        else:
            name = name_part
        value = float(value_part) if "." in value_part else int(value_part)
        parsed.setdefault(name, {})[frozenset(labels.items())] = value
    return parsed
