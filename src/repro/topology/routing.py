"""Hop-count routing over a topology.

The paper defines communication cost as flow size times the number of
*physical hops* the flow traverses (Section II-B). Parameter-server schemes
route worker traffic over the least-hop path to the elected server, so the
cost tracker needs all-pairs shortest-path hop counts; SNAP traffic is always
one hop by construction (neighbors are directly connected).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.graph import Topology
from repro.types import NodeId

#: Sentinel hop count for unreachable node pairs.
UNREACHABLE = -1


def hop_count(topology: Topology, source: NodeId, target: NodeId) -> int:
    """Number of hops on the shortest path from ``source`` to ``target``.

    Returns :data:`UNREACHABLE` when no path exists.
    """
    if source == target:
        return 0
    distances = _bfs_distances(topology, source)
    return int(distances[target])


def all_pairs_hop_counts(topology: Topology) -> np.ndarray:
    """Dense ``(n, n)`` matrix of shortest-path hop counts.

    Entry ``[i, j]`` is the hop count from ``i`` to ``j``;
    :data:`UNREACHABLE` marks disconnected pairs. Computed by one BFS per
    node, O(n * (n + m)).
    """
    n = topology.n_nodes
    matrix = np.full((n, n), UNREACHABLE, dtype=np.int64)
    for source in range(n):
        matrix[source] = _bfs_distances(topology, source)
    return matrix


def eccentricity(topology: Topology, node: NodeId) -> int:
    """Maximum hop distance from ``node`` to any other node."""
    distances = _bfs_distances(topology, node)
    if np.any(distances == UNREACHABLE):
        raise TopologyError("eccentricity is undefined on a disconnected topology")
    return int(distances.max())


def diameter(topology: Topology) -> int:
    """Largest hop distance between any pair of nodes."""
    counts = all_pairs_hop_counts(topology)
    if np.any(counts == UNREACHABLE):
        raise TopologyError("diameter is undefined on a disconnected topology")
    return int(counts.max())


def _bfs_distances(topology: Topology, source: NodeId) -> np.ndarray:
    """BFS hop distances from ``source`` (``UNREACHABLE`` where no path)."""
    n = topology.n_nodes
    distances = np.full(n, UNREACHABLE, dtype=np.int64)
    distances[source] = 0
    queue: deque[NodeId] = deque([source])
    while queue:
        node = queue.popleft()
        next_distance = distances[node] + 1
        for neighbor in topology.neighbors(node):
            if distances[neighbor] == UNREACHABLE:
                distances[neighbor] = next_distance
                queue.append(neighbor)
    return distances
