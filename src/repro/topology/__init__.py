"""Edge-network topology substrate.

A :class:`~repro.topology.graph.Topology` describes which edge servers are
neighbors (Section II-B of the paper): vertices are edge servers, edges are
one-hop connections (wireless links between collocated base stations or
persistent TCP connections). Generators build the random networks used in the
large-scale simulations; routing computes the hop counts used for the
hop-weighted communication-cost metric; failure models inject the link
outages behind the straggler experiment (Fig. 9).
"""

from repro.topology.graph import Topology
from repro.topology.generators import (
    HierarchicalTopology,
    complete_topology,
    grid_topology,
    hierarchical_topology,
    random_regular_topology,
    random_topology,
    ring_topology,
    scale_free_topology,
    small_world_topology,
    star_topology,
)
from repro.topology.routing import (
    UNREACHABLE,
    all_pairs_hop_counts,
    diameter,
    eccentricity,
    hop_count,
)
from repro.topology.failures import (
    IndependentLinkFailures,
    IndependentNodeFailures,
    LinkFailureModel,
    NodeFailureModel,
    NoFailures,
    NoNodeFailures,
    ScheduledFailures,
    ScheduledNodeFailures,
)

__all__ = [
    "Topology",
    "HierarchicalTopology",
    "complete_topology",
    "grid_topology",
    "hierarchical_topology",
    "random_regular_topology",
    "random_topology",
    "ring_topology",
    "scale_free_topology",
    "small_world_topology",
    "star_topology",
    "UNREACHABLE",
    "all_pairs_hop_counts",
    "diameter",
    "eccentricity",
    "hop_count",
    "LinkFailureModel",
    "IndependentLinkFailures",
    "NoFailures",
    "ScheduledFailures",
    "NodeFailureModel",
    "IndependentNodeFailures",
    "NoNodeFailures",
    "ScheduledNodeFailures",
]
