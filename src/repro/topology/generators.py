"""Topology generators.

The large-scale simulations in the paper (Section V-B) "randomly generate
networks with various topologies and average node degrees". We reproduce that
with :func:`random_topology`, which samples connected graphs whose average
node degree matches a target, plus deterministic structured topologies (ring,
grid, star, complete) used in tests, examples and the 3-server testbed
reproduction (a complete graph on 3 nodes).
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import TopologyError
from repro.topology.graph import Topology
from repro.types import SeedLike
from repro.utils.rng import make_rng


def complete_topology(n_nodes: int) -> Topology:
    """Fully connected topology on ``n_nodes`` servers (the paper's testbed is K3)."""
    if n_nodes <= 0:
        raise TopologyError(f"n_nodes must be > 0, got {n_nodes}")
    edges = [(u, v) for u in range(n_nodes) for v in range(u + 1, n_nodes)]
    return Topology(n_nodes, edges)


def ring_topology(n_nodes: int) -> Topology:
    """Cycle topology; every server has exactly two neighbors."""
    if n_nodes < 3:
        raise TopologyError(f"a ring needs >= 3 nodes, got {n_nodes}")
    edges = [(i, (i + 1) % n_nodes) for i in range(n_nodes)]
    return Topology(n_nodes, edges)


def star_topology(n_nodes: int, center: int = 0) -> Topology:
    """Star topology: node ``center`` is connected to all others.

    Useful as a worst-case for the incast problem the paper motivates.
    """
    if n_nodes < 2:
        raise TopologyError(f"a star needs >= 2 nodes, got {n_nodes}")
    if not 0 <= center < n_nodes:
        raise TopologyError(f"center {center} outside 0..{n_nodes - 1}")
    edges = [(center, i) for i in range(n_nodes) if i != center]
    return Topology(n_nodes, edges)


def grid_topology(rows: int, cols: int) -> Topology:
    """2-D grid topology of ``rows x cols`` servers (base stations on a lattice)."""
    if rows <= 0 or cols <= 0:
        raise TopologyError(f"grid dimensions must be > 0, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return Topology(rows * cols, edges)


def random_topology(
    n_nodes: int,
    average_degree: float,
    seed: SeedLike = None,
    max_attempts: int = 200,
) -> Topology:
    """Sample a connected random topology with a target average node degree.

    The construction starts from a random spanning tree (guaranteeing
    connectivity, average degree ``2(n-1)/n``) and then adds uniformly random
    extra edges until the average degree reaches the target. This mirrors the
    paper's randomly generated peer-to-peer networks where each edge is a
    one-hop connection.

    Parameters
    ----------
    n_nodes:
        Number of edge servers.
    average_degree:
        Target mean node degree. Must satisfy
        ``2 * (n_nodes - 1) / n_nodes <= average_degree <= n_nodes - 1``.
    seed:
        Seed or generator for reproducibility.
    max_attempts:
        Retries for degenerate corner cases.
    """
    if n_nodes < 2:
        raise TopologyError(f"n_nodes must be >= 2, got {n_nodes}")
    tree_degree = 2.0 * (n_nodes - 1) / n_nodes
    if average_degree > n_nodes - 1 + 1e-9:
        raise TopologyError(
            f"average_degree {average_degree} exceeds the complete-graph degree "
            f"{n_nodes - 1}"
        )
    if average_degree < tree_degree - 1e-9:
        raise TopologyError(
            f"average_degree {average_degree} is below the spanning-tree minimum "
            f"{tree_degree:.3f} for a connected graph on {n_nodes} nodes"
        )
    target_edges = int(round(average_degree * n_nodes / 2.0))
    target_edges = max(target_edges, n_nodes - 1)
    max_edges = n_nodes * (n_nodes - 1) // 2
    target_edges = min(target_edges, max_edges)

    rng = make_rng(seed)
    for _ in range(max_attempts):
        edges = _random_spanning_tree_edges(n_nodes, rng)
        existing = set(edges)
        candidates = [
            (u, v)
            for u in range(n_nodes)
            for v in range(u + 1, n_nodes)
            if (u, v) not in existing
        ]
        extra_needed = target_edges - len(edges)
        if extra_needed > 0:
            chosen = rng.choice(len(candidates), size=extra_needed, replace=False)
            edges.extend(candidates[int(i)] for i in chosen)
        topology = Topology(n_nodes, edges)
        if topology.is_connected():
            return topology
    raise TopologyError(
        f"failed to sample a connected topology after {max_attempts} attempts"
    )


def _random_spanning_tree_edges(n_nodes, rng) -> list[tuple[int, int]]:
    """Uniform-ish random spanning tree via a random node permutation.

    Each node (after the first) attaches to a uniformly random earlier node in
    a random order, yielding a random recursive tree — cheap, connected, and
    unbiased enough for simulation purposes.
    """
    order = rng.permutation(n_nodes)
    edges: list[tuple[int, int]] = []
    for idx in range(1, n_nodes):
        parent_pos = int(rng.integers(0, idx))
        u, v = int(order[parent_pos]), int(order[idx])
        edges.append((min(u, v), max(u, v)))
    return edges


def small_world_topology(
    n_nodes: int,
    base_degree: int = 4,
    rewire_probability: float = 0.1,
    seed: SeedLike = None,
    max_attempts: int = 50,
) -> Topology:
    """Connected Watts–Strogatz small-world topology.

    Edge networks often look like this: mostly local (geographic) links plus
    a few long-range shortcuts (backhaul). Small diameter at low degree —
    a friendly regime for consensus.
    """
    if base_degree >= n_nodes:
        raise TopologyError(
            f"base_degree {base_degree} must be < n_nodes {n_nodes}"
        )
    if base_degree < 2 or base_degree % 2 != 0:
        raise TopologyError(f"base_degree must be even and >= 2, got {base_degree}")
    if not 0.0 <= rewire_probability <= 1.0:
        raise TopologyError(
            f"rewire_probability must be in [0, 1], got {rewire_probability}"
        )
    rng = make_rng(seed)
    for _ in range(max_attempts):
        graph_seed = int(rng.integers(0, 2**31 - 1))
        graph = nx.watts_strogatz_graph(
            n_nodes, base_degree, rewire_probability, seed=graph_seed
        )
        if nx.is_connected(graph):
            return Topology.from_networkx(graph)
    raise TopologyError(
        f"failed to sample a connected small-world graph after {max_attempts} attempts"
    )


def scale_free_topology(
    n_nodes: int, attachments: int = 2, seed: SeedLike = None
) -> Topology:
    """Barabási–Albert scale-free topology (always connected).

    A few hub servers with many links and a long tail of low-degree leaves —
    the regime where the incast concern the paper raises about parameter
    servers is sharpest, and where degree-heterogeneous weight optimization
    has the most room to help.
    """
    if not 1 <= attachments < n_nodes:
        raise TopologyError(
            f"attachments must be in [1, n_nodes), got {attachments} for "
            f"{n_nodes} nodes"
        )
    graph_seed = int(make_rng(seed).integers(0, 2**31 - 1))
    graph = nx.barabasi_albert_graph(n_nodes, attachments, seed=graph_seed)
    return Topology.from_networkx(graph)


class HierarchicalTopology(Topology):
    """A :class:`Topology` whose nodes carry edge→aggregator→cloud tiers.

    ``tiers[node]`` is the node's depth: 0 is the cloud root, the last tier
    holds the edge devices. Every link connects nodes at most one tier
    apart (parent↔child, or siblings inside one tier) — the structural fact
    the invariant monitor's ``hierarchy-ledger`` check certifies per flow.

    Note that derived topologies (``remove_edges``, adaptive pruning) decay
    to plain :class:`Topology` and lose the tier labels, so hierarchical
    scenarios run with a static topology.
    """

    def __init__(self, n_nodes, edges, tiers):
        super().__init__(n_nodes, edges)
        tiers = tuple(int(t) for t in tiers)
        if len(tiers) != self.n_nodes:
            raise TopologyError(
                f"tiers has {len(tiers)} entries for {self.n_nodes} nodes"
            )
        if any(t < 0 for t in tiers):
            raise TopologyError(f"tiers must be >= 0, got {tiers}")
        for u, v in self.edges:
            if abs(tiers[u] - tiers[v]) > 1:
                raise TopologyError(
                    f"edge ({u}, {v}) spans tiers {tiers[u]} and {tiers[v]}; "
                    f"hierarchical links connect adjacent tiers only"
                )
        self._tiers = tiers

    @property
    def tiers(self) -> tuple[int, ...]:
        """Per-node tier depth (0 = cloud root)."""
        return self._tiers

    def tier_of(self, node: int) -> int:
        """Tier depth of ``node``."""
        self._check_node(node)
        return self._tiers[node]

    def __repr__(self) -> str:
        return (
            f"HierarchicalTopology(n_nodes={self.n_nodes}, "
            f"n_edges={self.n_edges}, depth={max(self._tiers)})"
        )


def hierarchical_topology(
    branching: "list[int] | tuple[int, ...]",
    sibling_rings: bool = False,
) -> HierarchicalTopology:
    """Edge→aggregator→cloud tree: one cloud root fanning out per tier.

    ``branching[t]`` children hang under every tier-``t`` node, so
    ``branching=[3, 4]`` builds 1 cloud + 3 aggregators + 12 edge devices.
    Nodes are numbered breadth-first (the cloud is node 0), children are
    assigned to parents in order, and with ``sibling_rings=True`` the
    children under each parent are additionally chained into a path (plus
    the closing link when there are ≥ 3 siblings), which keeps mixing from
    funneling every exchange through the parent.
    """
    branching = tuple(int(b) for b in branching)
    if not branching:
        raise TopologyError("branching must name at least one tier fan-out")
    if any(b < 1 for b in branching):
        raise TopologyError(f"branching factors must be >= 1, got {branching}")
    tiers: list[int] = [0]
    edges: list[tuple[int, int]] = []
    parents = [0]
    next_id = 1
    for depth, fan_out in enumerate(branching, start=1):
        children: list[int] = []
        for parent in parents:
            siblings = list(range(next_id, next_id + fan_out))
            next_id += fan_out
            for child in siblings:
                tiers.append(depth)
                edges.append((parent, child))
            if sibling_rings and len(siblings) >= 2:
                edges.extend(zip(siblings, siblings[1:]))
                if len(siblings) >= 3:
                    edges.append((siblings[0], siblings[-1]))
            children.extend(siblings)
        parents = children
    return HierarchicalTopology(next_id, edges, tiers)


def random_regular_topology(
    n_nodes: int, degree: int, seed: SeedLike = None, max_attempts: int = 50
) -> Topology:
    """Connected random regular topology (every node has exactly ``degree`` neighbors).

    Handy for controlled experiments where degree variance should be zero.
    """
    if degree >= n_nodes:
        raise TopologyError(f"degree {degree} must be < n_nodes {n_nodes}")
    if (n_nodes * degree) % 2 != 0:
        raise TopologyError(
            f"n_nodes * degree must be even, got {n_nodes} * {degree}"
        )
    if degree < 2:
        raise TopologyError("degree must be >= 2 for a connected regular graph")
    rng = make_rng(seed)
    for _ in range(max_attempts):
        graph_seed = int(rng.integers(0, 2**31 - 1))
        graph = nx.random_regular_graph(degree, n_nodes, seed=graph_seed)
        if nx.is_connected(graph):
            return Topology.from_networkx(graph)
    raise TopologyError(
        f"failed to sample a connected {degree}-regular graph after {max_attempts} attempts"
    )
