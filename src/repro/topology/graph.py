"""The :class:`Topology` class: an immutable undirected edge-server graph."""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.exceptions import TopologyError
from repro.types import Edge, NodeId


class Topology:
    """An undirected graph over edge servers ``0 .. n_nodes-1``.

    Nodes are always the contiguous integers ``0 .. n_nodes-1`` so that the
    adjacency structure lines up with the rows of the stacked parameter matrix
    ``x`` and of the weight matrix ``W`` (Section III-A).

    Parameters
    ----------
    n_nodes:
        Number of edge servers.
    edges:
        Iterable of ``(u, v)`` pairs. Self-loops are rejected; duplicate and
        reversed pairs collapse to a single undirected edge.
    """

    def __init__(self, n_nodes: int, edges: Iterable[Edge]):
        if n_nodes <= 0:
            raise TopologyError(f"n_nodes must be > 0, got {n_nodes}")
        self._n_nodes = int(n_nodes)
        canonical: set[Edge] = set()
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise TopologyError(f"self-loop ({u}, {v}) is not allowed")
            if not (0 <= u < n_nodes and 0 <= v < n_nodes):
                raise TopologyError(
                    f"edge ({u}, {v}) references a node outside 0..{n_nodes - 1}"
                )
            canonical.add((min(u, v), max(u, v)))
        self._edges: tuple[Edge, ...] = tuple(sorted(canonical))
        self._neighbors: tuple[tuple[NodeId, ...], ...] = self._build_neighbors()

    def _build_neighbors(self) -> tuple[tuple[NodeId, ...], ...]:
        adj: list[list[NodeId]] = [[] for _ in range(self._n_nodes)]
        for u, v in self._edges:
            adj[u].append(v)
            adj[v].append(u)
        return tuple(tuple(sorted(nbrs)) for nbrs in adj)

    # -- basic accessors ---------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of edge servers."""
        return self._n_nodes

    @property
    def edges(self) -> tuple[Edge, ...]:
        """Sorted tuple of undirected edges, each stored as ``(u, v)`` with ``u < v``."""
        return self._edges

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return len(self._edges)

    def neighbors(self, node: NodeId) -> tuple[NodeId, ...]:
        """The neighbor set :math:`B_i` of ``node``, sorted ascending."""
        self._check_node(node)
        return self._neighbors[node]

    def degree(self, node: NodeId) -> int:
        """Node degree (size of the neighbor set)."""
        self._check_node(node)
        return len(self._neighbors[node])

    def average_degree(self) -> float:
        """Mean node degree, ``2 * n_edges / n_nodes``."""
        return 2.0 * self.n_edges / self.n_nodes

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether ``u`` and ``v`` are direct neighbors."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            return False
        return v in self._neighbors[u]

    def _check_node(self, node: NodeId) -> None:
        if not 0 <= node < self._n_nodes:
            raise TopologyError(f"node {node} outside 0..{self._n_nodes - 1}")

    def __iter__(self) -> Iterator[NodeId]:
        return iter(range(self._n_nodes))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._n_nodes == other._n_nodes and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n_nodes, self._edges))

    def __repr__(self) -> str:
        return (
            f"Topology(n_nodes={self._n_nodes}, n_edges={self.n_edges}, "
            f"avg_degree={self.average_degree():.2f})"
        )

    # -- structure ---------------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the graph is connected (required for consensus to mix)."""
        return nx.is_connected(self.to_networkx())

    def to_networkx(self) -> nx.Graph:
        """Export to a :class:`networkx.Graph` (nodes ``0..n-1``)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self._n_nodes))
        graph.add_edges_from(self._edges)
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "Topology":
        """Build a topology from any networkx graph by relabelling nodes to 0..n-1."""
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in graph.edges()]
        return cls(len(nodes), edges)

    def neighbor_map(self) -> dict[NodeId, tuple[NodeId, ...]]:
        """Mapping ``node -> neighbor tuple`` for all nodes."""
        return {node: self._neighbors[node] for node in range(self._n_nodes)}

    def remove_edges(self, removed: Iterable[Edge]) -> "Topology":
        """Return a copy with ``removed`` edges deleted (used by failure models)."""
        removed_set = {(min(u, v), max(u, v)) for u, v in removed}
        kept = [e for e in self._edges if e not in removed_set]
        return Topology(self._n_nodes, kept)
