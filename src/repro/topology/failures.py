"""Link-failure models for the straggler experiment (Fig. 9).

The paper injects temporary link outages: in each iteration a fraction of
links is unavailable, the affected servers simply reuse the latest parameters
previously received from those neighbors, and training continues. A failure
model answers one question per round: *which undirected links are down?*
"""

from __future__ import annotations

import abc
from typing import FrozenSet

from repro.exceptions import ConfigurationError
from repro.topology.graph import Topology
from repro.types import Edge, SeedLike
from repro.utils.rng import make_rng
from repro.utils.validation import check_probability


class LinkFailureModel(abc.ABC):
    """Interface: per-round sampling of failed (unavailable) links."""

    @abc.abstractmethod
    def failed_links(self, topology: Topology, round_index: int) -> FrozenSet[Edge]:
        """Return the set of undirected edges that are down during ``round_index``.

        Edges are canonical ``(u, v)`` pairs with ``u < v``. A failed link is
        bidirectional: neither endpoint receives the other's update that round.
        """


class NoFailures(LinkFailureModel):
    """All links are always available (the default for every non-straggler run)."""

    def failed_links(self, topology: Topology, round_index: int) -> FrozenSet[Edge]:
        return frozenset()

    def __repr__(self) -> str:
        return "NoFailures()"


class IndependentLinkFailures(LinkFailureModel):
    """Each link fails independently with probability ``failure_rate`` each round.

    This is the model behind Fig. 9: "when there are 1% of the links
    unavailable" corresponds to ``failure_rate=0.01``. Sampling is
    deterministic given the seed and the round index, so repeated queries for
    the same round return the same outage set.
    """

    def __init__(self, failure_rate: float, seed: SeedLike = None):
        self.failure_rate = check_probability("failure_rate", failure_rate)
        self._root_seed = int(make_rng(seed).integers(0, 2**63 - 1))

    def failed_links(self, topology: Topology, round_index: int) -> FrozenSet[Edge]:
        if round_index < 0:
            raise ConfigurationError(f"round_index must be >= 0, got {round_index}")
        if self.failure_rate == 0.0:
            return frozenset()
        rng = make_rng((self._root_seed, round_index))
        draws = rng.random(topology.n_edges)
        return frozenset(
            edge for edge, draw in zip(topology.edges, draws) if draw < self.failure_rate
        )

    def __repr__(self) -> str:
        return f"IndependentLinkFailures(failure_rate={self.failure_rate})"


class NodeFailureModel(abc.ABC):
    """Interface: per-round sampling of *servers* that are down.

    Section IV-D lists "server shut down" alongside link congestion as a
    straggler cause. A downed server computes nothing that round and sends
    nothing; its neighbors fall back to their cached views exactly as for a
    link failure. It resumes from its last state when it comes back.
    """

    @abc.abstractmethod
    def failed_nodes(self, topology: Topology, round_index: int) -> frozenset[int]:
        """Return the set of node ids that are down during ``round_index``."""


class NoNodeFailures(NodeFailureModel):
    """All servers always up (the default)."""

    def failed_nodes(self, topology: Topology, round_index: int) -> frozenset[int]:
        return frozenset()

    def __repr__(self) -> str:
        return "NoNodeFailures()"


class IndependentNodeFailures(NodeFailureModel):
    """Each server is down independently with probability ``failure_rate``.

    Deterministic given the seed and round index, like
    :class:`IndependentLinkFailures`.
    """

    def __init__(self, failure_rate: float, seed: SeedLike = None):
        self.failure_rate = check_probability("failure_rate", failure_rate)
        self._root_seed = int(make_rng(seed).integers(0, 2**63 - 1))

    def failed_nodes(self, topology: Topology, round_index: int) -> frozenset[int]:
        if round_index < 0:
            raise ConfigurationError(f"round_index must be >= 0, got {round_index}")
        if self.failure_rate == 0.0:
            return frozenset()
        rng = make_rng((self._root_seed, round_index))
        draws = rng.random(topology.n_nodes)
        return frozenset(
            node for node in range(topology.n_nodes) if draws[node] < self.failure_rate
        )

    def __repr__(self) -> str:
        return f"IndependentNodeFailures(failure_rate={self.failure_rate})"


class ScheduledNodeFailures(NodeFailureModel):
    """Explicit per-round outage schedule for servers, for deterministic tests.

    Scheduled node ids are validated against the topology on first use: a
    schedule naming a server that does not exist would otherwise silently
    no-op, making a test believe it exercised an outage that never happened.
    """

    def __init__(self, schedule: dict[int, list[int]]):
        self._schedule = {
            int(round_index): frozenset(int(n) for n in nodes)
            for round_index, nodes in schedule.items()
        }
        self._validated_for: int | None = None

    def _validate(self, topology: Topology) -> None:
        if self._validated_for == id(topology):
            return
        for round_index, nodes in self._schedule.items():
            bad = [n for n in nodes if not 0 <= n < topology.n_nodes]
            if bad:
                raise ConfigurationError(
                    f"node-failure schedule for round {round_index} names "
                    f"servers {sorted(bad)} outside the topology's "
                    f"0..{topology.n_nodes - 1}"
                )
        self._validated_for = id(topology)

    def failed_nodes(self, topology: Topology, round_index: int) -> frozenset[int]:
        self._validate(topology)
        return self._schedule.get(round_index, frozenset())

    def __repr__(self) -> str:
        return f"ScheduledNodeFailures(rounds={sorted(self._schedule)})"


class ScheduledFailures(LinkFailureModel):
    """Explicit per-round outage schedule, for deterministic tests.

    Parameters
    ----------
    schedule:
        Mapping ``round_index -> iterable of edges`` that are down that round.
        Rounds absent from the mapping have no failures. Scheduled edges are
        validated against the topology on first use: an edge that does not
        exist would otherwise silently no-op, making a test believe it
        exercised an outage that never happened.
    """

    def __init__(self, schedule: dict[int, list[Edge]]):
        self._schedule = {
            int(round_index): frozenset((min(u, v), max(u, v)) for u, v in edges)
            for round_index, edges in schedule.items()
        }
        self._validated_for: int | None = None

    def _validate(self, topology: Topology) -> None:
        if self._validated_for == id(topology):
            return
        known = set(topology.edges)
        for round_index, edges in self._schedule.items():
            bad = sorted(edge for edge in edges if edge not in known)
            if bad:
                raise ConfigurationError(
                    f"link-failure schedule for round {round_index} names "
                    f"edges {bad} that are not in the topology"
                )
        self._validated_for = id(topology)

    def failed_links(self, topology: Topology, round_index: int) -> FrozenSet[Edge]:
        self._validate(topology)
        return self._schedule.get(round_index, frozenset())

    def __repr__(self) -> str:
        return f"ScheduledFailures(rounds={sorted(self._schedule)})"
