"""Fault models beyond per-round independent sampling.

The models in :mod:`repro.topology.failures` resample every round
independently — fine for Fig. 9's steady-state straggler rate, but real edge
outages are *bursty*: a congested link stays congested for a while, a crashed
server stays down until somebody restarts it, a backhaul cut partitions the
network for minutes. This module adds those temporally correlated faults,
all implementing the same :class:`~repro.topology.failures.LinkFailureModel`
/ :class:`~repro.topology.failures.NodeFailureModel` interfaces so they plug
into the simulator's :class:`~repro.network.channel.Channel`, the trainer,
and the TCP testbed unchanged — individually or composed through
:class:`~repro.faults.plan.FaultPlan`.

Everything is deterministic given its seed: querying the same round twice
returns the same outcome, and a checkpoint-resumed run replays the exact
fault pattern of an uninterrupted one.
"""

from __future__ import annotations

import abc
import threading
from typing import FrozenSet, Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.topology.failures import LinkFailureModel, NodeFailureModel
from repro.topology.graph import Topology
from repro.types import Edge, SeedLike
from repro.utils.rng import make_rng
from repro.utils.validation import check_probability


def _check_round(round_index: int) -> int:
    if round_index < 0:
        raise ConfigurationError(f"round_index must be >= 0, got {round_index}")
    return int(round_index)


class _TwoStateChain:
    """A deterministic per-entity Gilbert–Elliott (good/bad) Markov chain.

    ``n_entities`` independent two-state chains advance in lockstep over
    rounds: a good entity fails with ``p_fail`` per round, a failed entity
    recovers with ``p_recover``. Round 0 draws from the stationary
    distribution, so the long-run failed fraction is
    ``p_fail / (p_fail + p_recover)`` from the very first round. States are
    computed forward once and cached; the cache is guarded by a lock because
    testbed node threads query the same chain concurrently.
    """

    def __init__(self, p_fail: float, p_recover: float, seed: SeedLike):
        self.p_fail = check_probability("p_fail", p_fail)
        self.p_recover = check_probability("p_recover", p_recover)
        self._root_seed = int(make_rng(seed).integers(0, 2**63 - 1))
        total = self.p_fail + self.p_recover
        self._stationary = self.p_fail / total if total > 0 else 0.0
        self._states: list[np.ndarray] = []
        self._n_entities: int | None = None
        self._lock = threading.Lock()

    def failed_mask(self, n_entities: int, round_index: int) -> np.ndarray:
        """Boolean mask of entities down during ``round_index``."""
        round_index = _check_round(round_index)
        with self._lock:
            if self._n_entities is None:
                self._n_entities = int(n_entities)
            elif self._n_entities != n_entities:
                raise ConfigurationError(
                    f"chain was bound to {self._n_entities} entities, "
                    f"queried with {n_entities}; per-entity burst state is "
                    "not transferable between topologies"
                )
            while len(self._states) <= round_index:
                r = len(self._states)
                draws = make_rng((self._root_seed, r)).random(n_entities)
                if r == 0:
                    down = draws < self._stationary
                else:
                    previous = self._states[r - 1]
                    down = np.where(
                        previous, draws >= self.p_recover, draws < self.p_fail
                    )
                self._states.append(down)
            return self._states[round_index]


class GilbertElliottLinkFailures(LinkFailureModel):
    """Bursty link outages: each link is an independent two-state chain.

    A link in the *good* state fails with probability ``p_fail`` each round;
    a failed link recovers with probability ``p_recover``. The stationary
    unavailable fraction is ``p_fail / (p_fail + p_recover)`` and the mean
    outage burst lasts ``1 / p_recover`` rounds — e.g. ``(0.05, 0.2)`` gives
    20% of links down on average, in bursts of ~5 rounds, versus the
    memoryless per-round resampling of
    :class:`~repro.topology.failures.IndependentLinkFailures`.

    Burst state is tied to the *physical link*, not its position in the
    edge list: the chain binds to the first topology it sees and later
    queries look each edge up by identity. Adaptive topology pruning (see
    :mod:`repro.weights.adaptive`) therefore keeps every surviving link on
    its own chain — a link does not change its outage history because a
    different link was removed. Links absent from the bound topology are
    rejected (the adaptive runtime only prunes).
    """

    def __init__(self, p_fail: float, p_recover: float, seed: SeedLike = None):
        self._chain = _TwoStateChain(p_fail, p_recover, seed)
        self._edge_index: dict[Edge, int] | None = None

    @property
    def stationary_rate(self) -> float:
        """Long-run fraction of links unavailable."""
        return self._chain._stationary

    def failed_links(self, topology: Topology, round_index: int) -> FrozenSet[Edge]:
        if self._edge_index is None:
            self._edge_index = {
                edge: i for i, edge in enumerate(topology.edges)
            }
        index = self._edge_index
        unknown = [edge for edge in topology.edges if edge not in index]
        if unknown:
            raise ConfigurationError(
                f"links {unknown} were not part of the topology this chain "
                "bound to; per-link burst state only transfers to pruned "
                "subtopologies"
            )
        mask = self._chain.failed_mask(len(index), round_index)
        return frozenset(
            edge for edge in topology.edges if mask[index[edge]]
        )

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLinkFailures(p_fail={self._chain.p_fail}, "
            f"p_recover={self._chain.p_recover})"
        )


class MarkovNodeFailures(NodeFailureModel):
    """Bursty server crashes: each node is an independent two-state chain.

    The node analogue of :class:`GilbertElliottLinkFailures`: a crashed
    server stays down for a geometric span of rounds (mean ``1/p_recover``)
    and then resumes from its last state, instead of flapping independently
    every round.
    """

    def __init__(self, p_fail: float, p_recover: float, seed: SeedLike = None):
        self._chain = _TwoStateChain(p_fail, p_recover, seed)

    def failed_nodes(self, topology: Topology, round_index: int) -> frozenset[int]:
        mask = self._chain.failed_mask(topology.n_nodes, round_index)
        return frozenset(int(n) for n in np.flatnonzero(mask))

    def __repr__(self) -> str:
        return (
            f"MarkovNodeFailures(p_fail={self._chain.p_fail}, "
            f"p_recover={self._chain.p_recover})"
        )


class CrashRestartSchedule(NodeFailureModel):
    """Explicit crash/restart spans: node ``i`` is down for whole windows.

    Parameters
    ----------
    outages:
        Mapping ``node_id -> [(start_round, end_round), ...]``; the node is
        down for every round in each inclusive span and resumes afterwards.
        Node ids are validated against the topology on first use.
    """

    def __init__(self, outages: dict[int, Iterable[tuple[int, int]]]):
        self._outages: dict[int, tuple[tuple[int, int], ...]] = {}
        for node, spans in outages.items():
            normalized = []
            for start, end in spans:
                start, end = int(start), int(end)
                if start < 0 or end < start:
                    raise ConfigurationError(
                        f"outage span ({start}, {end}) for node {node} is "
                        "not a valid inclusive round range"
                    )
                normalized.append((start, end))
            self._outages[int(node)] = tuple(sorted(normalized))
        self._validated_for: int | None = None

    def _validate(self, topology: Topology) -> None:
        if self._validated_for == id(topology):
            return
        bad = [n for n in self._outages if not 0 <= n < topology.n_nodes]
        if bad:
            raise ConfigurationError(
                f"crash schedule names nodes {sorted(bad)} outside the "
                f"topology's 0..{topology.n_nodes - 1}"
            )
        self._validated_for = id(topology)

    def failed_nodes(self, topology: Topology, round_index: int) -> frozenset[int]:
        round_index = _check_round(round_index)
        self._validate(topology)
        return frozenset(
            node
            for node, spans in self._outages.items()
            if any(start <= round_index <= end for start, end in spans)
        )

    def __repr__(self) -> str:
        return f"CrashRestartSchedule(nodes={sorted(self._outages)})"


class PartitionSchedule(LinkFailureModel):
    """Network partitions: all links crossing a group boundary go down.

    Parameters
    ----------
    windows:
        List of ``(start_round, end_round, groups)`` entries: during each
        inclusive round span, every topology edge whose endpoints fall in
        *different* groups is unavailable. ``groups`` is a collection of
        disjoint node collections; nodes absent from every group keep all
        their links (they sit on neither side of the cut). Groups are
        validated against the topology on first use.
    """

    def __init__(
        self,
        windows: Sequence[tuple[int, int, Sequence[Sequence[int]]]],
    ):
        self._windows: list[tuple[int, int, tuple[frozenset[int], ...]]] = []
        for start, end, groups in windows:
            start, end = int(start), int(end)
            if start < 0 or end < start:
                raise ConfigurationError(
                    f"partition window ({start}, {end}) is not a valid "
                    "inclusive round range"
                )
            group_sets = tuple(frozenset(int(n) for n in g) for g in groups)
            if len(group_sets) < 2:
                raise ConfigurationError(
                    "a partition needs at least two groups to cut between"
                )
            seen: set[int] = set()
            for group in group_sets:
                overlap = seen & group
                if overlap:
                    raise ConfigurationError(
                        f"partition groups overlap on nodes {sorted(overlap)}"
                    )
                seen |= group
            self._windows.append((start, end, group_sets))
        self._validated_for: int | None = None

    def _validate(self, topology: Topology) -> None:
        if self._validated_for == id(topology):
            return
        for _, _, groups in self._windows:
            for group in groups:
                bad = [n for n in group if not 0 <= n < topology.n_nodes]
                if bad:
                    raise ConfigurationError(
                        f"partition group names nodes {sorted(bad)} outside "
                        f"the topology's 0..{topology.n_nodes - 1}"
                    )
        self._validated_for = id(topology)

    def failed_links(self, topology: Topology, round_index: int) -> FrozenSet[Edge]:
        round_index = _check_round(round_index)
        self._validate(topology)
        failed: set[Edge] = set()
        for start, end, groups in self._windows:
            if not start <= round_index <= end:
                continue
            side = {node: k for k, group in enumerate(groups) for node in group}
            for u, v in topology.edges:
                su, sv = side.get(u), side.get(v)
                if su is not None and sv is not None and su != sv:
                    failed.add((u, v))
        return frozenset(failed)

    def __repr__(self) -> str:
        spans = [(start, end) for start, end, _ in self._windows]
        return f"PartitionSchedule(windows={spans})"


# -- message corruption --------------------------------------------------------


class CorruptionModel(abc.ABC):
    """Interface: which in-flight frames are corrupted.

    Corruption is directional (one frame of the two crossing an undirected
    link can be damaged while the other survives). A corrupted frame still
    consumes wire bytes — it entered the network — but the receiver's CRC
    check rejects it and the straggler rule applies, so corruption never
    delivers wrong values.
    """

    @abc.abstractmethod
    def corrupted(
        self, topology: Topology, source: int, destination: int, round_index: int
    ) -> bool:
        """Whether the ``source -> destination`` frame of ``round_index`` is damaged."""


class NoCorruption(CorruptionModel):
    """Every frame arrives intact (the default)."""

    def corrupted(
        self, topology: Topology, source: int, destination: int, round_index: int
    ) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoCorruption()"


class IndependentCorruption(CorruptionModel):
    """Each directed frame is corrupted independently with ``rate``.

    Deterministic given the seed, the round, and the directed pair, so the
    simulator and the testbed damage exactly the same frames.
    """

    def __init__(self, rate: float, seed: SeedLike = None):
        self.rate = check_probability("rate", rate)
        self._root_seed = int(make_rng(seed).integers(0, 2**63 - 1))

    def corrupted(
        self, topology: Topology, source: int, destination: int, round_index: int
    ) -> bool:
        round_index = _check_round(round_index)
        if self.rate == 0.0:
            return False
        rng = make_rng((self._root_seed, round_index, source, destination))
        return bool(rng.random() < self.rate)

    def __repr__(self) -> str:
        return f"IndependentCorruption(rate={self.rate})"


class ScheduledCorruption(CorruptionModel):
    """Explicit per-round corruption schedule, for deterministic tests.

    Parameters
    ----------
    schedule:
        Mapping ``round_index -> iterable of directed (source, destination)
        pairs`` whose frames are damaged that round. Pairs are validated to
        be topology edges on first use.
    """

    def __init__(self, schedule: dict[int, Iterable[tuple[int, int]]]):
        self._schedule = {
            int(round_index): frozenset((int(s), int(d)) for s, d in pairs)
            for round_index, pairs in schedule.items()
        }
        self._validated_for: int | None = None

    def _validate(self, topology: Topology) -> None:
        if self._validated_for == id(topology):
            return
        for round_index, pairs in self._schedule.items():
            for source, destination in pairs:
                if not topology.has_edge(source, destination):
                    raise ConfigurationError(
                        f"corruption schedule for round {round_index} names "
                        f"({source}, {destination}), which is not a topology edge"
                    )
        self._validated_for = id(topology)

    def corrupted(
        self, topology: Topology, source: int, destination: int, round_index: int
    ) -> bool:
        self._validate(topology)
        return (source, destination) in self._schedule.get(round_index, frozenset())

    def __repr__(self) -> str:
        return f"ScheduledCorruption(rounds={sorted(self._schedule)})"


class ClockSkewModel(abc.ABC):
    """Interface: per-node, per-round local-clock perturbation.

    The semi-synchronous engine (:mod:`repro.core.async_engine`) derives
    each server's local clock from the timing model's per-node compute time;
    a clock-skew model multiplies that time round by round. A multiplier of
    1 is a healthy clock, 10 is a 10x straggler (Fig. 9's study subject),
    and values below 1 model a server briefly running ahead. Multipliers
    never gate *whether* work happens — only when it finishes — so they
    compose freely with the link/node failure models above.
    """

    @abc.abstractmethod
    def compute_multiplier(
        self, topology: Topology, node: int, round_index: int
    ) -> float:
        """Factor applied to ``node``'s compute time during its local round."""


class NoClockSkew(ClockSkewModel):
    """Every clock runs true (the default)."""

    def compute_multiplier(
        self, topology: Topology, node: int, round_index: int
    ) -> float:
        return 1.0

    def __repr__(self) -> str:
        return "NoClockSkew()"


class ScheduledStragglers(ClockSkewModel):
    """Explicit straggler spans: node ``i`` runs ``factor``x slow for windows.

    Parameters
    ----------
    spans:
        Mapping ``node_id -> [(start_round, end_round, factor), ...]``; the
        node's compute time is multiplied by ``factor`` for every local
        round in each inclusive span. A mapping value may also be a single
        number, shorthand for "slowed for the whole run".
    """

    def __init__(self, spans: dict[int, object]):
        self._spans: dict[int, tuple[tuple[int, int, float], ...]] = {}
        for node, windows in spans.items():
            if isinstance(windows, (int, float)):
                windows = [(0, 2**62, float(windows))]
            normalized = []
            for start, end, factor in windows:
                start, end, factor = int(start), int(end), float(factor)
                if start < 0 or end < start:
                    raise ConfigurationError(
                        f"straggler span ({start}, {end}) for node {node} is "
                        "not a valid inclusive round range"
                    )
                if factor <= 0:
                    raise ConfigurationError(
                        f"straggler factor must be > 0, got {factor} for "
                        f"node {node}"
                    )
                normalized.append((start, end, factor))
            self._spans[int(node)] = tuple(sorted(normalized))
        self._validated_for: int | None = None

    def _validate(self, topology: Topology) -> None:
        if self._validated_for == id(topology):
            return
        bad = [n for n in self._spans if not 0 <= n < topology.n_nodes]
        if bad:
            raise ConfigurationError(
                f"straggler schedule names nodes {sorted(bad)} outside the "
                f"topology's 0..{topology.n_nodes - 1}"
            )
        self._validated_for = id(topology)

    def compute_multiplier(
        self, topology: Topology, node: int, round_index: int
    ) -> float:
        round_index = _check_round(round_index)
        self._validate(topology)
        multiplier = 1.0
        for start, end, factor in self._spans.get(int(node), ()):
            if start <= round_index <= end:
                multiplier *= factor
        return multiplier

    def __repr__(self) -> str:
        return f"ScheduledStragglers(nodes={sorted(self._spans)})"


class RandomClockSkew(ClockSkewModel):
    """Log-normal per-(node, round) clock jitter, deterministic per seed.

    Each local round's compute time is multiplied by
    ``exp(sigma * z)`` with ``z ~ N(0, 1)`` drawn from a stream keyed by
    ``(seed, node, round)`` — the same node/round always jitters the same
    way, so semi-synchronous runs stay replayable.
    """

    def __init__(self, sigma: float, seed: SeedLike = None):
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self.sigma = float(sigma)
        self._root_seed = int(make_rng(seed).integers(0, 2**63 - 1))

    def compute_multiplier(
        self, topology: Topology, node: int, round_index: int
    ) -> float:
        round_index = _check_round(round_index)
        if self.sigma == 0.0:
            return 1.0
        rng = make_rng((self._root_seed, int(node), round_index))
        return float(np.exp(self.sigma * rng.standard_normal()))

    def __repr__(self) -> str:
        return f"RandomClockSkew(sigma={self.sigma})"
