"""Unified chaos-injection layer: bursty outages, crashes, partitions, corruption.

SNAP's value proposition is training that *survives* a messy edge network
(Section IV-D's straggler rule). This package makes faults first-class and
injectable: temporally correlated link outages (Gilbert–Elliott bursts),
crash/restart server spans, scheduled network partitions, and in-flight
frame corruption, all composed into one :class:`FaultPlan` that both the
in-process simulator and the real TCP testbed consume — with identical,
seed-deterministic fault patterns, so simulated and networked runs under the
same plan remain bit-for-bit comparable.

See ``docs/FAULTS.md`` for the fault taxonomy and the degradation policy.
"""

from repro.faults.byzantine import (
    ByzantineAttack,
    ByzantinePlan,
    GaussianNoiseAttack,
    ScaledUpdateAttack,
    SignFlipAttack,
)
from repro.faults.models import (
    ClockSkewModel,
    CorruptionModel,
    CrashRestartSchedule,
    GilbertElliottLinkFailures,
    IndependentCorruption,
    MarkovNodeFailures,
    NoClockSkew,
    NoCorruption,
    PartitionSchedule,
    RandomClockSkew,
    ScheduledCorruption,
    ScheduledStragglers,
)
from repro.faults.plan import FaultPlan

__all__ = [
    "FaultPlan",
    "ByzantineAttack",
    "ByzantinePlan",
    "SignFlipAttack",
    "GaussianNoiseAttack",
    "ScaledUpdateAttack",
    "CorruptionModel",
    "NoCorruption",
    "IndependentCorruption",
    "ScheduledCorruption",
    "GilbertElliottLinkFailures",
    "MarkovNodeFailures",
    "CrashRestartSchedule",
    "PartitionSchedule",
    "ClockSkewModel",
    "NoClockSkew",
    "ScheduledStragglers",
    "RandomClockSkew",
]
