"""The unified fault plan: one object describing everything that goes wrong.

A :class:`FaultPlan` composes any number of link-failure models, node-failure
models, and a corruption model into a single injectable description of a
hostile network, consumable by every runtime in the repository:

* the simulator — ``SNAPTrainer(..., fault_plan=plan)`` routes link outages
  and corruption through the :class:`~repro.network.channel.Channel` and
  node outages through the round loop;
* the TCP testbed — ``TestbedRuntime(..., fault_plan=plan)`` makes senders
  skip downed links, damage scheduled frames on the wire (caught by the
  receiver's CRC32 check), and idle through crash spans.

Because every constituent model is deterministic given its seed, the same
plan produces the *same* fault pattern in both runtimes — which is what lets
the chaos tests assert that a networked run under faults stays bit-for-bit
identical to the simulated run under the same plan.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence, Union

from repro.faults.byzantine import ByzantinePlan
from repro.faults.models import ClockSkewModel, CorruptionModel, NoCorruption
from repro.topology.failures import LinkFailureModel, NodeFailureModel
from repro.topology.graph import Topology
from repro.types import Edge

_LinkArg = Union[LinkFailureModel, Sequence[LinkFailureModel], None]
_NodeArg = Union[NodeFailureModel, Sequence[NodeFailureModel], None]
_ClockArg = Union[ClockSkewModel, Sequence[ClockSkewModel], None]


def _as_tuple(value, base_type, label):
    if value is None:
        return ()
    if isinstance(value, base_type):
        return (value,)
    items = tuple(value)
    for item in items:
        if not isinstance(item, base_type):
            raise TypeError(
                f"{label} entries must be {base_type.__name__} instances, "
                f"got {item!r}"
            )
    return items


class FaultPlan(LinkFailureModel, NodeFailureModel):
    """A composable bundle of link outages, node crashes, and corruption.

    Implements both failure-model interfaces itself (the union of its
    constituents), so a plan drops in anywhere a single
    :class:`~repro.topology.failures.LinkFailureModel` or
    :class:`~repro.topology.failures.NodeFailureModel` is accepted.

    Parameters
    ----------
    links:
        One link-failure model or a sequence of them; a link is down when
        *any* constituent says so.
    nodes:
        One node-failure model or a sequence of them; a node is down when
        *any* constituent says so.
    corruption:
        Which in-flight frames are damaged (default: none).
    clocks:
        One clock-skew model or a sequence of them; a node's compute-time
        multiplier is the *product* of the constituents' multipliers. Only
        the semi-synchronous engine consumes clocks — synchronous runtimes
        (whose barrier already absorbs any skew) ignore them.
    byzantine:
        Which nodes transmit adversarially poisoned vectors (default:
        none). Consumed by every runtime's send path; pair it with
        ``SNAPConfig(robust_aggregation=...)`` for the defense.
    """

    def __init__(
        self,
        links: _LinkArg = None,
        nodes: _NodeArg = None,
        corruption: CorruptionModel | None = None,
        clocks: _ClockArg = None,
        byzantine: ByzantinePlan | None = None,
    ):
        self.link_models: tuple[LinkFailureModel, ...] = _as_tuple(
            links, LinkFailureModel, "links"
        )
        self.node_models: tuple[NodeFailureModel, ...] = _as_tuple(
            nodes, NodeFailureModel, "nodes"
        )
        if corruption is not None and not isinstance(corruption, CorruptionModel):
            raise TypeError(
                f"corruption must be a CorruptionModel, got {corruption!r}"
            )
        self.corruption: CorruptionModel = (
            corruption if corruption is not None else NoCorruption()
        )
        self.clock_models: tuple[ClockSkewModel, ...] = _as_tuple(
            clocks, ClockSkewModel, "clocks"
        )
        if byzantine is not None and not isinstance(byzantine, ByzantinePlan):
            raise TypeError(
                f"byzantine must be a ByzantinePlan, got {byzantine!r}"
            )
        self.byzantine: ByzantinePlan | None = byzantine

    # -- LinkFailureModel / NodeFailureModel ------------------------------------

    def failed_links(self, topology: Topology, round_index: int) -> FrozenSet[Edge]:
        failed: frozenset[Edge] = frozenset()
        for model in self.link_models:
            failed |= model.failed_links(topology, round_index)
        return failed

    def failed_nodes(self, topology: Topology, round_index: int) -> frozenset[int]:
        down: frozenset[int] = frozenset()
        for model in self.node_models:
            down |= model.failed_nodes(topology, round_index)
        return down

    # -- convenience queries -----------------------------------------------------

    def link_up(
        self, topology: Topology, source: int, destination: int, round_index: int
    ) -> bool:
        """Whether the undirected link is available during ``round_index``."""
        edge = (min(source, destination), max(source, destination))
        return edge not in self.failed_links(topology, round_index)

    def corrupted(
        self, topology: Topology, source: int, destination: int, round_index: int
    ) -> bool:
        """Whether the directed frame is damaged in flight during ``round_index``."""
        return self.corruption.corrupted(topology, source, destination, round_index)

    def compute_multiplier(
        self, topology: Topology, node: int, round_index: int
    ) -> float:
        """Clock-skew factor on ``node``'s compute time (1.0 when unskewed)."""
        multiplier = 1.0
        for model in self.clock_models:
            multiplier *= model.compute_multiplier(topology, node, round_index)
        return multiplier

    def merged_with(
        self,
        link_model: LinkFailureModel | None = None,
        node_model: NodeFailureModel | None = None,
    ) -> "FaultPlan":
        """A new plan adding standalone models (trainer back-compat path)."""
        links = self.link_models + ((link_model,) if link_model else ())
        nodes = self.node_models + ((node_model,) if node_model else ())
        return FaultPlan(
            links=links,
            nodes=nodes,
            corruption=self.corruption,
            clocks=self.clock_models,
            byzantine=self.byzantine,
        )

    def __repr__(self) -> str:
        return (
            f"FaultPlan(links={list(self.link_models)}, "
            f"nodes={list(self.node_models)}, corruption={self.corruption}, "
            f"clocks={list(self.clock_models)}, byzantine={self.byzantine})"
        )
