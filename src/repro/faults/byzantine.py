"""Byzantine (adversarial) node plans: poisoned transmissions, honest wires.

A byzantine node participates in the protocol faithfully *except* that the
parameter vector it puts on the wire is adversarially transformed. The
attacker's own local trajectory stays honest — it steps, receives, and
ledgers exactly like everyone else — so the attack surfaces only through
its outgoing frames. That framing keeps every runtime invariant intact
(``last_sent`` still equals the receivers' cached views bitwise, byte
ledgers still conserve) while letting robust aggregation rules, not the
transport, be the defense.

Attacks are deterministic per ``(seed, node, round)``: the same plan
replays the same poisoned bytes in the reference engine, the vectorized
engine, the semi-synchronous engine, and the TCP testbed, which is what
lets the differential harness certify robust-aggregation runs bit-for-bit
across all of them.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.topology.graph import Topology
from repro.types import SeedLike
from repro.utils.rng import make_rng


class ByzantineAttack(abc.ABC):
    """Transforms the vector a compromised node transmits."""

    @abc.abstractmethod
    def transmit(
        self, params: np.ndarray, node: int, round_index: int
    ) -> np.ndarray:
        """The poisoned vector ``node`` puts on the wire during the round.

        Must return a *new* array (never mutate ``params``): the caller's
        local state keeps training on the honest vector.
        """


class SignFlipAttack(ByzantineAttack):
    """Transmit ``-scale * params``: the classic direction-reversal attack."""

    def __init__(self, scale: float = 1.0):
        if not scale > 0.0:
            raise ConfigurationError(f"scale must be > 0, got {scale}")
        self.scale = float(scale)

    def transmit(
        self, params: np.ndarray, node: int, round_index: int
    ) -> np.ndarray:
        return -self.scale * params

    def __repr__(self) -> str:
        return f"SignFlipAttack(scale={self.scale})"


class GaussianNoiseAttack(ByzantineAttack):
    """Transmit ``params + sigma * z`` with fresh noise per (node, round).

    The noise stream is keyed by ``(seed, node, round)``, so replaying any
    round in any runtime reproduces the identical poisoned vector.
    """

    def __init__(self, sigma: float, seed: SeedLike = None):
        if not sigma > 0.0:
            raise ConfigurationError(f"sigma must be > 0, got {sigma}")
        self.sigma = float(sigma)
        self._root_seed = int(make_rng(seed).integers(0, 2**63 - 1))

    def transmit(
        self, params: np.ndarray, node: int, round_index: int
    ) -> np.ndarray:
        rng = make_rng((self._root_seed, int(node), int(round_index)))
        return params + self.sigma * rng.standard_normal(params.shape)

    def __repr__(self) -> str:
        return f"GaussianNoiseAttack(sigma={self.sigma})"


class ScaledUpdateAttack(ByzantineAttack):
    """Transmit ``factor * params``: model-boosting / dampening poisoning."""

    def __init__(self, factor: float):
        if factor == 1.0:
            raise ConfigurationError("factor=1.0 is not an attack")
        self.factor = float(factor)

    def transmit(
        self, params: np.ndarray, node: int, round_index: int
    ) -> np.ndarray:
        return self.factor * params

    def __repr__(self) -> str:
        return f"ScaledUpdateAttack(factor={self.factor})"


class ByzantinePlan:
    """Which nodes are compromised, and what they transmit.

    Parameters
    ----------
    attack:
        The transformation applied to every compromised node's outgoing
        vector.
    attackers:
        Explicit compromised node ids. Mutually exclusive with
        ``n_attackers``.
    n_attackers:
        Draw this many attacker ids uniformly (without replacement) from
        the first topology the plan is queried against; the draw is cached,
        so the attacker set stays stable across adaptive topology swaps.
    seed:
        Seeds the ``n_attackers`` draw.
    """

    def __init__(
        self,
        attack: ByzantineAttack,
        attackers: Sequence[int] | None = None,
        n_attackers: int | None = None,
        seed: SeedLike = None,
    ):
        if not isinstance(attack, ByzantineAttack):
            raise ConfigurationError(
                f"attack must be a ByzantineAttack, got {attack!r}"
            )
        if (attackers is None) == (n_attackers is None):
            raise ConfigurationError(
                "provide exactly one of attackers= or n_attackers="
            )
        self.attack = attack
        self._attackers: frozenset[int] | None = None
        self._n_attackers: int | None = None
        if attackers is not None:
            ids = frozenset(int(a) for a in attackers)
            if not ids:
                raise ConfigurationError("attackers must be non-empty")
            if any(a < 0 for a in ids):
                raise ConfigurationError(f"attacker ids must be >= 0, got {ids}")
            self._attackers = ids
        else:
            if n_attackers < 1:
                raise ConfigurationError(
                    f"n_attackers must be >= 1, got {n_attackers}"
                )
            self._n_attackers = int(n_attackers)
        self._root_seed = int(make_rng(seed).integers(0, 2**63 - 1))

    def attackers(self, topology: Topology) -> FrozenSet[int]:
        """The compromised node set (resolved and cached on first query)."""
        if self._attackers is None:
            if self._n_attackers >= topology.n_nodes:
                raise ConfigurationError(
                    f"n_attackers={self._n_attackers} needs at least one "
                    f"honest node in a {topology.n_nodes}-node topology"
                )
            rng = make_rng((self._root_seed, topology.n_nodes))
            drawn = rng.choice(
                topology.n_nodes, size=self._n_attackers, replace=False
            )
            self._attackers = frozenset(int(a) for a in drawn)
        return self._attackers

    def transmit(
        self,
        params: np.ndarray,
        node: int,
        round_index: int,
        topology: Topology,
    ) -> np.ndarray:
        """What ``node`` puts on the wire: poisoned iff compromised."""
        if node in self.attackers(topology):
            return self.attack.transmit(params, node, round_index)
        return params

    def __repr__(self) -> str:
        who = (
            sorted(self._attackers)
            if self._attackers is not None
            else f"n={self._n_attackers}"
        )
        return f"ByzantinePlan(attack={self.attack}, attackers={who})"
