"""Neighbor-set planning (Section IV-D of the paper).

When neighbor sets are not given by physical connectivity, the paper
suggests: "we can assume that every edge server is neighboring with all
other edge servers and optimize the weight matrix. If the weight between two
edge servers is less than a predefined threshold, we can remove them from
each other's neighbor set" — pruning also reduces communication cost, since
a zero weight means the pair never exchanges parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.generators import complete_topology
from repro.topology.graph import Topology
from repro.types import WeightMatrix
from repro.utils.validation import check_non_negative
from repro.weights.optimizer import WeightOptimizationResult, optimize_weight_matrix
from repro.weights.spectrum import MixingReport, analyze_weight_matrix
from repro.weights.validation import check_weight_matrix


@dataclass(frozen=True)
class NeighborPlan:
    """Outcome of the plan: pruned topology plus a re-optimized weight matrix.

    Attributes
    ----------
    topology:
        The pruned neighbor graph (edges whose optimized weight met the
        threshold).
    weight_matrix:
        A weight matrix re-optimized on the pruned support, ready for
        :class:`~repro.core.SNAPTrainer`.
    report:
        Spectral summary of ``weight_matrix``.
    dense_report:
        Spectral summary of the unpruned (complete-support) optimum, for
        judging how much mixing quality the pruning gave up.
    kept_edges:
        Edges retained out of the ``n (n-1) / 2`` complete-graph candidates.
    """

    topology: Topology
    weight_matrix: WeightMatrix
    report: MixingReport
    dense_report: MixingReport
    kept_edges: int


def plan_neighbor_sets(
    n_nodes: int,
    weight_threshold: float = 0.02,
    iterations: int = 200,
    candidate_topology: Topology | None = None,
) -> NeighborPlan:
    """Derive neighbor sets by optimize-then-prune.

    Parameters
    ----------
    n_nodes:
        Number of edge servers.
    weight_threshold:
        Edges whose optimized mixing weight falls below this are dropped
        from both endpoints' neighbor sets.
    iterations:
        Subgradient iterations for each optimization pass.
    candidate_topology:
        The candidate link set to optimize over. ``None`` means all-to-all,
        the paper's default assumption. Note that on a fully symmetric
        candidate set the optimum spreads weight uniformly (every edge gets
        ~1/n), so pruning is all-or-nothing there; a physically constrained
        candidate set (e.g. links within radio range) gives the weight
        variation that makes pruning selective.

    Raises
    ------
    TopologyError
        If pruning at the requested threshold would disconnect the network
        (consensus would become impossible); lower the threshold.
    """
    if n_nodes < 2:
        raise TopologyError(f"need at least 2 servers, got {n_nodes}")
    check_non_negative("weight_threshold", weight_threshold)

    if candidate_topology is None:
        dense_topology = complete_topology(n_nodes)
    else:
        if candidate_topology.n_nodes != n_nodes:
            raise TopologyError(
                f"candidate topology has {candidate_topology.n_nodes} nodes, "
                f"expected {n_nodes}"
            )
        if not candidate_topology.is_connected():
            raise TopologyError("candidate topology must be connected")
        dense_topology = candidate_topology
    dense = optimize_weight_matrix(dense_topology, iterations=iterations)

    kept = [
        (u, v)
        for u, v in dense_topology.edges
        if dense.matrix[u, v] >= weight_threshold
    ]
    pruned = Topology(n_nodes, kept)
    if not pruned.is_connected():
        raise TopologyError(
            f"pruning at weight_threshold={weight_threshold} disconnects the "
            "network; choose a smaller threshold"
        )

    refit: WeightOptimizationResult = optimize_weight_matrix(
        pruned, iterations=iterations
    )
    check_weight_matrix(refit.matrix, pruned)
    return NeighborPlan(
        topology=pruned,
        weight_matrix=refit.matrix,
        report=refit.report,
        dense_report=analyze_weight_matrix(dense.matrix),
        kept_edges=len(kept),
    )
