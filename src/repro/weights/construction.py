"""Predefined (non-optimized) weight-matrix constructions.

These are the baselines the paper's weight-matrix optimization is compared
against in Fig. 5. :func:`metropolis_weights` is exactly equation (24): the
Metropolis–Hastings rule with a small :math:`\\epsilon` in the denominator,
which the paper uses both as the non-optimized baseline and as the feasible
starting point for the interior-point (here: projected subgradient) solver.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix

from repro.exceptions import TopologyError
from repro.topology.graph import Topology
from repro.types import WeightMatrix
from repro.utils.validation import check_non_negative


class WeightRowView:
    """Read-only mapping view of one row of a sparse weight matrix.

    Quacks like the dense row the :class:`~repro.core.server.EdgeServer`
    constructor historically received — scalar ``row[j]`` lookups (zero off
    the support) and a known nonzero set — without materializing ``n`` dense
    rows of ``n`` floats each (that is the O(N²) memory a sparse W exists to
    avoid). Values are the exact floats stored in the matrix, so reference
    mixing arithmetic is bit-identical to the dense construction.
    """

    __slots__ = ("node", "_width", "_lookup", "_indices")

    def __init__(self, matrix, node: int):
        row = matrix.getrow(node)
        self.node = int(node)
        self._width = int(matrix.shape[1])
        self._indices = row.indices.astype(np.int64, copy=True)
        self._lookup = dict(zip(row.indices.tolist(), row.data.tolist()))

    def __getitem__(self, j) -> float:
        return self._lookup.get(int(j), 0.0)

    def __len__(self) -> int:
        return self._width

    def nonzero_indices(self) -> np.ndarray:
        """Columns with stored (nonzero) weight, ascending."""
        return self._indices


def metropolis_weights(
    topology: Topology, epsilon: float = 0.01, sparse: bool = False
) -> WeightMatrix:
    """Metropolis–Hastings weights, equation (24) of the paper.

    .. math::

        w_{ij} = \\begin{cases}
            1 / (\\max\\{deg(i), deg(j)\\} + \\epsilon) & j \\in B_i \\\\
            0 & j \\notin B_i, i \\neq j \\\\
            1 - \\sum_{k \\neq i} w_{ik} & i = j
        \\end{cases}

    The resulting matrix is symmetric, doubly stochastic, respects the
    topology's sparsity pattern, and (thanks to ``epsilon > 0``) has strictly
    positive diagonal entries, which keeps it in the interior of the feasible
    set — exactly what the paper needs to seed its solver.

    With ``sparse=True`` the same matrix is built directly in CSR form —
    entrywise **bit-identical** to the dense construction (each entry and
    each diagonal row-sum is computed by the exact same float expressions) —
    with O(nodes + edges) memory instead of O(n²). This is the mixing matrix
    for N≥4096-scale runs.
    """
    check_non_negative("epsilon", epsilon)
    n = topology.n_nodes
    if sparse:
        return _metropolis_sparse(topology, epsilon)
    matrix = np.zeros((n, n), dtype=float)
    for u, v in topology.edges:
        weight = 1.0 / (max(topology.degree(u), topology.degree(v)) + epsilon)
        matrix[u, v] = weight
        matrix[v, u] = weight
    _fill_diagonal_to_stochastic(matrix)
    return matrix


def _metropolis_sparse(topology: Topology, epsilon: float) -> csr_matrix:
    """CSR Metropolis weights, bitwise equal to the dense construction.

    Each row is materialized densely one at a time (O(n) scratch) so the
    diagonal entry ``1 - row.sum()`` reuses numpy's pairwise row-sum over
    the full n-length row — summing only the nonzeros would associate the
    additions differently and could differ in the last bit from the dense
    path's ``matrix.sum(axis=1)``.
    """
    n = topology.n_nodes
    degree = [topology.degree(node) for node in range(n)]
    data: list[float] = []
    indices: list[int] = []
    indptr = [0]
    row = np.zeros(n, dtype=float)
    for node in range(n):
        neighbors = topology.neighbors(node)
        for neighbor in neighbors:
            row[neighbor] = 1.0 / (max(degree[node], degree[neighbor]) + epsilon)
        row_sum = row.sum()
        if row_sum > 1.0 + 1e-9:
            raise TopologyError(
                "off-diagonal weights sum above 1 on some row; the construction "
                "cannot produce a doubly stochastic matrix"
            )
        row[node] = 1.0 - row_sum
        nonzero = np.flatnonzero(row)
        indices.extend(nonzero.tolist())
        data.extend(row[nonzero].tolist())
        indptr.append(len(indices))
        row[nonzero] = 0.0
    return csr_matrix(
        (
            np.asarray(data, dtype=float),
            np.asarray(indices, dtype=np.int64),
            np.asarray(indptr, dtype=np.int64),
        ),
        shape=(n, n),
    )


def max_degree_weights(topology: Topology) -> WeightMatrix:
    """Uniform weights ``1 / (max_degree + 1)`` on every edge.

    The simplest classical construction: every link gets the same weight,
    sized so that even the busiest node keeps a nonnegative self-weight.
    """
    if topology.n_edges == 0:
        return np.eye(topology.n_nodes)
    max_degree = max(topology.degree(node) for node in topology)
    weight = 1.0 / (max_degree + 1.0)
    n = topology.n_nodes
    matrix = np.zeros((n, n), dtype=float)
    for u, v in topology.edges:
        matrix[u, v] = weight
        matrix[v, u] = weight
    _fill_diagonal_to_stochastic(matrix)
    return matrix


def uniform_neighbor_weights(topology: Topology, self_weight: float = 0.5) -> WeightMatrix:
    """Each node splits ``1 - self_weight`` equally among its neighbors, symmetrized.

    The raw per-node split is not symmetric when degrees differ, so edge
    weights are set to the minimum of the two endpoints' shares; the surplus
    goes back onto the diagonal. The result is symmetric doubly stochastic.
    """
    if not 0.0 <= self_weight < 1.0:
        raise TopologyError(f"self_weight must be in [0, 1), got {self_weight}")
    n = topology.n_nodes
    matrix = np.zeros((n, n), dtype=float)
    share = np.zeros(n)
    for node in topology:
        degree = topology.degree(node)
        share[node] = (1.0 - self_weight) / degree if degree else 0.0
    for u, v in topology.edges:
        weight = min(share[u], share[v])
        matrix[u, v] = weight
        matrix[v, u] = weight
    _fill_diagonal_to_stochastic(matrix)
    return matrix


def tiered_metropolis_weights(
    topology: Topology, uplink_damping: float = 0.5, epsilon: float = 0.01
) -> WeightMatrix:
    """Metropolis weights with damped cross-tier (uplink/downlink) links.

    Hierarchical edge→aggregator→cloud deployments pay more per byte on the
    backhaul than inside a site, so the cross-tier links get their eq. (24)
    weight multiplied by ``uplink_damping`` — mixing leans on cheap intra-
    tier links, and the surplus mass moves onto the diagonal. The result is
    still symmetric doubly stochastic with strictly positive diagonal, so
    every downstream consumer (step-size bound, spectrum checks, the
    invariant monitor) is unaffected.

    Requires a topology carrying per-node tier labels
    (:class:`~repro.topology.generators.HierarchicalTopology`).
    """
    check_non_negative("epsilon", epsilon)
    tiers = getattr(topology, "tiers", None)
    if tiers is None:
        raise TopologyError(
            "tiered_metropolis_weights needs a topology with .tiers "
            "(build one with hierarchical_topology)"
        )
    if not 0.0 < uplink_damping <= 1.0:
        raise TopologyError(
            f"uplink_damping must be in (0, 1], got {uplink_damping}"
        )
    n = topology.n_nodes
    matrix = np.zeros((n, n), dtype=float)
    for u, v in topology.edges:
        weight = 1.0 / (max(topology.degree(u), topology.degree(v)) + epsilon)
        if tiers[u] != tiers[v]:
            weight = uplink_damping * weight
        matrix[u, v] = weight
        matrix[v, u] = weight
    _fill_diagonal_to_stochastic(matrix)
    return matrix


def _fill_diagonal_to_stochastic(matrix: np.ndarray) -> None:
    """Set each diagonal entry to one minus its row's off-diagonal sum (in place)."""
    np.fill_diagonal(matrix, 0.0)
    row_sums = matrix.sum(axis=1)
    if np.any(row_sums > 1.0 + 1e-9):
        raise TopologyError(
            "off-diagonal weights sum above 1 on some row; the construction "
            "cannot produce a doubly stochastic matrix"
        )
    np.fill_diagonal(matrix, 1.0 - row_sums)
