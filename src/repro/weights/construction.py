"""Predefined (non-optimized) weight-matrix constructions.

These are the baselines the paper's weight-matrix optimization is compared
against in Fig. 5. :func:`metropolis_weights` is exactly equation (24): the
Metropolis–Hastings rule with a small :math:`\\epsilon` in the denominator,
which the paper uses both as the non-optimized baseline and as the feasible
starting point for the interior-point (here: projected subgradient) solver.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.graph import Topology
from repro.types import WeightMatrix
from repro.utils.validation import check_non_negative


def metropolis_weights(topology: Topology, epsilon: float = 0.01) -> WeightMatrix:
    """Metropolis–Hastings weights, equation (24) of the paper.

    .. math::

        w_{ij} = \\begin{cases}
            1 / (\\max\\{deg(i), deg(j)\\} + \\epsilon) & j \\in B_i \\\\
            0 & j \\notin B_i, i \\neq j \\\\
            1 - \\sum_{k \\neq i} w_{ik} & i = j
        \\end{cases}

    The resulting matrix is symmetric, doubly stochastic, respects the
    topology's sparsity pattern, and (thanks to ``epsilon > 0``) has strictly
    positive diagonal entries, which keeps it in the interior of the feasible
    set — exactly what the paper needs to seed its solver.
    """
    check_non_negative("epsilon", epsilon)
    n = topology.n_nodes
    matrix = np.zeros((n, n), dtype=float)
    for u, v in topology.edges:
        weight = 1.0 / (max(topology.degree(u), topology.degree(v)) + epsilon)
        matrix[u, v] = weight
        matrix[v, u] = weight
    _fill_diagonal_to_stochastic(matrix)
    return matrix


def max_degree_weights(topology: Topology) -> WeightMatrix:
    """Uniform weights ``1 / (max_degree + 1)`` on every edge.

    The simplest classical construction: every link gets the same weight,
    sized so that even the busiest node keeps a nonnegative self-weight.
    """
    if topology.n_edges == 0:
        return np.eye(topology.n_nodes)
    max_degree = max(topology.degree(node) for node in topology)
    weight = 1.0 / (max_degree + 1.0)
    n = topology.n_nodes
    matrix = np.zeros((n, n), dtype=float)
    for u, v in topology.edges:
        matrix[u, v] = weight
        matrix[v, u] = weight
    _fill_diagonal_to_stochastic(matrix)
    return matrix


def uniform_neighbor_weights(topology: Topology, self_weight: float = 0.5) -> WeightMatrix:
    """Each node splits ``1 - self_weight`` equally among its neighbors, symmetrized.

    The raw per-node split is not symmetric when degrees differ, so edge
    weights are set to the minimum of the two endpoints' shares; the surplus
    goes back onto the diagonal. The result is symmetric doubly stochastic.
    """
    if not 0.0 <= self_weight < 1.0:
        raise TopologyError(f"self_weight must be in [0, 1), got {self_weight}")
    n = topology.n_nodes
    matrix = np.zeros((n, n), dtype=float)
    share = np.zeros(n)
    for node in topology:
        degree = topology.degree(node)
        share[node] = (1.0 - self_weight) / degree if degree else 0.0
    for u, v in topology.edges:
        weight = min(share[u], share[v])
        matrix[u, v] = weight
        matrix[v, u] = weight
    _fill_diagonal_to_stochastic(matrix)
    return matrix


def _fill_diagonal_to_stochastic(matrix: np.ndarray) -> None:
    """Set each diagonal entry to one minus its row's off-diagonal sum (in place)."""
    np.fill_diagonal(matrix, 0.0)
    row_sums = matrix.sum(axis=1)
    if np.any(row_sums > 1.0 + 1e-9):
        raise TopologyError(
            "off-diagonal weights sum above 1 on some row; the construction "
            "cannot produce a doubly stochastic matrix"
        )
    np.fill_diagonal(matrix, 1.0 - row_sums)
