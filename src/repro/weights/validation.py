"""Structural validation of weight matrices against a topology."""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix, issparse

from repro.exceptions import WeightMatrixError
from repro.topology.graph import Topology
from repro.types import WeightMatrix
from repro.utils.linalg import is_doubly_stochastic, is_symmetric


def check_weight_matrix(
    matrix: WeightMatrix, topology: Topology, atol: float = 1e-7
) -> WeightMatrix:
    """Validate that ``matrix`` is a feasible SNAP weight matrix.

    Feasibility (problems (22)/(23) of the paper) requires the matrix to be:

    * square of size ``topology.n_nodes``,
    * symmetric,
    * doubly stochastic (nonnegative, rows and columns summing to one),
    * supported only on the topology's edges plus the diagonal
      (``w_ij = 0`` whenever ``j not in B_i`` and ``i != j``).

    Returns the validated matrix (as a float array, or CSR when given a
    scipy.sparse matrix) for inline use; raises
    :class:`~repro.exceptions.WeightMatrixError` otherwise.
    """
    if issparse(matrix):
        return _check_sparse(matrix, topology, atol)
    matrix = np.asarray(matrix, dtype=float)
    n = topology.n_nodes
    if matrix.shape != (n, n):
        raise WeightMatrixError(
            f"weight matrix shape {matrix.shape} does not match topology size {n}"
        )
    if not is_symmetric(matrix, atol=atol):
        raise WeightMatrixError("weight matrix is not symmetric")
    if not is_doubly_stochastic(matrix, atol=atol):
        raise WeightMatrixError("weight matrix is not doubly stochastic")
    allowed = np.eye(n, dtype=bool)
    for u, v in topology.edges:
        allowed[u, v] = True
        allowed[v, u] = True
    violations = np.abs(matrix) > atol
    violations &= ~allowed
    if np.any(violations):
        bad = np.argwhere(violations)[0]
        raise WeightMatrixError(
            f"weight matrix has nonzero entry at non-neighbor pair "
            f"({int(bad[0])}, {int(bad[1])})"
        )
    return matrix


def _check_sparse(matrix, topology: Topology, atol: float) -> csr_matrix:
    """The same feasibility checks without densifying an (n, n) array."""
    matrix = csr_matrix(matrix, dtype=float)
    n = topology.n_nodes
    if matrix.shape != (n, n):
        raise WeightMatrixError(
            f"weight matrix shape {matrix.shape} does not match topology size {n}"
        )
    asymmetry = abs(matrix - matrix.T)
    if asymmetry.nnz and asymmetry.max() > atol:
        raise WeightMatrixError("weight matrix is not symmetric")
    ones = np.ones(n)
    if (matrix.nnz and matrix.data.min() < -atol) or not (
        np.allclose(matrix @ ones, ones, atol=atol)
        and np.allclose(matrix.T @ ones, ones, atol=atol)
    ):
        raise WeightMatrixError("weight matrix is not doubly stochastic")
    allowed: set[tuple[int, int]] = {(node, node) for node in range(n)}
    for u, v in topology.edges:
        allowed.add((u, v))
        allowed.add((v, u))
    coo = matrix.tocoo()
    for i, j, value in zip(coo.row.tolist(), coo.col.tolist(), coo.data.tolist()):
        if abs(value) > atol and (i, j) not in allowed:
            raise WeightMatrixError(
                f"weight matrix has nonzero entry at non-neighbor pair ({i}, {j})"
            )
    return matrix
