"""Structural validation of weight matrices against a topology."""

from __future__ import annotations

import numpy as np

from repro.exceptions import WeightMatrixError
from repro.topology.graph import Topology
from repro.types import WeightMatrix
from repro.utils.linalg import is_doubly_stochastic, is_symmetric


def check_weight_matrix(
    matrix: WeightMatrix, topology: Topology, atol: float = 1e-7
) -> WeightMatrix:
    """Validate that ``matrix`` is a feasible SNAP weight matrix.

    Feasibility (problems (22)/(23) of the paper) requires the matrix to be:

    * square of size ``topology.n_nodes``,
    * symmetric,
    * doubly stochastic (nonnegative, rows and columns summing to one),
    * supported only on the topology's edges plus the diagonal
      (``w_ij = 0`` whenever ``j not in B_i`` and ``i != j``).

    Returns the validated matrix (as a float array) for inline use; raises
    :class:`~repro.exceptions.WeightMatrixError` otherwise.
    """
    matrix = np.asarray(matrix, dtype=float)
    n = topology.n_nodes
    if matrix.shape != (n, n):
        raise WeightMatrixError(
            f"weight matrix shape {matrix.shape} does not match topology size {n}"
        )
    if not is_symmetric(matrix, atol=atol):
        raise WeightMatrixError("weight matrix is not symmetric")
    if not is_doubly_stochastic(matrix, atol=atol):
        raise WeightMatrixError("weight matrix is not doubly stochastic")
    allowed = np.eye(n, dtype=bool)
    for u, v in topology.edges:
        allowed[u, v] = True
        allowed[v, u] = True
    violations = np.abs(matrix) > atol
    violations &= ~allowed
    if np.any(violations):
        bad = np.argwhere(violations)[0]
        raise WeightMatrixError(
            f"weight matrix has nonzero entry at non-neighbor pair "
            f"({int(bad[0])}, {int(bad[1])})"
        )
    return matrix
